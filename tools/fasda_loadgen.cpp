// fasda_loadgen — concurrent load driver for a running fasda_serve daemon.
//
// Spins up --clients threads, each with its own connection and tenant id,
// and pushes --jobs jobs per client. --mix rotates the job spec across the
// engine registry (functional / reference / cycle) with varying
// forcefields and priorities; --crash-one swaps client 0's first job for a
// supervised cycle job with an induced node crash (crash=1-1000, the
// smoke-test fault), which must still come back recovered.
//
// Exit code: 0 when every job was admitted (after queue-full/tenant-quota
// retries) and completed with its expected outcome; 1 otherwise. The CI
// serve-soak job runs this against a draining daemon under sanitizers.
//
// Usage:
//   fasda_loadgen --port P [--host 127.0.0.1] [--clients 4] [--jobs 8]
//                 [--mix] [--crash-one] [--replicas 2] [--steps 4]
//                 [--tenant load] [--retries 50]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "fasda/serve/client.hpp"
#include "fasda/util/cli.hpp"
#include "fasda/util/stopwatch.hpp"

using namespace fasda;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int clients = 4;
  int jobs = 8;
  bool mix = false;
  bool crash_one = false;
  int replicas = 2;
  int steps = 4;
  std::string tenant = "load";
  int retries = 50;
};

serve::JobRequest job_for(const Options& opt, int client, int index) {
  serve::JobRequest req;
  req.tenant = opt.tenant + std::to_string(client);
  req.replicas = opt.replicas;
  req.steps = opt.steps;
  req.sample = 2;
  req.space = "333";
  req.per_cell = 8;
  req.seed = 0x5eed + static_cast<std::uint64_t>(client) * 1000 +
             static_cast<std::uint64_t>(index);
  req.batch_workers = 2;
  if (opt.mix) {
    static const char* kEngines[] = {"functional", "reference", "cycle"};
    req.engine = kEngines[(client + index) % 3];
    req.forcefield = (index % 2 == 0) ? "na" : "nacl";
    req.priority = index % 3;
  }
  if (opt.crash_one && client == 0 && index == 0) {
    // The smoke-test crash workload: node 1 dies at cycle 1000 and the
    // supervisor rolls back and replays. Must complete (recovered).
    req.engine = "cycle";
    req.space = "444";
    req.per_cell = 4;
    req.steps = 3;
    req.sample = 0;
    req.cells = "222";
    req.faults = "crash=1-1000";
    req.supervise = true;
    req.replicas = 1;
    req.forcefield = "na";
  }
  return req;
}

bool outcome_ok(const Options& opt, int client, int index,
                const serve::JobResult& result) {
  if (opt.crash_one && client == 0 && index == 0) {
    // Recovered (ok) or completed-degraded both count as a clean recovery.
    return result.outcome == serve::JobOutcome::kOk ||
           result.outcome == serve::JobOutcome::kDegraded;
  }
  return result.outcome == serve::JobOutcome::kOk;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  Options opt;
  opt.host = cli.get_or("host", opt.host);
  opt.port = static_cast<std::uint16_t>(cli.get_or("port", 0L));
  opt.clients = static_cast<int>(cli.get_or("clients", 4L));
  opt.jobs = static_cast<int>(cli.get_or("jobs", 8L));
  opt.mix = cli.has("mix");
  opt.crash_one = cli.has("crash-one");
  opt.replicas = static_cast<int>(cli.get_or("replicas", 2L));
  opt.steps = static_cast<int>(cli.get_or("steps", 4L));
  opt.tenant = cli.get_or("tenant", opt.tenant);
  opt.retries = static_cast<int>(cli.get_or("retries", 50L));
  if (opt.port == 0) {
    std::fprintf(stderr, "fasda_loadgen: --port is required\n");
    return 1;
  }

  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  std::atomic<int> retried{0};
  util::Stopwatch wall;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opt.clients));
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::Client client(opt.host, opt.port);
        for (int j = 0; j < opt.jobs; ++j) {
          const serve::JobRequest req = job_for(opt, c, j);
          serve::Client::SubmitReply reply;
          int attempts = 0;
          for (;;) {
            reply = client.submit(req);
            if (reply.accepted) break;
            if ((reply.reason == "queue-full" ||
                 reply.reason == "tenant-quota") &&
                attempts++ < opt.retries) {
              retried.fetch_add(1);
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
              continue;
            }
            break;
          }
          if (!reply.accepted) {
            std::fprintf(stderr,
                         "fasda_loadgen: client %d job %d rejected: %s %s\n",
                         c, j, reply.reason.c_str(), reply.detail.c_str());
            failed.fetch_add(1);
            continue;
          }
          const serve::JobResult result = client.wait_result(reply.job_id);
          if (outcome_ok(opt, c, j, result)) {
            completed.fetch_add(1);
          } else {
            std::fprintf(
                stderr, "fasda_loadgen: client %d job %d outcome %s\n", c, j,
                serve::job_outcome_name(result.outcome));
            failed.fetch_add(1);
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fasda_loadgen: client %d: %s\n", c, e.what());
        failed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const double seconds = wall.seconds();
  const int total = opt.clients * opt.jobs;
  std::printf(
      "fasda_loadgen: %d/%d jobs ok, %d failed, %d admission retries, "
      "%.2f s, %.2f jobs/s\n",
      completed.load(), total, failed.load(), retried.load(), seconds,
      seconds > 0 ? completed.load() / seconds : 0.0);
  return failed.load() == 0 && completed.load() == total ? 0 : 1;
}
