// fasda_loadgen — concurrent load driver for a running fasda_serve daemon.
//
// Spins up --clients threads, each with its own connection and tenant id,
// and pushes --jobs jobs per client. --mix rotates the job spec across the
// engine registry (functional / reference / cycle) with varying
// forcefields and priorities; --crash-one swaps client 0's first job for a
// supervised cycle job with an induced node crash (crash=1-1000, the
// smoke-test fault), which must still come back recovered.
//
// Crash-soak mode (DESIGN.md §16): --kill-every N SIGKILLs the daemon
// (pid read from --pid-file) after every N completed jobs, up to
// --max-kills times. The harness is expected to restart the daemon on the
// same port with the same --state-dir; clients ride out the restart window
// with bounded reconnect-with-backoff and resubmit in-flight jobs under
// stable idempotency keys, so every job still completes exactly once.
// --verify recomputes every job locally through the same execute_job()
// and requires the served result to be bitwise identical.
//
// Exit code: 0 when every job was admitted (after queue-full/tenant-quota/
// recovering retries) and completed with its expected outcome (and, with
// --verify, bitwise-matched the direct computation); 1 otherwise.
//
// Usage:
//   fasda_loadgen --port P [--host 127.0.0.1] [--clients 4] [--jobs 8]
//                 [--mix] [--crash-one] [--replicas 2] [--steps 4]
//                 [--tenant load] [--retries 50] [--verify]
//                 [--kill-every N] [--max-kills 5] [--pid-file PATH]
//                 [--idempotent] [--supervise-every N]

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fasda/serve/client.hpp"
#include "fasda/util/cli.hpp"
#include "fasda/util/stopwatch.hpp"

using namespace fasda;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int clients = 4;
  int jobs = 8;
  bool mix = false;
  bool crash_one = false;
  int replicas = 2;
  int steps = 4;
  std::string tenant = "load";
  int retries = 50;
  bool verify = false;
  int kill_every = 0;   ///< 0 = never kill the daemon
  int max_kills = 5;
  std::string pid_file;
  bool idempotent = false;
  int supervise_every = 0;  ///< every Nth job runs supervised w/ checkpoints
};

serve::JobRequest job_for(const Options& opt, int client, int index) {
  serve::JobRequest req;
  req.tenant = opt.tenant + std::to_string(client);
  req.replicas = opt.replicas;
  req.steps = opt.steps;
  req.sample = 2;
  req.space = "333";
  req.per_cell = 8;
  req.seed = 0x5eed + static_cast<std::uint64_t>(client) * 1000 +
             static_cast<std::uint64_t>(index);
  req.batch_workers = 2;
  if (opt.mix) {
    static const char* kEngines[] = {"functional", "reference", "cycle"};
    req.engine = kEngines[(client + index) % 3];
    req.forcefield = (index % 2 == 0) ? "na" : "nacl";
    req.priority = index % 3;
  }
  if (opt.supervise_every > 0 && index % opt.supervise_every == 0) {
    // Give the durability layer something to checkpoint: supervised jobs
    // bank step-stamped state, so a SIGKILL mid-run resumes instead of
    // rerunning from scratch.
    req.supervise = true;
    req.checkpoint_every = 2;
    req.replicas = 1;
  }
  if (opt.crash_one && client == 0 && index == 0) {
    // The smoke-test crash workload: node 1 dies at cycle 1000 and the
    // supervisor rolls back and replays. Must complete (recovered).
    req.engine = "cycle";
    req.space = "444";
    req.per_cell = 4;
    req.steps = 3;
    req.sample = 0;
    req.cells = "222";
    req.faults = "crash=1-1000";
    req.supervise = true;
    req.replicas = 1;
    req.forcefield = "na";
    req.checkpoint_every = 0;
  }
  if (opt.idempotent || opt.kill_every > 0) {
    req.idempotency = "loadgen-" + opt.tenant + "-c" +
                      std::to_string(client) + "-j" + std::to_string(index);
  }
  return req;
}

bool outcome_ok(const Options& opt, int client, int index,
                const serve::JobResult& result) {
  if (opt.crash_one && client == 0 && index == 0) {
    // Recovered (ok) or completed-degraded both count as a clean recovery.
    return result.outcome == serve::JobOutcome::kOk ||
           result.outcome == serve::JobOutcome::kDegraded;
  }
  return result.outcome == serve::JobOutcome::kOk;
}

std::string canon(serve::JobResult result) {
  result.job_id = 0;
  return result.to_json(/*deterministic_only=*/true);
}

/// SIGKILLs the daemon named by the pid file after every `kill_every`
/// completed jobs, never the same incarnation twice. Runs until the
/// drivers finish or `max_kills` is spent.
void killer_loop(const Options& opt, const std::atomic<int>& finished,
                 const std::atomic<bool>& done, std::atomic<int>& kills) {
  long last_killed = -1;
  int next_threshold = opt.kill_every;
  while (!done.load()) {
    if (kills.load() >= opt.max_kills) return;
    if (finished.load() < next_threshold) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    long pid = -1;
    if (std::FILE* f = std::fopen(opt.pid_file.c_str(), "r")) {
      if (std::fscanf(f, "%ld", &pid) != 1) pid = -1;
      std::fclose(f);
    }
    if (pid <= 0 || pid == last_killed) {
      // Stale or not-yet-rewritten pid file: the previous incarnation is
      // still the one on disk. Wait for the restart loop to catch up.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (::kill(static_cast<pid_t>(pid), SIGKILL) == 0) {
      std::printf("fasda_loadgen: SIGKILL pid %ld (%d jobs finished)\n", pid,
                  finished.load());
      std::fflush(stdout);
      last_killed = pid;
      kills.fetch_add(1);
      next_threshold += opt.kill_every;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  Options opt;
  opt.host = cli.get_or("host", opt.host);
  opt.port = static_cast<std::uint16_t>(cli.get_or("port", 0L));
  opt.clients = static_cast<int>(cli.get_or("clients", 4L));
  opt.jobs = static_cast<int>(cli.get_or("jobs", 8L));
  opt.mix = cli.has("mix");
  opt.crash_one = cli.has("crash-one");
  opt.replicas = static_cast<int>(cli.get_or("replicas", 2L));
  opt.steps = static_cast<int>(cli.get_or("steps", 4L));
  opt.tenant = cli.get_or("tenant", opt.tenant);
  opt.retries = static_cast<int>(cli.get_or("retries", 50L));
  opt.verify = cli.has("verify");
  opt.kill_every = static_cast<int>(cli.get_or("kill-every", 0L));
  opt.max_kills = static_cast<int>(cli.get_or("max-kills", 5L));
  opt.pid_file = cli.get_or("pid-file", "");
  opt.idempotent = cli.has("idempotent");
  opt.supervise_every =
      static_cast<int>(cli.get_or("supervise-every", 0L));
  if (opt.port == 0) {
    std::fprintf(stderr, "fasda_loadgen: --port is required\n");
    return 1;
  }
  if (opt.kill_every > 0 && opt.pid_file.empty()) {
    std::fprintf(stderr, "fasda_loadgen: --kill-every needs --pid-file\n");
    return 1;
  }

  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  std::atomic<int> retried{0};
  std::atomic<int> reconnects{0};
  std::atomic<int> finished{0};  // completed + failed, drives the killer
  std::atomic<int> kills{0};
  std::atomic<bool> done{false};
  util::Stopwatch wall;

  // Saved (request, served-canon) pairs for --verify.
  std::mutex verify_mu;
  std::vector<std::pair<serve::JobRequest, std::string>> to_verify;

  const bool durable = opt.kill_every > 0;
  serve::RetryPolicy policy;
  policy.max_attempts = durable ? 80 : 1;  // rides out ~30 s of restart
  policy.backoff_initial = std::chrono::milliseconds(50);
  policy.backoff_cap = std::chrono::milliseconds(500);

  std::thread killer;
  if (durable) {
    killer = std::thread(
        [&] { killer_loop(opt, finished, done, kills); });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opt.clients));
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      std::unique_ptr<serve::Client> client;
      for (int j = 0; j < opt.jobs; ++j) {
        const serve::JobRequest req = job_for(opt, c, j);
        int admission_attempts = 0;
        int conn_failures = 0;
        bool ok = false;
        std::string fail_note;
        for (;;) {
          try {
            if (!client) {
              client = std::make_unique<serve::Client>(opt.host, opt.port,
                                                       policy);
            }
            const serve::Client::SubmitReply reply = client->submit(req);
            if (!reply.accepted) {
              const bool transient =
                  reply.reason == "queue-full" ||
                  reply.reason == "tenant-quota" ||
                  reply.reason == "recovering" ||
                  (durable && reply.reason == "draining");
              if (transient && admission_attempts++ < opt.retries) {
                retried.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(reply.reason == "recovering"
                                                  ? 50
                                                  : 20));
                continue;
              }
              fail_note = "rejected: " + reply.reason + " " + reply.detail;
              break;
            }
            const serve::JobResult result =
                client->wait_result(reply.job_id);
            if (!outcome_ok(opt, c, j, result)) {
              fail_note = std::string("outcome ") +
                          serve::job_outcome_name(result.outcome);
              break;
            }
            if (opt.verify) {
              std::lock_guard<std::mutex> lock(verify_mu);
              to_verify.emplace_back(req, canon(result));
            }
            ok = true;
            break;
          } catch (const serve::RetryGiveUpError& e) {
            fail_note = std::string("gave up reconnecting: ") + e.what();
            break;
          } catch (const serve::WireError& e) {
            // Connection died (daemon killed or restarted). Reconnect and
            // resubmit under the same idempotency key: the server either
            // attaches to the surviving job or replays the durable result,
            // so the retry can never double-run acknowledged work.
            client.reset();
            if (!durable || conn_failures++ >= opt.retries) {
              fail_note = std::string("connection: ") + e.what();
              break;
            }
            reconnects.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            continue;
          }
        }
        if (ok) {
          completed.fetch_add(1);
        } else {
          std::fprintf(stderr, "fasda_loadgen: client %d job %d: %s\n", c, j,
                       fail_note.c_str());
          failed.fetch_add(1);
        }
        finished.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true);
  if (killer.joinable()) killer.join();

  int verify_failures = 0;
  if (opt.verify) {
    // Served-vs-direct bitwise comparison: execute_job is pure, so the
    // local recomputation must match the served bytes exactly — across
    // however many daemon incarnations the soak killed.
    for (const auto& [req, served] : to_verify) {
      const std::string direct = canon(serve::execute_job(0, req));
      if (direct != served) {
        ++verify_failures;
        std::fprintf(stderr,
                     "fasda_loadgen: VERIFY MISMATCH tenant=%s key=%s\n",
                     req.tenant.c_str(), req.idempotency.c_str());
      }
    }
  }

  const double seconds = wall.seconds();
  const int total = opt.clients * opt.jobs;
  std::printf(
      "fasda_loadgen: %d/%d jobs ok, %d failed, %d admission retries, "
      "%d reconnects, %d kills, %d verify mismatches, %.2f s, %.2f jobs/s\n",
      completed.load(), total, failed.load(), retried.load(),
      reconnects.load(), kills.load(), verify_failures, seconds,
      seconds > 0 ? completed.load() / seconds : 0.0);
  const bool pass = failed.load() == 0 && completed.load() == total &&
                    verify_failures == 0 &&
                    (!durable || kills.load() > 0);
  return pass ? 0 : 1;
}
