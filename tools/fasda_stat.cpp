// fasda_stat — admin scraper for a running fasda_serve daemon
// (DESIGN.md §17).
//
// Dials the daemon and issues a kStats request, printing the wall-clock
// observability body to stdout (or --out): JSON by default, the Prometheus
// text exposition with --format prometheus. --ping instead prints the
// enriched kPong health body (queue depth, workers, journal/fsync state,
// recovery counters, uptime). Exit codes: 0 scraped, 1 connection or
// protocol failure, 2 bad usage — so CI can assert a live daemon scrapes.
//
// Usage:
//   fasda_stat [--host 127.0.0.1] --port P [--format json|prometheus]
//              [--ping] [--out PATH] [--retries N]

#include <cstdio>
#include <string>

#include "fasda/serve/client.hpp"
#include "fasda/util/cli.hpp"

using namespace fasda;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: fasda_stat [--host ADDR] --port P\n"
        "                  [--format json|prometheus] [--ping]\n"
        "                  [--out PATH] [--retries N]\n");
    return 0;
  }
  const std::string host = cli.get_or("host", "127.0.0.1");
  const long port = cli.get_or("port", 0L);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "fasda_stat: --port is required (1-65535)\n");
    return 2;
  }
  const std::string format = cli.get_or("format", "json");
  if (format != "json" && format != "prometheus") {
    std::fprintf(stderr,
                 "fasda_stat: --format must be json|prometheus, got %s\n",
                 format.c_str());
    return 2;
  }
  const std::string out_path = cli.get_or("out", "");

  std::string body;
  try {
    serve::RetryPolicy policy;
    policy.max_attempts = static_cast<int>(cli.get_or("retries", 5L));
    serve::Client client(host, static_cast<std::uint16_t>(port), policy);
    body = cli.has("ping") ? client.ping() : client.stats(format);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fasda_stat: %s\n", e.what());
    return 1;
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fasda_stat: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    if (body.empty() || body.back() != '\n') std::fputc('\n', f);
    std::fclose(f);
    return 0;
  }
  std::fwrite(body.data(), 1, body.size(), stdout);
  if (body.empty() || body.back() != '\n') std::fputc('\n', stdout);
  return 0;
}
