// fasda_serve — the multi-tenant simulation job daemon (DESIGN.md §15).
//
// Listens on a TCP socket for length-prefixed JSON frames (serve/wire.hpp),
// admits JobRequests through a bounded priority queue with per-tenant
// quotas, runs them on queue workers via serve::execute_job, and streams
// kStatus/kResult frames back to the submitting connection. SIGTERM (or
// SIGINT) starts a graceful drain: new submits are rejected with
// "draining", admitted jobs finish, then the daemon exits 0.
//
// Usage:
//   fasda_serve [--host 127.0.0.1] [--port 0] [--queue-workers 2]
//               [--queue-cap 256] [--tenant-quota 0] [--recv-timeout 600]
//               [--send-timeout 30]
//
// --port 0 binds an ephemeral port; the actual port is announced on stdout
// as "fasda_serve: listening on HOST:PORT" so harnesses can parse it.

#include <cstdio>
#include <string>

#include "fasda/serve/server.hpp"
#include "fasda/util/cli.hpp"

using namespace fasda;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: fasda_serve [--host ADDR] [--port P] [--queue-workers N]\n"
        "                   [--queue-cap N] [--tenant-quota N]\n"
        "                   [--recv-timeout SECONDS] [--send-timeout SECONDS]\n");
    return 0;
  }

  serve::ServerConfig config;
  config.host = cli.get_or("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(cli.get_or("port", 0L));
  config.queue_workers =
      static_cast<std::size_t>(cli.get_or("queue-workers", 2L));
  config.queue.capacity =
      static_cast<std::size_t>(cli.get_or("queue-cap", 256L));
  config.queue.tenant_quota =
      static_cast<std::size_t>(cli.get_or("tenant-quota", 0L));
  config.recv_timeout_seconds =
      static_cast<int>(cli.get_or("recv-timeout", 600L));
  config.send_timeout_seconds =
      static_cast<int>(cli.get_or("send-timeout", 30L));

  serve::Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fasda_serve: %s\n", e.what());
    return 1;
  }
  std::printf("fasda_serve: listening on %s:%u\n", server.host().c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  serve::Server::install_signal_drain(&server);
  server.wait_for_drain_signal();
  std::printf("fasda_serve: draining (%zu queued, %zu running)\n",
              server.queue_depth(), server.jobs_running());
  std::fflush(stdout);
  server.drain_and_stop();
  serve::Server::install_signal_drain(nullptr);

  std::printf(
      "fasda_serve: drained; submitted=%llu completed=%llu rejected=%llu\n",
      static_cast<unsigned long long>(server.jobs_submitted()),
      static_cast<unsigned long long>(server.jobs_completed()),
      static_cast<unsigned long long>(server.jobs_rejected()));
  return 0;
}
