// fasda_serve — the multi-tenant simulation job daemon (DESIGN.md §15-16).
//
// Listens on a TCP socket for length-prefixed JSON frames (serve/wire.hpp),
// admits JobRequests through a bounded priority queue with per-tenant
// quotas, runs them on queue workers via serve::execute_job, and streams
// kStatus/kResult frames back to the submitting connection. SIGTERM (or
// SIGINT) starts a graceful drain: new submits are rejected with
// "draining", admitted jobs finish, a clean-shutdown record is journaled,
// then the daemon exits 0.
//
// With --state-dir the daemon is crash-safe: every admitted job is
// journaled before it is acknowledged, supervised jobs bank step-stamped
// checkpoints, and completed results are durable. A restarted daemon
// replays the journal, re-admits lost jobs in their original order
// (resuming supervised ones from their last checkpoint), and answers
// kQuery for results that finished before the crash.
//
// Usage:
//   fasda_serve [--host 127.0.0.1] [--port 0] [--queue-workers 2]
//               [--queue-cap 256] [--tenant-quota 0] [--recv-timeout 600]
//               [--send-timeout 30] [--state-dir DIR]
//               [--journal-fsync always|never] [--pid-file PATH]
//               [--no-wall-obs] [--metrics-out PATH] [--metrics-every SECS]
//               [--trace-out PATH] [--log-json PATH] [--log-level LEVEL]
//
// --port 0 binds an ephemeral port; the actual port is announced on stdout
// as "fasda_serve: listening on HOST:PORT" so harnesses can parse it.
// --pid-file writes the daemon pid once listening (and removes it on
// graceful exit) so crash harnesses can aim their SIGKILL.
//
// Observability (DESIGN.md §17): the wall-clock plane is on by default and
// scraped live over the socket with fasda_stat (kStats). --metrics-out
// additionally rewrites a Prometheus text file every --metrics-every
// seconds; --trace-out does the same with the Chrome trace of job spans —
// the file a SIGKILLed incarnation leaves behind is what stitches its spans
// to the next incarnation's. --log-json tees every log line into a
// JSON-lines file with structured component/job/tenant fields.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "fasda/serve/server.hpp"
#include "fasda/util/cli.hpp"
#include "fasda/util/log.hpp"

using namespace fasda;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: fasda_serve [--host ADDR] [--port P] [--queue-workers N]\n"
        "                   [--queue-cap N] [--tenant-quota N]\n"
        "                   [--recv-timeout SECONDS] [--send-timeout SECONDS]\n"
        "                   [--state-dir DIR] [--journal-fsync always|never]\n"
        "                   [--pid-file PATH] [--no-wall-obs]\n"
        "                   [--metrics-out PATH] [--metrics-every SECONDS]\n"
        "                   [--trace-out PATH] [--log-json PATH]\n"
        "                   [--log-level debug|info|warn|error|off]\n");
    return 0;
  }

  serve::ServerConfig config;
  config.host = cli.get_or("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(cli.get_or("port", 0L));
  config.queue_workers =
      static_cast<std::size_t>(cli.get_or("queue-workers", 2L));
  config.queue.capacity =
      static_cast<std::size_t>(cli.get_or("queue-cap", 256L));
  config.queue.tenant_quota =
      static_cast<std::size_t>(cli.get_or("tenant-quota", 0L));
  config.recv_timeout_seconds =
      static_cast<int>(cli.get_or("recv-timeout", 600L));
  config.send_timeout_seconds =
      static_cast<int>(cli.get_or("send-timeout", 30L));
  config.state_dir = cli.get_or("state-dir", "");
  const std::string fsync_policy = cli.get_or("journal-fsync", "always");
  if (fsync_policy == "always") {
    config.journal_fsync = serve::JournalFsync::kAlways;
  } else if (fsync_policy == "never") {
    config.journal_fsync = serve::JournalFsync::kNever;
  } else {
    std::fprintf(stderr,
                 "fasda_serve: --journal-fsync must be always|never, got %s\n",
                 fsync_policy.c_str());
    return 2;
  }
  const std::string pid_file = cli.get_or("pid-file", "");

  config.wall_obs = !cli.has("no-wall-obs");
  config.metrics_out = cli.get_or("metrics-out", "");
  config.metrics_every_seconds =
      static_cast<int>(cli.get_or("metrics-every", 5L));
  config.trace_out = cli.get_or("trace-out", "");
  const std::string log_level = cli.get_or("log-level", "");
  if (!log_level.empty()) {
    try {
      util::set_log_level(util::parse_log_level(log_level));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fasda_serve: %s\n", e.what());
      return 2;
    }
  }
  const std::string log_json = cli.get_or("log-json", "");
  if (!log_json.empty() && !util::open_json_log(log_json)) {
    std::fprintf(stderr, "fasda_serve: cannot open --log-json %s\n",
                 log_json.c_str());
    return 2;
  }

  serve::Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fasda_serve: %s\n", e.what());
    return 1;
  }
  if (!pid_file.empty()) {
    if (std::FILE* f = std::fopen(pid_file.c_str(), "w")) {
      std::fprintf(f, "%ld\n", static_cast<long>(::getpid()));
      std::fclose(f);
    } else {
      std::fprintf(stderr, "fasda_serve: cannot write pid file %s\n",
                   pid_file.c_str());
    }
  }
  std::printf("fasda_serve: listening on %s:%u\n", server.host().c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  if (!config.state_dir.empty()) {
    // Replay runs on a background thread so the socket answers
    // kRecovering immediately; wait it out here just to report.
    while (server.recovering()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const serve::RecoveryReport& report = server.recovery_report();
    std::printf(
        "fasda_serve: recovery tail=%s clean_shutdown=%d records=%zu "
        "readmitted=%llu resumed=%llu results_restored=%llu\n",
        serve::journal_tail_name(report.tail), report.clean_shutdown ? 1 : 0,
        report.entries.size(),
        static_cast<unsigned long long>(server.jobs_recovered()),
        static_cast<unsigned long long>(server.jobs_resumed()),
        static_cast<unsigned long long>(server.results_restored()));
    if (!report.issue.empty()) {
      std::printf("fasda_serve: journal salvage: %s (%zu bytes quarantined)\n",
                  report.issue.c_str(), report.quarantined_bytes);
    }
    std::fflush(stdout);
  }

  serve::Server::install_signal_drain(&server);
  server.wait_for_drain_signal();
  std::printf("fasda_serve: draining (%zu queued, %zu running)\n",
              server.queue_depth(), server.jobs_running());
  std::fflush(stdout);
  server.drain_and_stop();
  serve::Server::install_signal_drain(nullptr);
  if (!pid_file.empty()) ::unlink(pid_file.c_str());

  std::printf(
      "fasda_serve: drained; submitted=%llu completed=%llu rejected=%llu "
      "recovered=%llu\n",
      static_cast<unsigned long long>(server.jobs_submitted()),
      static_cast<unsigned long long>(server.jobs_completed()),
      static_cast<unsigned long long>(server.jobs_rejected()),
      static_cast<unsigned long long>(server.jobs_recovered()));
  util::close_json_log();
  return 0;
}
