#!/usr/bin/env python3
"""Structural validator for fasda --trace-out Chrome trace files.

Checks the invariants the obs trace bus promises (DESIGN.md §12):

  * the file is valid JSON with a top-level "traceEvents" array;
  * every event carries the required keys for its phase ('B'/'E'/'i'
    duration and instant events, 'M' metadata);
  * per (pid, tid) track, 'B'/'E' events balance like a stack — no span is
    closed that was never opened, none is left open at end of trace;
  * per (pid, tid) track, timestamps never decrease (metadata excluded);
  * args.cycle, when present, is a non-negative integer.

With --serve the file is a wall-clock serve trace from the fasda_serve
daemon (DESIGN.md §17) and the per-job span contract is checked instead of
args.cycle:

  * every non-metadata event carries args.job == its tid (job 0 is the
    server-level track) and a positive integer args.span;
  * a span id maps to exactly one job id within a file AND across all the
    files on the command line — the cross-incarnation correlation token;
  * --expect-stitched N requires at least N span ids to appear in two or
    more of the given files (i.e. jobs whose life straddled a daemon
    restart, stitched through the journal's kAdmitted records).

Stdlib only; exit 0 if the trace is valid, 1 otherwise with one line per
violation on stderr.

Usage: validate_trace.py [--serve] [--expect-stitched N] TRACE.json ...
"""

import json
import sys

REQUIRED = {"ph", "pid", "tid", "name"}


def validate(path, serve=False, span_owner=None, span_files=None):
    errors = []

    def err(i, msg):
        errors.append(f"{path}: event {i}: {msg}")

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not readable as JSON: {e}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing top-level 'traceEvents' array"]

    depth = {}    # (pid, tid) -> open-span count
    last_ts = {}  # (pid, tid) -> last timestamp seen
    counted = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            err(i, "not an object")
            continue
        missing = REQUIRED - e.keys()
        if missing:
            err(i, f"missing keys {sorted(missing)}")
            continue
        ph = e["ph"]
        if ph == "M":  # process_name / thread_name metadata
            continue
        if ph not in ("B", "E", "i"):
            err(i, f"unexpected phase {ph!r}")
            continue
        if "ts" not in e:
            err(i, "missing 'ts'")
            continue
        counted += 1
        track = (e["pid"], e["tid"])
        ts = e["ts"]
        if not isinstance(ts, int) or ts < 0:
            err(i, f"ts {ts!r} is not a non-negative integer")
            continue
        if track in last_ts and ts < last_ts[track]:
            err(i, f"ts regressed on track pid={track[0]} tid={track[1]}: "
                   f"{last_ts[track]} -> {ts}")
        last_ts[track] = ts
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            if depth.get(track, 0) <= 0:
                err(i, f"unmatched 'E' on track pid={track[0]} "
                       f"tid={track[1]}")
            else:
                depth[track] -= 1
        args = e.get("args", {})
        if serve:
            job = args.get("job")
            span = args.get("span")
            if not isinstance(job, int) or job < 0:
                err(i, f"args.job {job!r} is not a non-negative integer")
                continue
            if job != e["tid"]:
                err(i, f"args.job {job} disagrees with tid {e['tid']}")
            if not isinstance(span, int) or span <= 0:
                err(i, f"args.span {span!r} is not a positive integer")
                continue
            owner = span_owner.setdefault(span, (path, job))
            if owner[1] != job:
                err(i, f"span {span} maps to job {job} here but to job "
                       f"{owner[1]} in {owner[0]}")
            if job != 0:  # the server track's span is per-incarnation
                span_files.setdefault(span, set()).add(path)
        else:
            cycle = args.get("cycle")
            if cycle is not None and (not isinstance(cycle, int) or
                                      cycle < 0):
                err(i, f"args.cycle {cycle!r} is not a non-negative integer")

    for (pid, tid), d in sorted(depth.items()):
        if d != 0:
            errors.append(
                f"{path}: {d} span(s) left open on track pid={pid} tid={tid}")
    if not errors:
        print(f"{path}: OK ({counted} events, {len(last_ts)} tracks)")
    return errors


def main(argv):
    args = argv[1:]
    serve = False
    expect_stitched = 0
    paths = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--serve":
            serve = True
        elif a == "--expect-stitched":
            i += 1
            if i >= len(args) or not args[i].isdigit():
                print("--expect-stitched needs a non-negative integer",
                      file=sys.stderr)
                return 2
            expect_stitched = int(args[i])
        else:
            paths.append(a)
        i += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if expect_stitched and not serve:
        print("--expect-stitched requires --serve", file=sys.stderr)
        return 2

    errors = []
    span_owner = {}  # span id -> (first file, job id)
    span_files = {}  # span id -> set of files it appears in
    for path in paths:
        errors.extend(validate(path, serve, span_owner, span_files))
    if serve:
        stitched = sorted(s for s, fs in span_files.items() if len(fs) > 1)
        if stitched:
            print(f"stitched spans across incarnations: {len(stitched)}")
        if len(stitched) < expect_stitched:
            errors.append(
                f"expected >= {expect_stitched} span id(s) stitched across "
                f"trace files, found {len(stitched)}")
    for line in errors:
        print(line, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
