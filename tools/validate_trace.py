#!/usr/bin/env python3
"""Structural validator for fasda --trace-out Chrome trace files.

Checks the invariants the obs trace bus promises (DESIGN.md §12):

  * the file is valid JSON with a top-level "traceEvents" array;
  * every event carries the required keys for its phase ('B'/'E'/'i'
    duration and instant events, 'M' metadata);
  * per (pid, tid) track, 'B'/'E' events balance like a stack — no span is
    closed that was never opened, none is left open at end of trace;
  * per (pid, tid) track, timestamps never decrease (metadata excluded);
  * args.cycle, when present, is a non-negative integer.

Stdlib only; exit 0 if the trace is valid, 1 otherwise with one line per
violation on stderr.

Usage: validate_trace.py TRACE.json [TRACE2.json ...]
"""

import json
import sys

REQUIRED = {"ph", "pid", "tid", "name"}


def validate(path):
    errors = []

    def err(i, msg):
        errors.append(f"{path}: event {i}: {msg}")

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not readable as JSON: {e}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing top-level 'traceEvents' array"]

    depth = {}    # (pid, tid) -> open-span count
    last_ts = {}  # (pid, tid) -> last timestamp seen
    counted = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            err(i, "not an object")
            continue
        missing = REQUIRED - e.keys()
        if missing:
            err(i, f"missing keys {sorted(missing)}")
            continue
        ph = e["ph"]
        if ph == "M":  # process_name / thread_name metadata
            continue
        if ph not in ("B", "E", "i"):
            err(i, f"unexpected phase {ph!r}")
            continue
        if "ts" not in e:
            err(i, "missing 'ts'")
            continue
        counted += 1
        track = (e["pid"], e["tid"])
        ts = e["ts"]
        if not isinstance(ts, int) or ts < 0:
            err(i, f"ts {ts!r} is not a non-negative integer")
            continue
        if track in last_ts and ts < last_ts[track]:
            err(i, f"ts regressed on track pid={track[0]} tid={track[1]}: "
                   f"{last_ts[track]} -> {ts}")
        last_ts[track] = ts
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            if depth.get(track, 0) <= 0:
                err(i, f"unmatched 'E' on track pid={track[0]} "
                       f"tid={track[1]}")
            else:
                depth[track] -= 1
        cycle = e.get("args", {}).get("cycle")
        if cycle is not None and (not isinstance(cycle, int) or cycle < 0):
            err(i, f"args.cycle {cycle!r} is not a non-negative integer")

    for (pid, tid), d in sorted(depth.items()):
        if d != 0:
            errors.append(
                f"{path}: {d} span(s) left open on track pid={pid} tid={tid}")
    if not errors:
        print(f"{path}: OK ({counted} events, {len(last_ts)} tracks)")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        errors.extend(validate(path))
    for line in errors:
        print(line, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
