// fasda_md — command-line MD driver over the engine registry (the repo's
// equivalent of the paper artifact's run.py).
//
//   fasda_md --engine cycle --space 4x4x4 --cells 2x2x2 --pes 3 --spes 2
//            --steps 10 --xyz /tmp/out.xyz
//
// --engine selects a back end by registry name; see the README's engine
// table for what each one computes.
//
// Common flags:
//   --space XYZ        global cells: 3-digit shorthand (444) or XxYxZ
//                      (12x4x4); default 333
//   --per-cell N       particles per cell (default 64)
//   --steps N          timesteps (default 10)
//   --dt FS            timestep in fs (default 2)
//   --temperature K    initial Maxwell-Boltzmann temperature (default 300)
//   --seed N           dataset seed
//   --forcefield F     na | nacl (nacl enables alternating placement)
//   --ewald            add the Ewald real-space electrostatic term
//   --sample N         print energy/temperature every N steps (default 10)
//   --xyz PATH         write an extended-XYZ trajectory at each sample
//   --threads N        reference/functional worker threads (default 1)
//   --restart PATH     load the initial state from a checkpoint instead of
//                      generating a dataset
//   --checkpoint PATH  save the final state for later --restart
// Cycle-engine flags:
//   --cells XYZ        cells per FPGA (default = --space: single node)
//   --pes N --spes N   strong-scaling variant (defaults 1, 1)
//   --workers N        cycle-scheduler threads (default 1; 0 = all cores)
//   --proc-workers N   run the shard slices in N forked worker processes
//                      over socketpairs instead of threads (DESIGN.md
//                      section 14; default 0 = in-process). Bitwise
//                      identical results; mutually exclusive with
//                      --workers > 1. A worker process dying mid-run
//                      surfaces as an unrecovered node failure (exit 3, or
//                      a supervised restart under --supervise).
//   --naive-tick       disable idle-cycle elision and tick every component
//                      every cycle (DESIGN.md section 13); bitwise
//                      identical results, slower wall clock. The
//                      FASDA_NAIVE_TICK env var does the same.
//   --faults SPEC      lossy-fabric model + ack/retransmit recovery
//                      (DESIGN.md section 10). SPEC is a comma list:
//                      drop=0.05,dup=0.02,reorder=0.02,corrupt=0.01,seed=7,
//                      dead=SRC-DST,dropk=SRC-DST-K, plus node faults
//                      crash=NODE-CYCLE, die=NODE-CYCLE (permanent),
//                      hang=NODE-CYCLE, stall=NODE-CYCLE-CYCLES. The
//                      trajectory stays bitwise identical to the fault-free
//                      run; an unrecovered dead link or dead node
//                      terminates with a typed error (exit codes below).
// Supervision flags (DESIGN.md section 11):
//   --supervise          run under supervisor::Supervisor: periodic
//                        checkpoints, rollback-and-replay on node/link
//                        failure, incident report at the end
//   --checkpoint-every N steps between rollback checkpoints (default:
//                        --sample)
//   --max-restarts N     engine rebuilds before giving up (default 3)
//   --allow-degraded     permit the re-shard onto surviving nodes when the
//                        same node dies twice (permanent death)
// Observability flags (DESIGN.md section 12):
//   --log-level L      debug | info | warn | error | off (default warn)
//   --trace-out FILE   write a Chrome trace_event JSON of the run (load at
//                      ui.perfetto.dev); written on every exit path,
//                      including after an unrecovered failure
//   --metrics-out FILE write the metrics-registry snapshot; a .prom
//                      extension selects Prometheus text, else JSON
//   --metrics-every N  rewrite --metrics-out every N samples (default 1)
//
// Exit codes: 0 = completed; 1 = usage/config error; 2 = unrecovered
// degraded link; 3 = unrecovered node failure; 4 = completed, but in
// degraded (re-sharded) mode after a permanent node death.

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "fasda/engine/batch_runner.hpp"
#include "fasda/engine/observers.hpp"
#include "fasda/engine/registry.hpp"
#include "fasda/md/checkpoint.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/obs/obs.hpp"
#include "fasda/supervisor/supervisor.hpp"
#include "fasda/sync/sync.hpp"
#include "fasda/util/cli.hpp"
#include "fasda/util/log.hpp"

namespace {

const char* incident_kind_name(fasda::supervisor::IncidentKind kind) {
  switch (kind) {
    case fasda::supervisor::IncidentKind::kNodeFailure: return "node-failure";
    case fasda::supervisor::IncidentKind::kDegradedLink: return "degraded-link";
    case fasda::supervisor::IncidentKind::kOther: return "other";
  }
  return "unknown";
}

void print_incidents(const fasda::supervisor::RunReport& report) {
  if (report.incidents.empty()) {
    std::printf("\nsupervision: no incidents\n");
    return;
  }
  std::printf("\nsupervision report: %zu incident(s), %d restart(s)%s\n",
              report.incidents.size(), report.restarts,
              report.degraded ? ", degraded topology" : "");
  int i = 0;
  for (const auto& inc : report.incidents) {
    std::printf("  #%d attempt %d: %s node %d%s%s at step %lld — %s%s\n", ++i,
                inc.attempt, incident_kind_name(inc.kind), inc.node,
                inc.phase.empty() ? "" : " in phase ",
                inc.phase.empty() ? "" : inc.phase.c_str(),
                inc.at_step, inc.recovered ? "recovered" : "unrecovered",
                inc.caused_reshard ? " (re-sharded)" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);

  if (auto level = cli.get("log-level")) {
    try {
      util::set_log_level(util::parse_log_level(*level));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  engine::EngineSpec spec;
  spec.engine = cli.get_or("engine", "functional");
  spec.dt = cli.get_or("dt", 2.0);
  spec.threads = static_cast<std::size_t>(cli.get_or("threads", 1L));
  spec.terms.ewald_real = cli.has("ewald");
  if (auto cells = cli.get("cells")) spec.cells_per_node = util::parse_dims(*cells);
  spec.pes_per_spe = static_cast<int>(cli.get_or("pes", 1L));
  spec.spes = static_cast<int>(cli.get_or("spes", 1L));
  spec.num_worker_threads = static_cast<int>(cli.get_or("workers", 1L));
  spec.proc_workers = static_cast<int>(cli.get_or("proc-workers", 0L));
  spec.naive_tick = cli.has("naive-tick");
  if (auto faults = cli.get("faults")) {
    try {
      spec.faults = net::FaultPlan::parse(*faults);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  const geom::IVec3 space = util::parse_dims(cli.get_or("space", "333"));
  const int per_cell = static_cast<int>(cli.get_or("per-cell", 64L));
  const int steps = static_cast<int>(cli.get_or("steps", 10L));
  const int sample = static_cast<int>(cli.get_or("sample", 10L));
  const std::string ff_name = cli.get_or("forcefield", "na");

  const md::ForceField ff = ff_name == "nacl" ? md::ForceField::sodium_chloride()
                                              : md::ForceField::sodium();

  md::SystemState state;
  if (auto restart = cli.get("restart")) {
    state = md::load_checkpoint(*restart);
    if (state.cell_dims != space) {
      std::fprintf(stderr, "restart: checkpoint is %dx%dx%d, --space says %dx%dx%d\n",
                   state.cell_dims.x, state.cell_dims.y, state.cell_dims.z,
                   space.x, space.y, space.z);
      return 1;
    }
  } else {
    md::DatasetParams params;
    params.particles_per_cell = per_cell;
    params.seed = static_cast<std::uint64_t>(cli.get_or("seed", 0x5eedL));
    params.temperature = cli.get_or("temperature", 300.0);
    if (ff_name == "nacl") params.elements = md::ElementAssignment::kAlternating;
    state = md::generate_dataset(space, 8.5, ff, params);
  }

  if (spec.faults && spec.engine != "cycle") {
    std::fprintf(stderr, "--faults models the inter-FPGA fabric; it only "
                         "applies to --engine cycle\n");
    return 1;
  }

  // Telemetry: one hub for the whole run; the spec plumbs it through every
  // layer of the cycle engine. flush_obs runs on every exit path once the
  // run started, so a crashed run still leaves a loadable trace behind.
  const auto trace_out = cli.get("trace-out");
  const auto metrics_out = cli.get("metrics-out");
  const int metrics_every = static_cast<int>(cli.get_or("metrics-every", 1L));
  obs::Hub hub;
  if (trace_out || metrics_out) spec.obs = &hub;
  auto flush_obs = [&] {
    if (trace_out && !obs::write_text_file(*trace_out,
                                           hub.trace().to_chrome_json())) {
      std::fprintf(stderr, "trace-out: cannot write %s\n", trace_out->c_str());
    }
    if (metrics_out) {
      const obs::MetricsSnapshot snap = hub.metrics().snapshot();
      const std::string& p = *metrics_out;
      const bool prom =
          p.size() >= 5 && p.compare(p.size() - 5, 5, ".prom") == 0;
      if (!obs::write_text_file(p, prom ? snap.to_prometheus()
                                        : snap.to_json())) {
        std::fprintf(stderr, "metrics-out: cannot write %s\n", p.c_str());
      }
    }
  };

  engine::EnergyTablePrinter table;
  std::optional<engine::XyzObserver> xyz;
  std::optional<engine::CheckpointObserver> checkpoint;
  std::optional<engine::MetricsObserver> metrics;
  std::vector<engine::StepObserver*> observers{&table};
  if (auto path = cli.get("xyz")) observers.push_back(&xyz.emplace(*path, ff));
  if (auto path = cli.get("checkpoint")) {
    observers.push_back(&checkpoint.emplace(*path));
  }
  if (metrics_out) {
    observers.push_back(&metrics.emplace(hub, *metrics_out, metrics_every));
  }

  if (cli.has("supervise")) {
    supervisor::SupervisorConfig scfg;
    scfg.checkpoint_every =
        static_cast<int>(cli.get_or("checkpoint-every", static_cast<long>(sample)));
    scfg.max_restarts = static_cast<int>(cli.get_or("max-restarts", 3L));
    scfg.allow_degraded = cli.has("allow-degraded");

    std::printf("fasda_md: %s engine (supervised), %zu particles (%dx%dx%d "
                "cells), %d steps\n",
                spec.engine.c_str(), state.size(), space.x, space.y, space.z,
                steps);

    supervisor::RunReport report;
    try {
      supervisor::Supervisor sup(state, ff, spec, scfg);
      report = sup.run(steps, observers);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    print_incidents(report);
    flush_obs();
    if (!report.completed) {
      std::fprintf(stderr, "\nsupervision gave up after %d restart(s): %s\n",
                   report.restarts, report.final_error.c_str());
      if (report.incidents.empty()) return 1;
      switch (report.incidents.back().kind) {
        case supervisor::IncidentKind::kDegradedLink: return 2;
        case supervisor::IncidentKind::kNodeFailure: return 3;
        case supervisor::IncidentKind::kOther: return 1;
      }
      return 1;
    }
    std::printf("completed %lld steps (%d checkpoint(s))\n", report.steps,
                report.checkpoints_taken);
    if (xyz) std::printf("trajectory: %d frames\n", xyz->frames_written());
    if (auto path = cli.get("checkpoint")) {
      std::printf("checkpoint: %s\n", path->c_str());
    }
    return report.degraded ? 4 : 0;
  }

  std::unique_ptr<engine::Engine> eng;
  try {
    eng = engine::Registry::instance().create(state, ff, spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::printf("fasda_md: %s engine, %zu particles (%dx%dx%d cells), %d steps\n",
              eng->name().c_str(), state.size(), space.x, space.y, space.z,
              steps);

  engine::RunResult result;
  try {
    result = engine::run(*eng, steps, sample, observers);
  } catch (const sync::DegradedLinkError& e) {
    std::fprintf(stderr, "\n%s\n", e.what());
    flush_obs();
    return 2;
  } catch (const sync::NodeFailureError& e) {
    std::fprintf(stderr, "\n%s\n", e.what());
    flush_obs();
    return 3;
  }
  flush_obs();

  std::printf("\nwall time: %.2f s (%.1f ms/step)\n", result.wall_seconds,
              1000.0 * result.wall_seconds / steps);
  std::printf("energy drift: %.3e (relative)\n",
              std::abs(result.final_energies.total - result.initial.total) /
                  std::abs(result.initial.total));

  const engine::StepMetrics& m = eng->metrics();
  if (m.has_cycle_counters) {
    std::printf("\ncycle-level counters:\n");
    std::printf("  total cycles        : %llu\n",
                static_cast<unsigned long long>(m.total_cycles));
    std::printf("  simulation rate     : %.2f us/day @ 200 MHz\n",
                m.microseconds_per_day);
    std::printf("  PE utilization      : %.0f%% hw, %.0f%% time\n",
                100 * m.pe_hardware_utilization, 100 * m.pe_time_utilization);
    std::printf("  packets (pos/frc)   : %llu / %llu\n",
                static_cast<unsigned long long>(m.position_packets),
                static_cast<unsigned long long>(m.force_packets));
  }
  if (spec.faults) {
    if (auto* cyc = dynamic_cast<const engine::CycleEngine*>(eng.get())) {
      const net::LinkStats r = cyc->simulation().traffic().reliability_total;
      std::printf("\nfabric reliability (all channels):\n");
      std::printf("  injected faults     : %llu drop, %llu dup, %llu reorder, "
                  "%llu corrupt\n",
                  static_cast<unsigned long long>(r.injected_drops),
                  static_cast<unsigned long long>(r.injected_dups),
                  static_cast<unsigned long long>(r.injected_reorders),
                  static_cast<unsigned long long>(r.injected_corrupts));
      std::printf("  retransmits         : %llu (%llu timeouts, max retry "
                  "depth %d)\n",
                  static_cast<unsigned long long>(r.retransmits),
                  static_cast<unsigned long long>(r.timeouts),
                  r.max_retry_depth);
      std::printf("  receiver            : %llu CRC failures, %llu duplicates "
                  "discarded\n",
                  static_cast<unsigned long long>(r.crc_failures),
                  static_cast<unsigned long long>(r.duplicates_discarded));
      std::printf("  control traffic     : %llu acks, %llu nacks\n",
                  static_cast<unsigned long long>(r.acks_sent),
                  static_cast<unsigned long long>(r.nacks_sent));
      std::printf("  recovery cycles     : %llu\n",
                  static_cast<unsigned long long>(r.recovery_cycles));
    }
  }
  if (xyz) std::printf("trajectory: %d frames\n", xyz->frames_written());
  if (auto path = cli.get("checkpoint")) {
    std::printf("checkpoint: %s\n", path->c_str());
  }
  return 0;
}
