// fasda_md — command-line MD driver over the three engines (the repo's
// equivalent of the paper artifact's run.py).
//
//   fasda_md --engine cycle --space 444 --cells 222 --pes 3 --spes 2
//            --steps 10 --xyz /tmp/out.xyz
//
// Engines:
//   reference   double-precision multithreaded CPU engine (ground truth)
//   functional  exact FASDA hardware numerics, no timing (fast)
//   cycle       the full cycle-level cluster simulation (reports rate,
//               utilization and traffic like the AXI-Lite counters)
//
// Common flags:
//   --space XYZ        global cells, three digits (default 333)
//   --per-cell N       particles per cell (default 64)
//   --steps N          timesteps (default 10)
//   --dt FS            timestep in fs (default 2)
//   --temperature K    initial Maxwell-Boltzmann temperature (default 300)
//   --seed N           dataset seed
//   --forcefield F     na | nacl (nacl enables alternating placement)
//   --ewald            add the Ewald real-space electrostatic term
//   --sample N         print energy/temperature every N steps (default 10)
//   --xyz PATH         write an extended-XYZ trajectory at each sample
//   --threads N        reference/functional worker threads (default 1)
//   --restart PATH     load the initial state from a checkpoint instead of
//                      generating a dataset
//   --checkpoint PATH  save the final state for later --restart
// Cycle-engine flags:
//   --cells XYZ        cells per FPGA (default = --space: single node)
//   --pes N --spes N   strong-scaling variant (defaults 1, 1)

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "fasda/core/simulation.hpp"
#include "fasda/md/analysis.hpp"
#include "fasda/md/checkpoint.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/functional_engine.hpp"
#include "fasda/md/reference_engine.hpp"
#include "fasda/md/xyz_io.hpp"
#include "fasda/util/cli.hpp"
#include "fasda/util/stopwatch.hpp"

namespace {

using namespace fasda;

geom::IVec3 parse_dims(const std::string& s) {
  if (s.size() != 3) throw std::invalid_argument("dims must be 3 digits");
  return {s[0] - '0', s[1] - '0', s[2] - '0'};
}

/// Uniform stepping interface over the three engines.
class Runner {
 public:
  virtual ~Runner() = default;
  virtual void step(int n) = 0;
  virtual md::SystemState state() const = 0;
  virtual void report_extra() const {}
};

class ReferenceRunner : public Runner {
 public:
  ReferenceRunner(const md::SystemState& s, const md::ForceField& ff, double dt,
                  std::size_t threads, md::ForceTerms terms)
      : engine_(s, ff, s.cell_size, dt, threads, terms) {}
  void step(int n) override { engine_.step(n); }
  md::SystemState state() const override { return engine_.state(); }

 private:
  md::ReferenceEngine engine_;
};

class FunctionalRunner : public Runner {
 public:
  FunctionalRunner(const md::SystemState& s, const md::ForceField& ff,
                   double dt, std::size_t threads, md::ForceTerms terms)
      : engine_(s, ff,
                [&] {
                  md::FunctionalConfig c;
                  c.cutoff = s.cell_size;
                  c.dt = dt;
                  c.threads = threads;
                  c.terms = terms;
                  return c;
                }()) {}
  void step(int n) override { engine_.step(n); }
  md::SystemState state() const override { return engine_.state(); }

 private:
  md::FunctionalEngine engine_;
};

class CycleRunner : public Runner {
 public:
  CycleRunner(const md::SystemState& s, const md::ForceField& ff,
              const core::ClusterConfig& config)
      : sim_(s, ff, config) {}
  void step(int n) override { sim_.run(n); }
  md::SystemState state() const override { return sim_.state(); }
  void report_extra() const override {
    const auto u = sim_.utilization();
    const auto t = sim_.traffic();
    std::printf("\ncycle-level counters:\n");
    std::printf("  total cycles        : %llu\n",
                static_cast<unsigned long long>(sim_.total_cycles()));
    std::printf("  simulation rate     : %.2f us/day @ 200 MHz\n",
                sim_.microseconds_per_day());
    std::printf("  PE utilization      : %.0f%% hw, %.0f%% time\n",
                100 * u.pe_hardware, 100 * u.pe_time);
    std::printf("  packets (pos/frc)   : %llu / %llu\n",
                static_cast<unsigned long long>(t.positions.total_packets),
                static_cast<unsigned long long>(t.forces.total_packets));
  }

 private:
  core::Simulation sim_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);

  const std::string engine_name = cli.get_or("engine", "functional");
  const geom::IVec3 space = parse_dims(cli.get_or("space", "333"));
  const int per_cell = static_cast<int>(cli.get_or("per-cell", 64L));
  const int steps = static_cast<int>(cli.get_or("steps", 10L));
  const double dt = cli.get_or("dt", 2.0);
  const int sample = static_cast<int>(cli.get_or("sample", 10L));
  const auto threads = static_cast<std::size_t>(cli.get_or("threads", 1L));
  const std::string ff_name = cli.get_or("forcefield", "na");

  const md::ForceField ff = ff_name == "nacl" ? md::ForceField::sodium_chloride()
                                              : md::ForceField::sodium();
  md::ForceTerms terms;
  terms.ewald_real = cli.has("ewald");

  md::SystemState state;
  if (auto restart = cli.get("restart")) {
    state = md::load_checkpoint(*restart);
    if (state.cell_dims != space) {
      std::fprintf(stderr, "restart: checkpoint is %dx%dx%d, --space says %dx%dx%d\n",
                   state.cell_dims.x, state.cell_dims.y, state.cell_dims.z,
                   space.x, space.y, space.z);
      return 1;
    }
  } else {
    md::DatasetParams params;
    params.particles_per_cell = per_cell;
    params.seed = static_cast<std::uint64_t>(cli.get_or("seed", 0x5eedL));
    params.temperature = cli.get_or("temperature", 300.0);
    if (ff_name == "nacl") params.elements = md::ElementAssignment::kAlternating;
    state = md::generate_dataset(space, 8.5, ff, params);
  }

  std::unique_ptr<Runner> runner;
  if (engine_name == "reference") {
    runner = std::make_unique<ReferenceRunner>(state, ff, dt, threads, terms);
  } else if (engine_name == "functional") {
    runner = std::make_unique<FunctionalRunner>(state, ff, dt, threads, terms);
  } else if (engine_name == "cycle") {
    core::ClusterConfig config;
    config.cells_per_node = parse_dims(
        cli.get_or("cells", cli.get_or("space", "333")));
    config.node_dims = {space.x / config.cells_per_node.x,
                        space.y / config.cells_per_node.y,
                        space.z / config.cells_per_node.z};
    config.pes_per_spe = static_cast<int>(cli.get_or("pes", 1L));
    config.spes = static_cast<int>(cli.get_or("spes", 1L));
    config.dt = dt;
    config.terms = terms;
    runner = std::make_unique<CycleRunner>(state, ff, config);
  } else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 1;
  }

  std::optional<md::XyzWriter> xyz;
  if (auto path = cli.get("xyz")) xyz.emplace(*path, ff);

  std::printf("fasda_md: %s engine, %zu particles (%dx%dx%d cells), %d steps\n",
              engine_name.c_str(), state.size(), space.x, space.y, space.z,
              steps);
  const double e0 =
      md::compute_potential_energy(state, ff, state.cell_size, terms) +
      md::kinetic_energy(state, ff);
  std::printf("%8s %16s %10s\n", "step", "E total", "T (K)");
  std::printf("%8d %16.8g %10.1f\n", 0, e0, md::temperature(state, ff));

  util::Stopwatch wall;
  for (int done = 0; done < steps;) {
    const int block = std::min(sample, steps - done);
    runner->step(block);
    done += block;
    const auto snapshot = runner->state();
    const double e =
        md::compute_potential_energy(snapshot, ff, snapshot.cell_size, terms) +
        md::kinetic_energy(snapshot, ff);
    std::printf("%8d %16.8g %10.1f\n", done, e, md::temperature(snapshot, ff));
    if (xyz) xyz->write(snapshot, "step=" + std::to_string(done));
  }
  std::printf("\nwall time: %.2f s (%.1f ms/step)\n", wall.seconds(),
              1000.0 * wall.seconds() / steps);
  std::printf("energy drift: %.3e (relative)\n",
              std::abs((md::compute_potential_energy(runner->state(), ff,
                                                     state.cell_size, terms) +
                        md::kinetic_energy(runner->state(), ff)) -
                       e0) /
                  std::abs(e0));
  runner->report_extra();
  if (xyz) std::printf("trajectory: %d frames\n", xyz->frames_written());
  if (auto checkpoint = cli.get("checkpoint")) {
    md::save_checkpoint(*checkpoint, runner->state());
    std::printf("checkpoint: %s\n", checkpoint->c_str());
  }
  return 0;
}
