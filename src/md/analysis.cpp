#include "fasda/md/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fasda/md/units.hpp"

namespace fasda::md {

double temperature(const SystemState& state, const ForceField& ff) {
  if (state.size() == 0) return 0.0;
  const double ke = kinetic_energy(state, ff);
  return 2.0 * ke /
         (3.0 * static_cast<double>(state.size()) * units::kBoltzmann);
}

void rescale_to_temperature(SystemState& state, const ForceField& ff,
                            double target_k) {
  const double current = temperature(state, ff);
  if (current <= 0.0) return;
  const double factor = std::sqrt(target_k / current);
  for (auto& v : state.velocities) v *= factor;
}

RdfResult radial_distribution(const SystemState& state, double r_max, int bins,
                              int elem_a, int elem_b) {
  const geom::CellGrid grid = state.grid();
  const geom::Vec3d box = grid.box();
  const double half_min_edge = 0.5 * std::min({box.x, box.y, box.z});
  if (r_max > half_min_edge + 1e-9) {
    throw std::invalid_argument(
        "radial_distribution: r_max exceeds half the shortest box edge");
  }
  if (bins < 1) throw std::invalid_argument("radial_distribution: bins < 1");

  RdfResult out;
  out.bin_width = r_max / bins;
  out.count.assign(static_cast<std::size_t>(bins), 0);
  out.g.assign(static_cast<std::size_t>(bins), 0.0);

  auto matches = [](int want, ElementId e) {
    return want < 0 || static_cast<int>(e) == want;
  };

  std::size_t n_a = 0, n_b = 0;
  for (const auto e : state.elements) {
    if (matches(elem_a, e)) ++n_a;
    if (matches(elem_b, e)) ++n_b;
  }

  const double r_max2 = r_max * r_max;
  for (std::size_t i = 0; i < state.size(); ++i) {
    for (std::size_t j = 0; j < state.size(); ++j) {
      if (i == j) continue;
      if (!matches(elem_a, state.elements[i])) continue;
      if (!matches(elem_b, state.elements[j])) continue;
      const double r2 =
          grid.min_image(state.positions[i], state.positions[j]).norm2();
      if (r2 >= r_max2) continue;
      const auto bin = static_cast<std::size_t>(std::sqrt(r2) / out.bin_width);
      if (bin < out.count.size()) out.count[bin]++;
    }
  }

  // Normalize against the ideal-gas expectation for the b-species density.
  const double volume = box.x * box.y * box.z;
  const double rho_b = static_cast<double>(n_b) / volume;
  for (int b = 0; b < bins; ++b) {
    const double r0 = b * out.bin_width;
    const double r1 = r0 + out.bin_width;
    const double shell =
        4.0 / 3.0 * std::numbers::pi * (r1 * r1 * r1 - r0 * r0 * r0);
    const double expected = static_cast<double>(n_a) * rho_b * shell;
    out.g[static_cast<std::size_t>(b)] =
        expected > 0.0 ? static_cast<double>(out.count[b]) / expected : 0.0;
  }
  return out;
}

MsdTracker::MsdTracker(const SystemState& initial)
    : grid_(initial.cell_dims, initial.cell_size),
      reference_(initial.positions),
      previous_(initial.positions),
      unwrapped_(initial.positions) {}

double MsdTracker::update(const SystemState& state) {
  if (state.size() != reference_.size()) {
    throw std::invalid_argument("MsdTracker: particle count changed");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    // Minimum-image step from the previous wrapped position accumulates
    // into the unwrapped trajectory.
    unwrapped_[i] += grid_.min_image(previous_[i], state.positions[i]);
    previous_[i] = state.positions[i];
    total += (unwrapped_[i] - reference_[i]).norm2();
  }
  const double msd = total / static_cast<double>(state.size());
  history_.push_back(msd);
  return msd;
}

}  // namespace fasda::md
