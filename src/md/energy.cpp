#include "fasda/md/energy.hpp"

#include <algorithm>
#include <cmath>

namespace fasda::md {

namespace {

/// Calls visit(i, j, r2) for every unordered pair within the cutoff. Works
/// for any cell-size/cutoff ratio: the neighbour reach is ceil(cutoff /
/// cell_size) cells; when the periodic box is too small for that reach to
/// be unambiguous, it falls back to the O(N²) all-pairs loop.
template <class Visitor>
void for_each_pair(const SystemState& state, double cutoff, Visitor&& visit) {
  const geom::CellGrid grid = state.grid();
  const double cutoff2 = cutoff * cutoff;

  const int reach =
      static_cast<int>(std::ceil(cutoff / state.cell_size - 1e-12));
  const geom::IVec3 dims = grid.dims();
  if (2 * reach + 1 > std::min({dims.x, dims.y, dims.z})) {
    for (std::uint32_t i = 0; i < state.size(); ++i) {
      for (std::uint32_t j = i + 1; j < state.size(); ++j) {
        const double r2 =
            grid.min_image(state.positions[j], state.positions[i]).norm2();
        if (r2 < cutoff2) visit(i, j, r2);
      }
    }
    return;
  }

  std::vector<std::vector<std::uint32_t>> cells(grid.num_cells());
  for (std::size_t i = 0; i < state.size(); ++i) {
    cells[grid.cid(grid.cell_of(state.positions[i]))].push_back(
        static_cast<std::uint32_t>(i));
  }

  // Forward half-space offsets up to `reach` (lexicographic-positive), the
  // generalization of the 13-cell half shell.
  std::vector<geom::IVec3> offsets;
  for (int dx = -reach; dx <= reach; ++dx) {
    for (int dy = -reach; dy <= reach; ++dy) {
      for (int dz = -reach; dz <= reach; ++dz) {
        const geom::IVec3 d{dx, dy, dz};
        if (d == geom::IVec3{0, 0, 0}) continue;
        if (geom::is_forward_offset(d)) offsets.push_back(d);
      }
    }
  }

  for (int cell = 0; cell < grid.num_cells(); ++cell) {
    const auto& home = cells[cell];
    const geom::IVec3 hc = grid.coords(cell);
    for (std::size_t a = 0; a < home.size(); ++a) {
      for (std::size_t b = a + 1; b < home.size(); ++b) {
        const double r2 = grid.min_image(state.positions[home[b]],
                                         state.positions[home[a]])
                              .norm2();
        if (r2 < cutoff2) visit(home[a], home[b], r2);
      }
    }
    for (const geom::IVec3& d : offsets) {
      const auto& nbr = cells[grid.cid(grid.wrap(hc + d))];
      for (const std::uint32_t i : home) {
        for (const std::uint32_t j : nbr) {
          const double r2 =
              grid.min_image(state.positions[j], state.positions[i]).norm2();
          if (r2 < cutoff2) visit(i, j, r2);
        }
      }
    }
  }
}

}  // namespace

double compute_potential_energy(const SystemState& state, const ForceField& ff,
                                double cutoff, const ForceTerms& terms) {
  double pe = 0.0;
  for_each_pair(state, cutoff, [&](std::uint32_t i, std::uint32_t j, double r2) {
    pe += ff.pair_energy(r2, state.elements[i], state.elements[j], terms);
  });
  return pe;
}

std::vector<geom::Vec3d> compute_forces(const SystemState& state,
                                        const ForceField& ff, double cutoff,
                                        const ForceTerms& terms) {
  std::vector<geom::Vec3d> forces(state.size());
  const geom::CellGrid grid = state.grid();
  for_each_pair(state, cutoff, [&](std::uint32_t i, std::uint32_t j, double) {
    const geom::Vec3d dr =
        grid.min_image(state.positions[j], state.positions[i]);
    const geom::Vec3d fij =
        ff.pair_force(dr, state.elements[i], state.elements[j], terms);
    forces[i] += fij;
    forces[j] -= fij;
  });
  return forces;
}

std::size_t count_pairs_within_cutoff(const SystemState& state, double cutoff) {
  std::size_t n = 0;
  for_each_pair(state, cutoff, [&](std::uint32_t, std::uint32_t, double) { ++n; });
  return n;
}

}  // namespace fasda::md
