#include "fasda/md/ewald_longrange.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fasda::md {

namespace {

/// Precomputed per-particle phase factors e^(i·2π·n·x/L) for n in
/// [-kmax, kmax], built by repeated multiplication (one sincos per
/// particle per axis).
struct PhaseTable {
  PhaseTable(std::size_t particles, int kmax)
      : kmax_(kmax), stride_(2 * kmax + 1), data_(particles * stride_) {}

  std::complex<double>& at(std::size_t i, int n) {
    return data_[i * stride_ + (n + kmax_)];
  }
  const std::complex<double>& at(std::size_t i, int n) const {
    return data_[i * stride_ + (n + kmax_)];
  }

  void fill(const std::vector<geom::Vec3d>& positions, double box,
            double geom::Vec3d::*axis) {
    const double step = 2.0 * std::numbers::pi / box;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const double phase = step * (positions[i].*axis);
      const std::complex<double> unit(std::cos(phase), std::sin(phase));
      at(i, 0) = 1.0;
      for (int n = 1; n <= kmax_; ++n) {
        at(i, n) = at(i, n - 1) * unit;
        at(i, -n) = std::conj(at(i, n));
      }
    }
  }

  int kmax_;
  std::size_t stride_;
  std::vector<std::complex<double>> data_;
};

}  // namespace

EwaldLongRange::EwaldLongRange(const ForceField& ff, double beta, int kmax)
    : ff_(ff), beta_(beta), kmax_(kmax) {
  if (beta <= 0.0 || kmax < 1) {
    throw std::invalid_argument("EwaldLongRange: beta > 0 and kmax >= 1");
  }
}

double EwaldLongRange::energy(const SystemState& state) const {
  const geom::Vec3d box = state.grid().box();
  const double volume = box.x * box.y * box.z;
  const std::size_t n = state.size();

  PhaseTable px(n, kmax_), py(n, kmax_), pz(n, kmax_);
  px.fill(state.positions, box.x, &geom::Vec3d::x);
  py.fill(state.positions, box.y, &geom::Vec3d::y);
  pz.fill(state.positions, box.z, &geom::Vec3d::z);

  const double two_pi = 2.0 * std::numbers::pi;
  double recip = 0.0;
  double total_charge = 0.0;
  double charge2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double q = ff_.element(state.elements[i]).charge;
    total_charge += q;
    charge2 += q * q;
  }

  for (int kx = -kmax_; kx <= kmax_; ++kx) {
    for (int ky = -kmax_; ky <= kmax_; ++ky) {
      for (int kz = -kmax_; kz <= kmax_; ++kz) {
        if (kx == 0 && ky == 0 && kz == 0) continue;
        const geom::Vec3d k{two_pi * kx / box.x, two_pi * ky / box.y,
                            two_pi * kz / box.z};
        const double k2 = k.norm2();
        const double weight = std::exp(-k2 / (4.0 * beta_ * beta_)) / k2;
        std::complex<double> s{};
        for (std::size_t i = 0; i < n; ++i) {
          const double q = ff_.element(state.elements[i]).charge;
          s += q * px.at(i, kx) * py.at(i, ky) * pz.at(i, kz);
        }
        recip += weight * std::norm(s);
      }
    }
  }
  recip *= kCoulomb * two_pi / volume;

  const double self =
      -kCoulomb * beta_ / std::sqrt(std::numbers::pi) * charge2;
  // Neutralizing background for non-neutral systems (zero when Σq = 0).
  const double background = -kCoulomb * std::numbers::pi /
                            (2.0 * volume * beta_ * beta_) * total_charge *
                            total_charge;
  return recip + self + background;
}

std::vector<geom::Vec3d> EwaldLongRange::forces(const SystemState& state) const {
  const geom::Vec3d box = state.grid().box();
  const double volume = box.x * box.y * box.z;
  const std::size_t n = state.size();

  PhaseTable px(n, kmax_), py(n, kmax_), pz(n, kmax_);
  px.fill(state.positions, box.x, &geom::Vec3d::x);
  py.fill(state.positions, box.y, &geom::Vec3d::y);
  pz.fill(state.positions, box.z, &geom::Vec3d::z);

  const double two_pi = 2.0 * std::numbers::pi;
  std::vector<geom::Vec3d> out(n);

  for (int kx = -kmax_; kx <= kmax_; ++kx) {
    for (int ky = -kmax_; ky <= kmax_; ++ky) {
      for (int kz = -kmax_; kz <= kmax_; ++kz) {
        if (kx == 0 && ky == 0 && kz == 0) continue;
        const geom::Vec3d k{two_pi * kx / box.x, two_pi * ky / box.y,
                            two_pi * kz / box.z};
        const double k2 = k.norm2();
        const double weight = std::exp(-k2 / (4.0 * beta_ * beta_)) / k2;
        std::complex<double> s{};
        for (std::size_t i = 0; i < n; ++i) {
          const double q = ff_.element(state.elements[i]).charge;
          s += q * px.at(i, kx) * py.at(i, ky) * pz.at(i, kz);
        }
        // F_i = −∂E/∂r_i = −k_e (4π/V) q_i k · weight ·
        //       Im[conj(e^{i k r_i}) S(k)].
        const double prefactor = kCoulomb * 2.0 * two_pi / volume * weight;
        for (std::size_t i = 0; i < n; ++i) {
          const double q = ff_.element(state.elements[i]).charge;
          const std::complex<double> phase =
              px.at(i, kx) * py.at(i, ky) * pz.at(i, kz);
          const double im = std::imag(std::conj(phase) * s);
          out[i] -= k * (prefactor * q * im);
        }
      }
    }
  }
  return out;
}

}  // namespace fasda::md
