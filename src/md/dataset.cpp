#include "fasda/md/dataset.hpp"

#include <cmath>
#include <stdexcept>

#include "fasda/fixed/fixed_point.hpp"
#include "fasda/md/units.hpp"
#include "fasda/util/rng.hpp"

namespace fasda::md {

namespace {

/// Quantizes an in-cell fractional coordinate to the fixed-point grid the
/// hardware stores, then maps back to an absolute coordinate.
double quantize_frac(double frac01) {
  const auto fc = fixed::FixedCoord::from_cell_offset(1, frac01);
  return fc.frac();
}

}  // namespace

SystemState generate_dataset(geom::IVec3 cell_dims, double cell_size,
                             const ForceField& ff, const DatasetParams& params) {
  if (ff.num_elements() == 0) {
    throw std::invalid_argument("generate_dataset: force field has no elements");
  }
  if (params.particles_per_cell < 1) {
    throw std::invalid_argument("generate_dataset: particles_per_cell must be >= 1");
  }
  const geom::CellGrid grid(cell_dims, cell_size);

  SystemState state;
  state.cell_dims = cell_dims;
  state.cell_size = cell_size;
  const std::size_t total =
      static_cast<std::size_t>(grid.num_cells()) * params.particles_per_cell;
  state.positions.reserve(total);
  state.velocities.reserve(total);
  state.elements.reserve(total);

  util::Xoshiro256 rng(params.seed);

  if (params.placement == Placement::kJitteredLattice) {
    // Per-cell jittered sublattice (see header for why not rejection
    // sampling at the paper's density).
    const int k = static_cast<int>(
        std::ceil(std::cbrt(static_cast<double>(params.particles_per_cell))));
    const double spacing = 1.0 / k;  // in cell units
    const double jitter_frac = params.jitter / cell_size;

    for (int cx = 0; cx < cell_dims.x; ++cx) {
      for (int cy = 0; cy < cell_dims.y; ++cy) {
        for (int cz = 0; cz < cell_dims.z; ++cz) {
          int placed = 0;
          for (int ix = 0; ix < k && placed < params.particles_per_cell; ++ix) {
            for (int iy = 0; iy < k && placed < params.particles_per_cell; ++iy) {
              for (int iz = 0; iz < k && placed < params.particles_per_cell;
                   ++iz) {
                auto site = [&](int i) {
                  double f = (i + 0.5) * spacing +
                             rng.uniform(-jitter_frac, jitter_frac);
                  if (f < 0.0) f += 1.0;
                  if (f >= 1.0) f -= 1.0;
                  return quantize_frac(f);
                };
                const double fx = site(ix);
                const double fy = site(iy);
                const double fz = site(iz);
                state.positions.push_back({(cx + fx) * cell_size,
                                           (cy + fy) * cell_size,
                                           (cz + fz) * cell_size});
                // Alternating = checkerboard over the sublattice, so unlike
                // elements are nearest neighbours in every direction (the
                // rock-salt motif for two ±q species).
                state.elements.push_back(
                    params.elements == ElementAssignment::kAlternating
                        ? static_cast<ElementId>(
                              static_cast<std::size_t>(ix + iy + iz) %
                              ff.num_elements())
                        : static_cast<ElementId>(rng.below(ff.num_elements())));
                ++placed;
              }
            }
          }
        }
      }
    }
  } else {
    // Uniform rejection sampling against all previously placed particles.
    const double min_d2 = params.min_distance * params.min_distance;
    for (int cx = 0; cx < cell_dims.x; ++cx) {
      for (int cy = 0; cy < cell_dims.y; ++cy) {
        for (int cz = 0; cz < cell_dims.z; ++cz) {
          for (int p = 0; p < params.particles_per_cell; ++p) {
            bool placed = false;
            for (int attempt = 0; attempt < 10000 && !placed; ++attempt) {
              const geom::Vec3d candidate{
                  (cx + quantize_frac(rng.uniform())) * cell_size,
                  (cy + quantize_frac(rng.uniform())) * cell_size,
                  (cz + quantize_frac(rng.uniform())) * cell_size};
              bool ok = true;
              for (const auto& q : state.positions) {
                if (grid.min_image(q, candidate).norm2() < min_d2) {
                  ok = false;
                  break;
                }
              }
              if (ok) {
                state.positions.push_back(candidate);
                state.elements.push_back(
                    params.elements == ElementAssignment::kAlternating
                        ? static_cast<ElementId>((state.elements.size()) %
                                                 ff.num_elements())
                        : static_cast<ElementId>(rng.below(ff.num_elements())));
                placed = true;
              }
            }
            if (!placed) {
              throw std::runtime_error(
                  "generate_dataset: uniform placement jammed; lower the "
                  "density or min_distance, or use the jittered lattice");
            }
          }
        }
      }
    }
  }

  // Maxwell-Boltzmann velocities: each component ~ N(0, sqrt(kT/m)).
  geom::Vec3d momentum{};
  double total_mass = 0.0;
  for (std::size_t i = 0; i < state.positions.size(); ++i) {
    const double m = ff.element(state.elements[i]).mass;
    const double sd = std::sqrt(units::kBoltzmann * params.temperature / m);
    geom::Vec3d v{sd * rng.normal(), sd * rng.normal(), sd * rng.normal()};
    state.velocities.push_back(v);
    momentum += v * m;
    total_mass += m;
  }
  if (params.zero_net_momentum && !state.velocities.empty()) {
    const geom::Vec3d drift = momentum / total_mass;
    for (auto& v : state.velocities) v -= drift;
  }
  return state;
}

}  // namespace fasda::md
