#include "fasda/md/xyz_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fasda::md {

void write_xyz_frame(std::ostream& out, const SystemState& state,
                     const ForceField& ff, const std::string& comment_extra) {
  out << state.size() << '\n';
  const geom::Vec3d box = state.grid().box();
  out << "box=\"" << box.x << ' ' << box.y << ' ' << box.z << "\" cells=\""
      << state.cell_dims.x << ' ' << state.cell_dims.y << ' '
      << state.cell_dims.z << '"';
  if (!comment_extra.empty()) out << ' ' << comment_extra;
  out << '\n';
  for (std::size_t i = 0; i < state.size(); ++i) {
    const auto& p = state.positions[i];
    out << ff.element(state.elements[i]).name << ' ' << p.x << ' ' << p.y
        << ' ' << p.z << '\n';
  }
}

struct XyzWriter::Impl {
  std::ofstream out;
};

XyzWriter::XyzWriter(std::string path, const ForceField& ff)
    : impl_(new Impl{std::ofstream(path)}), ff_(ff) {
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("XyzWriter: cannot open " + path);
  }
}

XyzWriter::~XyzWriter() { delete impl_; }

void XyzWriter::write(const SystemState& state, const std::string& extra) {
  write_xyz_frame(impl_->out, state, ff_, extra);
  impl_->out.flush();
  ++frames_;
}

bool read_xyz_frame(std::istream& in, const ForceField& ff, SystemState& state) {
  std::size_t count = 0;
  if (!(in >> count)) return false;
  std::string line;
  std::getline(in, line);  // rest of the count line
  std::getline(in, line);  // comment

  // Parse cells="cx cy cz" and box="bx by bz" from our own comment format.
  auto parse_triplet = [&line](const std::string& key, double* out3) {
    const auto pos = line.find(key + "=\"");
    if (pos == std::string::npos) return false;
    std::istringstream iss(line.substr(pos + key.size() + 2));
    return static_cast<bool>(iss >> out3[0] >> out3[1] >> out3[2]);
  };
  double box[3] = {0, 0, 0}, cells[3] = {0, 0, 0};
  if (parse_triplet("cells", cells) && parse_triplet("box", box)) {
    state.cell_dims = {static_cast<int>(cells[0]), static_cast<int>(cells[1]),
                       static_cast<int>(cells[2])};
    state.cell_size = cells[0] > 0 ? box[0] / cells[0] : 0.0;
  }

  state.positions.assign(count, {});
  state.velocities.assign(count, {});
  state.elements.assign(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    geom::Vec3d p;
    if (!(in >> name >> p.x >> p.y >> p.z)) {
      throw std::runtime_error("read_xyz_frame: truncated frame");
    }
    state.positions[i] = p;
    bool found = false;
    for (ElementId e = 0; e < ff.num_elements(); ++e) {
      if (ff.element(e).name == name) {
        state.elements[i] = e;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("read_xyz_frame: unknown element " + name);
    }
  }
  std::getline(in, line);  // consume the trailing newline
  return true;
}

}  // namespace fasda::md
