#include "fasda/md/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "fasda/util/crc32.hpp"

namespace fasda::md {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'S', 'D', 'A', 'C', 'K', 'P'};
// Version 2 appends a CRC-32 footer over everything after the version field,
// so a torn or bit-flipped file fails loudly instead of restarting a run
// from garbage. Version-1 files (no footer) still load.
constexpr std::uint32_t kVersion = 2;

/// Streams PODs while folding the same bytes into a running CRC, so the
/// footer check needs no buffering and covers every payload field.
struct HashingWriter {
  std::ostream& out;
  util::Crc32 crc;

  template <class T>
  void pod(const T& value) {
    bytes(&value, sizeof(T));
  }
  void bytes(const void* data, std::size_t n) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    crc.add_bytes(data, n);
  }
};

struct HashingReader {
  std::istream& in;
  util::Crc32 crc;

  template <class T>
  void pod(T& value) {
    bytes(&value, sizeof(T));
  }
  void bytes(void* data, std::size_t n) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in) throw std::runtime_error("checkpoint: truncated stream");
    crc.add_bytes(data, n);
  }
};

template <class T>
void read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated stream");
}

}  // namespace

void save_checkpoint(std::ostream& out, const SystemState& state) {
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  HashingWriter w{out, {}};
  w.pod(state.cell_dims.x);
  w.pod(state.cell_dims.y);
  w.pod(state.cell_dims.z);
  w.pod(state.cell_size);
  const auto count = static_cast<std::uint64_t>(state.size());
  w.pod(count);
  for (const auto& p : state.positions) {
    w.pod(p.x);
    w.pod(p.y);
    w.pod(p.z);
  }
  for (const auto& v : state.velocities) {
    w.pod(v.x);
    w.pod(v.y);
    w.pod(v.z);
  }
  w.bytes(state.elements.data(), state.elements.size());
  const std::uint32_t footer = w.crc.value();
  out.write(reinterpret_cast<const char*>(&footer), sizeof(footer));
}

void save_checkpoint(const std::string& path, const SystemState& state) {
  // Write-to-temp then atomic rename: a crash mid-write leaves the previous
  // checkpoint intact instead of a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open " + tmp);
    save_checkpoint(out, state);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path);
  }
}

SystemState load_checkpoint(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (version != 1 && version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  HashingReader r{in, {}};
  SystemState state;
  r.pod(state.cell_dims.x);
  r.pod(state.cell_dims.y);
  r.pod(state.cell_dims.z);
  r.pod(state.cell_size);
  std::uint64_t count = 0;
  r.pod(count);
  state.positions.resize(count);
  state.velocities.resize(count);
  state.elements.resize(count);
  for (auto& p : state.positions) {
    r.pod(p.x);
    r.pod(p.y);
    r.pod(p.z);
  }
  for (auto& v : state.velocities) {
    r.pod(v.x);
    r.pod(v.y);
    r.pod(v.z);
  }
  r.bytes(state.elements.data(), count);
  if (version >= 2) {
    std::uint32_t footer = 0;
    read_pod(in, footer);
    if (footer != r.crc.value()) {
      throw std::runtime_error(
          "checkpoint: CRC mismatch — the file is torn or corrupt; restore "
          "from the previous checkpoint");
    }
  }
  return state;
}

SystemState load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  return load_checkpoint(in);
}

}  // namespace fasda::md
