#include "fasda/md/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fasda::md {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'S', 'D', 'A', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
void read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated stream");
}

}  // namespace

void save_checkpoint(std::ostream& out, const SystemState& state) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, state.cell_dims.x);
  write_pod(out, state.cell_dims.y);
  write_pod(out, state.cell_dims.z);
  write_pod(out, state.cell_size);
  const auto count = static_cast<std::uint64_t>(state.size());
  write_pod(out, count);
  for (const auto& p : state.positions) {
    write_pod(out, p.x);
    write_pod(out, p.y);
    write_pod(out, p.z);
  }
  for (const auto& v : state.velocities) {
    write_pod(out, v.x);
    write_pod(out, v.y);
    write_pod(out, v.z);
  }
  out.write(reinterpret_cast<const char*>(state.elements.data()),
            static_cast<std::streamsize>(state.elements.size()));
}

void save_checkpoint(const std::string& path, const SystemState& state) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  save_checkpoint(out, state);
}

SystemState load_checkpoint(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  SystemState state;
  read_pod(in, state.cell_dims.x);
  read_pod(in, state.cell_dims.y);
  read_pod(in, state.cell_dims.z);
  read_pod(in, state.cell_size);
  std::uint64_t count = 0;
  read_pod(in, count);
  state.positions.resize(count);
  state.velocities.resize(count);
  state.elements.resize(count);
  for (auto& p : state.positions) {
    read_pod(in, p.x);
    read_pod(in, p.y);
    read_pod(in, p.z);
  }
  for (auto& v : state.velocities) {
    read_pod(in, v.x);
    read_pod(in, v.y);
    read_pod(in, v.z);
  }
  in.read(reinterpret_cast<char*>(state.elements.data()),
          static_cast<std::streamsize>(count));
  if (!in) throw std::runtime_error("checkpoint: truncated stream");
  return state;
}

SystemState load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  return load_checkpoint(in);
}

}  // namespace fasda::md
