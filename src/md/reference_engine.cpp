#include "fasda/md/reference_engine.hpp"

#include <algorithm>
#include <cmath>

namespace fasda::md {

ReferenceEngine::ReferenceEngine(SystemState state, ForceField ff, double cutoff,
                                 double dt, std::size_t threads,
                                 ForceTerms terms, NeighborPolicy neighbors)
    : state_(std::move(state)),
      ff_(std::move(ff)),
      grid_(state_.cell_dims, state_.cell_size),
      cutoff2_(cutoff * cutoff),
      dt_(dt),
      terms_(terms),
      pool_(threads),
      neighbors_(neighbors) {
  cell_particles_.resize(grid_.num_cells());
  forces_.resize(state_.size());
  worker_forces_.resize(pool_.size());
  for (auto& buf : worker_forces_) buf.resize(state_.size());
  worker_pair_counts_.resize(pool_.size(), 0);
}

void ReferenceEngine::rebuild_cells() {
  for (auto& cell : cell_particles_) cell.clear();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    const geom::IVec3 c = grid_.cell_of(state_.positions[i]);
    cell_particles_[grid_.cid(c)].push_back(static_cast<std::uint32_t>(i));
  }
}

void ReferenceEngine::compute_forces() {
  const std::size_t num_cells = cell_particles_.size();
  const auto half_shell = geom::half_shell_offsets();

  pool_.parallel_for(num_cells, [&](std::size_t worker, std::size_t begin,
                                    std::size_t end) {
    auto& f = worker_forces_[worker];
    std::fill(f.begin(), f.end(), geom::Vec3d{});
    std::size_t pairs = 0;

    for (std::size_t cell = begin; cell < end; ++cell) {
      const auto& home = cell_particles_[cell];
      const geom::IVec3 hc = grid_.coords(static_cast<geom::CellId>(cell));

      // Home-cell pairs (i < j).
      for (std::size_t a = 0; a < home.size(); ++a) {
        const std::uint32_t i = home[a];
        for (std::size_t b = a + 1; b < home.size(); ++b) {
          const std::uint32_t j = home[b];
          const geom::Vec3d dr =
              grid_.min_image(state_.positions[j], state_.positions[i]);
          const double r2 = dr.norm2();
          if (r2 >= cutoff2_) continue;
          const geom::Vec3d fij = ff_.pair_force(dr, state_.elements[i],
                                                 state_.elements[j], terms_);
          f[i] += fij;
          f[j] -= fij;
          ++pairs;
        }
      }

      // Forward half-shell neighbour cells (Newton's third law: the backward
      // half is covered when those cells run this loop).
      for (const geom::IVec3& d : half_shell) {
        const geom::IVec3 nc = grid_.wrap(hc + d);
        const auto& nbr = cell_particles_[grid_.cid(nc)];
        for (const std::uint32_t i : home) {
          for (const std::uint32_t j : nbr) {
            const geom::Vec3d dr =
                grid_.min_image(state_.positions[j], state_.positions[i]);
            const double r2 = dr.norm2();
            if (r2 >= cutoff2_) continue;
            const geom::Vec3d fij = ff_.pair_force(dr, state_.elements[i],
                                                   state_.elements[j], terms_);
            f[i] += fij;
            f[j] -= fij;
            ++pairs;
          }
        }
      }
    }
    worker_pair_counts_[worker] = pairs;
  });

  // Parallel reduction across worker buffers.
  pool_.parallel_for(state_.size(), [&](std::size_t, std::size_t begin,
                                        std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      geom::Vec3d sum{};
      for (const auto& buf : worker_forces_) sum += buf[i];
      forces_[i] = sum;
    }
  });

  last_pair_count_ = 0;
  for (std::size_t p = 0; p < pool_.size(); ++p) {
    last_pair_count_ += worker_pair_counts_[p];
    worker_pair_counts_[p] = 0;
  }
}

void ReferenceEngine::rebuild_verlet_list() {
  const double radius = std::sqrt(cutoff2_) + neighbors_.skin;
  const double radius2 = radius * radius;
  const int reach =
      static_cast<int>(std::ceil(radius / state_.cell_size - 1e-12));

  rebuild_cells();
  verlet_.assign(state_.size(), {});

  // In a periodic box too small for the list radius the offset enumeration
  // would double-count wrapped cells; fall back to all-pairs construction.
  const geom::IVec3 dims = grid_.dims();
  if (2 * reach + 1 > std::min({dims.x, dims.y, dims.z})) {
    for (std::uint32_t i = 0; i < state_.size(); ++i) {
      for (std::uint32_t j = i + 1; j < state_.size(); ++j) {
        if (grid_.min_image(state_.positions[i], state_.positions[j]).norm2() <
            radius2) {
          verlet_[i].push_back(j);
        }
      }
    }
    list_positions_ = state_.positions;
    ++list_rebuilds_;
    return;
  }

  std::vector<geom::IVec3> offsets;
  for (int dx = -reach; dx <= reach; ++dx) {
    for (int dy = -reach; dy <= reach; ++dy) {
      for (int dz = -reach; dz <= reach; ++dz) {
        const geom::IVec3 d{dx, dy, dz};
        if (d == geom::IVec3{0, 0, 0}) continue;
        if (geom::is_forward_offset(d)) offsets.push_back(d);
      }
    }
  }

  for (int cell = 0; cell < grid_.num_cells(); ++cell) {
    const auto& home = cell_particles_[cell];
    const geom::IVec3 hc = grid_.coords(static_cast<geom::CellId>(cell));
    for (std::size_t a = 0; a < home.size(); ++a) {
      for (std::size_t b = a + 1; b < home.size(); ++b) {
        const std::uint32_t i = std::min(home[a], home[b]);
        const std::uint32_t j = std::max(home[a], home[b]);
        if (grid_.min_image(state_.positions[i], state_.positions[j]).norm2() <
            radius2) {
          verlet_[i].push_back(j);
        }
      }
    }
    for (const geom::IVec3& d : offsets) {
      const auto& nbr = cell_particles_[grid_.cid(grid_.wrap(hc + d))];
      for (const std::uint32_t p : home) {
        for (const std::uint32_t q : nbr) {
          const std::uint32_t i = std::min(p, q);
          const std::uint32_t j = std::max(p, q);
          if (grid_.min_image(state_.positions[i], state_.positions[j])
                  .norm2() < radius2) {
            verlet_[i].push_back(j);
          }
        }
      }
    }
  }
  list_positions_ = state_.positions;
  ++list_rebuilds_;
}

bool ReferenceEngine::verlet_list_valid() const {
  if (list_positions_.size() != state_.size()) return false;
  const double limit2 = 0.25 * neighbors_.skin * neighbors_.skin;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (grid_.min_image(list_positions_[i], state_.positions[i]).norm2() >
        limit2) {
      return false;
    }
  }
  return true;
}

void ReferenceEngine::compute_forces_from_list() {
  pool_.parallel_for(state_.size(), [&](std::size_t worker, std::size_t begin,
                                        std::size_t end) {
    auto& f = worker_forces_[worker];
    std::fill(f.begin(), f.end(), geom::Vec3d{});
    std::size_t pairs = 0;
    for (std::size_t i = begin; i < end; ++i) {
      for (const std::uint32_t j : verlet_[i]) {
        const geom::Vec3d dr =
            grid_.min_image(state_.positions[j], state_.positions[i]);
        const double r2 = dr.norm2();
        if (r2 >= cutoff2_) continue;
        const geom::Vec3d fij =
            ff_.pair_force(dr, state_.elements[i], state_.elements[j], terms_);
        f[i] += fij;
        f[j] -= fij;
        ++pairs;
      }
    }
    worker_pair_counts_[worker] = pairs;
  });

  pool_.parallel_for(state_.size(), [&](std::size_t, std::size_t begin,
                                        std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      geom::Vec3d sum{};
      for (const auto& buf : worker_forces_) sum += buf[i];
      forces_[i] = sum;
    }
  });

  last_pair_count_ = 0;
  for (std::size_t p = 0; p < pool_.size(); ++p) {
    last_pair_count_ += worker_pair_counts_[p];
    worker_pair_counts_[p] = 0;
  }
}

void ReferenceEngine::step(int n) {
  for (int it = 0; it < n; ++it) {
    if (neighbors_.use_verlet_list) {
      if (!verlet_list_valid()) rebuild_verlet_list();
      compute_forces_from_list();
      pool_.parallel_for(state_.size(), [&](std::size_t, std::size_t begin,
                                            std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const double m = ff_.element(state_.elements[i]).mass;
          state_.velocities[i] += forces_[i] * (dt_ / m);
          state_.positions[i] = grid_.wrap_position(
              state_.positions[i] + state_.velocities[i] * dt_);
        }
      });
      continue;
    }
    rebuild_cells();
    compute_forces();
    pool_.parallel_for(state_.size(), [&](std::size_t, std::size_t begin,
                                          std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double m = ff_.element(state_.elements[i]).mass;
        state_.velocities[i] += forces_[i] * (dt_ / m);
        state_.positions[i] = grid_.wrap_position(
            state_.positions[i] + state_.velocities[i] * dt_);
      }
    });
  }
}

double ReferenceEngine::potential_energy() {
  rebuild_cells();
  const auto half_shell = geom::half_shell_offsets();
  std::vector<double> partial(pool_.size(), 0.0);

  pool_.parallel_for(cell_particles_.size(), [&](std::size_t worker,
                                                 std::size_t begin,
                                                 std::size_t end) {
    double pe = 0.0;
    for (std::size_t cell = begin; cell < end; ++cell) {
      const auto& home = cell_particles_[cell];
      const geom::IVec3 hc = grid_.coords(static_cast<geom::CellId>(cell));
      for (std::size_t a = 0; a < home.size(); ++a) {
        for (std::size_t b = a + 1; b < home.size(); ++b) {
          const std::uint32_t i = home[a];
          const std::uint32_t j = home[b];
          const double r2 =
              grid_.min_image(state_.positions[j], state_.positions[i]).norm2();
          if (r2 < cutoff2_) {
            pe += ff_.pair_energy(r2, state_.elements[i], state_.elements[j],
                                  terms_);
          }
        }
      }
      for (const geom::IVec3& d : half_shell) {
        const auto& nbr = cell_particles_[grid_.cid(grid_.wrap(hc + d))];
        for (const std::uint32_t i : home) {
          for (const std::uint32_t j : nbr) {
            const double r2 =
                grid_.min_image(state_.positions[j], state_.positions[i]).norm2();
            if (r2 < cutoff2_) {
              pe += ff_.pair_energy(r2, state_.elements[i], state_.elements[j],
                                    terms_);
            }
          }
        }
      }
    }
    partial[worker] += pe;
  });

  double pe = 0.0;
  for (double p : partial) pe += p;
  return pe;
}

}  // namespace fasda::md
