#include "fasda/md/force_field.hpp"

#include <cmath>

#include "fasda/md/units.hpp"

namespace fasda::md {

ElementId ForceField::add_element(std::string name, double epsilon_kcal_per_mol,
                                  double sigma_angstrom, double mass_amu,
                                  double charge_e) {
  if (elements_.size() >= 255) {
    throw std::length_error("ForceField supports at most 255 elements");
  }
  elements_.push_back(Element{std::move(name),
                              units::from_kcal_per_mol(epsilon_kcal_per_mol),
                              sigma_angstrom, mass_amu, charge_e});
  return static_cast<ElementId>(elements_.size() - 1);
}

ForceField ForceField::sodium() {
  ForceField ff;
  ff.add_element("Na", 0.0469, 2.43, 22.98977);
  return ff;
}

ForceField ForceField::sodium_chloride() {
  ForceField ff;
  // Joung-Cheatham-style monovalent ion parameters.
  ff.add_element("Na+", 0.0874, 2.439, 22.98977, +1.0);
  ff.add_element("Cl-", 0.0355, 4.478, 35.453, -1.0);
  return ff;
}

double ForceField::epsilon(ElementId a, ElementId b) const {
  return std::sqrt(element(a).epsilon * element(b).epsilon);
}

double ForceField::sigma(ElementId a, ElementId b) const {
  return 0.5 * (element(a).sigma + element(b).sigma);
}

double ForceField::lj_energy(double r2, ElementId a, ElementId b) const {
  const double eps = epsilon(a, b);
  const double sig = sigma(a, b);
  const double s2 = sig * sig / r2;
  const double s6 = s2 * s2 * s2;
  return 4.0 * eps * (s6 * s6 - s6);
}

geom::Vec3d ForceField::lj_force(const geom::Vec3d& dr, ElementId a,
                                 ElementId b) const {
  const double eps = epsilon(a, b);
  const double sig = sigma(a, b);
  const double r2 = dr.norm2();
  const double s2 = sig * sig / r2;
  const double s6 = s2 * s2 * s2;
  // ε/σ²·[48(σ/r)^14 − 24(σ/r)^8] = (ε/r²)·[48(σ/r)^12 − 24(σ/r)^6]
  const double magnitude_over_r = eps / r2 * (48.0 * s6 * s6 - 24.0 * s6);
  return dr * magnitude_over_r;
}

double ForceField::ewald_real_energy(double r2, ElementId a, ElementId b,
                                     double beta) const {
  const double r = std::sqrt(r2);
  return kCoulomb * element(a).charge * element(b).charge *
         std::erfc(beta * r) / r;
}

geom::Vec3d ForceField::ewald_real_force(const geom::Vec3d& dr, ElementId a,
                                         ElementId b, double beta) const {
  const double r2 = dr.norm2();
  const double r = std::sqrt(r2);
  const double br = beta * r;
  constexpr double kTwoOverSqrtPi = 1.1283791670955126;
  const double magnitude_over_r =
      kCoulomb * element(a).charge * element(b).charge *
      (std::erfc(br) + kTwoOverSqrtPi * br * std::exp(-br * br)) / (r2 * r);
  return dr * magnitude_over_r;
}

double ForceField::pair_energy(double r2, ElementId a, ElementId b,
                               const ForceTerms& terms) const {
  double e = 0.0;
  if (terms.lj) e += lj_energy(r2, a, b);
  if (terms.ewald_real) e += ewald_real_energy(r2, a, b, terms.ewald_beta);
  return e;
}

geom::Vec3d ForceField::pair_force(const geom::Vec3d& dr, ElementId a,
                                   ElementId b, const ForceTerms& terms) const {
  geom::Vec3d f{};
  if (terms.lj) f += lj_force(dr, a, b);
  if (terms.ewald_real) f += ewald_real_force(dr, a, b, terms.ewald_beta);
  return f;
}

std::vector<PairForceCoeffs> ForceField::force_coeff_table(double cutoff) const {
  const std::size_t n = elements_.size();
  std::vector<PairForceCoeffs> table(n * n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const double eps = epsilon(static_cast<ElementId>(a), static_cast<ElementId>(b));
      const double sig = sigma(static_cast<ElementId>(a), static_cast<ElementId>(b));
      const double ratio = sig / cutoff;
      const double r6 = std::pow(ratio, 6);
      // F(internal) = (c14·u^-14 − c8·u^-8)·u_vec with u_vec the normalized
      // (cell-unit) displacement: c14 = 48εσ¹²/Rc¹³ = 48ε(σ/Rc)¹²/Rc.
      table[a * n + b] =
          PairForceCoeffs{static_cast<float>(48.0 * eps * r6 * r6 / cutoff),
                          static_cast<float>(24.0 * eps * r6 / cutoff)};
    }
  }
  return table;
}

std::vector<PairEnergyCoeffs> ForceField::energy_coeff_table(double cutoff) const {
  const std::size_t n = elements_.size();
  std::vector<PairEnergyCoeffs> table(n * n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const double eps = epsilon(static_cast<ElementId>(a), static_cast<ElementId>(b));
      const double sig = sigma(static_cast<ElementId>(a), static_cast<ElementId>(b));
      const double r6 = std::pow(sig / cutoff, 6);
      table[a * n + b] = PairEnergyCoeffs{static_cast<float>(4.0 * eps * r6 * r6),
                                          static_cast<float>(4.0 * eps * r6)};
    }
  }
  return table;
}

std::vector<float> ForceField::ewald_force_coeff_table(double cutoff) const {
  const std::size_t n = elements_.size();
  std::vector<float> table(n * n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      table[a * n + b] = static_cast<float>(
          kCoulomb * elements_[a].charge * elements_[b].charge /
          (cutoff * cutoff));
    }
  }
  return table;
}

std::vector<float> ForceField::ewald_energy_coeff_table(double cutoff) const {
  const std::size_t n = elements_.size();
  std::vector<float> table(n * n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      table[a * n + b] = static_cast<float>(
          kCoulomb * elements_[a].charge * elements_[b].charge / cutoff);
    }
  }
  return table;
}

}  // namespace fasda::md
