#include "fasda/md/system_state.hpp"

namespace fasda::md {

double kinetic_energy(const SystemState& state, const ForceField& ff) {
  double ke = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const double m = ff.element(state.elements[i]).mass;
    ke += 0.5 * m * state.velocities[i].norm2();
  }
  return ke;
}

geom::Vec3d total_momentum(const SystemState& state, const ForceField& ff) {
  geom::Vec3d p{};
  for (std::size_t i = 0; i < state.size(); ++i) {
    p += state.velocities[i] * ff.element(state.elements[i]).mass;
  }
  return p;
}

}  // namespace fasda::md
