#include "fasda/md/functional_engine.hpp"

#include <cmath>
#include <stdexcept>

#include "fasda/interp/ewald.hpp"
#include "fasda/md/energy.hpp"

namespace fasda::md {

namespace {

/// Re-expresses an in-cell offset (RCID = 2) in a frame displaced by
/// `dcells` cells along one axis: RCID becomes 2 + dcells ∈ {1,2,3}.
fixed::FixedCoord rebase(fixed::FixedCoord c, int dcells) {
  return fixed::FixedCoord::from_raw(
      c.raw() + static_cast<std::uint32_t>(dcells * static_cast<int>(
                                                        fixed::FixedCoord::kOne)));
}

fixed::FixedVec3 rebase(const fixed::FixedVec3& p, const geom::IVec3& d) {
  return {rebase(p.x, d.x), rebase(p.y, d.y), rebase(p.z, d.z)};
}

}  // namespace

FunctionalEngine::FunctionalEngine(const SystemState& state, ForceField ff,
                                   const FunctionalConfig& config)
    : ff_(std::move(ff)),
      grid_(state.cell_dims, state.cell_size),
      config_(config),
      table14_(interp::InterpTable::build_r_pow(14, config.table)),
      table8_(interp::InterpTable::build_r_pow(8, config.table)),
      table12_(interp::InterpTable::build_r_pow(12, config.table)),
      table6_(interp::InterpTable::build_r_pow(6, config.table)),
      table_ew_force_(
          config.terms.ewald_real
              ? interp::build_ewald_force_table(
                    config.terms.ewald_beta * config.cutoff, config.table)
              : interp::InterpTable::build_r_pow(2, config.table)),
      table_ew_energy_(
          config.terms.ewald_real
              ? interp::build_ewald_energy_table(
                    config.terms.ewald_beta * config.cutoff, config.table)
              : interp::InterpTable::build_r_pow(2, config.table)),
      force_coeffs_(ff_.force_coeff_table(config.cutoff)),
      energy_coeffs_(ff_.energy_coeff_table(config.cutoff)),
      ewald_force_coeffs_(ff_.ewald_force_coeff_table(config.cutoff)),
      ewald_energy_coeffs_(ff_.ewald_energy_coeff_table(config.cutoff)),
      num_elements_(ff_.num_elements()),
      num_particles_(state.size()),
      pool_(config.threads) {
  if (std::abs(state.cell_size - config.cutoff) > 1e-9) {
    throw std::invalid_argument(
        "FunctionalEngine requires cell_size == cutoff: the hardware "
        "normalizes R_c to one cell edge (§3.4)");
  }
  min_r2_ = std::ldexp(1.0f, -config.table.num_sections);

  cells_.resize(grid_.num_cells());
  for (std::size_t i = 0; i < state.size(); ++i) {
    const geom::Vec3d p = grid_.wrap_position(state.positions[i]);
    const geom::IVec3 c = grid_.cell_of(p);
    const double inv = 1.0 / grid_.cell_size();
    Slot slot;
    slot.pos = {fixed::FixedCoord::from_cell_offset(2, p.x * inv - c.x),
                fixed::FixedCoord::from_cell_offset(2, p.y * inv - c.y),
                fixed::FixedCoord::from_cell_offset(2, p.z * inv - c.z)};
    slot.vel = state.velocities[i].cast<float>();
    slot.elem = state.elements[i];
    slot.id = static_cast<std::uint32_t>(i);
    cells_[grid_.cid(c)].push_back(slot);
  }
  worker_pair_counts_.resize(pool_.size(), 0);
}

std::size_t FunctionalEngine::evaluate_cell_forces(std::size_t cell) {
  auto& home = cells_[cell];
  const geom::IVec3 hc = grid_.coords(static_cast<geom::CellId>(cell));
  // Exclusion threshold in Q6.56 (the bottom of the interpolation table).
  const std::uint64_t min_r2q =
      fixed::kR2One >> config_.table.num_sections;

  for (auto& slot : home) slot.force = {};

  auto accumulate = [&](Slot& i, const fixed::FixedVec3& j_pos,
                        ElementId j_elem) -> bool {
    const std::uint64_t r2q = fixed::r2_fixed(i.pos, j_pos);
    if (r2q >= fixed::kR2One || r2q < min_r2q) return false;
    const float r2 = fixed::r2_to_float(r2q);
    float magnitude = 0.0f;
    if (config_.terms.lj) {
      const PairForceCoeffs& k =
          force_coeffs_[i.elem * num_elements_ + j_elem];
      magnitude += k.c14 * table14_.eval(r2) - k.c8 * table8_.eval(r2);
    }
    if (config_.terms.ewald_real) {
      magnitude += ewald_force_coeffs_[i.elem * num_elements_ + j_elem] *
                   table_ew_force_.eval(r2);
    }
    const geom::Vec3f u = fixed::displacement_to_float(i.pos, j_pos);
    i.force += u * magnitude;
    return true;
  };

  std::size_t pairs = 0;
  // Home-cell pairs: both orderings are evaluated (full shell), so each
  // unordered pair contributes once to each particle.
  for (std::size_t a = 0; a < home.size(); ++a) {
    for (std::size_t b = 0; b < home.size(); ++b) {
      if (a == b) continue;
      if (accumulate(home[a], home[b].pos, home[b].elem) && a < b) ++pairs;
    }
  }
  // All 26 neighbour cells; particle j is rebased into this cell's frame
  // exactly as the RCID conversion does on arrival (§4.2).
  for (const geom::IVec3& d : geom::full_shell_offsets()) {
    const geom::IVec3 nc = grid_.wrap(hc + d);
    const auto& nbr = cells_[grid_.cid(nc)];
    const bool forward = geom::is_forward_offset(d);
    for (const Slot& j : nbr) {
      const fixed::FixedVec3 j_pos = rebase(j.pos, d);
      for (Slot& i : home) {
        if (accumulate(i, j_pos, j.elem) && forward) ++pairs;
      }
    }
  }
  return pairs;
}

void FunctionalEngine::evaluate_forces() {
  std::fill(worker_pair_counts_.begin(), worker_pair_counts_.end(), 0);
  pool_.parallel_for(
      cells_.size(), [&](std::size_t worker, std::size_t begin, std::size_t end) {
        std::size_t pairs = 0;
        for (std::size_t cell = begin; cell < end; ++cell) {
          pairs += evaluate_cell_forces(cell);
        }
        worker_pair_counts_[worker] = pairs;
      });
  last_pair_count_ = 0;
  for (const std::size_t c : worker_pair_counts_) last_pair_count_ += c;
}

void FunctionalEngine::motion_update() {
  const float dt = static_cast<float>(config_.dt);
  const double inv_cell = 1.0 / grid_.cell_size();
  std::vector<std::pair<geom::CellId, Slot>> migrations;

  for (std::size_t cell = 0; cell < cells_.size(); ++cell) {
    auto& slots = cells_[cell];
    const geom::IVec3 hc = grid_.coords(static_cast<geom::CellId>(cell));
    for (std::size_t s = 0; s < slots.size();) {
      Slot& slot = slots[s];
      const float inv_mass =
          static_cast<float>(1.0 / ff_.element(slot.elem).mass);
      slot.vel += slot.force * (dt * inv_mass);

      // Position delta quantized straight onto the fixed-point grid, per
      // axis; the MU adds it as an integer so tiny deltas never round away
      // against a large float mantissa.
      geom::IVec3 shift{};
      auto advance = [&](fixed::FixedCoord& c, float v, int& shift_c) {
        const double delta_cells = static_cast<double>(v) * dt * inv_cell;
        const auto delta_q = static_cast<std::int64_t>(
            std::llround(delta_cells * fixed::FixedCoord::kOne));
        std::int64_t raw = static_cast<std::int64_t>(c.raw()) + delta_q;
        const std::int64_t one = fixed::FixedCoord::kOne;
        shift_c = static_cast<int>(raw >> fixed::FixedCoord::kFracBits) - 2;
        raw -= static_cast<std::int64_t>(shift_c) * one;
        c = fixed::FixedCoord::from_raw(static_cast<std::uint32_t>(raw));
      };
      advance(slot.pos.x, slot.vel.x, shift.x);
      advance(slot.pos.y, slot.vel.y, shift.y);
      advance(slot.pos.z, slot.vel.z, shift.z);

      if (shift == geom::IVec3{0, 0, 0}) {
        ++s;
        continue;
      }
      // Migration: the MU ring routes the particle to its new home cell.
      const geom::CellId dest = grid_.cid(grid_.wrap(hc + shift));
      migrations.emplace_back(dest, slot);
      slots[s] = slots.back();
      slots.pop_back();
    }
  }
  for (auto& [dest, slot] : migrations) cells_[dest].push_back(slot);
}

void FunctionalEngine::step(int n) {
  for (int it = 0; it < n; ++it) {
    evaluate_forces();
    motion_update();
  }
}

SystemState FunctionalEngine::state() const {
  SystemState out;
  out.cell_dims = grid_.dims();
  out.cell_size = grid_.cell_size();
  out.positions.resize(num_particles_);
  out.velocities.resize(num_particles_);
  out.elements.resize(num_particles_);
  for (std::size_t cell = 0; cell < cells_.size(); ++cell) {
    const geom::IVec3 hc = grid_.coords(static_cast<geom::CellId>(cell));
    for (const Slot& slot : cells_[cell]) {
      out.positions[slot.id] = {(hc.x + slot.pos.x.frac()) * grid_.cell_size(),
                                (hc.y + slot.pos.y.frac()) * grid_.cell_size(),
                                (hc.z + slot.pos.z.frac()) * grid_.cell_size()};
      out.velocities[slot.id] = slot.vel.cast<double>();
      out.elements[slot.id] = slot.elem;
    }
  }
  return out;
}

double FunctionalEngine::potential_energy() const {
  return compute_potential_energy(state(), ff_, config_.cutoff,
                                  config_.terms);
}

double FunctionalEngine::total_energy() const {
  const SystemState s = state();
  return compute_potential_energy(s, ff_, config_.cutoff, config_.terms) +
         kinetic_energy(s, ff_);
}

double FunctionalEngine::interp_potential_energy() const {
  const std::uint64_t min_r2q = fixed::kR2One >> config_.table.num_sections;
  double pe = 0.0;  // halved double-count of float32 pair terms
  for (std::size_t cell = 0; cell < cells_.size(); ++cell) {
    const auto& home = cells_[cell];
    const geom::IVec3 hc = grid_.coords(static_cast<geom::CellId>(cell));
    float cell_pe = 0.0f;

    auto pair_energy = [&](const Slot& i, const fixed::FixedVec3& j_pos,
                           ElementId j_elem) {
      const std::uint64_t r2q = fixed::r2_fixed(i.pos, j_pos);
      if (r2q >= fixed::kR2One || r2q < min_r2q) return;
      const float r2 = fixed::r2_to_float(r2q);
      if (config_.terms.lj) {
        const PairEnergyCoeffs& k =
            energy_coeffs_[i.elem * num_elements_ + j_elem];
        cell_pe += k.e12 * table12_.eval(r2) - k.e6 * table6_.eval(r2);
      }
      if (config_.terms.ewald_real) {
        cell_pe += ewald_energy_coeffs_[i.elem * num_elements_ + j_elem] *
                   table_ew_energy_.eval(r2);
      }
    };

    for (std::size_t a = 0; a < home.size(); ++a) {
      for (std::size_t b = 0; b < home.size(); ++b) {
        if (a != b) pair_energy(home[a], home[b].pos, home[b].elem);
      }
    }
    for (const geom::IVec3& d : geom::full_shell_offsets()) {
      const auto& nbr = cells_[grid_.cid(grid_.wrap(hc + d))];
      for (const Slot& j : nbr) {
        const fixed::FixedVec3 j_pos = rebase(j.pos, d);
        for (const Slot& i : home) pair_energy(i, j_pos, j.elem);
      }
    }
    pe += static_cast<double>(cell_pe);
  }
  return pe / 2.0;
}

std::vector<geom::Vec3f> FunctionalEngine::forces_by_particle() const {
  std::vector<geom::Vec3f> out(num_particles_);
  for (const auto& cell : cells_) {
    for (const Slot& slot : cell) out[slot.id] = slot.force;
  }
  return out;
}

}  // namespace fasda::md
