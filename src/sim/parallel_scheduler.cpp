#include "fasda/sim/parallel_scheduler.hpp"

#include <stdexcept>

namespace fasda::sim {

ParallelScheduler::ParallelScheduler(std::size_t threads) : pool_(threads) {}

ParallelScheduler::Shard& ParallelScheduler::shard_at(ShardId shard) {
  if (shard < 0) throw std::invalid_argument("ParallelScheduler: bad shard id");
  if (static_cast<std::size_t>(shard) >= shards_.size()) {
    shards_.resize(static_cast<std::size_t>(shard) + 1);
  }
  return shards_[static_cast<std::size_t>(shard)];
}

void ParallelScheduler::add_impl(Component* c, ShardId shard) {
  if (shard == kGlobalShard) {
    global_components_.push_back(c);
  } else {
    shard_at(shard).components.push_back(c);
  }
}

void ParallelScheduler::add_clocked_impl(Clocked* c, ShardId shard) {
  if (shard == kGlobalShard) {
    global_clocked_.push_back(c);
  } else {
    shard_at(shard).clocked.push_back(c);
  }
}

void ParallelScheduler::run_cycle() {
  const Cycle now = cycle_;
  // Global components are two-phase like everything else, so ticking them
  // serially before the fan-out is just another valid order.
  for (Component* c : global_components_) c->tick(now);
  pool_.parallel_phases(
      shards_.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          for (Component* c : shards_[s].components) c->tick(now);
        }
      },
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          for (Clocked* c : shards_[s].clocked) c->commit();
        }
      });
  // Global clocked elements commit on the caller: the join above makes
  // every shard's staged writes visible here, and the serial sweep applies
  // them in a fixed (source-id) order.
  for (Clocked* c : global_clocked_) c->commit();
  ++cycle_;
}

}  // namespace fasda::sim
