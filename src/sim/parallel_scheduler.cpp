#include "fasda/sim/parallel_scheduler.hpp"

namespace fasda::sim {

ParallelScheduler::ParallelScheduler(std::size_t threads) : pool_(threads) {}

void ParallelScheduler::run_cycle() {
  const Cycle now = cycle_;
  // Global components are two-phase like everything else, so ticking them
  // serially before the fan-out is just another valid order.
  for (Component* c : global_components_) c->tick(now);
  pool_.parallel_phases(
      groups_.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          for (Component* c : groups_[s].components) c->tick(now);
        }
      },
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          for (Clocked* c : groups_[s].clocked) c->commit();
        }
      });
  // Global clocked elements commit on the caller: the join above makes
  // every shard's staged writes visible here, and the serial sweep applies
  // them in a fixed (source-id) order.
  for (Clocked* c : global_clocked_) c->commit();
  ++cycle_;
}

void ParallelScheduler::run_cycle_elided() {
  const Cycle now = cycle_;
  const auto tick_or_skip = [now](Component* c) {
    if (c->sched_wake() <= now) {
      c->tick(now);
    } else {
      c->skip_idle(now, now + 1);
    }
  };
  for (Component* c : global_components_) tick_or_skip(c);
  pool_.parallel_phases(
      groups_.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          ShardGroup& g = groups_[s];
          if (g.wake > now) {
            // Sleeping shard: only the eager prefix replays bookkeeping
            // (its own node's heartbeat — same worker owns the shard).
            for (std::size_t i = 0; i < g.eager; ++i) {
              g.components[i]->skip_idle(now, now + 1);
            }
            continue;
          }
          if (g.hot) {
            // Busy-shard fast path: wake caches are stale (no sweep ran),
            // so tick everyone — the naive schedule for this shard.
            for (Component* c : g.components) c->tick(now);
            continue;
          }
          for (Component* c : g.components) tick_or_skip(c);
        }
      },
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          ShardGroup& g = groups_[s];
          if (g.wake > now) continue;  // nothing staged while asleep
          for (Clocked* c : g.clocked) c->commit();
        }
      });
  for (Clocked* c : global_clocked_) c->commit();
  ++cycle_;
}

}  // namespace fasda::sim
