#include "fasda/pe/processing_element.hpp"

namespace fasda::pe {

PairProbe::Fn PairProbe::hook;
RetireProbe::Fn RetireProbe::hook;

ProcessingElement::ProcessingElement(std::string name, const PEConfig& config,
                                     const ForceModel& model,
                                     const std::vector<CellParticle>* home,
                                     ForceSink* sink, int fc_index)
    : Component(std::move(name)),
      config_(config),
      model_(model),
      home_(home),
      sink_(sink),
      fc_index_(fc_index),
      input_(config.input_queue_depth),
      output_(config.output_queue_depth) {}

void ProcessingElement::tick(sim::Cycle now) {
  // Order within a cycle mirrors the RTL stages back-to-front so each stage
  // consumes state its upstream produced in *earlier* cycles.
  drain_pipeline(now);
  issue_pair(now);
  stream_and_filter();
  retire_references();
  if (!pass_active_) reload_filters();

  const bool active = pass_active_ || !pipeline_.empty() || !pair_buffer_.empty();
  pe_util_.record(0, 0, active);  // work/capacity recorded in issue_pair
}

void ProcessingElement::drain_pipeline(sim::Cycle now) {
  while (!pipeline_.empty() && pipeline_.front().completes_at <= now) {
    PipelineEntry e = std::move(pipeline_.front());
    pipeline_.pop_front();
    sink_->accumulate(e.home_slot, e.force_on_home, fc_index_);
    e.ref->acc -= e.force_on_home;
    e.ref->pending--;
  }
}

void ProcessingElement::issue_pair(sim::Cycle now) {
  if (pair_buffer_.empty()) {
    pe_util_.record(0, 1, false);
    return;
  }
  PairCandidate c = std::move(pair_buffer_.front());
  pair_buffer_.pop_front();
  const CellParticle& home = (*home_)[c.home_slot];
  PipelineEntry e;
  e.force_on_home =
      model_.pair_force(home.pos, home.elem, c.ref->ref.pos, c.ref->ref.elem);
  e.home_slot = c.home_slot;
  e.ref = std::move(c.ref);
  e.completes_at = now + static_cast<sim::Cycle>(config_.pipeline_latency);
  if (PairProbe::hook) {
    PairProbe::hook((*home_)[e.home_slot].id, e.ref->ref, e.force_on_home);
  }
  pipeline_.push_back(std::move(e));
  ++pairs_issued_;
  pe_util_.record(1, 1, false);
}

void ProcessingElement::stream_and_filter() {
  if (!pass_active_) return;
  // Worst case every loaded filter accepts this cycle; only advance when the
  // buffer can take the burst (the hardware's filter-output backpressure).
  if (pair_buffer_.size() + filters_.size() > config_.pair_buffer_depth) {
    filter_util_.record(0, static_cast<std::uint64_t>(config_.num_filters), true);
    return;
  }
  const CellParticle& home = (*home_)[stream_index_];
  for (auto& ref : filters_) {
    if (ref->ref.is_home && stream_index_ <= ref->ref.home_index) continue;
    const std::uint64_t r2q = fixed::r2_fixed(ref->ref.pos, home.pos);
    if (model_.filter(r2q)) {
      // `pending` counts from acceptance, not pipeline issue: a reference
      // must not retire while accepted pairs still wait in the buffer.
      ref->pending++;
      ref->any_pair = true;
      pair_buffer_.push_back(PairCandidate{ref, static_cast<std::uint16_t>(
                                                    stream_index_)});
    }
  }
  filter_util_.record(filters_.size(),
                      static_cast<std::uint64_t>(config_.num_filters), true);

  if (++stream_index_ >= home_->size()) {
    // Pass complete: all loaded references start retiring.
    for (auto& ref : filters_) {
      ref->pass_done = true;
      retiring_.push_back(std::move(ref));
    }
    filters_.clear();
    pass_active_ = false;
    stream_index_ = 0;
  }
}

void ProcessingElement::retire_references() {
  // At most one retirement per cycle (the FRN-side arbiter).
  for (auto it = retiring_.begin(); it != retiring_.end(); ++it) {
    RefState& r = **it;
    if (!r.pass_done || r.pending != 0) continue;
    if (r.ref.is_home) {
      sink_->accumulate(r.ref.home_index, r.acc, fc_index_);
    } else if (r.any_pair) {
      if (!output_.can_push()) return;  // stall, retry next cycle
      const ring::ForceToken token{r.ref.src_lcid, r.acc, r.ref.slot};
      if (RetireProbe::hook) RetireProbe::hook(token);
      output_.push(token);
    } else {
      ++zero_force_refs_;
    }
    ++refs_processed_;
    retiring_.erase(it);
    return;
  }
}

void ProcessingElement::reload_filters() {
  if (home_->empty()) {
    // An empty home cell still receives broadcasts from its neighbours;
    // they pair with nothing and are discarded like any zero-force
    // reference, otherwise the node could never drain (§5.4).
    while (!input_.empty()) {
      input_.pop();
      ++zero_force_refs_;
      ++refs_processed_;
    }
    return;
  }
  while (static_cast<int>(filters_.size()) < config_.num_filters &&
         !input_.empty()) {
    auto state = std::make_shared<RefState>();
    state->ref = input_.pop();
    filters_.push_back(std::move(state));
  }
  if (!filters_.empty()) {
    pass_active_ = true;
    stream_index_ = 0;
  }
}

bool ProcessingElement::quiescent() const {
  return filters_.empty() && retiring_.empty() && pair_buffer_.empty() &&
         pipeline_.empty() && input_.total_occupancy() == 0 &&
         output_.total_occupancy() == 0;
}

void ProcessingElement::reset_phase() {
  stream_index_ = 0;
  pass_active_ = false;
}

}  // namespace fasda::pe
