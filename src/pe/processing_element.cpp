#include "fasda/pe/processing_element.hpp"

namespace fasda::pe {

PairProbe::Fn PairProbe::hook;
RetireProbe::Fn RetireProbe::hook;

ProcessingElement::ProcessingElement(std::string name, const PEConfig& config,
                                     const ForceModel& model,
                                     const std::vector<CellParticle>* home,
                                     ForceSink* sink, int fc_index)
    : Component(std::move(name)),
      config_(config),
      model_(model),
      home_(home),
      sink_(sink),
      fc_index_(fc_index),
      input_(config.input_queue_depth),
      output_(config.output_queue_depth) {}

ProcessingElement::RefSlot ProcessingElement::alloc_ref() {
  if (!free_slots_.empty()) {
    const RefSlot slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  pool_.emplace_back();
  return static_cast<RefSlot>(pool_.size() - 1);
}

void ProcessingElement::release_ref(RefSlot slot) {
  pool_[slot] = RefState{};
  free_slots_.push_back(slot);
}

void ProcessingElement::tick(sim::Cycle now) {
  // Order within a cycle mirrors the RTL stages back-to-front so each stage
  // consumes state its upstream produced in *earlier* cycles.
  drain_pipeline(now);
  issue_pair(now);
  stream_and_filter();
  retire_references();
  if (!pass_active_) reload_filters();

  const bool active = pass_active_ || !pipeline_.empty() || !pair_buffer_.empty();
  pe_util_.record(0, 0, active);  // work/capacity recorded in issue_pair
}

sim::Cycle ProcessingElement::next_wake(sim::Cycle now) const {
  if (pass_active_ || !pair_buffer_.empty() || !input_.empty()) return now;
  for (const RefSlot slot : retiring_) {
    // Retiring entries always have pass_done set; pending == 0 means the
    // arbiter acts (or keeps stalling on a full output, which still
    // re-evaluates every cycle).
    if (pool_[slot].pending == 0) return now;
  }
  if (!pipeline_.empty()) return std::max(pipeline_.front().completes_at, now);
  return sim::kNeverCycle;
}

void ProcessingElement::skip_idle(sim::Cycle from, sim::Cycle to) {
  // Replays the bookkeeping `to - from` idle ticks accrue: issue_pair's
  // empty-buffer record(0, 1, false) each cycle, plus the end-of-tick
  // active flag — true exactly while in-flight pairs sit in the pipeline,
  // the one sleepable state where tick still counts the PE as functioning
  // (we only sleep on a non-empty pipeline waiting for its head's
  // completes_at, so the flag is constant across the window).
  pe_util_.record(0, to - from, false);
  if (!pipeline_.empty()) pe_util_.active_cycles += to - from;
}

void ProcessingElement::drain_pipeline(sim::Cycle now) {
  while (!pipeline_.empty() && pipeline_.front().completes_at <= now) {
    const PipelineEntry e = pipeline_.front();
    pipeline_.pop_front();
    sink_->accumulate(e.home_slot, e.force_on_home, fc_index_);
    RefState& r = pool_[e.ref];
    r.acc -= e.force_on_home;
    r.pending--;
  }
}

void ProcessingElement::issue_pair(sim::Cycle now) {
  if (pair_buffer_.empty()) {
    pe_util_.record(0, 1, false);
    return;
  }
  const PairCandidate c = pair_buffer_.front();
  pair_buffer_.pop_front();
  const CellParticle& home = (*home_)[c.home_slot];
  const RefState& r = pool_[c.ref];
  PipelineEntry e;
  e.force_on_home = model_.pair_force(home.pos, home.elem, r.ref.pos, r.ref.elem);
  e.home_slot = c.home_slot;
  e.ref = c.ref;
  e.completes_at = now + static_cast<sim::Cycle>(config_.pipeline_latency);
  if (PairProbe::hook) {
    PairProbe::hook((*home_)[e.home_slot].id, r.ref, e.force_on_home);
  }
  pipeline_.push_back(e);
  ++pairs_issued_;
  pe_util_.record(1, 1, false);
}

void ProcessingElement::stream_and_filter() {
  if (!pass_active_) return;
  // Worst case every loaded filter accepts this cycle; only advance when the
  // buffer can take the burst (the hardware's filter-output backpressure).
  if (pair_buffer_.size() + filters_.size() > config_.pair_buffer_depth) {
    filter_util_.record(0, static_cast<std::uint64_t>(config_.num_filters), true);
    return;
  }
  const CellParticle& home = (*home_)[stream_index_];
  const std::uint32_t si = static_cast<std::uint32_t>(stream_index_);
  const std::size_t loaded = filters_.size();
  for (std::size_t f = 0; f < loaded; ++f) {
    if (si < filter_min_stream_[f]) continue;
    const std::uint64_t r2q = fixed::r2_fixed(filter_pos_[f], home.pos);
    if (model_.filter(r2q)) {
      // `pending` counts from acceptance, not pipeline issue: a reference
      // must not retire while accepted pairs still wait in the buffer.
      RefState& r = pool_[filters_[f]];
      r.pending++;
      r.any_pair = true;
      pair_buffer_.push_back(
          PairCandidate{filters_[f], static_cast<std::uint16_t>(stream_index_)});
    }
  }
  filter_util_.record(loaded, static_cast<std::uint64_t>(config_.num_filters),
                      true);

  if (++stream_index_ >= home_->size()) {
    // Pass complete: all loaded references start retiring.
    for (const RefSlot slot : filters_) {
      pool_[slot].pass_done = true;
      retiring_.push_back(slot);
    }
    filters_.clear();
    filter_pos_.clear();
    filter_min_stream_.clear();
    pass_active_ = false;
    stream_index_ = 0;
  }
}

void ProcessingElement::retire_references() {
  // At most one retirement per cycle (the FRN-side arbiter).
  for (auto it = retiring_.begin(); it != retiring_.end(); ++it) {
    RefState& r = pool_[*it];
    if (!r.pass_done || r.pending != 0) continue;
    if (r.ref.is_home) {
      sink_->accumulate(r.ref.home_index, r.acc, fc_index_);
    } else if (r.any_pair) {
      if (!output_.can_push()) return;  // stall, retry next cycle
      const ring::ForceToken token{r.ref.src_lcid, r.acc, r.ref.slot};
      if (RetireProbe::hook) RetireProbe::hook(token);
      output_.push(token);
    } else {
      ++zero_force_refs_;
    }
    ++refs_processed_;
    release_ref(*it);
    retiring_.erase(it);
    return;
  }
}

void ProcessingElement::reload_filters() {
  if (home_->empty()) {
    // An empty home cell still receives broadcasts from its neighbours;
    // they pair with nothing and are discarded like any zero-force
    // reference, otherwise the node could never drain (§5.4).
    while (!input_.empty()) {
      input_.pop();
      ++zero_force_refs_;
      ++refs_processed_;
    }
    return;
  }
  while (static_cast<int>(filters_.size()) < config_.num_filters &&
         !input_.empty()) {
    const RefSlot slot = alloc_ref();
    RefState& r = pool_[slot];
    r.ref = input_.pop();
    filters_.push_back(slot);
    filter_pos_.push_back(r.ref.pos);
    // Home references pair only against later stream indices (each
    // intra-cell pair examined once); neighbours pair from index 0.
    filter_min_stream_.push_back(
        r.ref.is_home ? static_cast<std::uint32_t>(r.ref.home_index) + 1u : 0u);
  }
  if (!filters_.empty()) {
    pass_active_ = true;
    stream_index_ = 0;
  }
}

bool ProcessingElement::quiescent() const {
  return filters_.empty() && retiring_.empty() && pair_buffer_.empty() &&
         pipeline_.empty() && input_.total_occupancy() == 0 &&
         output_.total_occupancy() == 0;
}

void ProcessingElement::reset_phase() {
  stream_index_ = 0;
  pass_active_ = false;
}

}  // namespace fasda::pe
