#include "fasda/pe/force_model.hpp"

#include "fasda/interp/ewald.hpp"

namespace fasda::pe {

ForceModel::ForceModel(const md::ForceField& ff, double cutoff,
                       const interp::InterpConfig& table_config,
                       const md::ForceTerms& terms)
    : terms_(terms),
      table14_(interp::InterpTable::build_r_pow(14, table_config)),
      table8_(interp::InterpTable::build_r_pow(8, table_config)),
      table_ew_(terms.ewald_real
                    ? interp::build_ewald_force_table(terms.ewald_beta * cutoff,
                                                      table_config)
                    : interp::InterpTable::build_r_pow(2, table_config)),
      coeffs_(ff.force_coeff_table(cutoff)),
      ewald_coeffs_(ff.ewald_force_coeff_table(cutoff)),
      num_elements_(ff.num_elements()),
      min_r2q_(fixed::kR2One >> table_config.num_sections) {}

}  // namespace fasda::pe
