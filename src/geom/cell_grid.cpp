#include "fasda/geom/cell_grid.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fasda::geom {

namespace {

constexpr std::array<IVec3, 26> make_full_shell() {
  std::array<IVec3, 26> out{};
  int forward = 0;
  int backward = 13;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const IVec3 d{dx, dy, dz};
        if (is_forward_offset(d)) {
          out[forward++] = d;
        } else {
          out[backward++] = d;
        }
      }
    }
  }
  return out;
}

const std::array<IVec3, 26> kFullShell = make_full_shell();

int wrap_component(int v, int dim) {
  v %= dim;
  return v < 0 ? v + dim : v;
}

double wrap_coordinate(double v, double extent) {
  v = std::fmod(v, extent);
  return v < 0 ? v + extent : v;
}

int min_image_component(int d, int dim) {
  d = wrap_component(d, dim);
  // Map into (-dim/2, dim/2]; ties (exactly dim/2 for even dim) go positive.
  return d > dim / 2 ? d - dim : d;
}

}  // namespace

std::span<const IVec3> half_shell_offsets() {
  return {kFullShell.data(), 13};
}

std::span<const IVec3> full_shell_offsets() { return kFullShell; }

CellGrid::CellGrid(IVec3 dims, double cell_size)
    : dims_(dims), cell_size_(cell_size) {
  if (dims.x < 3 || dims.y < 3 || dims.z < 3) {
    throw std::invalid_argument(
        "CellGrid requires at least 3 cells per dimension so that periodic "
        "neighbour displacements are unambiguous");
  }
  if (cell_size <= 0.0) {
    throw std::invalid_argument("CellGrid cell_size must be positive");
  }
}

IVec3 CellGrid::wrap(IVec3 c) const {
  return {wrap_component(c.x, dims_.x), wrap_component(c.y, dims_.y),
          wrap_component(c.z, dims_.z)};
}

Vec3d CellGrid::wrap_position(Vec3d p) const {
  const Vec3d b = box();
  return {wrap_coordinate(p.x, b.x), wrap_coordinate(p.y, b.y),
          wrap_coordinate(p.z, b.z)};
}

IVec3 CellGrid::cell_of(const Vec3d& p) const {
  const Vec3d w = wrap_position(p);
  IVec3 c{static_cast<int>(w.x / cell_size_), static_cast<int>(w.y / cell_size_),
          static_cast<int>(w.z / cell_size_)};
  // Guard against w == box() after floating-point rounding.
  if (c.x >= dims_.x) c.x = dims_.x - 1;
  if (c.y >= dims_.y) c.y = dims_.y - 1;
  if (c.z >= dims_.z) c.z = dims_.z - 1;
  return c;
}

IVec3 CellGrid::cell_displacement(const IVec3& from, const IVec3& to) const {
  return {min_image_component(to.x - from.x, dims_.x),
          min_image_component(to.y - from.y, dims_.y),
          min_image_component(to.z - from.z, dims_.z)};
}

Vec3d CellGrid::min_image(const Vec3d& from, const Vec3d& to) const {
  const Vec3d b = box();
  Vec3d d = to - from;
  d.x -= b.x * std::round(d.x / b.x);
  d.y -= b.y * std::round(d.y / b.y);
  d.z -= b.z * std::round(d.z / b.z);
  return d;
}

bool CellGrid::is_forward_neighbor(const IVec3& from, const IVec3& to) const {
  const IVec3 d = cell_displacement(from, to);
  if (d.x < -1 || d.x > 1 || d.y < -1 || d.y > 1 || d.z < -1 || d.z > 1) {
    return false;
  }
  if (d == IVec3{0, 0, 0}) return false;
  return is_forward_offset(d);
}

}  // namespace fasda::geom
