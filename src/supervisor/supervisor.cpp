#include "fasda/supervisor/supervisor.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "fasda/md/checkpoint.hpp"
#include "fasda/obs/obs.hpp"
#include "fasda/sync/sync.hpp"
#include "fasda/util/log.hpp"

namespace fasda::supervisor {

Supervisor::Supervisor(md::SystemState initial, md::ForceField ff,
                       engine::EngineSpec spec, SupervisorConfig config,
                       const engine::Registry& registry)
    : initial_(std::move(initial)),
      ff_(std::move(ff)),
      spec_(std::move(spec)),
      config_(config),
      registry_(registry) {}

bool Supervisor::reshard() {
  geom::IVec3 cells = spec_.cells_per_node.value_or(initial_.cell_dims);
  const int node_count[3] = {initial_.cell_dims.x / cells.x,
                             initial_.cell_dims.y / cells.y,
                             initial_.cell_dims.z / cells.z};
  int* cells_axis[3] = {&cells.x, &cells.y, &cells.z};
  // Fold the axis with the most FPGA nodes onto fewer boards: halve it when
  // even, otherwise collapse it entirely. Every surviving node absorbs a
  // larger cell block; the physics is unchanged (same cells, same cutoff).
  int best = 0;
  for (int a = 1; a < 3; ++a) {
    if (node_count[a] > node_count[best]) best = a;
  }
  if (node_count[best] <= 1) return false;  // already a single node
  *cells_axis[best] *= node_count[best] % 2 == 0 ? 2 : node_count[best];
  spec_.cells_per_node = cells;
  // Node ids renumber in the shrunken cluster and the dead board is out of
  // it: node- and link-specific fault entries no longer name anything, so
  // drop them. The global lossy-wire rates keep applying.
  if (spec_.faults) {
    spec_.faults->node_faults.clear();
    spec_.faults->per_link.clear();
    spec_.faults->drop_exact.clear();
  }
  return true;
}

RunReport Supervisor::run(int steps,
                          const std::vector<engine::StepObserver*>& observers) {
  RunReport report;
  engine::Checkpoint ckpt{0, initial_};
  std::unique_ptr<engine::Engine> engine =
      registry_.create(ckpt.state, ff_, spec_);

  {
    const engine::Energies e = engine->energies();
    for (engine::StepObserver* obs : observers) {
      obs->on_sample(0, ckpt.state, e);
    }
  }

  const int block_size =
      config_.checkpoint_every > 0 ? config_.checkpoint_every
                                   : std::max(steps, 1);
  int attempt = 1;
  idmap::NodeId last_failed = -1;

  auto backoff = [&] {
    if (config_.backoff_initial.count() <= 0) return;
    auto delay =
        config_.backoff_initial *
        (1LL << std::min(report.restarts - 1, 20));
    if (delay > config_.backoff_cap) delay = config_.backoff_cap;
    std::this_thread::sleep_for(delay);
  };

  obs::Hub* hub = spec_.obs;
  auto supervisor_event = [&](const char* name, int pid, sim::Cycle cycle,
                              const char* arg_name, std::int64_t arg) {
    if (!hub) return;
    hub->trace().instant(obs::kClusterShard, pid, obs::Comp::kSupervisor,
                         name, cycle, arg_name, arg);
  };
  // The rebuilt engine restarts its scheduler at cycle 0; a new trace epoch
  // closes whatever spans the crashed attempt abandoned and keeps exported
  // timestamps monotone across the restart.
  auto rebuild_epoch = [](obs::Hub* h) {
    if (h) h->begin_epoch();
  };

  // Records the incident and decides the reaction. Returns false when the
  // restart budget is spent (give up); true after preparing spec_ for the
  // next build (reboot = transient faults cleared, or degraded re-shard
  // when the same node died twice in a row and the caller allowed it).
  auto on_failure = [&](IncidentKind kind, idmap::NodeId node,
                        std::string phase, sim::Cycle detected_at,
                        const std::string& what) -> bool {
    Incident inc;
    inc.attempt = attempt;
    inc.kind = kind;
    inc.node = node;
    inc.phase = std::move(phase);
    inc.detected_at = detected_at;
    inc.at_step = ckpt.step;
    inc.error = what;
    report.incidents.push_back(inc);
    // Exactly one bus event per recorded incident, stamped with the same
    // detection cycle the Incident carries (tests/supervisor_test.cpp).
    supervisor_event("incident", node, detected_at, "attempt", attempt);
    // The structured log is the wall-clock side of the same story (two
    // planes, DESIGN.md §17): the bus event is deterministic, this line is
    // for the operator reading the daemon's JSON log.
    util::slog(util::LogLevel::kInfo, util::LogFields("supervisor"),
               "incident: node=%d attempt=%d at_step=%lld: %s",
               static_cast<int>(node), attempt,
               static_cast<long long>(ckpt.step), what.c_str());

    if (report.restarts >= config_.max_restarts) {
      report.final_error = what;
      supervisor_event("give-up", node, detected_at, "restarts",
                       report.restarts);
      util::slog(util::LogLevel::kWarn, util::LogFields("supervisor"),
                 "giving up after %d restarts at step %lld: %s",
                 report.restarts, static_cast<long long>(ckpt.step),
                 what.c_str());
      return false;
    }
    ++report.restarts;
    ++attempt;
    backoff();

    const bool repeat = node >= 0 && node == last_failed;
    last_failed = node;
    if (repeat && config_.allow_degraded && !report.degraded && reshard()) {
      report.degraded = true;
      report.incidents.back().caused_reshard = true;
      supervisor_event("reshard", node, detected_at, "attempt", attempt);
      util::slog(util::LogLevel::kInfo, util::LogFields("supervisor"),
                 "resharding around node %d (attempt %d)",
                 static_cast<int>(node), attempt);
      return true;
    }
    // Same-topology restart: the board rebooted, which clears its transient
    // faults; permanent ones stay armed (and will implicate it again).
    if (spec_.faults && node >= 0) {
      auto& nf = spec_.faults->node_faults;
      nf.erase(std::remove_if(nf.begin(), nf.end(),
                              [&](const net::NodeFault& f) {
                                return f.node == node && !f.permanent;
                              }),
               nf.end());
    }
    return true;
  };

  while (ckpt.step < steps) {
    const int block = static_cast<int>(
        std::min<long long>(block_size, steps - ckpt.step));
    try {
      engine->step(block);
    } catch (const sync::NodeFailureError& e) {
      if (!on_failure(IncidentKind::kNodeFailure, e.node(), e.phase(),
                      e.detected_at(), e.what())) {
        report.steps = ckpt.step;
        report.final_state = ckpt.state;
        return report;
      }
      rebuild_epoch(hub);
      supervisor_event("restart", e.node(), 0, "attempt", attempt);
      engine = registry_.create(ckpt.state, ff_, spec_);
      continue;
    } catch (const sync::DegradedLinkError& e) {
      if (!on_failure(IncidentKind::kDegradedLink, e.link().dst, "",
                      e.link().detected_at, e.what())) {
        report.steps = ckpt.step;
        report.final_state = ckpt.state;
        return report;
      }
      rebuild_epoch(hub);
      supervisor_event("restart", e.link().dst, 0, "attempt", attempt);
      engine = registry_.create(ckpt.state, ff_, spec_);
      continue;
    }

    // Bank the block: everything before this point is durable now.
    ckpt.step += block;
    ckpt.state = engine->state();
    ++report.checkpoints_taken;
    supervisor_event("checkpoint", obs::kClusterPid,
                     engine->metrics().total_cycles, "step",
                     static_cast<std::int64_t>(ckpt.step));
    util::slog(util::LogLevel::kDebug, util::LogFields("supervisor"),
               "checkpoint banked at step %lld",
               static_cast<long long>(ckpt.step));
    report.steps = ckpt.step;
    for (Incident& inc : report.incidents) inc.recovered = true;
    if (config_.checkpoint_path_for) {
      const std::string path = config_.checkpoint_path_for(ckpt.step);
      if (!path.empty()) md::save_checkpoint(path, ckpt.state);
    } else if (!config_.checkpoint_path.empty()) {
      md::save_checkpoint(config_.checkpoint_path, ckpt.state);
    }
    const engine::Energies e = engine->energies();
    for (engine::StepObserver* obs : observers) {
      obs->on_sample(static_cast<int>(ckpt.step), ckpt.state, e);
    }
  }

  report.completed = true;
  report.final_state = ckpt.state;
  report.final_energies = engine->energies();
  for (engine::StepObserver* obs : observers) obs->on_finish(steps, *engine);
  return report;
}

}  // namespace fasda::supervisor
