#include "fasda/util/thread_pool.hpp"

namespace fasda::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  tasks_.resize(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n, const Body& body) {
  const std::size_t parts = size();
  if (parts == 1 || n < 2) {
    if (n > 0) body(0, 0, n);
    return;
  }
  // Static contiguous chunks: chunk p covers [p*n/parts, (p+1)*n/parts).
  auto chunk_begin = [&](std::size_t p) { return p * n / parts; };
  {
    std::lock_guard lock(mutex_);
    for (std::size_t p = 0; p < workers_.size(); ++p) {
      tasks_[p] = Task{&body, p + 1, chunk_begin(p + 1), chunk_begin(p + 2)};
    }
    pending_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  // The caller runs the first chunk as worker 0.
  if (chunk_begin(1) > 0) body(0, 0, chunk_begin(1));
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
    }
    if (task.body && task.end > task.begin) {
      (*task.body)(task.worker, task.begin, task.end);
    }
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace fasda::util
