#include "fasda/util/thread_pool.hpp"

namespace fasda::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  tasks_.resize(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n, const Body& body) {
  const std::size_t parts = size();
  if (parts == 1 || n < 2) {
    if (n > 0) body(0, 0, n);
    return;
  }
  // Static contiguous chunks: chunk p covers [p*n/parts, (p+1)*n/parts).
  auto chunk_begin = [&](std::size_t p) { return p * n / parts; };
  {
    std::lock_guard lock(mutex_);
    for (std::size_t p = 0; p < workers_.size(); ++p) {
      tasks_[p] = Task{&body, nullptr, p + 1, chunk_begin(p + 1), chunk_begin(p + 2)};
    }
    pending_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  // The caller runs the first chunk as worker 0.
  if (chunk_begin(1) > 0) body(0, 0, chunk_begin(1));
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_phases(std::size_t n, const Body& phase1,
                                 const Body& phase2) {
  const std::size_t parts = size();
  if (parts == 1 || n < 2) {
    if (n > 0) {
      phase1(0, 0, n);
      phase2(0, 0, n);
    }
    return;
  }
  auto chunk_begin = [&](std::size_t p) { return p * n / parts; };
  {
    std::lock_guard lock(mutex_);
    for (std::size_t p = 0; p < workers_.size(); ++p) {
      tasks_[p] = Task{&phase1, &phase2, p + 1, chunk_begin(p + 1), chunk_begin(p + 2)};
    }
    pending_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  // The caller is a full participant: chunk 0 in both phases and one of the
  // `parts` arrivals the barrier waits for.
  if (chunk_begin(1) > 0) phase1(0, 0, chunk_begin(1));
  {
    std::unique_lock lock(mutex_);
    barrier_wait(lock);
  }
  if (chunk_begin(1) > 0) phase2(0, 0, chunk_begin(1));
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::barrier_wait(std::unique_lock<std::mutex>& lock) {
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_waiting_ == size()) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    cv_barrier_.notify_all();
  } else {
    cv_barrier_.wait(lock, [&] { return barrier_generation_ != gen; });
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
    }
    if (task.body && task.end > task.begin) {
      (*task.body)(task.worker, task.begin, task.end);
    }
    if (task.phase2) {
      // Two-phase task: every worker joins the barrier, chunk or no chunk.
      {
        std::unique_lock lock(mutex_);
        barrier_wait(lock);
      }
      if (task.end > task.begin) {
        (*task.phase2)(task.worker, task.begin, task.end);
      }
    }
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace fasda::util
