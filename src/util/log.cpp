#include "fasda/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fasda::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const char* fmt, std::va_list args) {
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[fasda %-5s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace fasda::util
