#include "fasda/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>

namespace fasda::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;
LogSink g_sink;  // guarded by g_emit_mutex
}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + std::string(name) +
                              "' (expected debug|info|warn|error|off)");
}

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_emit_mutex);
  g_sink = std::move(sink);
}

namespace detail {
void log_emit(LogLevel level, const char* fmt, std::va_list args) {
  std::lock_guard lock(g_emit_mutex);
  if (g_sink) {
    // Format to a buffer so the sink sees one complete line.
    char stack_buf[512];
    std::va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(stack_buf, sizeof stack_buf, fmt, copy);
    va_end(copy);
    if (n < 0) return;
    if (static_cast<std::size_t>(n) < sizeof stack_buf) {
      g_sink(level, std::string_view(stack_buf, static_cast<std::size_t>(n)));
    } else {
      std::string big(static_cast<std::size_t>(n) + 1, '\0');
      std::vsnprintf(big.data(), big.size(), fmt, args);
      g_sink(level, std::string_view(big.data(), static_cast<std::size_t>(n)));
    }
    return;
  }
  std::fprintf(stderr, "[fasda %-5s] ", log_level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace fasda::util
