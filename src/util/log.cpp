#include "fasda/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>

namespace fasda::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;
LogSink g_sink;                  // guarded by g_emit_mutex
std::FILE* g_json = nullptr;     // guarded by g_emit_mutex
std::atomic<bool> g_json_open{false};

const char* json_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void json_escaped(std::FILE* f, std::string_view s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (u < 0x20) {
      std::fprintf(f, "\\u%04x", u);
    } else {
      std::fputc(c, f);
    }
  }
}

/// One JSON line per message; caller holds g_emit_mutex.
void json_emit_locked(LogLevel level, const LogFields& fields,
                      std::string_view msg) {
  if (g_json == nullptr) return;
  const auto ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  std::fprintf(g_json, "{\"ts_us\":%lld,\"level\":\"%s\"",
               static_cast<long long>(ts_us), json_level_name(level));
  if (!fields.component.empty()) {
    std::fputs(",\"component\":\"", g_json);
    json_escaped(g_json, fields.component);
    std::fputc('"', g_json);
  }
  if (fields.job != 0) {
    std::fprintf(g_json, ",\"job\":%" PRIu64, fields.job);
  }
  if (!fields.tenant.empty()) {
    std::fputs(",\"tenant\":\"", g_json);
    json_escaped(g_json, fields.tenant);
    std::fputc('"', g_json);
  }
  std::fputs(",\"msg\":\"", g_json);
  json_escaped(g_json, msg);
  std::fputs("\"}\n", g_json);
  std::fflush(g_json);
}
}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + std::string(name) +
                              "' (expected debug|info|warn|error|off)");
}

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_emit_mutex);
  g_sink = std::move(sink);
}

bool open_json_log(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  std::lock_guard lock(g_emit_mutex);
  if (g_json != nullptr) std::fclose(g_json);
  g_json = f;
  g_json_open.store(true);
  return true;
}

void close_json_log() {
  std::lock_guard lock(g_emit_mutex);
  if (g_json != nullptr) {
    std::fclose(g_json);
    g_json = nullptr;
  }
  g_json_open.store(false);
}

bool json_log_active() { return g_json_open.load(); }

namespace detail {
void log_emit(LogLevel level, const LogFields& fields, const char* fmt,
              std::va_list args) {
  std::lock_guard lock(g_emit_mutex);
  // Format once to a buffer: the sink contract and the JSON sink both need
  // one complete line.
  char stack_buf[512];
  std::string big;
  std::va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(stack_buf, sizeof stack_buf, fmt, copy);
  va_end(copy);
  if (n < 0) return;
  std::string_view msg;
  if (static_cast<std::size_t>(n) < sizeof stack_buf) {
    msg = std::string_view(stack_buf, static_cast<std::size_t>(n));
  } else {
    big.assign(static_cast<std::size_t>(n) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, args);
    msg = std::string_view(big.data(), static_cast<std::size_t>(n));
  }
  json_emit_locked(level, fields, msg);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[fasda %-5s] ", log_level_name(level));
  if (!fields.component.empty()) {
    std::fprintf(stderr, "%.*s: ", static_cast<int>(fields.component.size()),
                 fields.component.data());
  }
  std::fwrite(msg.data(), 1, msg.size(), stderr);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace fasda::util
