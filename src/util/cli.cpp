#include "fasda/util/cli.hpp"

#include <cstdlib>

namespace fasda::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      std::string_view body = arg.substr(2);
      if (auto eq = body.find('='); eq != std::string_view::npos) {
        flags_.emplace_back(std::string(body.substr(0, eq)),
                            std::string(body.substr(eq + 1)));
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        flags_.emplace_back(std::string(body), std::string(argv[++i]));
      } else {
        flags_.emplace_back(std::string(body), std::string());
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Cli::has(std::string_view name) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return true;
  }
  return false;
}

std::optional<std::string> Cli::get(std::string_view name) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return value;
  }
  return std::nullopt;
}

std::string Cli::get_or(std::string_view name, std::string_view fallback) const {
  auto v = get(name);
  return v ? *v : std::string(fallback);
}

long Cli::get_or(std::string_view name, long fallback) const {
  auto v = get(name);
  return v && !v->empty() ? std::strtol(v->c_str(), nullptr, 10) : fallback;
}

double Cli::get_or(std::string_view name, double fallback) const {
  auto v = get(name);
  return v && !v->empty() ? std::strtod(v->c_str(), nullptr) : fallback;
}

}  // namespace fasda::util
