#include "fasda/util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace fasda::util {

namespace {

int parse_axis(std::string_view s) {
  if (s.empty() || s.size() > 9) {
    throw std::invalid_argument("parse_dims: bad axis '" + std::string(s) + "'");
  }
  int v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("parse_dims: bad axis '" + std::string(s) +
                                  "'");
    }
    v = v * 10 + (c - '0');
  }
  if (v < 1) {
    throw std::invalid_argument("parse_dims: axes must be >= 1, got '" +
                                std::string(s) + "'");
  }
  return v;
}

}  // namespace

geom::IVec3 parse_dims(std::string_view s) {
  if (s.find('x') != std::string_view::npos) {
    const auto first = s.find('x');
    const auto second = s.find('x', first + 1);
    if (second == std::string_view::npos ||
        s.find('x', second + 1) != std::string_view::npos) {
      throw std::invalid_argument("parse_dims: expected XxYxZ, got '" +
                                  std::string(s) + "'");
    }
    return {parse_axis(s.substr(0, first)),
            parse_axis(s.substr(first + 1, second - first - 1)),
            parse_axis(s.substr(second + 1))};
  }
  if (s.size() != 3) {
    throw std::invalid_argument(
        "parse_dims: expected 3 digits (e.g. 444) or XxYxZ (e.g. 12x4x4), "
        "got '" + std::string(s) + "'");
  }
  return {parse_axis(s.substr(0, 1)), parse_axis(s.substr(1, 1)),
          parse_axis(s.substr(2, 1))};
}

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      std::string_view body = arg.substr(2);
      if (auto eq = body.find('='); eq != std::string_view::npos) {
        flags_.emplace_back(std::string(body.substr(0, eq)),
                            std::string(body.substr(eq + 1)));
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        flags_.emplace_back(std::string(body), std::string(argv[++i]));
      } else {
        flags_.emplace_back(std::string(body), std::string());
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Cli::has(std::string_view name) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return true;
  }
  return false;
}

std::optional<std::string> Cli::get(std::string_view name) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return value;
  }
  return std::nullopt;
}

std::string Cli::get_or(std::string_view name, std::string_view fallback) const {
  auto v = get(name);
  return v ? *v : std::string(fallback);
}

long Cli::get_or(std::string_view name, long fallback) const {
  auto v = get(name);
  return v && !v->empty() ? std::strtol(v->c_str(), nullptr, 10) : fallback;
}

double Cli::get_or(std::string_view name, double fallback) const {
  auto v = get(name);
  return v && !v->empty() ? std::strtod(v->c_str(), nullptr) : fallback;
}

}  // namespace fasda::util
