#include "fasda/core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>

#include "fasda/md/energy.hpp"
#include "fasda/obs/obs.hpp"
#include "fasda/shard/transport.hpp"
#include "fasda/sim/parallel_scheduler.hpp"

namespace fasda::core {

namespace {

/// Effective worker count: 0 = auto (hardware concurrency), clamped to the
/// shard count — extra workers past one-per-node can only add dispatch
/// overhead, never speed.
int effective_workers(int requested, int num_nodes) {
  int workers = requested;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  return std::max(1, std::min(workers, num_nodes));
}

}  // namespace

Simulation::Simulation(const md::SystemState& state, md::ForceField ff,
                       const ClusterConfig& config)
    : ff_(std::move(ff)),
      config_(config),
      map_(config.node_dims, config.cells_per_node),
      num_particles_(state.size()) {
  if (state.cell_dims != map_.global_dims()) {
    throw std::invalid_argument(
        "Simulation: state.cell_dims must equal node_dims * cells_per_node");
  }
  if (std::abs(state.cell_size - config.cutoff) > 1e-9) {
    throw std::invalid_argument(
        "Simulation: cell_size must equal the cutoff (R_c normalized to one "
        "cell edge, §3.4)");
  }

  if (config_.faults) config_.faults->validate(map_.num_nodes());

  // Telemetry first: the shards must cover every node before any component
  // resolves handles or emits into its own shard.
  if (config_.obs) config_.obs->attach_cluster(map_.num_nodes());

  if (config.proc_workers > 0) {
    // Worker processes each run the serial scheduler over their owned
    // slice: ThreadPool threads do not survive fork, and cross-process
    // parallelism is the point.
    if (config.num_worker_threads > 1) {
      throw std::invalid_argument(
          "Simulation: proc_workers and num_worker_threads > 1 are mutually "
          "exclusive (each worker process runs the serial scheduler)");
    }
    if (sim::resolve_tick_mode(config.tick_mode) == sim::TickMode::kValidate) {
      throw std::invalid_argument(
          "Simulation: kValidate is incompatible with proc_workers (the "
          "oracle audit is process-local)");
    }
    if (config.sync_mode == sync::SyncMode::kBulk &&
        config.bulk_barrier_latency < 1) {
      throw std::invalid_argument(
          "Simulation: bulk_barrier_latency must be >= 1 with worker "
          "processes");
    }
    num_workers_ = 1;
  } else {
    num_workers_ =
        effective_workers(config.num_worker_threads, map_.num_nodes());
  }
  if (num_workers_ > 1) {
    // Parallel determinism needs every cross-shard element to expose only
    // >= 1-cycle-delayed state (see DESIGN.md "Threading model"). The
    // fabrics enforce link_latency >= 1 themselves; the bulk barrier is
    // checked here.
    if (config.sync_mode == sync::SyncMode::kBulk &&
        config.bulk_barrier_latency < 1) {
      throw std::invalid_argument(
          "Simulation: bulk_barrier_latency must be >= 1 with parallel "
          "workers");
    }
    scheduler_ = std::make_unique<sim::ParallelScheduler>(
        static_cast<std::size_t>(num_workers_));
  } else {
    scheduler_ = std::make_unique<sim::Scheduler>();
  }
  scheduler_->set_tick_mode(sim::resolve_tick_mode(config.tick_mode));

  model_ = std::make_unique<pe::ForceModel>(ff_, config.cutoff, config.table,
                                            config.terms);
  pos_fabric_ = std::make_unique<net::Fabric<net::PosRecord>>(config.channel);
  frc_fabric_ = std::make_unique<net::Fabric<net::FrcRecord>>(config.channel);
  mig_fabric_ = std::make_unique<net::Fabric<net::MigRecord>>(config.channel);
  if (config.faults) {
    pos_fabric_->set_fault_plan(*config.faults, net::kPosChannelSalt);
    frc_fabric_->set_fault_plan(*config.faults, net::kFrcChannelSalt);
    mig_fabric_->set_fault_plan(*config.faults, net::kMigChannelSalt);
  }
  if (config.sync_mode == sync::SyncMode::kBulk) {
    if (config.proc_workers > 0) {
      // The split barrier forks with the workers: each copy flips to the
      // vote/mirror protocol post-fork while the parent's keeps counting.
      barrier_ = std::make_unique<shard::SplitBarrier>(
          map_.num_nodes(), config.bulk_barrier_latency);
    } else {
      barrier_ = std::make_unique<sync::BulkBarrier>(
          map_.num_nodes(), config.bulk_barrier_latency);
    }
    // Elision poke: the completing arrival schedules the release while the
    // waiting nodes' shards may already be asleep with no wake of their
    // own. wake_all_shards is the thread-safe poke (the arrival happens
    // inside a worker's shard tick).
    barrier_->set_wake_hook([sched = scheduler_.get()](sim::Cycle at) {
      sched->wake_all_shards(at);
    });
  }

  fpga::NodeConfig node_config;
  node_config.cbb.pes_per_spe = config.pes_per_spe;
  node_config.cbb.spes = config.spes;
  node_config.cbb.pe.num_filters = config.filters_per_pipeline;
  node_config.cbb.pe.pipeline_latency = config.pipeline_latency;
  node_config.cbb.pe.pair_buffer_depth =
      static_cast<std::size_t>(config.pe_pair_buffer_depth);
  node_config.cbb.pe.input_queue_depth =
      static_cast<std::size_t>(config.pe_input_queue_depth);
  node_config.sync_mode = config.sync_mode;
  node_config.reliable = config.faults.has_value();
  node_config.reliability = config.reliability;
  node_config.obs = config_.obs;

  for (idmap::NodeId id = 0; id < map_.num_nodes(); ++id) {
    fpga::NodeConfig per_node = node_config;
    for (const auto& [straggler, factor] : config.stragglers) {
      if (straggler == id) per_node.slowdown = factor;
    }
    if (config_.faults) {
      per_node.node_faults = config_.faults->faults_for_node(id);
    }
    nodes_.push_back(std::make_unique<fpga::FpgaNode>(
        id, per_node, *model_, map_, pos_fabric_.get(), frc_fabric_.get(),
        mig_fabric_.get(), barrier_.get()));
    nodes_.back()->register_with(*scheduler_);
  }

  // The fabrics carry all cross-shard traffic; their staged sends commit
  // single-threaded outside the sharded fan-out.
  scheduler_->add_clocked(pos_fabric_.get(), sim::kGlobalShard);
  scheduler_->add_clocked(frc_fabric_.get(), sim::kGlobalShard);
  scheduler_->add_clocked(mig_fabric_.get(), sim::kGlobalShard);

  // Fabric telemetry needs every endpoint attached (one egress counter per
  // destination), so it arms after the node loop above.
  if (config_.obs) {
    pos_fabric_->set_obs(config_.obs, obs::Comp::kNetPos, "pos");
    frc_fabric_->set_obs(config_.obs, obs::Comp::kNetFrc, "frc");
    mig_fabric_->set_obs(config_.obs, obs::Comp::kNetMig, "mig");
  }
  scheduler_->set_obs(config_.obs);

  // Load particles into the owning CBBs' caches.
  const geom::CellGrid grid = state.grid();
  const double inv_cell = 1.0 / state.cell_size;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const geom::Vec3d p = grid.wrap_position(state.positions[i]);
    const geom::IVec3 gcell = grid.cell_of(p);
    const geom::IVec3 node = map_.node_of_cell(gcell);
    const geom::IVec3 lcell = map_.local_cell(gcell);
    pe::CellParticle particle;
    particle.pos = {
        fixed::FixedCoord::from_cell_offset(2, p.x * inv_cell - gcell.x),
        fixed::FixedCoord::from_cell_offset(2, p.y * inv_cell - gcell.y),
        fixed::FixedCoord::from_cell_offset(2, p.z * inv_cell - gcell.z)};
    particle.vel = state.velocities[i].cast<float>();
    particle.elem = state.elements[i];
    particle.id = static_cast<std::uint32_t>(i);
    nodes_[map_.node_id(node)]->cbb_at(lcell).particles().push_back(particle);
  }

  // The transport is constructed last: the process transport forks here,
  // and the workers must inherit the fully built, particle-loaded cluster.
  shard::ClusterRefs refs;
  refs.scheduler = scheduler_.get();
  refs.pos = pos_fabric_.get();
  refs.frc = frc_fabric_.get();
  refs.mig = mig_fabric_.get();
  refs.nodes = &nodes_;
  refs.obs = config_.obs;
  refs.ff = &ff_;
  refs.cutoff = config.cutoff;
  refs.dt_fs = static_cast<float>(config.dt);
  if (config.proc_workers > 0) {
    refs.barrier = static_cast<shard::SplitBarrier*>(barrier_.get());
    transport_ = shard::make_proc_transport(refs, config.proc_workers);
  } else {
    transport_ = shard::make_inproc_transport(refs);
  }
}

Simulation::~Simulation() = default;

void Simulation::run(int iterations) {
  if (iterations <= 0) return;
  const sim::Cycle start = transport_->cycle();
  shard::RunLimits limits;
  limits.max_cycles_per_iteration = config_.max_cycles_per_iteration;
  limits.watchdog_budget = config_.watchdog_budget;
  limits.fault_aware = config_.faults.has_value();
  try {
    // The transport arms the nodes and drives the run: in-process this is
    // the historical Scheduler::run_until loop verbatim; with worker
    // processes it is the lock-step round protocol (DESIGN.md §14). Both
    // throw the same typed errors with identical detection cycles.
    transport_->run(iterations, limits);
  } catch (const sync::NodeFailureError& e) {
    // Mark the detection on the health track before the failure unwinds, so
    // a supervised trace shows exactly where each attempt died. The stamp is
    // the watchdog's own detection cycle — deterministic, so the event is
    // identical for any worker count.
    if (config_.obs) {
      config_.obs->trace().instant(
          obs::kClusterShard, e.node(), obs::Comp::kHealth, "node-failure",
          e.detected_at(), "cycles_stalled",
          static_cast<std::int64_t>(e.cycles_stalled()));
    }
    publish_metrics();
    throw;
  } catch (const sync::DegradedLinkError& e) {
    if (config_.obs) {
      config_.obs->trace().instant(
          obs::kClusterShard, e.link().src, obs::Comp::kHealth,
          "degraded-link", e.link().detected_at, "dst",
          static_cast<std::int64_t>(e.link().dst));
    }
    publish_metrics();
    throw;
  }
  last_run_cycles_ = transport_->cycle() - start;
  last_run_iterations_ = iterations;
  publish_metrics();
}

const sim::ElisionStats& Simulation::elision_stats() const {
  return transport_->elision_stats();
}

int Simulation::proc_workers() const { return transport_->num_procs(); }

std::vector<pid_t> Simulation::proc_worker_pids() const {
  return transport_->worker_pids();
}

void Simulation::publish_metrics() {
  if (!config_.obs) return;
  obs::Registry& m = config_.obs->metrics();
  const sim::Cycle now = transport_->cycle();

  m.set(obs::kClusterNode, m.gauge("sim.cycles"), static_cast<double>(now));
  m.set(obs::kClusterNode, m.gauge("sim.us_per_day"), microseconds_per_day());

  // Oracle audit counters, published in validate mode only: the elide and
  // naive modes must keep the registry bitwise identical to each other, so
  // neither writes any elision series.
  if (scheduler_->tick_mode() == sim::TickMode::kValidate) {
    const sim::ElisionStats& e = scheduler_->elision_stats();
    m.set_counter(obs::kClusterNode, m.counter("sim.elision.executed_cycles"),
                  e.executed_cycles);
    m.set_counter(obs::kClusterNode, m.counter("sim.elision.idle_wakes"),
                  e.idle_wakes);
    m.set_counter(obs::kClusterNode, m.counter("sim.elision.mispredicts"),
                  e.mispredicts);
  }

  const UtilizationReport u = utilization();
  m.set(obs::kClusterNode, m.gauge("util.pr.hardware"), u.pr_hardware);
  m.set(obs::kClusterNode, m.gauge("util.pr.time"), u.pr_time);
  m.set(obs::kClusterNode, m.gauge("util.fr.hardware"), u.fr_hardware);
  m.set(obs::kClusterNode, m.gauge("util.fr.time"), u.fr_time);
  m.set(obs::kClusterNode, m.gauge("util.filter.hardware"), u.filter_hardware);
  m.set(obs::kClusterNode, m.gauge("util.filter.time"), u.filter_time);
  m.set(obs::kClusterNode, m.gauge("util.pe.hardware"), u.pe_hardware);
  m.set(obs::kClusterNode, m.gauge("util.pe.time"), u.pe_time);
  m.set(obs::kClusterNode, m.gauge("util.mu.hardware"), u.mu_hardware);
  m.set(obs::kClusterNode, m.gauge("util.mu.time"), u.mu_time);

  const TrafficReport t = traffic();
  m.set(obs::kClusterNode, m.gauge("net.pos.gbps_per_node"),
        t.position_gbps_per_node);
  m.set(obs::kClusterNode, m.gauge("net.frc.gbps_per_node"),
        t.force_gbps_per_node);

  // Reliability record: cluster totals, then a per-link breakdown at the
  // source node — but only for links that actually saw trouble, so a clean
  // run does not bloat the registry with n^2 zero series.
  const net::LinkStats& r = t.reliability_total;
  m.set_counter(obs::kClusterNode, m.counter("net.rel.retransmits"),
                r.retransmits);
  m.set_counter(obs::kClusterNode, m.counter("net.rel.timeouts"), r.timeouts);
  m.set_counter(obs::kClusterNode, m.counter("net.rel.acks"), r.acks_sent);
  m.set_counter(obs::kClusterNode, m.counter("net.rel.nacks"), r.nacks_sent);
  m.set(obs::kClusterNode, m.gauge("net.rel.max_retry_depth"),
        static_cast<double>(r.max_retry_depth));
  for (const auto& [link, s] : t.link_stats) {
    if (!s.faults_seen() && !s.retransmits) continue;
    const std::string base = "net.rel.to." + std::to_string(link.second) + ".";
    const int src = link.first;
    m.set_counter(src, m.counter(base + "drops"), s.injected_drops);
    m.set_counter(src, m.counter(base + "dups"), s.injected_dups);
    m.set_counter(src, m.counter(base + "reorders"), s.injected_reorders);
    m.set_counter(src, m.counter(base + "corrupts"), s.injected_corrupts);
    m.set_counter(src, m.counter(base + "retransmits"), s.retransmits);
    m.set_counter(src, m.counter(base + "crc_failures"), s.crc_failures);
    m.set_counter(src, m.counter(base + "dups_discarded"),
                  s.duplicates_discarded);
    m.set_counter(src, m.counter(base + "recovery_cycles"),
                  static_cast<std::uint64_t>(s.recovery_cycles));
  }

  // Per-node health and a per-node PE time-utilization surface (the
  // cluster-wide figure above averages over all nodes; stragglers show up
  // here).
  const obs::Handle h_hb = m.gauge("node.heartbeat");
  const obs::Handle h_alive = m.gauge("node.alive");
  const obs::Handle h_pe_time = m.gauge("node.pe.time_util");
  const shard::ClusterFold* fold = transport_->fold();
  for (const auto& node : nodes_) {
    const int id = static_cast<int>(node->id());
    const shard::ClusterFold::Node* fn =
        fold ? &fold->nodes.at(static_cast<std::size_t>(id)) : nullptr;
    m.set(id, h_hb,
          static_cast<double>(fn ? fn->heartbeat : node->last_heartbeat()));
    m.set(id, h_alive, (fn ? fn->alive : node->alive(now)) ? 1.0 : 0.0);
    const std::uint64_t pe_instances =
        static_cast<std::uint64_t>(node->num_cbbs()) *
        static_cast<std::uint64_t>(config_.spes) *
        static_cast<std::uint64_t>(config_.pes_per_spe);
    const sim::UtilCounter& pe = fn ? fn->pe : node->pe_util();
    m.set(id, h_pe_time, pe.time_utilization(now, pe_instances));
  }
}

md::SystemState Simulation::state() const {
  md::SystemState out;
  out.cell_dims = map_.global_dims();
  out.cell_size = config_.cutoff;
  out.positions.resize(num_particles_);
  out.velocities.resize(num_particles_);
  out.elements.resize(num_particles_);
  for (const auto& node : nodes_) {
    for (int c = 0; c < node->num_cbbs(); ++c) {
      const cbb::Cbb& block = node->cbb_by_index(c);
      const geom::IVec3 gcell = block.global_cell();
      for (const pe::CellParticle& p : block.particles()) {
        out.positions[p.id] = {(gcell.x + p.pos.x.frac()) * config_.cutoff,
                               (gcell.y + p.pos.y.frac()) * config_.cutoff,
                               (gcell.z + p.pos.z.frac()) * config_.cutoff};
        out.velocities[p.id] = p.vel.cast<double>();
        out.elements[p.id] = p.elem;
      }
    }
  }
  return out;
}

std::vector<geom::Vec3f> Simulation::forces_by_particle() const {
  std::vector<geom::Vec3f> out(num_particles_);
  // Force readouts derive from fixed-point accumulators only the owning
  // process holds, so the process transport carries them in the fold; the
  // particle caches themselves are folded back into the parent's CBBs.
  const shard::ClusterFold* fold = transport_->fold();
  for (const auto& node : nodes_) {
    const auto* fn =
        fold ? &fold->nodes.at(static_cast<std::size_t>(node->id())) : nullptr;
    for (int c = 0; c < node->num_cbbs(); ++c) {
      const cbb::Cbb& block = node->cbb_by_index(c);
      const auto& particles = block.particles();
      const std::vector<geom::Vec3f> forces =
          fn ? (static_cast<std::size_t>(c) < fn->cbb_forces.size()
                    ? fn->cbb_forces[static_cast<std::size_t>(c)]
                    : std::vector<geom::Vec3f>{})
             : block.forces();
      for (std::size_t s = 0; s < forces.size() && s < particles.size(); ++s) {
        out[particles[s].id] = forces[s];
      }
    }
  }
  return out;
}

double Simulation::potential_energy() const {
  return md::compute_potential_energy(state(), ff_, config_.cutoff,
                                      config_.terms);
}

double Simulation::total_energy() const {
  const md::SystemState s = state();
  return md::compute_potential_energy(s, ff_, config_.cutoff, config_.terms) +
         md::kinetic_energy(s, ff_);
}

sim::Cycle Simulation::total_cycles() const { return transport_->cycle(); }

double Simulation::microseconds_per_day() const {
  if (last_run_cycles_ == 0 || last_run_iterations_ == 0) return 0.0;
  const double cycles_per_step = static_cast<double>(last_run_cycles_) /
                                 static_cast<double>(last_run_iterations_);
  const double seconds_per_step = cycles_per_step / config_.clock_hz;
  const double steps_per_day = 86400.0 / seconds_per_step;
  return steps_per_day * config_.dt * 1e-9;  // fs -> µs
}

UtilizationReport Simulation::utilization() const {
  sim::UtilCounter pr, fr, filter, pe, mu;
  const shard::ClusterFold* fold = transport_->fold();
  for (const auto& node : nodes_) {
    if (fold) {
      const auto& fn =
          fold->nodes.at(static_cast<std::size_t>(node->id()));
      pr.merge(fn.pos_ring);
      fr.merge(fn.frc_ring);
      filter.merge(fn.filter);
      pe.merge(fn.pe);
      mu.merge(fn.mu);
    } else {
      pr.merge(node->pos_ring_util());
      fr.merge(node->frc_ring_util());
      filter.merge(node->filter_util());
      pe.merge(node->pe_util());
      mu.merge(node->mu_util());
    }
  }
  UtilizationReport out;
  const auto total = transport_->cycle();
  // Time-utilization denominators: one "instance" per component whose
  // active flag was recorded each tick. Rings and PEs record once per tick,
  // so active/capacity-style normalization uses the instance counts below.
  std::uint64_t ring_instances = 0, pe_instances = 0, cbb_instances = 0;
  for (const auto& node : nodes_) {
    ring_instances += static_cast<std::uint64_t>(config_.spes);
    pe_instances += static_cast<std::uint64_t>(node->num_cbbs()) *
                    config_.spes * config_.pes_per_spe;
    cbb_instances += static_cast<std::uint64_t>(node->num_cbbs());
  }
  out.pr_hardware = pr.hardware_utilization();
  out.pr_time = pr.time_utilization(total, ring_instances);
  out.fr_hardware = fr.hardware_utilization();
  out.fr_time = fr.time_utilization(total, ring_instances);
  out.filter_hardware = filter.hardware_utilization();
  out.filter_time = filter.time_utilization(total, pe_instances);
  out.pe_hardware = pe.hardware_utilization();
  out.pe_time = pe.time_utilization(total, pe_instances);
  out.mu_hardware = mu.hardware_utilization();
  out.mu_time = mu.time_utilization(total, cbb_instances);
  return out;
}

TrafficReport Simulation::traffic() const {
  TrafficReport out;
  const shard::ClusterFold* fold = transport_->fold();
  out.positions = fold ? fold->pos_traffic : pos_fabric_->traffic();
  out.forces = fold ? fold->frc_traffic : frc_fabric_->traffic();
  out.migrations = fold ? fold->mig_traffic : mig_fabric_->traffic();
  const double cycles = static_cast<double>(transport_->cycle());
  if (cycles > 0 && !nodes_.empty()) {
    const double bits_per_cycle_to_gbps = config_.clock_hz / 1e9;
    const double n = static_cast<double>(nodes_.size());
    out.position_gbps_per_node =
        static_cast<double>(out.positions.total_packets) * net::kPacketBits /
        cycles * bits_per_cycle_to_gbps / n;
    out.force_gbps_per_node =
        static_cast<double>(out.forces.total_packets) * net::kPacketBits /
        cycles * bits_per_cycle_to_gbps / n;
  }
  // Fold the reliability record into the report: fabric-side injected
  // faults plus endpoint-side protocol counters, merged per directed link
  // across the three channels.
  auto merge_map = [&](const std::map<net::Link, net::LinkStats>& m) {
    for (const auto& [link, stats] : m) out.link_stats[link].merge(stats);
  };
  if (fold) {
    merge_map(fold->pos_faults);
    merge_map(fold->frc_faults);
    merge_map(fold->mig_faults);
    for (const auto& fn : fold->nodes) merge_map(fn.link_stats);
  } else {
    merge_map(pos_fabric_->fault_stats());
    merge_map(frc_fabric_->fault_stats());
    merge_map(mig_fabric_->fault_stats());
    for (const auto& node : nodes_) {
      merge_map(node->pos_endpoint().link_stats());
      merge_map(node->frc_endpoint().link_stats());
      merge_map(node->mig_endpoint().link_stats());
    }
  }
  for (const auto& [link, stats] : out.link_stats) {
    out.reliability_total.merge(stats);
  }
  return out;
}

const std::vector<sim::Cycle>& Simulation::force_phase_starts(
    idmap::NodeId node) const {
  if (const shard::ClusterFold* fold = transport_->fold()) {
    return fold->nodes.at(static_cast<std::size_t>(node)).force_phase_starts;
  }
  return nodes_.at(node)->force_phase_starts();
}

std::uint64_t Simulation::pairs_issued() const {
  std::uint64_t n = 0;
  if (const shard::ClusterFold* fold = transport_->fold()) {
    for (const auto& fn : fold->nodes) n += fn.pairs_issued;
    return n;
  }
  for (const auto& node : nodes_) n += node->pairs_issued();
  return n;
}

}  // namespace fasda::core
