#include "fasda/cbb/cbb.hpp"

#include <cassert>
#include <cmath>

namespace fasda::cbb {

namespace {

fixed::FixedCoord rebase(fixed::FixedCoord c, int dcells) {
  return fixed::FixedCoord::from_raw(
      c.raw() +
      static_cast<std::uint32_t>(dcells * static_cast<int>(fixed::FixedCoord::kOne)));
}

fixed::FixedVec3 rebase(const fixed::FixedVec3& p, const geom::IVec3& rcid) {
  return {rebase(p.x, rcid.x - 2), rebase(p.y, rcid.y - 2),
          rebase(p.z, rcid.z - 2)};
}

}  // namespace

FcProbe::Fn FcProbe::hook;

// ---------------------------------------------------------------- stations

class Cbb::PosStation : public ring::Station<ring::PosToken> {
 public:
  PosStation(Cbb* cbb, int spe) : cbb_(cbb), spe_(spe) {}

  Action classify(const ring::PosToken& t) const override {
    if (!cbb_->map_.accepts_position(t.src_lcid, cbb_->lcell_)) {
      return Action::kPass;
    }
    return t.deliveries_remaining <= 1 ? Action::kDeliverAndDrop
                                       : Action::kDeliver;
  }

  bool try_deliver(ring::PosToken& t) override {
    auto& fifo = *cbb_->arrivals_[spe_];
    if (!fifo.can_push()) return false;
    pe::Reference ref;
    ref.pos = rebase(t.offset, cbb_->map_.lcid_to_rcid(t.src_lcid, cbb_->lcell_));
    ref.elem = t.elem;
    ref.is_home = false;
    ref.src_lcid = t.src_lcid;
    ref.slot = t.slot;
    fifo.push(ref);
    t.deliveries_remaining--;
    return true;
  }

  sim::Fifo<ring::PosToken>* inject_source() override {
    return cbb_->pr_inject_[spe_].get();
  }

 private:
  Cbb* cbb_;
  int spe_;
};

class Cbb::FrcStation : public ring::Station<ring::ForceToken> {
 public:
  FrcStation(Cbb* cbb, int spe) : cbb_(cbb), spe_(spe) {}

  Action classify(const ring::ForceToken& t) const override {
    return t.dest_lcid == cbb_->lcell_ ? Action::kDeliverAndDrop : Action::kPass;
  }

  bool try_deliver(ring::ForceToken& t) override {
    // The FC-N write port accepts one ring delivery per cycle, which is the
    // most the FRN can hand over anyway.
    assert(t.slot < cbb_->forces_.size());
    if (FcProbe::hook) FcProbe::hook(cbb_->gcell_, t.slot, t.force, -1);
    cbb_->forces_[t.slot].add(t.force);
    return true;
  }

  sim::Fifo<ring::ForceToken>* inject_source() override {
    return cbb_->fr_inject_[spe_].get();
  }

 private:
  Cbb* cbb_;
  int spe_;
};

class Cbb::MuStation : public ring::Station<ring::MigrateToken> {
 public:
  explicit MuStation(Cbb* cbb) : cbb_(cbb) {}

  Action classify(const ring::MigrateToken& t) const override {
    return t.dest_lcid == cbb_->lcell_ ? Action::kDeliverAndDrop : Action::kPass;
  }

  bool try_deliver(ring::MigrateToken& t) override {
    return cbb_->mu_arrivals_->push(t);
  }

  sim::Fifo<ring::MigrateToken>* inject_source() override {
    return cbb_->mu_inject_.get();
  }

 private:
  Cbb* cbb_;
};

// ---------------------------------------------------------------- lifecycle

Cbb::Cbb(std::string name, const CbbConfig& config, const pe::ForceModel& model,
         const idmap::ClusterMap& map, geom::IVec3 node, geom::IVec3 lcell)
    : Component(std::move(name)),
      config_(config),
      model_(model),
      map_(map),
      node_(node),
      lcell_(lcell),
      gcell_(map.global_cell(node, lcell)) {
  // How many of this cell's 13 forward neighbour cells live on this node
  // (the multicast count for locally injected position tokens).
  for (const geom::IVec3& d : geom::half_shell_offsets()) {
    const geom::IVec3 target = map_.grid().wrap(gcell_ + d);
    if (map_.node_of_cell(target) == node_) ++local_pos_deliveries_;
  }
  has_remote_dests_ = !map_.remote_destinations(gcell_).empty();

  for (int s = 0; s < config_.spes; ++s) {
    pr_inject_.push_back(
        std::make_unique<sim::Fifo<ring::PosToken>>(config_.fifo_depth));
    fr_inject_.push_back(
        std::make_unique<sim::Fifo<ring::ForceToken>>(config_.fifo_depth));
    arrivals_.push_back(std::make_unique<sim::Fifo<pe::Reference>>(
        config_.arrival_buffer_depth));
    dispatch_.emplace_back();
    pos_stations_.push_back(std::make_unique<PosStation>(this, s));
    frc_stations_.push_back(std::make_unique<FrcStation>(this, s));
    for (int k = 0; k < config_.pes_per_spe; ++k) {
      const int fc_index = s * (config_.pes_per_spe + 1) + k;
      pes_.push_back(std::make_unique<pe::ProcessingElement>(
          Component::name() + "/pe" + std::to_string(s) + "." + std::to_string(k),
          config_.pe, model_, &particles_, this, fc_index));
    }
  }
  mu_station_ = std::make_unique<MuStation>(this);
  mu_inject_ = std::make_unique<sim::Fifo<ring::MigrateToken>>(config_.fifo_depth);
  mu_arrivals_ = std::make_unique<sim::Fifo<ring::MigrateToken>>(config_.fifo_depth);
}

Cbb::~Cbb() = default;

std::vector<sim::Component*> Cbb::components() {
  std::vector<sim::Component*> out{this};
  for (auto& p : pes_) out.push_back(p.get());
  return out;
}

std::vector<sim::Clocked*> Cbb::clocked() {
  std::vector<sim::Clocked*> out;
  for (auto& f : pr_inject_) out.push_back(f.get());
  for (auto& f : fr_inject_) out.push_back(f.get());
  for (auto& f : arrivals_) out.push_back(f.get());
  out.push_back(mu_inject_.get());
  out.push_back(mu_arrivals_.get());
  for (auto& p : pes_) {
    out.push_back(&p->input());
    out.push_back(&p->output());
  }
  return out;
}

ring::Station<ring::PosToken>& Cbb::pos_station(int spe) {
  return *pos_stations_[spe];
}
ring::Station<ring::ForceToken>& Cbb::frc_station(int spe) {
  return *frc_stations_[spe];
}
ring::Station<ring::MigrateToken>& Cbb::mu_station() { return *mu_station_; }

// ---------------------------------------------------------------- phases

void Cbb::begin_force_phase() {
  // Fold in migrations before the phase fixes slot numbering.
  if (!migrated_.empty()) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < particles_.size(); ++r) {
      if (r < migrated_.size() && migrated_[r]) continue;
      particles_[w++] = particles_[r];
    }
    particles_.resize(w);
    migrated_.clear();
  }
  forces_.assign(particles_.size(), fixed::ForceAccum{});
  inject_cursor_ = 0;
  // Intra-cell pairs: every home particle becomes a home reference exactly
  // once, spread round-robin over the SPE dispatch queues.
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    pe::Reference ref;
    ref.pos = particles_[i].pos;
    ref.elem = particles_[i].elem;
    ref.is_home = true;
    ref.home_index = static_cast<std::uint16_t>(i);
    dispatch_[i % dispatch_.size()].push_back(ref);
  }
  for (auto& p : pes_) p->reset_phase();
  phase_ = Phase::kForce;
}

bool Cbb::force_quiescent() const {
  if (inject_cursor_ < particles_.size()) return false;
  for (int s = 0; s < config_.spes; ++s) {
    if (pr_inject_[s]->total_occupancy() != 0) return false;
    if (fr_inject_[s]->total_occupancy() != 0) return false;
    if (arrivals_[s]->total_occupancy() != 0) return false;
    if (!dispatch_[s].empty()) return false;
  }
  for (const auto& p : pes_) {
    if (!p->quiescent()) return false;
  }
  return true;
}

void Cbb::begin_motion_update(float dt_fs, double cell_size,
                              const md::ForceField& ff) {
  phase_ = Phase::kMotionUpdate;
  mu_cursor_ = 0;
  mu_limit_ = particles_.size();
  migrated_.assign(particles_.size(), false);
  mu_dt_ = dt_fs;
  mu_inv_cell_ = 1.0 / cell_size;
  mu_ff_ = &ff;
}

bool Cbb::mu_done() const {
  return phase_ == Phase::kMotionUpdate && mu_cursor_ >= mu_limit_ &&
         mu_inject_->total_occupancy() == 0;
}

// ---------------------------------------------------------------- per cycle

void Cbb::tick(sim::Cycle) {
  // Migration arrivals may land in any phase tail; they are already updated
  // by their previous home cell's MU, so they are appended verbatim.
  while (!mu_arrivals_->empty()) {
    const ring::MigrateToken t = mu_arrivals_->pop();
    particles_.push_back(pe::CellParticle{t.offset, t.vel, t.elem, t.particle_id});
  }

  switch (phase_) {
    case Phase::kIdle:
      mu_util_.record(0, 1, false);
      break;
    case Phase::kForce:
      tick_force_phase();
      mu_util_.record(0, 1, false);
      break;
    case Phase::kMotionUpdate:
      tick_motion_update();
      break;
  }
}

void Cbb::tick_force_phase() {
  // 1. Home position broadcast: one particle per SPE ring per cycle, taken
  //    in slot order (the PC read port). The same read feeds the P2R chain
  //    when the cell borders another FPGA.
  if (inject_cursor_ < particles_.size()) {
    const int spe = static_cast<int>(inject_cursor_) % config_.spes;
    const pe::CellParticle& p = particles_[inject_cursor_];
    const bool needs_local_ring = local_pos_deliveries_ > 0;
    if (!needs_local_ring || pr_inject_[spe]->can_push()) {
      if (needs_local_ring) {
        ring::PosToken token;
        token.src_lcid = lcell_;
        token.offset = p.pos;
        token.elem = p.elem;
        token.slot = static_cast<std::uint16_t>(inject_cursor_);
        token.deliveries_remaining =
            static_cast<std::uint8_t>(local_pos_deliveries_);
        pr_inject_[spe]->push(token);
      }
      if (has_remote_dests_ && offer_remote_) {
        offer_remote_(RemotePosition{
            gcell_, p.pos, p.elem, static_cast<std::uint16_t>(inject_cursor_)});
      }
      ++inject_cursor_;
    }
  }

  for (int s = 0; s < config_.spes; ++s) {
    // 2. Arrival intake: PRN deliveries queue up for the dispatcher.
    if (!arrivals_[s]->empty() &&
        dispatch_[s].size() < config_.arrival_buffer_depth) {
      dispatch_[s].push_back(arrivals_[s]->pop());
    }
    // 3. Dispatch: one reference per cycle to the least-loaded PE (Fig. 6's
    //    P-Dispatcher).
    if (!dispatch_[s].empty()) {
      pe::ProcessingElement* best = nullptr;
      std::size_t best_space = 0;
      for (int k = 0; k < config_.pes_per_spe; ++k) {
        auto& candidate = pe_at(s, k);
        const std::size_t space =
            candidate.input().capacity() - candidate.input().total_occupancy();
        if (space > best_space) {
          best_space = space;
          best = &candidate;
        }
      }
      if (best != nullptr) {
        best->input().push(dispatch_[s].front());
        dispatch_[s].pop_front();
      }
    }
    // 4. Force-output arbitration: one retired neighbour force per cycle per
    //    SPE onto its force ring.
    if (fr_inject_[s]->can_push()) {
      for (int k = 0; k < config_.pes_per_spe; ++k) {
        auto& out = pe_at(s, k).output();
        if (!out.empty()) {
          fr_inject_[s]->push(out.pop());
          break;
        }
      }
    }
  }
}

void Cbb::tick_motion_update() {
  if (mu_cursor_ >= mu_limit_) {
    mu_util_.record(0, 1, false);
    return;
  }
  pe::CellParticle& p = particles_[mu_cursor_];
  const float inv_mass =
      static_cast<float>(1.0 / mu_ff_->element(p.elem).mass);
  // Leapfrog kick with the adder-tree-combined force, then drift with the
  // delta quantized straight onto the fixed-point grid (§4.2).
  const geom::Vec3f vel =
      p.vel + forces_[mu_cursor_].to_vec3f() * (mu_dt_ * inv_mass);

  geom::IVec3 shift{};
  fixed::FixedVec3 pos = p.pos;
  auto advance = [&](fixed::FixedCoord& c, float v, int& shift_c) {
    const double delta_cells =
        static_cast<double>(v) * static_cast<double>(mu_dt_) * mu_inv_cell_;
    const auto delta_q = static_cast<std::int64_t>(
        std::llround(delta_cells * fixed::FixedCoord::kOne));
    std::int64_t raw = static_cast<std::int64_t>(c.raw()) + delta_q;
    shift_c = static_cast<int>(raw >> fixed::FixedCoord::kFracBits) - 2;
    raw -= static_cast<std::int64_t>(shift_c) *
           static_cast<std::int64_t>(fixed::FixedCoord::kOne);
    c = fixed::FixedCoord::from_raw(static_cast<std::uint32_t>(raw));
  };
  advance(pos.x, vel.x, shift.x);
  advance(pos.y, vel.y, shift.y);
  advance(pos.z, vel.z, shift.z);

  if (shift == geom::IVec3{0, 0, 0}) {
    p.vel = vel;
    p.pos = pos;
    ++mu_cursor_;
    mu_util_.record(1, 1, true);
    return;
  }
  // Migration: LCID arithmetic wraps in the global frame, so the token's
  // destination is valid whether the target cell is local or remote.
  if (!mu_inject_->can_push()) {
    mu_util_.record(0, 1, true);  // stalled on the MU ring
    return;
  }
  ring::MigrateToken token;
  token.dest_lcid = map_.grid().wrap(lcell_ + shift);
  token.offset = pos;
  token.vel = vel;
  token.elem = p.elem;
  token.particle_id = p.id;
  mu_inject_->push(token);
  migrated_[mu_cursor_] = true;
  ++mu_cursor_;
  mu_util_.record(1, 1, true);
}

sim::Cycle Cbb::next_wake(sim::Cycle now) const {
  if (!mu_arrivals_->empty()) return now;
  switch (phase_) {
    case Phase::kIdle:
      break;
    case Phase::kForce: {
      if (inject_cursor_ < particles_.size()) return now;
      for (int s = 0; s < config_.spes; ++s) {
        if (!arrivals_[s]->empty() || !dispatch_[s].empty()) return now;
      }
      for (const auto& p : pes_) {
        if (!p->output().empty()) return now;
      }
      break;
    }
    case Phase::kMotionUpdate:
      if (mu_cursor_ < mu_limit_) return now;
      break;
  }
  return sim::kNeverCycle;
}

void Cbb::skip_idle(sim::Cycle from, sim::Cycle to) {
  // Every phase's idle tick path records mu_util_(0, 1, false) and nothing
  // else — the kIdle case, a drained force phase, and a finished MU cursor
  // all hit the same bookkeeping.
  mu_util_.record(0, to - from, false);
}

void Cbb::accumulate(std::uint16_t slot, const geom::Vec3f& force,
                     int fc_index) {
  assert(slot < forces_.size());
  if (FcProbe::hook) FcProbe::hook(gcell_, slot, force, fc_index);
  forces_[slot].add(force);
}

std::vector<geom::Vec3f> Cbb::forces() const {
  std::vector<geom::Vec3f> out;
  out.reserve(forces_.size());
  for (const fixed::ForceAccum& f : forces_) out.push_back(f.to_vec3f());
  return out;
}

// ---------------------------------------------------------------- stats

sim::UtilCounter Cbb::pe_util() const {
  sim::UtilCounter out;
  for (const auto& p : pes_) out.merge(p->pe_util());
  return out;
}

sim::UtilCounter Cbb::filter_util() const {
  sim::UtilCounter out;
  for (const auto& p : pes_) out.merge(p->filter_util());
  return out;
}

std::uint64_t Cbb::pairs_issued() const {
  std::uint64_t n = 0;
  for (const auto& p : pes_) n += p->pairs_issued();
  return n;
}

}  // namespace fasda::cbb
