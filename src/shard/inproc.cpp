// In-process shard transport: every shard in one address space, driven by
// Scheduler::run_until. This is the historical core::Simulation::run loop
// moved behind the ShardTransport interface, byte for byte — the serial and
// thread-parallel schedulers both live behind it, so "1 thread" and "N
// threads" are the same transport.

#include <algorithm>
#include <memory>

#include "fasda/shard/transport.hpp"

namespace fasda::shard {

namespace {

class InProcTransport final : public ShardTransport {
 public:
  explicit InProcTransport(ClusterRefs refs) : r_(refs) {}

  const char* kind() const override { return "inproc"; }
  int num_procs() const override { return 0; }
  sim::Cycle cycle() const override { return r_.scheduler->cycle(); }
  const ClusterFold* fold() const override { return nullptr; }
  const sim::ElisionStats& elision_stats() const override {
    return r_.scheduler->elision_stats();
  }

  void run(int iterations, const RunLimits& limits) override {
    const auto& nodes = *r_.nodes;
    const sim::Cycle start = r_.scheduler->cycle();
    for (const auto& node : nodes) {
      node->start(iterations, r_.dt_fs, r_.cutoff, *r_.ff);
    }
    const sim::Cycle budget =
        start + limits.max_cycles_per_iteration *
                    static_cast<sim::Cycle>(iterations);
    // Elision windows must not sail past the cycle where the watchdog would
    // fire: a crashed node's heartbeat freezes while every surviving
    // component sleeps, so the deadline is external to the component
    // oracle. Live nodes' heartbeats advance through skips, pushing the
    // bound ahead.
    sim::Scheduler::ExternalWake watchdog_bound;
    if (limits.watchdog_budget > 0) {
      watchdog_bound = [this, &limits](sim::Cycle) {
        sim::Cycle bound = sim::kNeverCycle;
        for (const auto& node : *r_.nodes) {
          if (node->done()) continue;
          bound = std::min(bound,
                           node->last_heartbeat() + limits.watchdog_budget + 1);
        }
        return bound;
      };
    }
    r_.scheduler->run_until(
        [&] {
          // Evaluated on the caller's thread between cycles (workers idle),
          // so reading node state here is race-free and throwing is safe.
          const sim::Cycle now = r_.scheduler->cycle();
          if (limits.fault_aware) {
            for (const auto& node : nodes) {
              if (auto deg = node->degraded_link()) {
                const auto& peer =
                    nodes.at(static_cast<std::size_t>(deg->first.dst));
                const sim::Cycle silent = now - peer->last_heartbeat();
                if (!peer->done() && silent > kNodeSilenceSlack) {
                  throw sync::NodeFailureError(peer->id(), peer->phase_name(),
                                               silent, now);
                }
                throw sync::DegradedLinkError(deg->first, deg->second);
              }
            }
          }
          if (limits.watchdog_budget > 0) {
            for (const auto& node : nodes) {
              if (node->done()) continue;
              const sim::Cycle silent = now - node->last_heartbeat();
              if (silent > limits.watchdog_budget) {
                throw sync::NodeFailureError(node->id(), node->phase_name(),
                                             silent, now);
              }
            }
          }
          for (const auto& node : nodes) {
            if (!node->done()) return false;
          }
          return true;
        },
        budget, watchdog_bound);
  }

 private:
  ClusterRefs r_;
};

}  // namespace

std::unique_ptr<ShardTransport> make_inproc_transport(ClusterRefs refs) {
  return std::make_unique<InProcTransport>(refs);
}

}  // namespace fasda::shard
