// Process shard transport (DESIGN.md §14): one forked worker process per
// contiguous shard slice, driven in lock-step rounds by the parent.
//
// Each worker inherits the fully built cluster by fork (copy-on-write):
// nodes, fabrics, barrier, scheduler — already wired, handles resolved,
// particles loaded. The worker narrows its scheduler to the owned shard
// groups and the parent drives the decomposed elided loop over frames:
//
//   kStart   arm owned nodes, begin-run            → kStatus
//   kSweep   loop-top wake sweep                   → kWake
//   kJump    jump a globally dead window           → kStatus
//   kExec    execute one cycle (uplink capture)    → kReport
//   kDeliver routed deliveries + barrier releases  → (no reply)
//   kFinish  settle: flush deferred idle           → (no reply)
//   kFold    end-of-run cluster fold               → kFoldData
//
// The parent evaluates the done()/health predicate between rounds from the
// shipped statuses — the same reads, in the same node order, at the same
// cycles as the in-process transport — so failures surface with identical
// types, messages and detection cycles. Round ordering preserves the
// two-phase contract: a cycle's captured deliveries are applied on the
// destination side before any cycle later than their send executes, and
// every arrival stamp is >= send + 1, so no tick can observe a difference
// from the in-process delivery path.

#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fasda/net/wire.hpp"
#include "fasda/shard/frames.hpp"
#include "fasda/shard/transport.hpp"
#include "fasda/util/bytes.hpp"

namespace fasda::shard {

namespace {

using util::ByteReader;
using util::ByteWriter;

// ---------------------------------------------------------------- codecs

void put_status(ByteWriter& w, const NodeStatus& s) {
  w.u8(s.done ? 1 : 0);
  w.u64(s.heartbeat);
  w.str(s.phase);
  w.u8(s.has_degraded ? 1 : 0);
  if (s.has_degraded) {
    w.i32(s.degraded.src);
    w.i32(s.degraded.dst);
    w.u64(s.degraded.seq);
    w.u64(s.degraded.detected_at);
    w.i32(s.degraded.retries);
    w.str(s.degraded_channel);
  }
}

NodeStatus get_status(ByteReader& r) {
  NodeStatus s;
  s.done = r.u8() != 0;
  s.heartbeat = r.u64();
  s.phase = r.str();
  s.has_degraded = r.u8() != 0;
  if (s.has_degraded) {
    s.degraded.src = r.i32();
    s.degraded.dst = r.i32();
    s.degraded.seq = r.u64();
    s.degraded.detected_at = r.u64();
    s.degraded.retries = r.i32();
    s.degraded_channel = r.str();
  }
  return s;
}

void put_util(ByteWriter& w, const sim::UtilCounter& u) {
  w.u64(u.work);
  w.u64(u.capacity);
  w.u64(u.active_cycles);
}

sim::UtilCounter get_util(ByteReader& r) {
  sim::UtilCounter u;
  u.work = r.u64();
  u.capacity = r.u64();
  u.active_cycles = r.u64();
  return u;
}

void put_link_stats(ByteWriter& w, const net::LinkStats& s) {
  w.u64(s.injected_drops);
  w.u64(s.injected_dups);
  w.u64(s.injected_reorders);
  w.u64(s.injected_corrupts);
  w.u64(s.retransmits);
  w.u64(s.timeouts);
  w.u64(s.acks_sent);
  w.u64(s.nacks_sent);
  w.u64(s.duplicates_discarded);
  w.u64(s.crc_failures);
  w.i32(s.max_retry_depth);
  w.u64(s.recovery_cycles);
}

net::LinkStats get_link_stats(ByteReader& r) {
  net::LinkStats s;
  s.injected_drops = r.u64();
  s.injected_dups = r.u64();
  s.injected_reorders = r.u64();
  s.injected_corrupts = r.u64();
  s.retransmits = r.u64();
  s.timeouts = r.u64();
  s.acks_sent = r.u64();
  s.nacks_sent = r.u64();
  s.duplicates_discarded = r.u64();
  s.crc_failures = r.u64();
  s.max_retry_depth = r.i32();
  s.recovery_cycles = r.u64();
  return s;
}

void put_link_map(ByteWriter& w, const std::map<net::Link, net::LinkStats>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [link, stats] : m) {
    w.i32(link.first);
    w.i32(link.second);
    put_link_stats(w, stats);
  }
}

void get_link_map(ByteReader& r, std::map<net::Link, net::LinkStats>& out) {
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const net::NodeId src = r.i32();
    const net::NodeId dst = r.i32();
    out[{src, dst}].merge(get_link_stats(r));
  }
}

void put_traffic(ByteWriter& w, const net::TrafficMatrix& t) {
  w.u32(static_cast<std::uint32_t>(t.packets.size()));
  for (const auto& [link, n] : t.packets) {
    w.i32(link.first);
    w.i32(link.second);
    w.u64(n);
  }
  w.u64(t.total_packets);
  w.u64(t.control_packets);
  w.u64(t.retransmit_packets);
}

net::TrafficMatrix get_traffic(ByteReader& r) {
  net::TrafficMatrix t;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const net::NodeId src = r.i32();
    const net::NodeId dst = r.i32();
    t.packets[{src, dst}] = r.u64();
  }
  t.total_packets = r.u64();
  t.control_packets = r.u64();
  t.retransmit_packets = r.u64();
  return t;
}

template <class R>
void put_deliveries(
    ByteWriter& w,
    const std::vector<std::pair<net::Packet<R>, sim::Cycle>>& ds) {
  w.u32(static_cast<std::uint32_t>(ds.size()));
  for (const auto& [p, arrival] : ds) {
    w.u64(arrival);
    net::wire::put_packet(w, p);
  }
}

template <class R>
void get_deliveries(ByteReader& r,
                    std::vector<std::pair<net::Packet<R>, sim::Cycle>>& out) {
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const sim::Cycle arrival = r.u64();
    net::Packet<R> p;
    if (!net::wire::get_packet(r, p)) {
      throw TransportError("malformed packet in delivery list");
    }
    out.emplace_back(std::move(p), arrival);
  }
}

void put_elision(ByteWriter& w, const sim::ElisionStats& e) {
  w.u64(e.executed_cycles);
  w.u64(e.elided_cycles);
  w.u64(e.component_idle_skips);
  w.u64(e.shard_sleep_cycles);
  w.u64(e.idle_wakes);
  w.u64(e.mispredicts);
}

sim::ElisionStats get_elision(ByteReader& r) {
  sim::ElisionStats e;
  e.executed_cycles = r.u64();
  e.elided_cycles = r.u64();
  e.component_idle_skips = r.u64();
  e.shard_sleep_cycles = r.u64();
  e.idle_wakes = r.u64();
  e.mispredicts = r.u64();
  return e;
}

void put_metrics_image(ByteWriter& w, const obs::Registry::NodeImage& img) {
  w.u32(static_cast<std::uint32_t>(img.series.size()));
  for (const auto& s : img.series) {
    w.str(s.name);
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.u32(static_cast<std::uint32_t>(s.values.size()));
    for (const auto& [node, value] : s.values) {
      w.i32(node);
      w.u64(value);
    }
    w.u32(static_cast<std::uint32_t>(s.buckets.size()));
    for (const std::uint64_t b : s.buckets) w.u64(b);
  }
}

obs::Registry::NodeImage get_metrics_image(ByteReader& r) {
  obs::Registry::NodeImage img;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    obs::Registry::NodeImage::Series s;
    s.name = r.str();
    s.kind = static_cast<obs::MetricKind>(r.u8());
    const std::uint32_t nv = r.u32();
    for (std::uint32_t v = 0; v < nv && r.ok(); ++v) {
      const int node = r.i32();
      const std::uint64_t value = r.u64();
      s.values.emplace_back(node, value);
    }
    const std::uint32_t nb = r.u32();
    for (std::uint32_t b = 0; b < nb && r.ok(); ++b) s.buckets.push_back(r.u64());
    img.series.push_back(std::move(s));
  }
  return img;
}

NodeStatus status_of(const fpga::FpgaNode& node) {
  NodeStatus s;
  s.done = node.done();
  s.heartbeat = node.last_heartbeat();
  s.phase = node.phase_name();
  if (const auto deg = node.degraded_link()) {
    s.has_degraded = true;
    s.degraded = deg->first;
    s.degraded_channel = deg->second;
  }
  return s;
}

// ---------------------------------------------------------------- worker

struct WorkerState {
  ClusterRefs r;
  Channel chan;
  int lo = 0, hi = 0;  ///< owned node range [lo, hi)
  bool naive = false;
  std::vector<std::pair<net::Packet<net::PosRecord>, sim::Cycle>> pos_up;
  std::vector<std::pair<net::Packet<net::FrcRecord>, sim::Cycle>> frc_up;
  std::vector<std::pair<net::Packet<net::MigRecord>, sim::Cycle>> mig_up;
};

std::vector<std::uint8_t> owned_statuses(const WorkerState& ws) {
  ByteWriter w;
  for (int i = ws.lo; i < ws.hi; ++i) {
    put_status(w, status_of(*(*ws.r.nodes)[static_cast<std::size_t>(i)]));
  }
  return w.take();
}

std::vector<std::uint8_t> fold_payload(const WorkerState& ws) {
  ByteWriter w;
  const sim::Cycle now = ws.r.scheduler->cycle();
  for (int i = ws.lo; i < ws.hi; ++i) {
    const fpga::FpgaNode& node = *(*ws.r.nodes)[static_cast<std::size_t>(i)];
    w.u64(node.pairs_issued());
    w.u64(node.last_heartbeat());
    w.u8(node.alive(now) ? 1 : 0);
    const auto& starts = node.force_phase_starts();
    w.u32(static_cast<std::uint32_t>(starts.size()));
    for (const sim::Cycle c : starts) w.u64(c);
    put_util(w, node.pos_ring_util());
    put_util(w, node.frc_ring_util());
    put_util(w, node.filter_util());
    put_util(w, node.pe_util());
    put_util(w, node.mu_util());
    std::map<net::Link, net::LinkStats> links;
    for (const auto& [link, s] : node.pos_endpoint().link_stats()) {
      links[link].merge(s);
    }
    for (const auto& [link, s] : node.frc_endpoint().link_stats()) {
      links[link].merge(s);
    }
    for (const auto& [link, s] : node.mig_endpoint().link_stats()) {
      links[link].merge(s);
    }
    put_link_map(w, links);
    w.u32(static_cast<std::uint32_t>(node.num_cbbs()));
    for (int c = 0; c < node.num_cbbs(); ++c) {
      const cbb::Cbb& block = node.cbb_by_index(c);
      const auto& particles = block.particles();
      w.u32(static_cast<std::uint32_t>(particles.size()));
      for (const pe::CellParticle& p : particles) {
        net::wire::put(w, p.pos);
        net::wire::put(w, p.vel);
        w.u8(p.elem);
        w.u32(p.id);
      }
      const std::vector<geom::Vec3f> forces = block.forces();
      w.u32(static_cast<std::uint32_t>(forces.size()));
      for (const geom::Vec3f& f : forces) net::wire::put(w, f);
    }
  }
  put_traffic(w, ws.r.pos->traffic());
  put_link_map(w, ws.r.pos->fault_stats());
  put_traffic(w, ws.r.frc->traffic());
  put_link_map(w, ws.r.frc->fault_stats());
  put_traffic(w, ws.r.mig->traffic());
  put_link_map(w, ws.r.mig->fault_stats());
  put_elision(w, ws.r.scheduler->elision_stats());
  if (ws.r.obs != nullptr) {
    w.u8(1);
    put_metrics_image(w, ws.r.obs->metrics().image_nodes(ws.lo, ws.hi));
  } else {
    w.u8(0);
  }
  return w.take();
}

[[noreturn]] void worker_main(WorkerState ws) {
  try {
    sim::Scheduler& sched = *ws.r.scheduler;
    sched.set_owned_shards(static_cast<std::size_t>(ws.lo),
                           static_cast<std::size_t>(ws.hi));
    if (ws.r.barrier != nullptr) ws.r.barrier->enter_worker_mode();
    ws.r.pos->set_uplink(
        [&ws](const net::Packet<net::PosRecord>& p, sim::Cycle arrival) {
          ws.pos_up.emplace_back(p, arrival);
        });
    ws.r.frc->set_uplink(
        [&ws](const net::Packet<net::FrcRecord>& p, sim::Cycle arrival) {
          ws.frc_up.emplace_back(p, arrival);
        });
    ws.r.mig->set_uplink(
        [&ws](const net::Packet<net::MigRecord>& p, sim::Cycle arrival) {
          ws.mig_up.emplace_back(p, arrival);
        });

    for (;;) {
      const Frame f = ws.chan.recv();
      ByteReader r(f.payload);
      switch (f.type) {
        case FrameType::kStart: {
          const int iterations = static_cast<int>(r.u32());
          if (!r.done()) throw TransportError("bad kStart payload");
          for (int i = ws.lo; i < ws.hi; ++i) {
            (*ws.r.nodes)[static_cast<std::size_t>(i)]->start(
                iterations, ws.r.dt_fs, ws.r.cutoff, *ws.r.ff);
          }
          if (!ws.naive) sched.driver_begin_run();
          ws.chan.send(FrameType::kStatus, owned_statuses(ws));
          break;
        }
        case FrameType::kSweep: {
          if (!r.done()) throw TransportError("bad kSweep payload");
          const sim::Cycle wake =
              ws.naive ? sched.cycle() : sched.driver_loop_top();
          ByteWriter out;
          out.u64(wake);
          ws.chan.send(FrameType::kWake, out.take());
          break;
        }
        case FrameType::kJump: {
          const sim::Cycle to = r.u64();
          if (!r.done() || ws.naive || to <= sched.cycle()) {
            throw TransportError("bad kJump target");
          }
          sched.driver_jump(to);
          ws.chan.send(FrameType::kStatus, owned_statuses(ws));
          break;
        }
        case FrameType::kExec: {
          const sim::Cycle at = r.u64();
          if (!r.done() || at != sched.cycle()) {
            throw TransportError("kExec cycle out of step");
          }
          ws.pos_up.clear();
          ws.frc_up.clear();
          ws.mig_up.clear();
          if (ws.naive) {
            sched.driver_execute_naive();
          } else {
            sched.driver_execute();
          }
          ByteWriter out;
          const std::vector<std::uint8_t> statuses = owned_statuses(ws);
          out.bytes(statuses.data(), statuses.size());
          const std::vector<std::uint64_t> votes =
              ws.r.barrier != nullptr ? ws.r.barrier->take_votes()
                                      : std::vector<std::uint64_t>{};
          out.u32(static_cast<std::uint32_t>(votes.size()));
          for (const std::uint64_t seq : votes) out.u64(seq);
          put_deliveries(out, ws.pos_up);
          put_deliveries(out, ws.frc_up);
          put_deliveries(out, ws.mig_up);
          ws.chan.send(FrameType::kReport, out.take());
          break;
        }
        case FrameType::kDeliver: {
          std::vector<std::pair<net::Packet<net::PosRecord>, sim::Cycle>> pos;
          std::vector<std::pair<net::Packet<net::FrcRecord>, sim::Cycle>> frc;
          std::vector<std::pair<net::Packet<net::MigRecord>, sim::Cycle>> mig;
          get_deliveries(r, pos);
          get_deliveries(r, frc);
          get_deliveries(r, mig);
          const std::uint32_t n_rel = r.u32();
          std::vector<std::pair<std::uint64_t, sim::Cycle>> releases;
          for (std::uint32_t i = 0; i < n_rel && r.ok(); ++i) {
            const std::uint64_t seq = r.u64();
            const sim::Cycle at = r.u64();
            releases.emplace_back(seq, at);
          }
          if (!r.done()) throw TransportError("bad kDeliver payload");
          // Channel order matches the in-process commit order (pos, frc,
          // mig); within a channel the parent concatenated worker lists in
          // ascending-source order, so equal-arrival multimap insertion
          // order is identical to the in-process delivery sequence.
          for (const auto& [p, arrival] : pos) {
            ws.r.pos->deliver_remote(p, arrival);
          }
          for (const auto& [p, arrival] : frc) {
            ws.r.frc->deliver_remote(p, arrival);
          }
          for (const auto& [p, arrival] : mig) {
            ws.r.mig->deliver_remote(p, arrival);
          }
          for (const auto& [seq, at] : releases) {
            if (ws.r.barrier != nullptr) ws.r.barrier->add_release(seq, at);
            // The mirror replaces the wake hook the completing arrival
            // fires in-process: poke every owned group.
            sched.wake_all_shards(at);
          }
          break;  // no reply; the next round frame is the sync point
        }
        case FrameType::kFinish: {
          if (!r.done()) throw TransportError("bad kFinish payload");
          if (!ws.naive) sched.driver_finish(sched.cycle());
          break;  // no reply; kFold follows on the FIFO stream
        }
        case FrameType::kFold: {
          if (!r.done()) throw TransportError("bad kFold payload");
          ws.chan.send(FrameType::kFoldData, fold_payload(ws));
          break;
        }
        case FrameType::kShutdown:
          ws.chan.close();
          ::_exit(0);
        default:
          throw TransportError("unexpected frame type " +
                               std::to_string(static_cast<int>(f.type)));
      }
    }
  } catch (const std::exception& e) {
    try {
      const std::string what = e.what();
      ws.chan.send(FrameType::kError,
                   std::vector<std::uint8_t>(what.begin(), what.end()));
    } catch (...) {
    }
    ::_exit(1);
  } catch (...) {
    ::_exit(1);
  }
}

// ---------------------------------------------------------------- parent

class ProcTransport final : public ShardTransport {
 public:
  ProcTransport(ClusterRefs refs, int num_workers) : r_(refs) {
    const int n = static_cast<int>(r_.nodes->size());
    if (r_.scheduler->global_component_count() > 0) {
      throw std::invalid_argument(
          "shard: cluster registers global (unsharded) components; cannot "
          "split across worker processes");
    }
    switch (r_.scheduler->tick_mode()) {
      case sim::TickMode::kNaive:
        naive_ = true;
        break;
      case sim::TickMode::kElide:
        break;
      case sim::TickMode::kValidate:
        throw std::invalid_argument(
            "shard: kValidate is incompatible with process workers (the "
            "oracle audit is process-local)");
    }
    const int count = std::max(1, std::min(num_workers, n));
    statuses_.resize(static_cast<std::size_t>(n));
    fold_.nodes.resize(static_cast<std::size_t>(n));
    owner_of_.resize(static_cast<std::size_t>(n), 0);

    std::vector<std::array<int, 2>> fds(static_cast<std::size_t>(count));
    for (auto& pair : fds) {
      if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, pair.data()) !=
          0) {
        for (auto& made : fds) {
          if (&made == &pair) break;
          ::close(made[0]);
          ::close(made[1]);
        }
        throw std::runtime_error("shard: socketpair failed");
      }
    }
    const pid_t parent = ::getpid();
    for (int w = 0; w < count; ++w) {
      const int lo = w * n / count;
      const int hi = (w + 1) * n / count;
      const pid_t pid = ::fork();
      if (pid == 0) {
        // Worker process: die with the parent (no orphans), then double-
        // check the parent did not already exit between fork and prctl.
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() != parent) ::_exit(0);
        for (int v = 0; v < count; ++v) {
          ::close(fds[static_cast<std::size_t>(v)][0]);
          if (v != w) ::close(fds[static_cast<std::size_t>(v)][1]);
        }
        WorkerState ws;
        ws.r = r_;
        ws.chan = Channel(fds[static_cast<std::size_t>(w)][1]);
        ws.lo = lo;
        ws.hi = hi;
        ws.naive = naive_;
        worker_main(std::move(ws));  // never returns
      }
      if (pid < 0) {
        for (auto& made : fds) {
          ::close(made[0]);
          ::close(made[1]);
        }
        for (auto& worker : workers_) {
          ::kill(worker.pid, SIGKILL);
          ::waitpid(worker.pid, nullptr, 0);
          worker.chan.close();
        }
        workers_.clear();
        throw std::runtime_error("shard: fork failed");
      }
      Worker worker;
      worker.pid = pid;
      worker.chan = Channel(fds[static_cast<std::size_t>(w)][0]);
      worker.lo = lo;
      worker.hi = hi;
      workers_.push_back(std::move(worker));
      for (int id = lo; id < hi; ++id) {
        owner_of_[static_cast<std::size_t>(id)] = w;
      }
    }
    for (int w = 0; w < count; ++w) {
      ::close(fds[static_cast<std::size_t>(w)][1]);
    }
  }

  ~ProcTransport() override {
    for (auto& w : workers_) {
      if (!w.dead && w.chan.valid()) {
        try {
          w.chan.send(FrameType::kShutdown, {});
        } catch (...) {
        }
      }
      w.chan.close();
    }
    for (auto& w : workers_) reap(w);
  }

  const char* kind() const override { return "proc"; }
  int num_procs() const override { return static_cast<int>(workers_.size()); }
  sim::Cycle cycle() const override { return now_; }
  const ClusterFold* fold() const override { return &fold_; }
  const sim::ElisionStats& elision_stats() const override {
    return fold_.elision;
  }
  std::vector<pid_t> worker_pids() const override {
    std::vector<pid_t> pids;
    for (const auto& w : workers_) pids.push_back(w.pid);
    return pids;
  }

  void run(int iterations, const RunLimits& limits) override {
    const sim::Cycle start = now_;
    // Mirror of Scheduler::run_until's scheduler-track span: opened here,
    // closed (plus the sched.cycles gauge) only on a normal return — an
    // unwinding failure leaves the span open exactly like the in-process
    // path does.
    if (r_.obs != nullptr) {
      r_.obs->trace().begin(obs::kClusterShard, obs::kClusterPid,
                            obs::Comp::kScheduler, "run-until", start);
    }
    try {
      ByteWriter w;
      w.u32(static_cast<std::uint32_t>(iterations));
      broadcast(FrameType::kStart, w.take());
      collect_statuses();
      drive(start + limits.max_cycles_per_iteration *
                        static_cast<sim::Cycle>(iterations),
            limits);
    } catch (...) {
      settle();
      throw;
    }
    settle();
    if (r_.obs != nullptr) {
      r_.obs->trace().end(obs::kClusterShard, obs::kClusterPid,
                          obs::Comp::kScheduler, now_);
      r_.obs->metrics().set(obs::kClusterNode,
                            r_.obs->metrics().gauge("sched.cycles"),
                            static_cast<double>(now_));
    }
  }

 private:
  struct Worker {
    pid_t pid = -1;
    Channel chan;
    int lo = 0, hi = 0;  ///< owned node range [lo, hi)
    bool dead = false;
  };

  /// A vanished or desynchronized worker surfaces as the typed node
  /// failure of its first owned node — the caller's recovery machinery
  /// (supervisor re-shard, tests) handles it like any dead board.
  sync::NodeFailureError worker_failure(const Worker& w) const {
    return sync::NodeFailureError(w.lo, "worker-process", 0, now_);
  }

  void send_to(Worker& w, FrameType type,
               const std::vector<std::uint8_t>& payload) {
    if (w.dead) throw worker_failure(w);
    try {
      w.chan.send(type, payload);
    } catch (const TransportError&) {
      w.dead = true;
      throw worker_failure(w);
    }
  }

  Frame recv_from(Worker& w, FrameType expect) {
    if (w.dead) throw worker_failure(w);
    Frame f;
    try {
      f = w.chan.recv();
    } catch (const TransportError&) {
      w.dead = true;
      throw worker_failure(w);
    }
    if (f.type == FrameType::kError) {
      w.dead = true;  // the worker _exit(1)s after sending kError
      throw std::runtime_error(
          "shard worker [" + std::to_string(w.lo) + "," +
          std::to_string(w.hi) + "): " +
          std::string(f.payload.begin(), f.payload.end()));
    }
    if (f.type != expect) {
      w.dead = true;
      throw worker_failure(w);
    }
    return f;
  }

  void broadcast(FrameType type, const std::vector<std::uint8_t>& payload) {
    for (auto& w : workers_) send_to(w, type, payload);
  }

  void parse_statuses(const Frame& f, const Worker& w) {
    ByteReader r(f.payload);
    for (int id = w.lo; id < w.hi; ++id) {
      statuses_[static_cast<std::size_t>(id)] = get_status(r);
    }
    if (!r.done()) {
      throw std::runtime_error("shard: malformed status frame from worker");
    }
  }

  void collect_statuses() {
    for (auto& w : workers_) parse_statuses(recv_from(w, FrameType::kStatus), w);
  }

  bool all_done() const {
    return std::all_of(statuses_.begin(), statuses_.end(),
                       [](const NodeStatus& s) { return s.done; });
  }

  /// Byte-for-byte mirror of the in-process done() predicate: degraded
  /// links in ascending node order (with the dead-peer reclassification),
  /// then the watchdog, then completion — reading the shipped statuses
  /// instead of live nodes.
  void health_check(const RunLimits& limits) const {
    const sim::Cycle now = now_;
    if (limits.fault_aware) {
      for (const NodeStatus& s : statuses_) {
        if (!s.has_degraded) continue;
        const NodeStatus& peer =
            statuses_.at(static_cast<std::size_t>(s.degraded.dst));
        const sim::Cycle silent = now - peer.heartbeat;
        if (!peer.done && silent > kNodeSilenceSlack) {
          throw sync::NodeFailureError(s.degraded.dst, peer.phase, silent,
                                       now);
        }
        throw sync::DegradedLinkError(s.degraded, s.degraded_channel);
      }
    }
    if (limits.watchdog_budget > 0) {
      for (std::size_t id = 0; id < statuses_.size(); ++id) {
        const NodeStatus& s = statuses_[id];
        if (s.done) continue;
        const sim::Cycle silent = now - s.heartbeat;
        if (silent > limits.watchdog_budget) {
          throw sync::NodeFailureError(static_cast<int>(id), s.phase, silent,
                                       now);
        }
      }
    }
  }

  sim::Cycle watchdog_bound(const RunLimits& limits) const {
    sim::Cycle bound = sim::kNeverCycle;
    for (const NodeStatus& s : statuses_) {
      if (s.done) continue;
      bound = std::min(bound, s.heartbeat + limits.watchdog_budget + 1);
    }
    return bound;
  }

  void drive(const sim::Cycle budget, const RunLimits& limits) {
    for (;;) {
      health_check(limits);
      if (all_done()) return;
      if (now_ >= budget) {
        // Same type and message the in-process scheduler throws.
        throw std::runtime_error(
            "Scheduler::run_until exceeded cycle budget");
      }
      broadcast(FrameType::kSweep, {});
      sim::Cycle wake = sim::kNeverCycle;
      for (auto& w : workers_) {
        const Frame f = recv_from(w, FrameType::kWake);
        ByteReader r(f.payload);
        const sim::Cycle wv = r.u64();
        if (!r.done()) {
          w.dead = true;
          throw worker_failure(w);
        }
        wake = std::min(wake, wv);
      }
      if (limits.watchdog_budget > 0) {
        wake = std::min(wake, watchdog_bound(limits));
      }
      if (wake > now_) {
        const sim::Cycle to = std::min(wake, budget);
        ByteWriter jw;
        jw.u64(to);
        broadcast(FrameType::kJump, jw.take());
        collect_statuses();
        now_ = to;
        continue;
      }
      exec_round();
    }
  }

  void exec_round() {
    ByteWriter ew;
    ew.u64(now_);
    broadcast(FrameType::kExec, ew.take());

    std::vector<std::pair<net::Packet<net::PosRecord>, sim::Cycle>> pos;
    std::vector<std::pair<net::Packet<net::FrcRecord>, sim::Cycle>> frc;
    std::vector<std::pair<net::Packet<net::MigRecord>, sim::Cycle>> mig;
    std::vector<std::uint64_t> votes;
    for (auto& w : workers_) {
      const Frame f = recv_from(w, FrameType::kReport);
      ByteReader r(f.payload);
      for (int id = w.lo; id < w.hi; ++id) {
        statuses_[static_cast<std::size_t>(id)] = get_status(r);
      }
      const std::uint32_t nv = r.u32();
      for (std::uint32_t i = 0; i < nv && r.ok(); ++i) {
        votes.push_back(r.u64());
      }
      try {
        // Worker iteration order is ascending worker index == ascending
        // source-node order: concatenation reproduces the in-process
        // commit's delivery sequence per channel.
        get_deliveries(r, pos);
        get_deliveries(r, frc);
        get_deliveries(r, mig);
      } catch (const TransportError&) {
        w.dead = true;
        throw worker_failure(w);
      }
      if (!r.done()) {
        w.dead = true;
        throw worker_failure(w);
      }
    }

    std::vector<std::pair<std::uint64_t, sim::Cycle>> releases;
    if (r_.barrier != nullptr) {
      // Replay the arrivals on the parent's counting barrier at the round
      // cycle; order is irrelevant (the release stamps the last arrival's
      // cycle, which is this round for every vote).
      for (const std::uint64_t seq : votes) {
        r_.barrier->arrive(seq, now_);
        pending_votes_.insert(seq);
      }
      for (auto it = pending_votes_.begin(); it != pending_votes_.end();) {
        if (const auto at = r_.barrier->release_cycle(*it)) {
          releases.emplace_back(*it, *at);
          it = pending_votes_.erase(it);
        } else {
          ++it;
        }
      }
    }

    for (auto& w : workers_) {
      ByteWriter dw;
      route_deliveries(dw, pos, w);
      route_deliveries(dw, frc, w);
      route_deliveries(dw, mig, w);
      dw.u32(static_cast<std::uint32_t>(releases.size()));
      for (const auto& [seq, at] : releases) {
        dw.u64(seq);
        dw.u64(at);
      }
      send_to(w, FrameType::kDeliver, dw.take());
    }
    ++now_;
  }

  template <class R>
  void route_deliveries(
      ByteWriter& w,
      const std::vector<std::pair<net::Packet<R>, sim::Cycle>>& all,
      const Worker& target) {
    std::uint32_t count = 0;
    for (const auto& [p, arrival] : all) {
      if (p.dst >= target.lo && p.dst < target.hi) ++count;
    }
    w.u32(count);
    for (const auto& [p, arrival] : all) {
      if (p.dst < target.lo || p.dst >= target.hi) continue;
      w.u64(arrival);
      net::wire::put_packet(w, p);
    }
  }

  /// End-of-run settle: flush deferred idle in every live worker, then
  /// refresh the cluster fold. Best-effort on the unwinding path — a dead
  /// worker keeps its slots at the previous fold's values.
  void settle() {
    for (auto& w : workers_) {
      if (w.dead) continue;
      try {
        w.chan.send(FrameType::kFinish, {});
      } catch (...) {
        w.dead = true;
      }
    }
    refresh_fold();
  }

  void refresh_fold() {
    bool first_live = true;
    for (auto& w : workers_) {
      if (w.dead) continue;
      Frame f;
      try {
        w.chan.send(FrameType::kFold, {});
        f = w.chan.recv();
      } catch (...) {
        w.dead = true;
        continue;
      }
      if (f.type != FrameType::kFoldData) {
        w.dead = true;
        continue;
      }
      try {
        apply_fold(f, w, first_live);
      } catch (...) {
        w.dead = true;
        continue;
      }
      first_live = false;
    }
  }

  void apply_fold(const Frame& f, const Worker& w, bool first_live) {
    ByteReader r(f.payload);
    for (int id = w.lo; id < w.hi; ++id) {
      ClusterFold::Node& out = fold_.nodes[static_cast<std::size_t>(id)];
      out = ClusterFold::Node{};
      out.pairs_issued = r.u64();
      out.heartbeat = r.u64();
      out.alive = r.u8() != 0;
      const std::uint32_t n_starts = r.u32();
      for (std::uint32_t i = 0; i < n_starts && r.ok(); ++i) {
        out.force_phase_starts.push_back(r.u64());
      }
      out.pos_ring = get_util(r);
      out.frc_ring = get_util(r);
      out.filter = get_util(r);
      out.pe = get_util(r);
      out.mu = get_util(r);
      get_link_map(r, out.link_stats);
      fpga::FpgaNode& node = *(*r_.nodes)[static_cast<std::size_t>(id)];
      const std::uint32_t n_cbbs = r.u32();
      if (!r.ok() || static_cast<int>(n_cbbs) != node.num_cbbs()) {
        throw TransportError("fold CBB count mismatch");
      }
      out.cbb_forces.resize(n_cbbs);
      for (std::uint32_t c = 0; c < n_cbbs; ++c) {
        const std::uint32_t n_particles = r.u32();
        std::vector<pe::CellParticle> particles;
        particles.reserve(n_particles);
        for (std::uint32_t p = 0; p < n_particles && r.ok(); ++p) {
          pe::CellParticle particle;
          net::wire::get(r, particle.pos);
          net::wire::get(r, particle.vel);
          particle.elem = r.u8();
          particle.id = r.u32();
          particles.push_back(particle);
        }
        // Write the worker's particle cache back into the parent's CBB so
        // state() and the energy accessors stay transport-agnostic.
        node.cbb_by_index(static_cast<int>(c)).particles() =
            std::move(particles);
        const std::uint32_t n_forces = r.u32();
        auto& forces = out.cbb_forces[c];
        forces.reserve(n_forces);
        for (std::uint32_t i = 0; i < n_forces && r.ok(); ++i) {
          geom::Vec3f force;
          net::wire::get(r, force);
          forces.push_back(force);
        }
      }
    }
    // Per-channel traffic: each worker counted the rows its nodes sourced,
    // so the link sets are disjoint and merge() reproduces the in-process
    // matrices exactly.
    net::TrafficMatrix pos_t = get_traffic(r);
    std::map<net::Link, net::LinkStats> pos_f;
    get_link_map(r, pos_f);
    net::TrafficMatrix frc_t = get_traffic(r);
    std::map<net::Link, net::LinkStats> frc_f;
    get_link_map(r, frc_f);
    net::TrafficMatrix mig_t = get_traffic(r);
    std::map<net::Link, net::LinkStats> mig_f;
    get_link_map(r, mig_f);
    const sim::ElisionStats e = get_elision(r);
    const bool has_image = r.u8() != 0;
    obs::Registry::NodeImage image;
    if (has_image) image = get_metrics_image(r);
    if (!r.done()) throw TransportError("malformed fold payload");

    if (first_live) {
      // First live worker resets the channel aggregates and the lock-step
      // elision counters (identical in every worker); later workers merge
      // their disjoint rows and add their per-shard skip counters.
      fold_.pos_traffic = net::TrafficMatrix{};
      fold_.frc_traffic = net::TrafficMatrix{};
      fold_.mig_traffic = net::TrafficMatrix{};
      fold_.pos_faults.clear();
      fold_.frc_faults.clear();
      fold_.mig_faults.clear();
      fold_.elision = e;
    } else {
      fold_.elision.component_idle_skips += e.component_idle_skips;
      fold_.elision.shard_sleep_cycles += e.shard_sleep_cycles;
    }
    fold_.pos_traffic.merge(pos_t);
    fold_.frc_traffic.merge(frc_t);
    fold_.mig_traffic.merge(mig_t);
    for (const auto& [link, s] : pos_f) fold_.pos_faults[link].merge(s);
    for (const auto& [link, s] : frc_f) fold_.frc_faults[link].merge(s);
    for (const auto& [link, s] : mig_f) fold_.mig_faults[link].merge(s);
    if (has_image && r_.obs != nullptr) {
      r_.obs->metrics().apply_image(image);
    }
  }

  static void reap(Worker& w) {
    if (w.pid <= 0) return;
    // Grace period for the clean kShutdown exit, then SIGKILL.
    for (int i = 0; i < 200; ++i) {
      int status = 0;
      const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
      if (got == w.pid || (got < 0 && errno == ECHILD)) {
        w.pid = -1;
        return;
      }
      ::usleep(10 * 1000);
    }
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
    w.pid = -1;
  }

  ClusterRefs r_;
  bool naive_ = false;
  std::vector<Worker> workers_;
  std::vector<int> owner_of_;  ///< node id -> worker index
  std::vector<NodeStatus> statuses_;
  sim::Cycle now_ = 0;
  ClusterFold fold_;
  /// Barrier generations voted but not yet announced released.
  std::set<std::uint64_t> pending_votes_;
};

}  // namespace

std::unique_ptr<ShardTransport> make_proc_transport(ClusterRefs refs,
                                                    int num_workers) {
  return std::make_unique<ProcTransport>(refs, num_workers);
}

}  // namespace fasda::shard
