#include "fasda/model/resource_model.hpp"

#include <algorithm>
#include <cmath>

namespace fasda::model {

ResourceVector ResourceModel::per_fpga(const core::ClusterConfig& config) const {
  const int cells = config.cells_per_node.product();
  const int spes = config.spes;
  const int pes_per_cell = spes * config.pes_per_spe;
  const int pes = cells * pes_per_cell;
  const int filters = pes * config.filters_per_pipeline;
  // §4.5: FCs scale with the PEs — pes_per_spe + 1 per SPE.
  const int fcs = cells * spes * (config.pes_per_spe + 1);
  // PC per SPE plus one HPC and one VC per cell (§4.6).
  const int caches = cells * (spes + 2) + fcs;
  // Ring nodes: one PRN + FRN per SPE ring per cell, one MURN per cell.
  const int ring_nodes = cells * (2 * spes + 1);
  const int ex_nodes = 2 * spes + 1;  // per node, §4.6: EX scales with SPEs

  const idmap::ClusterMap map(config.node_dims, config.cells_per_node);
  const int neighbors = static_cast<int>(map.neighbor_nodes(0).size());

  // Interpolation tables: a & b float32 coefficients for r^-14 and r^-8 in
  // every pipeline (Fig. 6).
  const double table_bits = 2.0 /*alphas*/ * 2.0 /*a,b*/ * 32.0 *
                            static_cast<double>(config.table.num_sections) *
                            config.table.num_bins;
  const double table_bram = std::ceil(table_bits / (36.0 * 1024.0));

  ResourceVector total = params_.node_base;
  total += static_cast<double>(filters) * params_.filter;
  total += static_cast<double>(pes) * params_.pipeline;
  total += ResourceVector{0, 0, static_cast<double>(pes) * table_bram, 0, 0};
  total += static_cast<double>(cells) * params_.mu;
  total += static_cast<double>(caches) * params_.cache;
  total += static_cast<double>(cells) * params_.cell_store;
  total += static_cast<double>(ring_nodes) * params_.ring_node;
  total += static_cast<double>(ex_nodes) * params_.ex_node;
  total += static_cast<double>(cells) * params_.cbb_control;
  if (neighbors > 0) {
    total += params_.comm_base;
    total += static_cast<double>(std::min(neighbors, params_.comm_neighbor_cap)) *
             params_.comm_per_neighbor;
  }
  return total;
}

ResourceVector ResourceModel::utilization(const core::ClusterConfig& config) const {
  const ResourceVector abs = per_fpga(config);
  return {abs.lut / kU280Capacity.lut, abs.ff / kU280Capacity.ff,
          abs.bram / kU280Capacity.bram, abs.uram / kU280Capacity.uram,
          abs.dsp / kU280Capacity.dsp};
}

}  // namespace fasda::model
