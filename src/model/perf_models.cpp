#include "fasda/model/perf_models.hpp"

#include <algorithm>
#include <cmath>

namespace fasda::model {

double standard_pair_count(std::size_t particles) {
  const double m = 0.155 * 27.0 * 64.0;  // Eq. 3 at 64 particles per cell
  return static_cast<double>(particles) * m / 2.0;
}

double us_per_day_from_step_seconds(double step_seconds, double dt_fs) {
  const double steps_per_day = 86400.0 / step_seconds;
  return steps_per_day * dt_fs * 1e-9;
}

double GpuModel::step_seconds(std::size_t particles, int gpus,
                              GpuKind kind) const {
  const double throughput = (kind == GpuKind::kA100)
                                ? params_.a100_pairs_per_second
                                : params_.v100_pairs_per_second;
  const double latency =
      params_.base_latency_s + params_.per_extra_gpu_latency_s * (gpus - 1);
  const double work =
      standard_pair_count(particles) / (throughput * static_cast<double>(gpus));
  return latency + work;
}

double CpuModel::step_seconds(std::size_t particles, int threads) const {
  const double t = static_cast<double>(threads);
  const double effective_threads =
      t / (1.0 + params_.efficiency_quadratic * t * t);
  const double work = standard_pair_count(particles) /
                      (params_.pairs_per_second_per_thread * effective_threads);
  const double barriers =
      threads > 1 ? params_.barrier_s * std::log2(t) : 0.0;
  // Per-thread force buffers must be reduced into one array each step; the
  // traffic grows linearly with the thread count.
  const double reduction = params_.reduction_s_per_particle_thread *
                           static_cast<double>(particles) * t;
  return work + barriers + reduction;
}

}  // namespace fasda::model
