#include "fasda/idmap/cell_id_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace fasda::idmap {

namespace {
int wrap(int v, int dim) {
  v %= dim;
  return v < 0 ? v + dim : v;
}
}  // namespace

ClusterMap::ClusterMap(geom::IVec3 node_dims, geom::IVec3 cells_per_node)
    : node_dims_(node_dims),
      cells_per_node_(cells_per_node),
      grid_({node_dims.x * cells_per_node.x, node_dims.y * cells_per_node.y,
             node_dims.z * cells_per_node.z},
            1.0) {
  if (node_dims.x < 1 || node_dims.y < 1 || node_dims.z < 1 ||
      cells_per_node.x < 1 || cells_per_node.y < 1 || cells_per_node.z < 1) {
    throw std::invalid_argument("ClusterMap dimensions must be positive");
  }
}

geom::IVec3 ClusterMap::node_coords(NodeId id) const {
  const int z = id % node_dims_.z;
  const int y = (id / node_dims_.z) % node_dims_.y;
  const int x = id / (node_dims_.y * node_dims_.z);
  return {x, y, z};
}

geom::IVec3 ClusterMap::gcid_to_lcid(const geom::IVec3& gcell,
                                     const geom::IVec3& dest_node) const {
  const geom::IVec3 origin{dest_node.x * cells_per_node_.x,
                           dest_node.y * cells_per_node_.y,
                           dest_node.z * cells_per_node_.z};
  const geom::IVec3 g = global_dims();
  return {wrap(gcell.x - origin.x, g.x), wrap(gcell.y - origin.y, g.y),
          wrap(gcell.z - origin.z, g.z)};
}

geom::IVec3 ClusterMap::lcid_to_rcid(const geom::IVec3& src_lcid,
                                     const geom::IVec3& dest_lcell) const {
  // RCID = 2 + (source - destination) displacement seen from the receiving
  // cell, so a neighbour one cell "behind" appears at 1 and one "ahead" at 3.
  const geom::IVec3 d = grid_.cell_displacement(dest_lcell, src_lcid);
  return {2 + d.x, 2 + d.y, 2 + d.z};
}

bool ClusterMap::accepts_position(const geom::IVec3& src_lcid,
                                  const geom::IVec3& dest_lcell) const {
  return grid_.is_forward_neighbor(src_lcid, dest_lcell);
}

std::vector<NodeId> ClusterMap::remote_destinations(
    const geom::IVec3& gcell) const {
  const NodeId own = node_id(node_of_cell(gcell));
  std::vector<NodeId> out;
  for (const geom::IVec3& d : geom::half_shell_offsets()) {
    const geom::IVec3 target = grid_.wrap(gcell + d);
    const NodeId node = node_id(node_of_cell(target));
    if (node != own && std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

std::vector<NodeId> ClusterMap::neighbor_nodes(NodeId node) const {
  const geom::IVec3 nc = node_coords(node);
  std::vector<NodeId> out;
  // Two nodes are neighbours iff some cell of one has a (full-shell)
  // neighbour cell in the other; with blocks >= 1 cell wide this is exactly
  // the 26 surrounding node-grid positions (periodic), deduplicated for
  // small node grids.
  for (const geom::IVec3& d : geom::full_shell_offsets()) {
    const geom::IVec3 target{wrap(nc.x + d.x, node_dims_.x),
                             wrap(nc.y + d.y, node_dims_.y),
                             wrap(nc.z + d.z, node_dims_.z)};
    const NodeId id = node_id(target);
    if (id != node && std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace fasda::idmap
