#include "fasda/obs/obs.hpp"

#include <cstdio>

namespace fasda::obs {

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace fasda::obs
