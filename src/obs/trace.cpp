#include "fasda/obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

namespace fasda::obs {

const char* comp_name(Comp comp) {
  switch (comp) {
    case Comp::kFsm: return "fsm";
    case Comp::kSync: return "sync";
    case Comp::kNetPos: return "net.pos";
    case Comp::kNetFrc: return "net.frc";
    case Comp::kNetMig: return "net.mig";
    case Comp::kEngine: return "engine";
    case Comp::kScheduler: return "scheduler";
    case Comp::kHealth: return "health";
    case Comp::kSupervisor: return "supervisor";
  }
  return "?";
}

void TraceBus::ensure_nodes(int num_nodes) {
  while (static_cast<int>(shards_.size()) - 1 < num_nodes) {
    shards_.emplace_back();
  }
}

void TraceBus::append(Shard& shard, TraceEvent event) {
  if (event.ts > shard.max_ts) shard.max_ts = event.ts;
  shard.events.push_back(event);
}

void TraceBus::begin(int shard, int pid, Comp tid, const char* name,
                     Cycle cycle) {
  Shard& s = shard_at(shard);
  append(s, {base_ + cycle, cycle, pid, tid, 'B', name});
  s.open.push_back({pid, tid, name});
}

void TraceBus::end(int shard, int pid, Comp tid, Cycle cycle) {
  Shard& s = shard_at(shard);
  // Spans are well nested per shard; pop the innermost open span on this
  // (pid, tid) track. An end with no matching begin is dropped.
  for (auto it = s.open.rbegin(); it != s.open.rend(); ++it) {
    if (it->pid == pid && it->tid == tid) {
      s.open.erase(std::next(it).base());
      append(s, {base_ + cycle, cycle, pid, tid, 'E', ""});
      return;
    }
  }
}

void TraceBus::instant(int shard, int pid, Comp tid, const char* name,
                       Cycle cycle, const char* arg_name, std::int64_t arg) {
  append(shard_at(shard),
         {base_ + cycle, cycle, pid, tid, 'i', name, arg_name, arg});
}

Cycle TraceBus::high_water() const {
  Cycle hw = 0;
  for (const Shard& s : shards_) hw = std::max(hw, s.max_ts);
  return hw;
}

void TraceBus::begin_epoch() {
  const Cycle hw = high_water();
  const Cycle cycle = hw >= base_ ? hw - base_ : 0;
  for (Shard& s : shards_) {
    // Close abandoned spans innermost-first at the high-water mark so the
    // exported B/E pairs stay balanced across a crashed attempt.
    while (!s.open.empty()) {
      const Open open = s.open.back();
      s.open.pop_back();
      append(s, {hw, cycle, open.pid, open.tid, 'E', ""});
    }
  }
  base_ = hw + 1;
}

std::vector<TraceEvent> TraceBus::events() const {
  struct Keyed {
    Cycle ts;
    int shard;
    std::size_t seq;
    TraceEvent event;
  };
  std::vector<Keyed> keyed;
  const Cycle hw = high_water();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = shards_[i];
    for (std::size_t k = 0; k < s.events.size(); ++k) {
      keyed.push_back({s.events[k].ts, static_cast<int>(i), k, s.events[k]});
    }
    // Close spans still open at export time without mutating the live bus.
    const Cycle close_cycle = hw >= base_ ? hw - base_ : 0;
    std::size_t seq = s.events.size();
    for (auto it = s.open.rbegin(); it != s.open.rend(); ++it, ++seq) {
      keyed.push_back({hw, static_cast<int>(i), seq,
                       {hw, close_cycle, it->pid, it->tid, 'E', ""}});
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  });
  std::vector<TraceEvent> out;
  out.reserve(keyed.size());
  for (Keyed& k : keyed) out.push_back(k.event);
  return out;
}

bool TraceBus::empty() const {
  for (const Shard& s : shards_) {
    if (!s.events.empty() || !s.open.empty()) return false;
  }
  return true;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_int(std::string& out, int v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%d", v);
  out += buf;
}

}  // namespace

std::string TraceBus::to_chrome_json() const {
  const std::vector<TraceEvent> all = events();

  // process_name / thread_name metadata for every track seen, in id order.
  std::set<int> pids;
  std::set<std::pair<int, int>> tracks;
  for (const TraceEvent& e : all) {
    pids.insert(e.pid);
    tracks.insert({e.pid, static_cast<int>(e.tid)});
  }

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (int pid : pids) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    append_int(out, pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    if (pid == kClusterPid) {
      out += "cluster";
    } else {
      out += "node";
      append_int(out, pid);
    }
    out += "\"}}";
  }
  for (const auto& [pid, tid] : tracks) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    append_int(out, pid);
    out += ",\"tid\":";
    append_int(out, tid);
    out += ",\"args\":{\"name\":\"";
    out += comp_name(static_cast<Comp>(tid));
    out += "\"}}";
  }

  for (const TraceEvent& e : all) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += comp_name(e.tid);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += '"';
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"ts\":";
    append_u64(out, e.ts);
    out += ",\"pid\":";
    append_int(out, e.pid);
    out += ",\"tid\":";
    append_int(out, static_cast<int>(e.tid));
    if (e.phase == 'E') {
      out += '}';
      continue;
    }
    out += ",\"args\":{\"cycle\":";
    append_u64(out, e.cycle);
    if (e.arg_name != nullptr) {
      out += ",\"";
      out += e.arg_name;
      out += "\":";
      append_i64(out, e.arg);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace fasda::obs
