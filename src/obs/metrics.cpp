#include "fasda/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace fasda::obs {

namespace {

/// Shortest round-trip formatting for gauge doubles: the value is
/// deterministic, so the text is too.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_int(std::string& out, int v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%d", v);
  out += buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string prometheus_name(std::string_view name) {
  std::string out = "fasda_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// ---------------------------------------------------------------- Registry

Handle Registry::counter(std::string_view name, std::string_view help) {
  return register_metric(name, MetricKind::kCounter, help);
}

Handle Registry::gauge(std::string_view name, std::string_view help) {
  return register_metric(name, MetricKind::kGauge, help);
}

Handle Registry::histogram(std::string_view name, std::string_view help) {
  return register_metric(name, MetricKind::kHistogram, help);
}

Handle Registry::register_metric(std::string_view name, MetricKind kind,
                                 std::string_view help) {
  for (Meta& meta : metas_) {
    if (meta.name != name) continue;
    if (meta.kind != kind) {
      throw std::invalid_argument("obs: metric '" + meta.name +
                                  "' already registered as " +
                                  metric_kind_name(meta.kind) +
                                  ", cannot re-register as " +
                                  metric_kind_name(kind));
    }
    if (meta.help.empty() && !help.empty()) meta.help = std::string(help);
    return meta.handle;
  }
  const auto slot = next_slot_[static_cast<std::size_t>(kind)]++;
  const Handle handle = make_handle(kind, slot);
  metas_.push_back({std::string(name), std::string(help), kind, handle});
  for (Shard& shard : shards_) resize_shard(shard);
  return handle;
}

void Registry::ensure_nodes(int count) {
  while (num_nodes() < count) {
    shards_.emplace_back();
    resize_shard(shards_.back());
  }
}

void Registry::resize_shard(Shard& shard) const {
  shard.counters.resize(next_slot_[0], 0);
  shard.gauges.resize(next_slot_[1], 0.0);
  shard.gauge_set.resize(next_slot_[1], 0);
  shard.hist.resize(static_cast<std::size_t>(next_slot_[2]) *
                        kHistogramBuckets,
                    0);
  shard.hist_sum.resize(next_slot_[2], 0);
}

void Registry::observe(int node, Handle h, std::uint64_t value) noexcept {
  int bucket = static_cast<int>(std::bit_width(value));
  if (bucket >= kHistogramBuckets) bucket = kHistogramBuckets - 1;
  auto& shard = shards_[static_cast<std::size_t>(node + 1)];
  shard.hist[static_cast<std::size_t>(slot_of(h)) * kHistogramBuckets +
             static_cast<std::size_t>(bucket)] += 1;
  shard.hist_sum[slot_of(h)] += value;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.series.reserve(metas_.size());
  for (const Meta& meta : metas_) {
    MetricsSnapshot::Series s;
    s.name = meta.name;
    s.help = meta.help;
    s.kind = meta.kind;
    const std::size_t slot = slot_of(meta.handle);
    // Shard 0 is the cluster slot (node kClusterNode); shard i+1 is node i.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const Shard& shard = shards_[i];
      const int node = static_cast<int>(i) - 1;
      switch (meta.kind) {
        case MetricKind::kCounter: {
          const std::uint64_t v = shard.counters[slot];
          s.total += v;
          if (v != 0 && node >= 0) s.per_node.emplace_back(node, v);
          break;
        }
        case MetricKind::kGauge:
          if (shard.gauge_set[slot]) {
            s.value = shard.gauges[slot];
            if (node >= 0) s.per_node_values.emplace_back(node, s.value);
          }
          break;
        case MetricKind::kHistogram:
          if (s.buckets.empty()) s.buckets.assign(kHistogramBuckets, 0);
          for (int b = 0; b < kHistogramBuckets; ++b) {
            s.buckets[static_cast<std::size_t>(b)] +=
                shard.hist[slot * kHistogramBuckets +
                           static_cast<std::size_t>(b)];
          }
          s.sum += shard.hist_sum[slot];
          break;
      }
    }
    snap.series.push_back(std::move(s));
  }
  std::sort(snap.series.begin(), snap.series.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

Registry::NodeImage Registry::image_nodes(int node_begin, int node_end) const {
  NodeImage img;
  const int hi = std::min(node_end, num_nodes());
  for (const Meta& meta : metas_) {
    if (meta.kind == MetricKind::kGauge) continue;
    NodeImage::Series s;
    s.name = meta.name;
    s.kind = meta.kind;
    const std::size_t slot = slot_of(meta.handle);
    for (int node = node_begin; node < hi; ++node) {
      const Shard& shard = shards_[static_cast<std::size_t>(node + 1)];
      if (meta.kind == MetricKind::kCounter) {
        const std::uint64_t v = shard.counters[slot];
        if (v != 0) s.values.emplace_back(node, v);
      } else {
        const std::size_t base = slot * kHistogramBuckets;
        bool any = false;
        for (int b = 0; b < kHistogramBuckets && !any; ++b) {
          any = shard.hist[base + static_cast<std::size_t>(b)] != 0;
        }
        if (!any) continue;
        s.values.emplace_back(node, s.buckets.size());
        s.buckets.insert(s.buckets.end(), shard.hist.begin() + static_cast<std::ptrdiff_t>(base),
                         shard.hist.begin() + static_cast<std::ptrdiff_t>(base + kHistogramBuckets));
        s.buckets.push_back(shard.hist_sum[slot]);
      }
    }
    if (!s.values.empty()) img.series.push_back(std::move(s));
  }
  return img;
}

void Registry::apply_image(const NodeImage& img) {
  for (const NodeImage::Series& s : img.series) {
    const Handle h = register_metric(s.name, s.kind);
    const std::size_t slot = slot_of(h);
    for (const auto& [node, v] : s.values) {
      ensure_nodes(node + 1);
      Shard& shard = shards_[static_cast<std::size_t>(node + 1)];
      if (s.kind == MetricKind::kCounter) {
        shard.counters[slot] = v;
      } else {
        const std::size_t base = slot * kHistogramBuckets;
        for (int b = 0; b < kHistogramBuckets; ++b) {
          shard.hist[base + static_cast<std::size_t>(b)] =
              s.buckets[static_cast<std::size_t>(v) +
                        static_cast<std::size_t>(b)];
        }
        // The blob carries the per-slot sum after the bucket counts; an
        // image from an older producer without it keeps the local sum.
        const std::size_t sum_at =
            static_cast<std::size_t>(v) + kHistogramBuckets;
        if (sum_at < s.buckets.size()) shard.hist_sum[slot] = s.buckets[sum_at];
      }
    }
  }
}

// -------------------------------------------------------- MetricsSnapshot

std::uint64_t MetricsSnapshot::Series::bucket_count() const {
  std::uint64_t n = 0;
  for (std::uint64_t b : buckets) n += b;
  return n;
}

const MetricsSnapshot::Series* MetricsSnapshot::find(
    std::string_view name) const {
  const auto it = std::lower_bound(
      series.begin(), series.end(), name,
      [](const Series& s, std::string_view n) { return s.name < n; });
  if (it == series.end() || it->name != name) return nullptr;
  return &*it;
}

std::uint64_t MetricsSnapshot::counter_total(std::string_view name) const {
  const Series* s = find(name);
  return s != nullptr ? s->total : 0;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name, int node) const {
  const Series* s = find(name);
  if (s == nullptr) return 0;
  for (const auto& [n, v] : s->per_node) {
    if (n == node) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge_or(std::string_view name,
                                 double fallback) const {
  const Series* s = find(name);
  return s != nullptr ? s->value : fallback;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const Series& in : other.series) {
    auto it = std::lower_bound(
        series.begin(), series.end(), in.name,
        [](const Series& s, const std::string& n) { return s.name < n; });
    if (it == series.end() || it->name != in.name) {
      series.insert(it, in);
      continue;
    }
    Series& out = *it;
    out.total += in.total;
    out.sum += in.sum;
    if (out.help.empty()) out.help = in.help;
    if (!in.per_node_values.empty() || in.value != 0.0) out.value = in.value;
    for (const auto& [node, v] : in.per_node) {
      auto pn = std::find_if(out.per_node.begin(), out.per_node.end(),
                             [&](const auto& p) { return p.first == node; });
      if (pn == out.per_node.end()) {
        out.per_node.emplace_back(node, v);
      } else {
        pn->second += v;
      }
    }
    std::sort(out.per_node.begin(), out.per_node.end());
    for (const auto& [node, v] : in.per_node_values) {
      auto pn = std::find_if(out.per_node_values.begin(),
                             out.per_node_values.end(),
                             [&](const auto& p) { return p.first == node; });
      if (pn == out.per_node_values.end()) {
        out.per_node_values.emplace_back(node, v);
      } else {
        pn->second = v;
      }
    }
    std::sort(out.per_node_values.begin(), out.per_node_values.end());
    if (out.buckets.empty()) {
      out.buckets = in.buckets;
    } else if (!in.buckets.empty()) {
      for (std::size_t b = 0; b < out.buckets.size(); ++b) {
        out.buckets[b] += in.buckets[b];
      }
    }
  }
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Series& s : series) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"kind\":\"";
    out += metric_kind_name(s.kind);
    out += '"';
    switch (s.kind) {
      case MetricKind::kCounter: {
        out += ",\"total\":";
        append_u64(out, s.total);
        out += ",\"per_node\":{";
        bool f2 = true;
        for (const auto& [node, v] : s.per_node) {
          if (!f2) out += ',';
          f2 = false;
          out += '"';
          append_int(out, node);
          out += "\":";
          append_u64(out, v);
        }
        out += '}';
        break;
      }
      case MetricKind::kGauge: {
        out += ",\"value\":";
        append_double(out, s.value);
        out += ",\"per_node\":{";
        bool f2 = true;
        for (const auto& [node, v] : s.per_node_values) {
          if (!f2) out += ',';
          f2 = false;
          out += '"';
          append_int(out, node);
          out += "\":";
          append_double(out, v);
        }
        out += '}';
        break;
      }
      case MetricKind::kHistogram: {
        out += ",\"count\":";
        append_u64(out, s.bucket_count());
        out += ",\"sum\":";
        append_u64(out, s.sum);
        out += ",\"buckets\":{";
        bool f2 = true;
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (s.buckets[b] == 0) continue;
          if (!f2) out += ',';
          f2 = false;
          out += '"';
          append_int(out, static_cast<int>(b));
          out += "\":";
          append_u64(out, s.buckets[b]);
        }
        out += '}';
        break;
      }
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const Series& s : series) {
    const std::string name = prometheus_name(s.name);
    // HELP first, then TYPE, per the text exposition format. Help text
    // falls back to the registry's dotted name so every family documents
    // at least its origin.
    out += "# HELP " + name + ' ';
    out += s.help.empty() ? s.name : s.help;
    out += '\n';
    out += "# TYPE " + name + ' ' + metric_kind_name(s.kind) + '\n';
    switch (s.kind) {
      case MetricKind::kCounter:
        for (const auto& [node, v] : s.per_node) {
          out += name + "{node=\"";
          append_int(out, node);
          out += "\"} ";
          append_u64(out, v);
          out += '\n';
        }
        out += name + ' ';
        append_u64(out, s.total);
        out += '\n';
        break;
      case MetricKind::kGauge:
        for (const auto& [node, v] : s.per_node_values) {
          out += name + "{node=\"";
          append_int(out, node);
          out += "\"} ";
          append_double(out, v);
          out += '\n';
        }
        out += name + ' ';
        append_double(out, s.value);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        // Cumulative buckets up to the highest occupied bit-width bucket;
        // bucket k holds values with bit_width == k, i.e. v < 2^k.
        std::size_t top = 0;
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (s.buckets[b] != 0) top = b;
        }
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b <= top; ++b) {
          cum += s.buckets[b];
          out += name + "_bucket{le=\"";
          append_u64(out, b == 0 ? 0 : (std::uint64_t{1} << b) - 1);
          out += "\"} ";
          append_u64(out, cum);
          out += '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} ";
        append_u64(out, s.bucket_count());
        out += '\n';
        out += name + "_sum ";
        append_u64(out, s.sum);
        out += '\n';
        out += name + "_count ";
        append_u64(out, s.bucket_count());
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::vector<double> egress_percentages(const MetricsSnapshot& snap,
                                       std::string_view channel, int src,
                                       int num_nodes) {
  std::vector<std::uint64_t> to(static_cast<std::size_t>(num_nodes), 0);
  std::uint64_t total = 0;
  for (int dst = 0; dst < num_nodes; ++dst) {
    std::string name(channel);
    name += ".to.";
    name += std::to_string(dst);
    const std::uint64_t v = snap.counter(name, src);
    to[static_cast<std::size_t>(dst)] = v;
    total += v;
  }
  std::vector<double> pct(static_cast<std::size_t>(num_nodes), 0.0);
  if (total == 0) return pct;
  for (int dst = 0; dst < num_nodes; ++dst) {
    pct[static_cast<std::size_t>(dst)] =
        100.0 * static_cast<double>(to[static_cast<std::size_t>(dst)]) /
        static_cast<double>(total);
  }
  return pct;
}

}  // namespace fasda::obs
