// Wall-clock serve observability (obs/server_stats.hpp): the ServerStats
// registry wrapper and the ServeTrace span recorder (DESIGN.md §17).

#include "fasda/obs/server_stats.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace fasda::obs {

std::uint64_t wall_micros() {
  using namespace std::chrono;
  // Capture both clocks once; afterwards only the monotonic clock is read,
  // so the stream of stamps can never go backwards inside one process.
  struct Base {
    steady_clock::time_point steady = steady_clock::now();
    std::uint64_t real_us = static_cast<std::uint64_t>(
        duration_cast<microseconds>(system_clock::now().time_since_epoch())
            .count());
  };
  static const Base base;
  const auto mono =
      duration_cast<microseconds>(steady_clock::now() - base.steady).count();
  return base.real_us + static_cast<std::uint64_t>(mono);
}

ServerStats::ServerStats() {
  submit_to_result_us = reg_.histogram(
      "serve.latency.submit_to_result_us",
      "wall micros from durable admission to the kResult push");
  queue_wait_us = reg_.histogram(
      "serve.latency.queue_wait_us",
      "wall micros an admitted job waited before a worker popped it");
  execute_us = reg_.histogram("serve.latency.execute_us",
                              "wall micros inside execute_job");
  journal_append_us =
      reg_.histogram("serve.latency.journal_append_us",
                     "wall micros for one journal append incl. fsync");
  journal_fsync_us = reg_.histogram("serve.latency.journal_fsync_us",
                                    "wall micros for the journal fsync alone");
  recovery_us = reg_.histogram("serve.latency.recovery_us",
                               "wall micros of the startup replay window");
  frames_decoded =
      reg_.counter("serve.frames.decoded", "well-formed frames received");
  frames_bad_length =
      reg_.counter("serve.frames.bad_length", "frames dropped: bad length");
  frames_bad_crc =
      reg_.counter("serve.frames.bad_crc", "frames dropped: CRC mismatch");
  frames_bad_type =
      reg_.counter("serve.frames.bad_type", "frames dropped: unknown type");
  rejected_bad_request = reg_.counter("serve.rejected.bad_request",
                                      "submits rejected: malformed request");
  rejected_queue_full =
      reg_.counter("serve.rejected.queue_full", "submits rejected: queue full");
  rejected_tenant_quota = reg_.counter("serve.rejected.tenant_quota",
                                       "submits rejected: tenant over quota");
  rejected_draining =
      reg_.counter("serve.rejected.draining", "submits rejected: draining");
  rejected_stopped =
      reg_.counter("serve.rejected.stopped", "submits rejected: stopped");
  rejected_recovering = reg_.counter(
      "serve.rejected.recovering", "submits answered kRecovering (retryable)");
  jobs_submitted = reg_.counter("serve.jobs.submitted", "jobs admitted");
  jobs_completed = reg_.counter("serve.jobs.completed", "jobs completed");
  jobs_recovered = reg_.counter("serve.jobs.recovered",
                                "jobs re-admitted from the journal");
  jobs_resumed = reg_.counter("serve.jobs.resumed",
                              "recovered jobs resumed from a checkpoint");
  results_restored = reg_.counter("serve.results.restored",
                                  "completed results restored at startup");
  journal_appends = reg_.counter("serve.journal.appends", "journal appends");
  journal_disabled = reg_.counter("serve.journal.disabled",
                                  "journal demotions after an I/O failure");
  journal_rotations =
      reg_.counter("serve.journal.rotations", "journal compactions");
  conns_accepted =
      reg_.counter("serve.conns.accepted", "connections accepted");
  conns_closed = reg_.counter("serve.conns.closed", "connections closed");
  queue_depth = reg_.gauge("serve.queue.depth", "jobs queued, not running");
  jobs_running = reg_.gauge("serve.jobs.running", "jobs currently executing");
  conns_active = reg_.gauge("serve.conns.active", "live connections");
  uptime_seconds =
      reg_.gauge("serve.uptime_seconds", "seconds since this incarnation");
  recovering =
      reg_.gauge("serve.recovering", "1 while the startup replay runs");
}

void ServerStats::tenant_add(std::string_view tenant, std::string_view what,
                             std::uint64_t delta) {
  if (!enabled_) return;
  std::string name = "serve.tenant.";
  name += tenant;
  name += '.';
  name += what;
  std::lock_guard<std::mutex> lock(mu_);
  const Handle h = reg_.counter(name, "per-tenant serve counter");
  reg_.add(kClusterNode, h, delta);
}

// ------------------------------------------------------------- ServeTrace

void ServeTrace::push(Event e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void ServeTrace::begin(std::uint64_t job, std::uint64_t span, const char* name,
                       std::string tenant) {
  if (!enabled_) return;
  Event e;
  e.ts_us = wall_micros();
  e.job = job;
  e.span = span;
  e.phase = 'B';
  e.name = name;
  e.tenant = std::move(tenant);
  push(std::move(e));
}

void ServeTrace::end(std::uint64_t job, std::uint64_t span, const char* name) {
  if (!enabled_) return;
  Event e;
  e.ts_us = wall_micros();
  e.job = job;
  e.span = span;
  e.phase = 'E';
  e.name = name;
  push(std::move(e));
}

void ServeTrace::instant(std::uint64_t job, std::uint64_t span,
                         const char* name, std::int64_t arg,
                         const char* arg_name) {
  if (!enabled_) return;
  Event e;
  e.ts_us = wall_micros();
  e.job = job;
  e.span = span;
  e.phase = 'i';
  e.name = name;
  e.arg = arg;
  e.arg_name = arg_name;
  push(std::move(e));
}

std::size_t ServeTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t ServeTrace::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string ServeTrace::to_chrome_json() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  // Snapshot closure: compute the spans still open per job track and emit
  // synthetic 'E' events at the export timestamp, innermost first, so the
  // dump is always balanced regardless of what is mid-flight.
  struct Open {
    std::uint64_t job, span;
    const char* name;
  };
  std::vector<Open> open;
  for (const Event& e : events) {
    if (e.phase == 'B') {
      open.push_back({e.job, e.span, e.name});
    } else if (e.phase == 'E') {
      for (std::size_t i = open.size(); i-- > 0;) {
        if (open[i].job == e.job &&
            std::string_view(open[i].name) == std::string_view(e.name)) {
          open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }
  const std::uint64_t close_ts = wall_micros();

  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":0,\"args\":{\"name\":\"fasda_serve (wall clock)\"}}");
  out += buf;
  // Per-job track names, in first-appearance order.
  std::vector<std::uint64_t> seen;
  for (const Event& e : events) {
    if (std::find(seen.begin(), seen.end(), e.job) != seen.end()) continue;
    seen.push_back(e.job);
    if (e.job == 0) {
      std::snprintf(buf, sizeof buf,
                    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":0,\"args\":{\"name\":\"server\"}}");
    } else {
      std::snprintf(buf, sizeof buf,
                    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":%" PRIu64
                    ",\"args\":{\"name\":\"job %" PRIu64 "\"}}",
                    e.job, e.job);
    }
    out += buf;
  }
  const auto emit = [&out, &buf](const Event& e) {
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":1,\"tid\":%" PRIu64
                  ",\"ts\":%" PRIu64,
                  e.name, e.phase, e.job, e.ts_us);
    out += buf;
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof buf,
                  ",\"args\":{\"job\":%" PRIu64 ",\"span\":%" PRIu64, e.job,
                  e.span);
    out += buf;
    if (!e.tenant.empty()) {
      out += ",\"tenant\":\"";
      for (char c : e.tenant) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
      }
      out += '"';
    }
    if (e.arg_name != nullptr) {
      std::snprintf(buf, sizeof buf, ",\"%s\":%lld", e.arg_name,
                    static_cast<long long>(e.arg));
      out += buf;
    }
    out += "}}";
  };
  for (const Event& e : events) emit(e);
  for (std::size_t i = open.size(); i-- > 0;) {
    Event e;
    e.ts_us = close_ts;
    e.job = open[i].job;
    e.span = open[i].span;
    e.phase = 'E';
    e.name = open[i].name;
    emit(e);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace fasda::obs
