#include "fasda/serve/job.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "fasda/md/dataset.hpp"
#include "fasda/net/fault.hpp"
#include "fasda/supervisor/supervisor.hpp"
#include "fasda/util/bytes.hpp"
#include "fasda/util/cli.hpp"
#include "fasda/util/crc32.hpp"
#include "fasda/util/stopwatch.hpp"

namespace fasda::serve {
namespace {

md::ForceField forcefield_for(const JobRequest& req) {
  return req.forcefield == "nacl" ? md::ForceField::sodium_chloride()
                                  : md::ForceField::sodium();
}

std::uint64_t f64_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

std::string hex_of(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

bool nibble_of(char c, std::uint8_t& out) {
  if (c >= '0' && c <= '9') out = static_cast<std::uint8_t>(c - '0');
  else if (c >= 'a' && c <= 'f') out = static_cast<std::uint8_t>(c - 'a' + 10);
  else if (c >= 'A' && c <= 'F') out = static_cast<std::uint8_t>(c - 'A' + 10);
  else return false;
  return true;
}

std::vector<std::uint8_t> encode_state_bytes(const md::SystemState& state) {
  util::ByteWriter w;
  w.i32(state.cell_dims.x);
  w.i32(state.cell_dims.y);
  w.i32(state.cell_dims.z);
  w.f64(state.cell_size);
  w.u32(static_cast<std::uint32_t>(state.size()));
  for (std::size_t i = 0; i < state.size(); ++i) {
    w.f64(state.positions[i].x);
    w.f64(state.positions[i].y);
    w.f64(state.positions[i].z);
    w.f64(state.velocities[i].x);
    w.f64(state.velocities[i].y);
    w.f64(state.velocities[i].z);
    w.u8(state.elements[i]);
  }
  return w.take();
}

std::string replica_label(int r) { return "r" + std::to_string(r); }

std::string u64_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_u64_hex(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  out = 0;
  for (const char c : s) {
    std::uint8_t nib;
    if (!nibble_of(c, nib)) return false;
    out = (out << 4) | nib;
  }
  return true;
}

JobOutcome worst_outcome(const std::vector<ReplicaOutcome>& replicas) {
  // Severity order for the job-level fold; kOk is least severe.
  JobOutcome worst = JobOutcome::kOk;
  const auto rank = [](JobOutcome o) {
    switch (o) {
      case JobOutcome::kOk: return 0;
      case JobOutcome::kDegraded: return 1;
      case JobOutcome::kDegradedLink: return 2;
      case JobOutcome::kNodeFailure: return 3;
      case JobOutcome::kIncomplete: return 4;
    }
    return 4;
  };
  for (const ReplicaOutcome& r : replicas) {
    if (rank(r.outcome) > rank(worst)) worst = r.outcome;
  }
  return worst;
}

void fill_energies(ReplicaOutcome& out, const engine::Energies& e) {
  out.potential_bits = f64_bits(e.potential);
  out.kinetic_bits = f64_bits(e.kinetic);
  out.total_bits = f64_bits(e.total);
  out.temperature_bits = f64_bits(e.temperature);
}

void fill_state(ReplicaOutcome& out, const md::SystemState& state,
                bool return_state) {
  const std::vector<std::uint8_t> bytes = encode_state_bytes(state);
  util::Crc32 crc;
  crc.add_bytes(bytes.data(), bytes.size());
  out.state_crc32 = crc.value();
  if (return_state) out.state_hex = hex_of(bytes);
}

}  // namespace

const char* job_outcome_name(JobOutcome o) {
  switch (o) {
    case JobOutcome::kOk: return "ok";
    case JobOutcome::kDegraded: return "degraded";
    case JobOutcome::kDegradedLink: return "degraded-link";
    case JobOutcome::kNodeFailure: return "node-failure";
    case JobOutcome::kIncomplete: return "incomplete";
  }
  return "incomplete";
}

int job_outcome_exit_code(JobOutcome o) {
  // The fasda_md taxonomy: 0 completed, 1 incomplete/usage, 2 unrecovered
  // degraded link, 3 unrecovered node failure, 4 completed degraded.
  switch (o) {
    case JobOutcome::kOk: return 0;
    case JobOutcome::kDegraded: return 4;
    case JobOutcome::kDegradedLink: return 2;
    case JobOutcome::kNodeFailure: return 3;
    case JobOutcome::kIncomplete: return 1;
  }
  return 1;
}

std::optional<JobOutcome> job_outcome_from_name(std::string_view name) {
  for (const JobOutcome o :
       {JobOutcome::kOk, JobOutcome::kDegraded, JobOutcome::kDegradedLink,
        JobOutcome::kNodeFailure, JobOutcome::kIncomplete}) {
    if (name == job_outcome_name(o)) return o;
  }
  return std::nullopt;
}

std::optional<JobRequest> JobRequest::from_json(const json::Value& v,
                                                std::string& error) {
  if (!v.is_object()) {
    error = "submit payload must be a JSON object";
    return std::nullopt;
  }
  JobRequest r;
  bool ok = true;
  const auto str_field = [&](const char* key, std::string& out) {
    const json::Value* m = v.find(key);
    if (!m) return;
    if (!m->is_string()) {
      ok = false;
      error = std::string(key) + " must be a string";
      return;
    }
    out = m->string;
  };
  const auto int_field = [&](const char* key, auto& out, long long lo,
                             long long hi) {
    const json::Value* m = v.find(key);
    if (!m) return;
    if (!m->is_number() || !m->integral || m->integer < lo ||
        m->integer > hi) {
      ok = false;
      error = std::string(key) + " must be an integer in [" +
              std::to_string(lo) + ", " + std::to_string(hi) + "]";
      return;
    }
    out = static_cast<std::remove_reference_t<decltype(out)>>(m->integer);
  };
  const auto num_field = [&](const char* key, double& out, double lo,
                             double hi) {
    const json::Value* m = v.find(key);
    if (!m) return;
    if (!m->is_number() || m->number < lo || m->number > hi) {
      ok = false;
      error = std::string(key) + " must be a number in [" +
              std::to_string(lo) + ", " + std::to_string(hi) + "]";
      return;
    }
    out = m->number;
  };
  const auto bool_field = [&](const char* key, bool& out) {
    const json::Value* m = v.find(key);
    if (!m) return;
    if (!m->is_bool()) {
      ok = false;
      error = std::string(key) + " must be a boolean";
      return;
    }
    out = m->boolean;
  };

  str_field("tenant", r.tenant);
  str_field("idempotency", r.idempotency);
  int_field("priority", r.priority, -1000000, 1000000);
  int_field("replicas", r.replicas, 1, 65536);
  int_field("steps", r.steps, 0, 10000000);
  int_field("sample", r.sample, 0, 10000000);
  str_field("space", r.space);
  int_field("per_cell", r.per_cell, 1, 512);
  {
    const json::Value* m = v.find("seed");
    if (m) {
      if (!m->is_number() || !m->integral || m->integer < 0) {
        ok = false;
        error = "seed must be a non-negative integer";
      } else {
        r.seed = static_cast<std::uint64_t>(m->integer);
      }
    }
  }
  num_field("temperature", r.temperature, 0.0, 1e6);
  str_field("forcefield", r.forcefield);
  str_field("engine", r.engine);
  num_field("dt", r.dt, 1e-6, 1e3);
  bool_field("ewald", r.ewald);
  int_field("threads", r.threads, 1, 256);
  str_field("cells", r.cells);
  int_field("pes", r.pes, 1, 64);
  int_field("spes", r.spes, 1, 64);
  int_field("workers", r.workers, 0, 256);
  int_field("proc_workers", r.proc_workers, 0, 256);
  bool_field("naive_tick", r.naive_tick);
  str_field("faults", r.faults);
  int_field("batch_workers", r.batch_workers, 1, 256);
  bool_field("supervise", r.supervise);
  int_field("checkpoint_every", r.checkpoint_every, 0, 10000000);
  int_field("max_restarts", r.max_restarts, 0, 1000);
  bool_field("allow_degraded", r.allow_degraded);
  bool_field("return_state", r.return_state);

  if (!ok) return std::nullopt;
  return r;
}

std::string JobRequest::to_json() const {
  std::string out = "{";
  out += "\"tenant\":" + json::quoted(tenant);
  if (!idempotency.empty()) {
    out += ",\"idempotency\":" + json::quoted(idempotency);
  }
  out += ",\"priority\":" + std::to_string(priority);
  out += ",\"replicas\":" + std::to_string(replicas);
  out += ",\"steps\":" + std::to_string(steps);
  out += ",\"sample\":" + std::to_string(sample);
  out += ",\"space\":" + json::quoted(space);
  out += ",\"per_cell\":" + std::to_string(per_cell);
  out += ",\"seed\":" + std::to_string(seed);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", temperature);
  out += std::string(",\"temperature\":") + buf;
  out += ",\"forcefield\":" + json::quoted(forcefield);
  out += ",\"engine\":" + json::quoted(engine);
  std::snprintf(buf, sizeof buf, "%.17g", dt);
  out += std::string(",\"dt\":") + buf;
  out += std::string(",\"ewald\":") + (ewald ? "true" : "false");
  out += ",\"threads\":" + std::to_string(threads);
  if (!cells.empty()) out += ",\"cells\":" + json::quoted(cells);
  out += ",\"pes\":" + std::to_string(pes);
  out += ",\"spes\":" + std::to_string(spes);
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"proc_workers\":" + std::to_string(proc_workers);
  out += std::string(",\"naive_tick\":") + (naive_tick ? "true" : "false");
  if (!faults.empty()) out += ",\"faults\":" + json::quoted(faults);
  out += ",\"batch_workers\":" + std::to_string(batch_workers);
  out += std::string(",\"supervise\":") + (supervise ? "true" : "false");
  out += ",\"checkpoint_every\":" + std::to_string(checkpoint_every);
  out += ",\"max_restarts\":" + std::to_string(max_restarts);
  out += std::string(",\"allow_degraded\":") +
         (allow_degraded ? "true" : "false");
  out += std::string(",\"return_state\":") + (return_state ? "true" : "false");
  out += "}";
  return out;
}

std::string JobRequest::validate() const {
  if (tenant.empty() || tenant.size() > 64) {
    return "tenant must be 1..64 characters";
  }
  if (idempotency.size() > 128) {
    return "idempotency key must be at most 128 characters";
  }
  if (!engine::Registry::instance().contains(engine)) {
    return "unknown engine \"" + engine + "\"";
  }
  if (forcefield != "na" && forcefield != "nacl") {
    return "forcefield must be na or nacl";
  }
  try {
    const geom::IVec3 dims = util::parse_dims(space);
    // CellGrid needs >= 3 cells per axis for unambiguous periodic
    // neighbour displacements; reject at admission instead of letting
    // every replica die with the same engine-construction error.
    if (dims.x < 3 || dims.y < 3 || dims.z < 3) {
      return "space: needs at least 3 cells per dimension";
    }
    // Resource caps: bound what one admitted job may allocate before the
    // product arithmetic below can overflow (axes <= 1024 keeps the cell
    // product <= 2^30 in uint64).
    if (dims.x > kMaxCellsPerAxis || dims.y > kMaxCellsPerAxis ||
        dims.z > kMaxCellsPerAxis) {
      return "space: at most " + std::to_string(kMaxCellsPerAxis) +
             " cells per axis";
    }
    const std::uint64_t cells_total = static_cast<std::uint64_t>(dims.x) *
                                      static_cast<std::uint64_t>(dims.y) *
                                      static_cast<std::uint64_t>(dims.z);
    if (cells_total > kMaxSpaceCells) {
      return "space: " + std::to_string(cells_total) +
             " cells exceeds the per-job cap of " +
             std::to_string(kMaxSpaceCells);
    }
    const std::uint64_t replica_particles =
        cells_total * static_cast<std::uint64_t>(per_cell);
    if (replica_particles > kMaxReplicaParticles) {
      return "space*per_cell: " + std::to_string(replica_particles) +
             " particles per replica exceeds the cap of " +
             std::to_string(kMaxReplicaParticles);
    }
    const std::uint64_t job_particles =
        replica_particles * static_cast<std::uint64_t>(replicas);
    if (job_particles > kMaxJobParticles) {
      return "space*per_cell*replicas: " + std::to_string(job_particles) +
             " particles exceeds the per-job cap of " +
             std::to_string(kMaxJobParticles);
    }
    if (return_state && job_particles > kMaxReturnStateParticles) {
      return "return_state: " + std::to_string(job_particles) +
             " particles would not fit one result frame (cap " +
             std::to_string(kMaxReturnStateParticles) + ")";
    }
  } catch (const std::invalid_argument& e) {
    return std::string("space: ") + e.what();
  }
  if (!cells.empty()) {
    try {
      util::parse_dims(cells);
    } catch (const std::invalid_argument& e) {
      return std::string("cells: ") + e.what();
    }
  }
  if (!faults.empty()) {
    if (engine != "cycle") return "faults only apply to the cycle engine";
    try {
      net::FaultPlan::parse(faults);
    } catch (const std::invalid_argument& e) {
      return std::string("faults: ") + e.what();
    }
  }
  if (proc_workers > 0 && workers > 1) {
    return "proc_workers is mutually exclusive with workers > 1";
  }
  return {};
}

std::string encode_state_hex(const md::SystemState& state) {
  return hex_of(encode_state_bytes(state));
}

std::optional<md::SystemState> decode_state_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> bytes(hex.size() / 2);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::uint8_t hi, lo;
    if (!nibble_of(hex[2 * i], hi) || !nibble_of(hex[2 * i + 1], lo)) {
      return std::nullopt;
    }
    bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  util::ByteReader r(bytes);
  md::SystemState state;
  state.cell_dims.x = r.i32();
  state.cell_dims.y = r.i32();
  state.cell_dims.z = r.i32();
  state.cell_size = r.f64();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > 100000000u ||
      r.remaining() != static_cast<std::size_t>(n) * 49) {
    return std::nullopt;
  }
  state.positions.resize(n);
  state.velocities.resize(n);
  state.elements.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    state.positions[i] = {r.f64(), r.f64(), r.f64()};
    state.velocities[i] = {r.f64(), r.f64(), r.f64()};
    state.elements[i] = r.u8();
  }
  if (!r.done()) return std::nullopt;
  return state;
}

std::uint32_t state_crc32(const md::SystemState& state) {
  const std::vector<std::uint8_t> bytes = encode_state_bytes(state);
  util::Crc32 crc;
  crc.add_bytes(bytes.data(), bytes.size());
  return crc.value();
}

engine::EngineSpec engine_spec_for(const JobRequest& req) {
  const std::string problem = req.validate();
  if (!problem.empty()) throw std::invalid_argument("job: " + problem);
  engine::EngineSpec spec;
  spec.engine = req.engine;
  spec.dt = req.dt;
  spec.terms.ewald_real = req.ewald;
  spec.threads = static_cast<std::size_t>(req.threads);
  if (!req.cells.empty()) spec.cells_per_node = util::parse_dims(req.cells);
  spec.pes_per_spe = req.pes;
  spec.spes = req.spes;
  spec.num_worker_threads = req.workers;
  spec.proc_workers = req.proc_workers;
  spec.naive_tick = req.naive_tick;
  if (!req.faults.empty()) spec.faults = net::FaultPlan::parse(req.faults);
  return spec;
}

md::SystemState make_replica_state(const JobRequest& req, int replica) {
  const md::ForceField ff = forcefield_for(req);
  md::DatasetParams params;
  params.particles_per_cell = req.per_cell;
  params.seed = req.seed + static_cast<std::uint64_t>(replica);
  params.temperature = req.temperature;
  if (req.forcefield == "nacl") {
    params.elements = md::ElementAssignment::kAlternating;
  }
  return md::generate_dataset(util::parse_dims(req.space), 8.5, ff, params);
}

namespace {

/// Rebases a resumed replica's observer stream onto absolute steps and
/// fires the journal's `checkpointed` hook once per banked block. The
/// supervisor saves the checkpoint file before on_sample fires, so by the
/// time `checkpointed` runs the state for that step is already durable.
class ResumeShimObserver final : public engine::StepObserver {
 public:
  ResumeShimObserver(engine::StepObserver* inner, long long base, int replica,
                     const ExecutionHooks* hooks)
      : inner_(inner), base_(base), replica_(replica), hooks_(hooks) {}

  void on_sample(int step, const md::SystemState& state,
                 const engine::Energies& energies) override {
    const long long absolute = base_ + step;
    // step 0 is the initial sample (nothing newly banked); for a resumed
    // replica that step was journaled by the pre-crash incarnation.
    if (step > 0 && hooks_ && hooks_->checkpointed) {
      hooks_->checkpointed(replica_, absolute);
    }
    if (inner_) inner_->on_sample(static_cast<int>(absolute), state, energies);
  }

  void on_finish(int steps, engine::Engine& engine) override {
    if (inner_) {
      inner_->on_finish(static_cast<int>(base_ + steps), engine);
    }
  }

 private:
  engine::StepObserver* inner_;
  long long base_;
  int replica_;
  const ExecutionHooks* hooks_;
};

}  // namespace

JobResult execute_job(std::uint64_t job_id, const JobRequest& req,
                      const ReplicaObserverFactory* observers,
                      const ExecutionHooks* hooks) {
  util::Stopwatch wall;
  JobResult out;
  out.job_id = job_id;
  out.replicas.resize(static_cast<std::size_t>(req.replicas));

  const md::ForceField ff = forcefield_for(req);
  const engine::EngineSpec spec = engine_spec_for(req);

  if (req.supervise) {
    // Sequential supervised replicas: each gets its own Supervisor with
    // rollback-and-replay; a recovered replica is bitwise identical to an
    // uninterrupted one (DESIGN.md §11), so supervision never enters the
    // determinism contract.
    for (int r = 0; r < req.replicas; ++r) {
      ReplicaOutcome& rep = out.replicas[static_cast<std::size_t>(r)];
      rep.label = replica_label(r);
      supervisor::SupervisorConfig scfg;
      scfg.checkpoint_every = req.checkpoint_every > 0
                                  ? req.checkpoint_every
                                  : (req.sample > 0 ? req.sample : req.steps);
      scfg.max_restarts = req.max_restarts;
      scfg.allow_degraded = req.allow_degraded;

      // Resume hand-off: a replica the journal knows a banked checkpoint
      // for restarts from that state and runs only the remaining steps;
      // `base` rebases every observed/journaled/reported step back to the
      // uninterrupted run's numbering.
      long long base = 0;
      std::optional<md::SystemState> resume_state;
      if (hooks) {
        const auto it = hooks->resume.find(r);
        if (it != hooks->resume.end()) {
          base = std::min<long long>(it->second.first, req.steps);
          resume_state = it->second.second;
        }
      }
      if (hooks && hooks->checkpoint_path) {
        scfg.checkpoint_path_for = [hooks, r, base](long long step) {
          return hooks->checkpoint_path(r, base + step);
        };
      }

      engine::StepObserver* user_obs = nullptr;
      if (observers) user_obs = (*observers)(r);
      ResumeShimObserver shim(user_obs, base, r, hooks);
      std::vector<engine::StepObserver*> obs;
      if (user_obs || (hooks && hooks->checkpointed)) obs.push_back(&shim);
      try {
        supervisor::Supervisor sup(
            resume_state ? std::move(*resume_state)
                         : make_replica_state(req, r),
            ff, spec, scfg);
        const supervisor::RunReport report =
            sup.run(static_cast<int>(req.steps - base), obs);
        rep.steps = report.steps + base;
        fill_energies(rep, report.final_energies);
        fill_state(rep, report.final_state, req.return_state);
        if (report.completed) {
          rep.outcome =
              report.degraded ? JobOutcome::kDegraded : JobOutcome::kOk;
        } else {
          rep.error = report.final_error;
          rep.outcome = JobOutcome::kIncomplete;
          if (!report.incidents.empty()) {
            switch (report.incidents.back().kind) {
              case supervisor::IncidentKind::kDegradedLink:
                rep.outcome = JobOutcome::kDegradedLink;
                break;
              case supervisor::IncidentKind::kNodeFailure:
                rep.outcome = JobOutcome::kNodeFailure;
                break;
              case supervisor::IncidentKind::kOther: break;
            }
          }
        }
      } catch (const std::exception& e) {
        rep.outcome = JobOutcome::kIncomplete;
        rep.error = e.what();
      }
    }
  } else {
    std::vector<engine::BatchJob> jobs(static_cast<std::size_t>(req.replicas));
    for (int r = 0; r < req.replicas; ++r) {
      engine::BatchJob& job = jobs[static_cast<std::size_t>(r)];
      job.label = replica_label(r);
      job.state = make_replica_state(req, r);
      job.ff = ff;
      job.spec = spec;
      job.steps = req.steps;
      // Drive through engine::run (not bare step) so both the daemon and
      // the direct comparison path take the identical sample-chunked
      // stepping; the observer only reads state, never perturbs it.
      job.body = [&req, observers, r](engine::ReplicaContext& ctx) {
        std::vector<engine::StepObserver*> obs;
        if (observers) {
          if (engine::StepObserver* o = (*observers)(r)) obs.push_back(o);
        }
        const engine::RunResult rr =
            engine::run(ctx.engine(), req.steps, req.sample, obs);
        return rr.final_energies.total;
      };
    }
    engine::BatchRunner runner(static_cast<std::size_t>(req.batch_workers));
    const engine::BatchReport report = runner.run(jobs);
    for (std::size_t r = 0; r < report.replicas.size(); ++r) {
      const engine::ReplicaResult& res = report.replicas[r];
      ReplicaOutcome& rep = out.replicas[r];
      rep.label = res.label;
      rep.steps = res.steps;
      rep.error = res.error;
      if (res.ok) {
        rep.outcome = JobOutcome::kOk;
      } else {
        switch (res.failure) {
          case engine::ReplicaFailure::kDegradedLink:
            rep.outcome = JobOutcome::kDegradedLink;
            break;
          case engine::ReplicaFailure::kNodeFailure:
            rep.outcome = JobOutcome::kNodeFailure;
            break;
          default: rep.outcome = JobOutcome::kIncomplete; break;
        }
      }
      fill_energies(rep, res.final_energies);
      fill_state(rep, res.final_state, req.return_state);
    }
  }

  out.outcome = worst_outcome(out.replicas);
  out.exit_code = job_outcome_exit_code(out.outcome);
  out.wall_seconds = wall.seconds();
  return out;
}

std::string JobResult::to_json(bool deterministic_only) const {
  std::string out = "{";
  out += "\"job\":" + std::to_string(job_id);
  out += ",\"outcome\":" + json::quoted(job_outcome_name(outcome));
  out += ",\"exit_code\":" + std::to_string(exit_code);
  if (!deterministic_only) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", wall_seconds);
    out += std::string(",\"wall_seconds\":") + buf;
  }
  out += ",\"replicas\":[";
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaOutcome& r = replicas[i];
    if (i) out += ',';
    out += "{\"label\":" + json::quoted(r.label);
    out += ",\"outcome\":" + json::quoted(job_outcome_name(r.outcome));
    if (!r.error.empty()) out += ",\"error\":" + json::quoted(r.error);
    out += ",\"steps\":" + std::to_string(r.steps);
    out += ",\"potential\":" + json::quoted(u64_hex(r.potential_bits));
    out += ",\"kinetic\":" + json::quoted(u64_hex(r.kinetic_bits));
    out += ",\"total\":" + json::quoted(u64_hex(r.total_bits));
    out += ",\"temperature\":" + json::quoted(u64_hex(r.temperature_bits));
    out += ",\"state_crc32\":" + std::to_string(r.state_crc32);
    if (!r.state_hex.empty()) out += ",\"state\":" + json::quoted(r.state_hex);
    out += "}";
  }
  out += "]}";
  return out;
}

std::optional<JobResult> JobResult::from_json(const json::Value& v,
                                              std::string& error) {
  if (!v.is_object()) {
    error = "result payload must be a JSON object";
    return std::nullopt;
  }
  JobResult out;
  const json::Value* job = v.find("job");
  if (!job || !job->is_number() || !job->integral || job->integer < 0) {
    error = "result missing job id";
    return std::nullopt;
  }
  out.job_id = static_cast<std::uint64_t>(job->integer);
  const json::Value* outcome = v.find("outcome");
  if (!outcome || !outcome->is_string()) {
    error = "result missing outcome";
    return std::nullopt;
  }
  const auto parsed = job_outcome_from_name(outcome->string);
  if (!parsed) {
    error = "unknown outcome \"" + outcome->string + "\"";
    return std::nullopt;
  }
  out.outcome = *parsed;
  if (const json::Value* ec = v.find("exit_code")) {
    out.exit_code = static_cast<int>(ec->int_or(1));
  }
  if (const json::Value* w = v.find("wall_seconds")) {
    out.wall_seconds = w->num_or(0);
  }
  const json::Value* reps = v.find("replicas");
  if (!reps || !reps->is_array()) {
    error = "result missing replicas";
    return std::nullopt;
  }
  for (const json::Value& item : reps->items) {
    if (!item.is_object()) {
      error = "replica entries must be objects";
      return std::nullopt;
    }
    ReplicaOutcome rep;
    if (const json::Value* l = item.find("label")) rep.label = l->str_or("");
    const json::Value* ro = item.find("outcome");
    const auto rparsed =
        ro && ro->is_string() ? job_outcome_from_name(ro->string)
                              : std::nullopt;
    if (!rparsed) {
      error = "replica missing outcome";
      return std::nullopt;
    }
    rep.outcome = *rparsed;
    if (const json::Value* e = item.find("error")) rep.error = e->str_or("");
    if (const json::Value* s = item.find("steps")) rep.steps = s->int_or(0);
    const auto bits_field = [&](const char* key, std::uint64_t& bits) {
      const json::Value* m = item.find(key);
      if (!m || !m->is_string() || !parse_u64_hex(m->string, bits)) {
        error = std::string("replica missing/invalid ") + key;
        return false;
      }
      return true;
    };
    if (!bits_field("potential", rep.potential_bits) ||
        !bits_field("kinetic", rep.kinetic_bits) ||
        !bits_field("total", rep.total_bits) ||
        !bits_field("temperature", rep.temperature_bits)) {
      return std::nullopt;
    }
    if (const json::Value* c = item.find("state_crc32")) {
      rep.state_crc32 = static_cast<std::uint32_t>(c->int_or(0));
    }
    if (const json::Value* s = item.find("state")) {
      rep.state_hex = s->str_or("");
    }
    out.replicas.push_back(std::move(rep));
  }
  return out;
}

}  // namespace fasda::serve
