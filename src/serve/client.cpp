#include "fasda/serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "fasda/serve/json.hpp"

namespace fasda::serve {
namespace {

std::optional<std::uint64_t> job_id_of(const std::string& payload) {
  std::string error;
  const auto v = json::parse(payload, &error);
  const json::Value* id = v ? v->find("job") : nullptr;
  if (!id || !id->is_number() || !id->integral || id->integer < 0) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(id->integer);
}

Conn dial_retry(const std::string& host, std::uint16_t port,
                const RetryPolicy& policy) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  std::chrono::milliseconds backoff = policy.backoff_initial;
  int last_err = 0;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    int err = 0;
    Conn conn = try_dial(host, port, err);
    if (conn.valid()) return conn;
    if (err == 0) throw WireError("bad address: " + host);
    if (!Client::errno_retryable(err)) {
      throw WireError("connect " + host + ":" + std::to_string(port) +
                      " failed: " + std::strerror(err));
    }
    last_err = err;
    if (attempt == attempts) break;
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.backoff_cap);
  }
  throw RetryGiveUpError(
      "connect " + host + ":" + std::to_string(port) + " failed after " +
          std::to_string(attempts) + " attempts: " + std::strerror(last_err),
      attempts);
}

}  // namespace

bool Client::errno_retryable(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == ECONNABORTED ||
         err == ETIMEDOUT;
}

Client::Client(const std::string& host, std::uint16_t port)
    : conn_(dial(host, port)), host_(host), port_(port) {
  policy_.max_attempts = 1;
}

Client::Client(const std::string& host, std::uint16_t port,
               const RetryPolicy& policy)
    : conn_(dial_retry(host, port, policy)),
      host_(host),
      port_(port),
      policy_(policy) {}

void Client::reconnect() {
  conn_ = Conn();  // drop the old fd first so the server can reap it
  conn_ = policy_.max_attempts <= 1 ? dial(host_, port_)
                                    : dial_retry(host_, port_, policy_);
}

WireFrame Client::recv_checked() {
  WireFrame frame;
  const DecodeStatus st = conn_.recv(frame);
  if (st != DecodeStatus::kFrame) {
    throw WireError(std::string("protocol error from server: ") +
                    decode_status_name(st));
  }
  return frame;
}

bool Client::absorb_push(const WireFrame& frame) {
  // Jobs submitted earlier on this connection stream kStatus/kResult at
  // any time; buffer them so pipelined submit-then-wait callers (the
  // bench, loadgen) never lose a result that raced a reply.
  if (frame.type == MsgType::kStatus) {
    if (const auto id = job_id_of(frame.payload)) ++status_counts_[*id];
    return true;
  }
  if (frame.type == MsgType::kResult) {
    std::string error;
    const auto v = json::parse(frame.payload, &error);
    const auto result = v ? JobResult::from_json(*v, error) : std::nullopt;
    if (!result) {
      throw WireError("malformed kResult payload: " + error);
    }
    results_.emplace(result->job_id, *result);
    return true;
  }
  if (frame.type == MsgType::kError) {
    throw WireError("server closed the connection: " + frame.payload);
  }
  return false;
}

Client::SubmitReply Client::submit(const JobRequest& req) {
  conn_.send(MsgType::kSubmit, req.to_json());
  for (;;) {
    const WireFrame frame = recv_checked();
    if (absorb_push(frame)) continue;
    if (frame.type == MsgType::kAccepted) {
      const auto id = job_id_of(frame.payload);
      if (!id) {
        throw WireError("malformed kAccepted payload: " + frame.payload);
      }
      SubmitReply reply;
      reply.accepted = true;
      reply.job_id = *id;
      return reply;
    }
    if (frame.type == MsgType::kRejected) {
      std::string error;
      const auto v = json::parse(frame.payload, &error);
      SubmitReply reply;
      reply.accepted = false;
      if (v) {
        if (const json::Value* r = v->find("reason")) {
          reply.reason = r->str_or("");
        }
        if (const json::Value* d = v->find("detail")) {
          reply.detail = d->str_or("");
        }
      }
      return reply;
    }
    if (frame.type == MsgType::kRecovering) {
      // Startup replay window: not an error, just "not yet". Callers back
      // off and resubmit (idempotency keys make that safe).
      SubmitReply reply;
      reply.accepted = false;
      reply.reason = "recovering";
      return reply;
    }
    throw WireError("unexpected reply to kSubmit: " + frame.payload);
  }
}

JobResult Client::wait_result(std::uint64_t job_id, int* status_frames) {
  for (;;) {
    const auto it = results_.find(job_id);
    if (it != results_.end()) {
      const JobResult result = it->second;
      results_.erase(it);
      if (status_frames != nullptr) {
        const auto sit = status_counts_.find(job_id);
        *status_frames += sit == status_counts_.end()
                              ? 0
                              : static_cast<int>(sit->second);
      }
      status_counts_.erase(job_id);
      return result;
    }
    const WireFrame frame = recv_checked();
    if (!absorb_push(frame)) {
      throw WireError("unexpected frame while waiting for result: " +
                      frame.payload);
    }
  }
}

Client::RunOutcome Client::run_job(const JobRequest& req) {
  RunOutcome out;
  out.reply = submit(req);
  if (!out.reply.accepted) return out;
  out.result = wait_result(out.reply.job_id, &out.status_frames);
  return out;
}

std::string Client::query(std::uint64_t job_id, bool& rejected) {
  conn_.send(MsgType::kQuery, "{\"job\":" + std::to_string(job_id) + "}");
  for (;;) {
    const WireFrame frame = recv_checked();
    if (frame.type == MsgType::kStatus) {
      // The query reply carries the queried id; pushes for jobs submitted
      // on this connection are absorbed instead. A push for the SAME id
      // is indistinguishable from the reply, which is fine — both are
      // fresh status snapshots.
      if (job_id_of(frame.payload) == std::optional<std::uint64_t>(job_id)) {
        rejected = false;
        return frame.payload;
      }
      absorb_push(frame);
      continue;
    }
    if (frame.type == MsgType::kRejected ||
        frame.type == MsgType::kRecovering) {
      rejected = true;
      return frame.payload;
    }
    if (absorb_push(frame)) continue;
    throw WireError("unexpected reply to kQuery: " + frame.payload);
  }
}

std::string Client::ping() {
  conn_.send(MsgType::kPing, "{}");
  for (;;) {
    const WireFrame frame = recv_checked();
    if (frame.type == MsgType::kPong) return frame.payload;
    if (absorb_push(frame)) continue;
    throw WireError("unexpected reply to kPing: " + frame.payload);
  }
}

std::string Client::stats(const std::string& format) {
  conn_.send(MsgType::kStats, "{\"format\":" + json::quoted(format) + "}");
  for (;;) {
    const WireFrame frame = recv_checked();
    if (frame.type == MsgType::kStats) return frame.payload;
    if (frame.type == MsgType::kRejected) {
      throw WireError("kStats rejected: " + frame.payload);
    }
    if (absorb_push(frame)) continue;
    throw WireError("unexpected reply to kStats: " + frame.payload);
  }
}

}  // namespace fasda::serve
