// Write-ahead job journal (serve/journal.hpp): framing, salvage-scan
// recovery, fsync-gated appends, and tmp+rename compaction.

#include "fasda/serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "fasda/obs/server_stats.hpp"
#include "fasda/util/crc32.hpp"

namespace fasda::serve {

namespace {

std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u32_le(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v >> 16));
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::string errno_str(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

}  // namespace

std::vector<std::uint8_t> encode_journal_record(JournalRecord type,
                                                std::string_view payload) {
  if (payload.size() > kMaxJournalRecordBytes - 1) {
    throw JournalError("record payload of " + std::to_string(payload.size()) +
                       " bytes exceeds the " +
                       std::to_string(kMaxJournalRecordBytes) +
                       "-byte record cap");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
  const std::uint8_t type_byte = static_cast<std::uint8_t>(type);
  util::Crc32 crc;
  crc.add_bytes(&type_byte, 1);
  if (!payload.empty()) crc.add_bytes(payload.data(), payload.size());
  std::vector<std::uint8_t> buf;
  buf.reserve(9 + payload.size());
  put_u32_le(buf, length);
  put_u32_le(buf, crc.value());
  buf.push_back(type_byte);
  buf.insert(buf.end(), payload.begin(), payload.end());
  return buf;
}

RecoveryReport scan_journal_bytes(const std::uint8_t* data, std::size_t n) {
  RecoveryReport report;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t remaining = n - pos;
    if (remaining == 0) {
      report.tail = JournalTail::kClean;
      break;
    }
    if (remaining < 8) {
      report.tail = JournalTail::kTorn;
      report.issue = "file ends inside a record header (" +
                     std::to_string(remaining) + " of 8 header bytes)";
      break;
    }
    const std::uint32_t length = get_u32_le(data + pos);
    const std::uint32_t want_crc = get_u32_le(data + pos + 4);
    if (length == 0 || length > kMaxJournalRecordBytes) {
      report.tail = JournalTail::kCorrupt;
      report.issue =
          "record length " + std::to_string(length) + " is out of range";
      break;
    }
    if (remaining < 8 + static_cast<std::size_t>(length)) {
      report.tail = JournalTail::kTorn;
      report.issue = "file ends inside a record body (" +
                     std::to_string(remaining - 8) + " of " +
                     std::to_string(length) + " body bytes)";
      break;
    }
    util::Crc32 crc;
    crc.add_bytes(data + pos + 8, length);
    if (crc.value() != want_crc) {
      report.tail = JournalTail::kCorrupt;
      report.issue = "record CRC mismatch";
      break;
    }
    const std::uint8_t type_byte = data[pos + 8];
    if (!journal_record_known(type_byte)) {
      report.tail = JournalTail::kCorrupt;
      report.issue =
          "unknown record type " + std::to_string(type_byte);
      break;
    }
    JournalEntry entry;
    entry.type = static_cast<JournalRecord>(type_byte);
    entry.payload.assign(reinterpret_cast<const char*>(data + pos + 9),
                         length - 1);
    report.entries.push_back(std::move(entry));
    pos += 8 + static_cast<std::size_t>(length);
  }
  report.salvaged_bytes = pos;
  report.quarantined_bytes = n - pos;
  report.clean_shutdown =
      report.tail == JournalTail::kClean && !report.entries.empty() &&
      report.entries.back().type == JournalRecord::kCleanShutdown;
  return report;
}

Journal::~Journal() { close(); }

Journal::Journal(Journal&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      path_(std::move(o.path_)),
      bytes_(std::exchange(o.bytes_, 0)),
      fsync_policy_(o.fsync_policy_),
      observer_(std::move(o.observer_)) {}

Journal& Journal::operator=(Journal&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    path_ = std::move(o.path_);
    bytes_ = std::exchange(o.bytes_, 0);
    fsync_policy_ = o.fsync_policy_;
    observer_ = std::move(o.observer_);
  }
  return *this;
}

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

RecoveryReport Journal::recover(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return RecoveryReport{};  // fresh state directory
    throw JournalError("open " + path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> data;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw JournalError("read " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    data.insert(data.end(), chunk, chunk + n);
  }
  ::close(fd);
  return scan_journal_bytes(data.data(), data.size());
}

void Journal::open_appending(const std::string& path,
                             const RecoveryReport& report,
                             JournalFsync fsync_policy) {
  close();
  path_ = path;
  fsync_policy_ = fsync_policy;
  if (report.quarantined_bytes > 0) {
    // Preserve the damaged tail for post-mortems before truncating it away.
    const int src = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (src >= 0) {
      std::vector<std::uint8_t> tail(report.quarantined_bytes);
      const ssize_t n =
          ::pread(src, tail.data(), tail.size(),
                  static_cast<off_t>(report.salvaged_bytes));
      ::close(src);
      if (n > 0) {
        const std::string qpath = path + ".quarantined";
        const int qfd = ::open(qpath.c_str(),
                               O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
        if (qfd >= 0) {
          write_file_all(qfd, tail.data(), static_cast<std::size_t>(n));
          ::fsync(qfd);
          ::close(qfd);
        }
      }
    }
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw JournalError("open " + path + ": " + std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(report.salvaged_bytes)) != 0) {
    const int err = errno;
    close();
    throw JournalError("truncate " + path + ": " + std::strerror(err));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    const int err = errno;
    close();
    throw JournalError("seek " + path + ": " + std::strerror(err));
  }
  if (fsync_policy_ == JournalFsync::kAlways) ::fsync(fd_);
  bytes_ = report.salvaged_bytes;
}

void Journal::append(JournalRecord type, std::string_view payload) {
  if (fd_ < 0) throw JournalError("append on a closed journal");
  const std::uint64_t t0 = observer_ ? obs::wall_micros() : 0;
  const std::vector<std::uint8_t> buf = encode_journal_record(type, payload);
  write_file_all(fd_, buf.data(), buf.size());
  std::uint64_t fsync_us = 0;
  if (fsync_policy_ == JournalFsync::kAlways) {
    const std::uint64_t f0 = observer_ ? obs::wall_micros() : 0;
    if (::fsync(fd_) != 0) throw JournalError(errno_str("fsync"));
    if (observer_) fsync_us = obs::wall_micros() - f0;
  }
  bytes_ += buf.size();
  if (observer_) observer_(obs::wall_micros() - t0, fsync_us);
}

void Journal::rotate(const std::vector<JournalEntry>& compacted) {
  if (fd_ < 0) throw JournalError("rotate on a closed journal");
  const std::string tmp = path_ + ".tmp";
  const int tfd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tfd < 0) {
    throw JournalError("open " + tmp + ": " + std::strerror(errno));
  }
  std::size_t total = 0;
  try {
    for (const JournalEntry& e : compacted) {
      const std::vector<std::uint8_t> buf =
          encode_journal_record(e.type, e.payload);
      write_file_all(tfd, buf.data(), buf.size());
      total += buf.size();
    }
  } catch (...) {
    ::close(tfd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::fsync(tfd) != 0) {
    const int err = errno;
    ::close(tfd);
    ::unlink(tmp.c_str());
    throw JournalError("fsync " + tmp + ": " + std::strerror(err));
  }
  ::close(tfd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw JournalError("rename " + tmp + ": " + std::strerror(err));
  }
  fsync_parent_dir();
  // The old fd now points at an unlinked inode; reopen the new file.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw JournalError("reopen " + path_ + ": " + std::strerror(errno));
  }
  bytes_ = total;
}

void Journal::write_file_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw JournalError(errno_str("write"));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

void Journal::fsync_parent_dir() {
  const std::size_t slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace fasda::serve
