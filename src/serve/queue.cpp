#include "fasda/serve/queue.hpp"

#include <memory>
#include <utility>

#include "fasda/obs/server_stats.hpp"

namespace fasda::serve {

const char* admit_reason(Admit a) {
  switch (a) {
    case Admit::kAdmitted: return "admitted";
    case Admit::kQueueFull: return "queue-full";
    case Admit::kTenantQuota: return "tenant-quota";
    case Admit::kDraining: return "draining";
    case Admit::kStopped: return "stopped";
  }
  return "unknown";
}

JobQueue::JobQueue(QueueConfig config) : config_(config) {}

JobQueue::~JobQueue() { stop(); }

void JobQueue::start_workers(std::size_t n) {
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobQueue::Ticket JobQueue::submit(const std::string& tenant, int priority,
                                  std::function<void()> work) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return {Admit::kStopped, 0};
  if (draining_) return {Admit::kDraining, 0};
  if (pending_.size() >= config_.capacity) return {Admit::kQueueFull, 0};
  if (config_.tenant_quota > 0 &&
      tenant_load_[tenant] >= config_.tenant_quota) {
    return {Admit::kTenantQuota, 0};
  }
  return enqueue_locked(tenant, priority, std::move(work));
}

JobQueue::Ticket JobQueue::readmit(const std::string& tenant, int priority,
                                   std::function<void()> work) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return {Admit::kStopped, 0};
  return enqueue_locked(tenant, priority, std::move(work));
}

JobQueue::Ticket JobQueue::enqueue_locked(const std::string& tenant,
                                          int priority,
                                          std::function<void()> work) {
  Entry entry;
  entry.priority = priority;
  entry.seq = next_seq_++;
  entry.tenant = tenant;
  entry.work =
      std::make_shared<std::function<void()>>(std::move(work));
  if (stats_ != nullptr) entry.enqueued_us = obs::wall_micros();
  ++tenant_load_[tenant];
  pending_.insert(std::move(entry));
  if (stats_ != nullptr) {
    stats_->set(stats_->queue_depth, static_cast<double>(pending_.size()));
  }
  cv_work_.notify_one();
  return {Admit::kAdmitted, next_seq_ - 1};
}

bool JobQueue::pop_locked(Entry& out) {
  if (pending_.empty()) return false;
  auto node = pending_.extract(pending_.begin());
  out = std::move(node.value());
  ++running_;
  if (stats_ != nullptr) {
    stats_->set(stats_->queue_depth, static_cast<double>(pending_.size()));
    stats_->set(stats_->jobs_running, static_cast<double>(running_));
  }
  return true;
}

void JobQueue::run_entry(Entry entry) {
  if (stats_ != nullptr && entry.enqueued_us != 0) {
    stats_->observe(stats_->queue_wait_us,
                    obs::wall_micros() - entry.enqueued_us);
  }
  (*entry.work)();
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  if (stats_ != nullptr) {
    stats_->set(stats_->jobs_running, static_cast<double>(running_));
  }
  auto it = tenant_load_.find(entry.tenant);
  if (it != tenant_load_.end() && --it->second == 0) tenant_load_.erase(it);
  cv_idle_.notify_all();
}

bool JobQueue::try_run_one() {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pop_locked(entry)) return false;
  }
  run_entry(std::move(entry));
  return true;
}

void JobQueue::worker_loop() {
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stopped_ || !pending_.empty(); });
      if (stopped_ && pending_.empty()) return;
      if (!pop_locked(entry)) continue;
    }
    run_entry(std::move(entry));
  }
}

void JobQueue::begin_drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool JobQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_ || stopped_;
}

void JobQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

void JobQueue::stop() {
  // Claim the worker handles under the lock: concurrent or re-entrant
  // stop() callers (Server::stop then ~JobQueue) each take their own
  // disjoint set, so no thread is ever observed — let alone joined — by
  // two callers.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopped_) {
      stopped_ = true;
      draining_ = true;
      for (const Entry& e : pending_) {
        auto it = tenant_load_.find(e.tenant);
        if (it != tenant_load_.end() && --it->second == 0) {
          tenant_load_.erase(it);
        }
      }
      pending_.clear();
      cv_work_.notify_all();
      cv_idle_.notify_all();
    }
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

std::size_t JobQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::size_t JobQueue::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::size_t JobQueue::tenant_load(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenant_load_.find(tenant);
  return it == tenant_load_.end() ? 0 : it->second;
}

}  // namespace fasda::serve
