#include "fasda/serve/server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

#include "fasda/serve/json.hpp"

namespace fasda::serve {
namespace {

// Signal handlers cannot touch the Server object; they write one byte into
// the drain pipe and wait_for_drain_signal() does the rest on a normal
// thread. install_signal_drain() is documented one-server-at-a-time, so a
// single global fd is enough.
std::atomic<int> g_drain_write_fd{-1};

void drain_signal_handler(int /*signo*/) {
  const int fd = g_drain_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // The pipe is never full in practice; a failed write just means a
    // drain is already pending, which is the same outcome.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

/// Adapts a lambda to the StepObserver interface so the per-replica status
/// publisher can capture the job record without the observer type needing
/// access to Server's private nested structs.
class FnObserver final : public engine::StepObserver {
 public:
  using Fn = std::function<void(int, const engine::Energies&)>;
  explicit FnObserver(Fn fn) : fn_(std::move(fn)) {}
  void on_sample(int step, const md::SystemState& /*state*/,
                 const engine::Energies& energies) override {
    fn_(step, energies);
  }

 private:
  Fn fn_;
};

}  // namespace

/// One accepted socket. `send_safe` is the only way job threads talk to a
/// connection: it serializes whole frames under `send_mu` and demotes any
/// socket failure (client vanished mid-job) to a dead flag — the job keeps
/// running and is reaped normally.
struct Server::ConnState {
  ConnState(std::uint64_t i, Conn c) : id(i), conn(std::move(c)) {}

  const std::uint64_t id;
  Conn conn;
  std::mutex send_mu;
  std::atomic<bool> alive{true};

  bool send_safe(MsgType type, std::string_view payload) noexcept {
    if (!alive.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(send_mu);
    try {
      conn.send(type, payload);
      return true;
    } catch (...) {
      alive.store(false, std::memory_order_relaxed);
      conn.shutdown_both();
      return false;
    }
  }
};

/// One submitted job. `mu` guards state/result/hub/observers — the obs
/// registry keeps its lock-free single-writer contract because every
/// publish and every snapshot happens under this one mutex.
struct Server::Job {
  enum class State : std::uint8_t { kQueued, kRunning, kDone };

  std::uint64_t id = 0;
  JobRequest req;

  std::mutex mu;
  State state = State::kQueued;
  obs::Hub hub;
  std::optional<JobResult> result;
  std::vector<std::unique_ptr<engine::StepObserver>> observers;
  std::weak_ptr<ConnState> subscriber;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)), queue_(config_.queue) {
  if (::pipe(drain_pipe_) != 0) {
    throw WireError(std::string("pipe: ") + std::strerror(errno));
  }
  ::fcntl(drain_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(drain_pipe_[1], F_SETFD, FD_CLOEXEC);
}

Server::~Server() { stop(); }

void Server::start() {
  auto [fd, port] = listen_on(config_.host, config_.port);
  listen_fd_ = fd;
  port_ = port;
  queue_.start_workers(config_.queue_workers);
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_.store(true);
}

void Server::begin_drain() { queue_.begin_drain(); }

void Server::drain_and_stop() {
  begin_drain();
  queue_.wait_idle();
  stop();
}

void Server::stop() {
  if (torn_down_.exchange(true)) return;
  stopping_.store(true);
  request_drain();  // unblock wait_for_drain_signal()
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unordered_map<std::uint64_t, std::shared_ptr<ConnState>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
    for (auto& [id, t] : conn_threads_) threads.push_back(std::move(t));
    conn_threads_.clear();
    for (std::thread& t : finished_conn_threads_) threads.push_back(std::move(t));
    finished_conn_threads_.clear();
  }
  for (const auto& [id, c] : conns) c->conn.shutdown_both();
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  queue_.stop();
  for (int& fd : drain_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void Server::request_drain() {
  if (drain_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
  }
}

void Server::wait_for_drain_signal() {
  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(drain_pipe_[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    break;  // signal byte, request_drain byte, or pipe closed by stop()
  }
  begin_drain();
}

void Server::install_signal_drain(Server* server) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sigemptyset(&sa.sa_mask);
  if (server != nullptr) {
    g_drain_write_fd.store(server->drain_pipe_[1]);
    sa.sa_handler = drain_signal_handler;
    sa.sa_flags = SA_RESTART;
  } else {
    g_drain_write_fd.store(-1);
    sa.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void Server::accept_loop() {
  for (;;) {
    join_finished_conn_threads();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (stopping_.load()) return;  // listen socket closed by stop()
      switch (err) {
        // Transient: the peer hung up mid-handshake, or the process/system
        // is briefly out of fds or buffers. A daemon must keep accepting —
        // self-reaping connections release fds, so exhaustion clears.
        case ECONNABORTED:
        case EMFILE:
        case ENFILE:
        case ENOBUFS:
        case ENOMEM:
        case EAGAIN:
#if EAGAIN != EWOULDBLOCK
        case EWOULDBLOCK:
#endif
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        default:
          return;  // the listen socket itself is broken
      }
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto conn = std::make_shared<ConnState>(next_conn_id_++, Conn(fd));
    conn->conn.set_recv_timeout(config_.recv_timeout_seconds);
    conn->conn.set_send_timeout(config_.send_timeout_seconds);
    conns_.emplace(conn->id, conn);
    conn_threads_.emplace(
        conn->id, std::thread([this, conn] { connection_loop(std::move(conn)); }));
  }
}

void Server::connection_loop(std::shared_ptr<ConnState> conn) {
  for (;;) {
    WireFrame frame;
    DecodeStatus st;
    try {
      st = conn->conn.recv(frame);
    } catch (const WireError&) {
      break;  // peer closed / timeout / shutdown by stop()
    }
    if (st != DecodeStatus::kFrame) {
      // Protocol violation: answer with the typed reason, then close.
      // After a bad length or CRC the stream cannot be resynchronized.
      conn->send_safe(MsgType::kError, std::string("{\"reason\":") +
                                           json::quoted(
                                               decode_status_name(st)) +
                                           "}");
      break;
    }
    switch (frame.type) {
      case MsgType::kSubmit: handle_submit(*conn, frame.payload); break;
      case MsgType::kQuery: handle_query(*conn, frame.payload); break;
      case MsgType::kPing: handle_ping(*conn); break;
      default:
        // A CRC-valid frame whose type only a server may send: treat as a
        // protocol violation like an unknown type.
        conn->send_safe(MsgType::kError,
                        "{\"reason\":\"unexpected-type\"}");
        conn->alive.store(false);
        break;
    }
    if (!conn->alive.load()) break;
  }
  conn->alive.store(false);
  conn->conn.shutdown_both();
  reap_connection(conn->id);
  // `conn` (this thread's shared_ptr) is the last long-lived reference;
  // releasing it on return closes the fd. A job thread mid-push may hold
  // a transient reference a moment longer — never past its send timeout.
}

void Server::reap_connection(std::uint64_t conn_id) {
  // Runs on the connection's own thread: move the (still running) thread
  // handle to the finished list — anyone may join it except this thread.
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn_id);
  const auto it = conn_threads_.find(conn_id);
  if (it != conn_threads_.end()) {
    finished_conn_threads_.push_back(std::move(it->second));
    conn_threads_.erase(it);
  }
}

void Server::join_finished_conn_threads() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    finished.swap(finished_conn_threads_);
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

std::size_t Server::connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void Server::handle_submit(ConnState& conn, const std::string& payload) {
  std::string error;
  const auto parsed = json::parse(payload, &error);
  std::optional<JobRequest> req;
  if (parsed) req = JobRequest::from_json(*parsed, error);
  if (req) {
    const std::string problem = req->validate();
    if (!problem.empty()) {
      req.reset();
      error = problem;
    }
  }
  if (!req) {
    // Payload-level failure: the frame itself was valid, so the connection
    // stays open and the tenant may retry with a fixed request.
    jobs_rejected_.fetch_add(1);
    conn.send_safe(MsgType::kRejected,
                   "{\"reason\":\"bad-request\",\"detail\":" +
                       json::quoted(error) + "}");
    return;
  }

  std::shared_ptr<Job> job;
  std::shared_ptr<ConnState> self;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    const auto it = conns_.find(conn.id);
    if (it != conns_.end()) self = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->req = *req;
    job->subscriber = self;
    jobs_.emplace(job->id, job);
  }

  // Holding job->mu across admit + kAccepted guarantees the client sees
  // kAccepted before any kStatus/kResult push: run_job's first action is
  // to take this same mutex.
  std::unique_lock<std::mutex> job_lock(job->mu);
  const JobQueue::Ticket ticket = queue_.submit(
      req->tenant, req->priority, [this, job] { run_job(job); });
  if (ticket.status != Admit::kAdmitted) {
    job_lock.unlock();
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      jobs_.erase(job->id);
    }
    jobs_rejected_.fetch_add(1);
    conn.send_safe(MsgType::kRejected,
                   std::string("{\"reason\":") +
                       json::quoted(admit_reason(ticket.status)) + "}");
    return;
  }
  jobs_submitted_.fetch_add(1);
  conn.send_safe(MsgType::kAccepted,
                 "{\"job\":" + std::to_string(job->id) +
                     ",\"seq\":" + std::to_string(ticket.seq) + "}");
}

void Server::run_job(std::shared_ptr<Job> job) {
  std::shared_ptr<ConnState> sub;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = Job::State::kRunning;
    sub = job->subscriber.lock();
  }

  // Per-replica status publisher: every sample lands in the job's obs
  // registry (under job->mu, preserving the registry's single-writer
  // contract even when batch workers sample concurrently) and a kStatus
  // snapshot is pushed to the submitting connection if it is still there.
  const ReplicaObserverFactory factory =
      [this, job](int replica) -> engine::StepObserver* {
    auto observer = std::make_unique<FnObserver>(
        [this, job, replica](int step, const engine::Energies& e) {
          std::string status;
          {
            std::lock_guard<std::mutex> lock(job->mu);
            auto& reg = job->hub.metrics();
            const std::string prefix = "serve.r" + std::to_string(replica);
            reg.set(obs::kClusterNode, reg.gauge(prefix + ".step"), step);
            reg.set(obs::kClusterNode, reg.gauge(prefix + ".energy.total"),
                    e.total);
            reg.set(obs::kClusterNode,
                    reg.gauge(prefix + ".energy.temperature"), e.temperature);
            reg.add(obs::kClusterNode, reg.counter("serve.samples"));
            status = job_status_json(*job);
          }
          if (auto s = job->subscriber.lock()) {
            s->send_safe(MsgType::kStatus, status);
          }
        });
    std::lock_guard<std::mutex> lock(job->mu);
    job->observers.push_back(std::move(observer));
    return job->observers.back().get();
  };

  JobResult result;
  try {
    result = execute_job(job->id, job->req, &factory);
  } catch (const std::exception& e) {
    result.job_id = job->id;
    result.outcome = JobOutcome::kIncomplete;
    result.exit_code = job_outcome_exit_code(result.outcome);
    result.replicas.resize(1);
    result.replicas[0].label = "r0";
    result.replicas[0].outcome = JobOutcome::kIncomplete;
    result.replicas[0].error = e.what();
  }

  std::string result_json;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = Job::State::kDone;
    job->result = result;
    result_json = result.to_json();
    // The observers' lambdas capture a shared_ptr back to this job; they
    // are dead once execute_job returns, and dropping them here breaks
    // the Job <-> FnObserver ownership cycle so reaped jobs actually free.
    job->observers.clear();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    finished_order_.push_back(job->id);
    reap_history_locked();
  }
  jobs_completed_.fetch_add(1);
  if (auto s = job->subscriber.lock()) {
    s->send_safe(MsgType::kResult, result_json);
  }
}

std::string Server::job_status_json(Job& job) {
  // Caller holds job.mu.
  const char* state = "queued";
  if (job.state == Job::State::kRunning) state = "running";
  if (job.state == Job::State::kDone) state = "done";
  std::string out = "{\"job\":" + std::to_string(job.id);
  out += ",\"tenant\":" + json::quoted(job.req.tenant);
  out += std::string(",\"state\":\"") + state + "\"";
  out += ",\"metrics\":" + job.hub.metrics().snapshot().to_json();
  if (job.result) out += ",\"result\":" + job.result->to_json();
  out += "}";
  return out;
}

void Server::handle_query(ConnState& conn, const std::string& payload) {
  std::string error;
  const auto parsed = json::parse(payload, &error);
  const json::Value* id = parsed ? parsed->find("job") : nullptr;
  if (!id || !id->is_number() || !id->integral || id->integer < 0) {
    conn.send_safe(MsgType::kRejected,
                   "{\"reason\":\"bad-request\",\"detail\":\"query needs "
                   "{\\\"job\\\": id}\"}");
    return;
  }
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(static_cast<std::uint64_t>(id->integer));
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) {
    conn.send_safe(MsgType::kRejected, "{\"reason\":\"unknown-job\"}");
    return;
  }
  std::string status;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    status = job_status_json(*job);
  }
  conn.send_safe(MsgType::kStatus, status);
}

void Server::handle_ping(ConnState& conn) {
  std::string out = "{\"queued\":" + std::to_string(queue_.queued());
  out += ",\"running\":" + std::to_string(queue_.running());
  out += ",\"submitted\":" + std::to_string(jobs_submitted_.load());
  out += ",\"completed\":" + std::to_string(jobs_completed_.load());
  out += ",\"rejected\":" + std::to_string(jobs_rejected_.load());
  out += std::string(",\"draining\":") +
         (queue_.draining() ? "true" : "false");
  out += "}";
  conn.send_safe(MsgType::kPong, out);
}

void Server::reap_history_locked() {
  while (finished_order_.size() > config_.result_history) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
}

}  // namespace fasda::serve
