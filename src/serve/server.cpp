#include "fasda/serve/server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <unordered_set>
#include <utility>

#include "fasda/md/checkpoint.hpp"
#include "fasda/serve/json.hpp"
#include "fasda/util/log.hpp"

namespace fasda::serve {
namespace {

// Signal handlers cannot touch the Server object; they write one byte into
// the drain pipe and wait_for_drain_signal() does the rest on a normal
// thread. install_signal_drain() is documented one-server-at-a-time, so a
// single global fd is enough.
std::atomic<int> g_drain_write_fd{-1};

void drain_signal_handler(int /*signo*/) {
  const int fd = g_drain_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // The pipe is never full in practice; a failed write just means a
    // drain is already pending, which is the same outcome.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

/// Adapts a lambda to the StepObserver interface so the per-replica status
/// publisher can capture the job record without the observer type needing
/// access to Server's private nested structs.
class FnObserver final : public engine::StepObserver {
 public:
  using Fn = std::function<void(int, const engine::Energies&)>;
  explicit FnObserver(Fn fn) : fn_(std::move(fn)) {}
  void on_sample(int step, const md::SystemState& /*state*/,
                 const engine::Energies& energies) override {
    fn_(step, energies);
  }

 private:
  Fn fn_;
};

}  // namespace

/// One accepted socket. `send_safe` is the only way job threads talk to a
/// connection: it serializes whole frames under `send_mu` and demotes any
/// socket failure (client vanished mid-job) to a dead flag — the job keeps
/// running and is reaped normally.
struct Server::ConnState {
  ConnState(std::uint64_t i, Conn c) : id(i), conn(std::move(c)) {}

  const std::uint64_t id;
  Conn conn;
  std::mutex send_mu;
  std::atomic<bool> alive{true};

  bool send_safe(MsgType type, std::string_view payload) noexcept {
    if (!alive.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(send_mu);
    try {
      conn.send(type, payload);
      return true;
    } catch (...) {
      alive.store(false, std::memory_order_relaxed);
      conn.shutdown_both();
      return false;
    }
  }
};

/// One submitted job. `mu` guards state/result/hub/observers — the obs
/// registry keeps its lock-free single-writer contract because every
/// publish and every snapshot happens under this one mutex.
struct Server::Job {
  /// kRecovering/kResumed are the recovered counterparts of
  /// kQueued/kRunning: a tenant querying a job that rode through a daemon
  /// crash can tell it from a fresh submission (DESIGN.md §16).
  enum class State : std::uint8_t {
    kQueued,
    kRunning,
    kRecovering,
    kResumed,
    kDone,
  };

  std::uint64_t id = 0;
  JobRequest req;
  /// Wall-clock span id (DESIGN.md §17): assigned at first admission,
  /// persisted in the kAdmitted journal record, and reused verbatim by
  /// every later incarnation — the token that stitches this job's trace
  /// spans across kill -9 restarts.
  std::uint64_t span = 0;
  /// wall_micros() when this incarnation (re-)admitted the job; anchors
  /// the submit→result latency observation.
  std::uint64_t admitted_us = 0;
  /// Set (before the job is visible to workers) when this incarnation
  /// re-admitted or restored the job from the journal.
  bool recovered = false;
  /// Checkpoint hand-off filled by recovery: replica -> (banked step,
  /// loaded state). run_job moves it into ExecutionHooks.
  std::map<int, std::pair<long long, md::SystemState>> resume;

  std::mutex mu;
  State state = State::kQueued;
  /// replica -> latest journaled checkpoint step (for compaction and for
  /// deleting superseded checkpoint files).
  std::map<int, long long> banked;
  obs::Hub hub;
  std::optional<JobResult> result;
  std::vector<std::unique_ptr<engine::StepObserver>> observers;
  std::weak_ptr<ConnState> subscriber;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)), queue_(config_.queue) {
  stats_.set_enabled(config_.wall_obs);
  trace_.set_enabled(config_.wall_obs);
  queue_.set_stats(&stats_);
  if (::pipe(drain_pipe_) != 0) {
    throw WireError(std::string("pipe: ") + std::strerror(errno));
  }
  ::fcntl(drain_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(drain_pipe_[1], F_SETFD, FD_CLOEXEC);
}

Server::~Server() { stop(); }

void Server::start() {
  start_us_ = obs::wall_micros();
  if (!config_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.state_dir, ec);
    // Scan + truncate-to-salvaged synchronously so every append this
    // incarnation makes lands after a known-good prefix; the (possibly
    // slow) checkpoint loading and re-admission run on recovery_thread_
    // behind the kRecovering window.
    recovery_report_ = Journal::recover(journal_path());
    {
      std::lock_guard<std::mutex> lock(journal_mu_);
      journal_.open_appending(journal_path(), recovery_report_,
                              config_.journal_fsync);
      if (config_.wall_obs) {
        journal_.set_append_observer(
            [this](std::uint64_t append_us, std::uint64_t fsync_us) {
              stats_.add(stats_.journal_appends);
              stats_.observe(stats_.journal_append_us, append_us);
              if (fsync_us > 0) {
                stats_.observe(stats_.journal_fsync_us, fsync_us);
              }
            });
      }
    }
    journal_ok_.store(true);
    recovering_.store(true);
  }
  auto [fd, port] = listen_on(config_.host, config_.port);
  listen_fd_ = fd;
  port_ = port;
  trace_.instant(0, start_us_, "incarnation-start");
  queue_.start_workers(config_.queue_workers);
  if (!config_.state_dir.empty()) {
    recovery_thread_ = std::thread([this] { recover_and_admit(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (config_.wall_obs &&
      (!config_.metrics_out.empty() || !config_.trace_out.empty())) {
    metrics_thread_ = std::thread([this] { metrics_loop(); });
  }
  util::slog(util::LogLevel::kInfo, util::LogFields("serve.server"),
             "listening on %s:%u (workers=%zu state_dir=%s)",
             config_.host.c_str(), static_cast<unsigned>(port_),
             config_.queue_workers,
             config_.state_dir.empty() ? "-" : config_.state_dir.c_str());
  started_.store(true);
}

void Server::begin_drain() { queue_.begin_drain(); }

void Server::drain_and_stop() {
  begin_drain();
  // Recovery re-admissions are acknowledged work from a previous
  // incarnation: they must land in the queue (and therefore be waited on)
  // before the queue can be considered drained.
  join_recovery_thread();
  queue_.wait_idle();
  if (journal_enabled() && !recovering_.load()) {
    // Everything admitted has completed and is journaled; the record lets
    // the next startup skip the re-admission scan entirely.
    journal_append(JournalRecord::kCleanShutdown, "{}");
  }
  stop();
}

void Server::join_recovery_thread() {
  std::lock_guard<std::mutex> lock(recovery_join_mu_);
  if (recovery_thread_.joinable()) recovery_thread_.join();
}

void Server::stop() {
  if (torn_down_.exchange(true)) return;
  stopping_.store(true);
  request_drain();  // unblock wait_for_drain_signal()
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  join_recovery_thread();
  std::unordered_map<std::uint64_t, std::shared_ptr<ConnState>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
    for (auto& [id, t] : conn_threads_) threads.push_back(std::move(t));
    conn_threads_.clear();
    for (std::thread& t : finished_conn_threads_) threads.push_back(std::move(t));
    finished_conn_threads_.clear();
  }
  for (const auto& [id, c] : conns) c->conn.shutdown_both();
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  queue_.stop();
  // Workers are joined: no more appends. Close the journal so the fd does
  // not outlive the server (the file stays, ready for the next start()).
  journal_ok_.store(false);
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    journal_.close();
  }
  {
    std::lock_guard<std::mutex> lock(metrics_cv_mu_);
    metrics_stop_ = true;
  }
  metrics_cv_.notify_all();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  // One final dump after every worker is quiet, so the files on disk
  // reflect the complete incarnation (the periodic dumps are prefixes).
  dump_wall_obs();
  for (int& fd : drain_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void Server::request_drain() {
  if (drain_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
  }
}

void Server::wait_for_drain_signal() {
  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(drain_pipe_[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    break;  // signal byte, request_drain byte, or pipe closed by stop()
  }
  begin_drain();
}

void Server::install_signal_drain(Server* server) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sigemptyset(&sa.sa_mask);
  if (server != nullptr) {
    g_drain_write_fd.store(server->drain_pipe_[1]);
    sa.sa_handler = drain_signal_handler;
    sa.sa_flags = SA_RESTART;
  } else {
    g_drain_write_fd.store(-1);
    sa.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void Server::accept_loop() {
  for (;;) {
    join_finished_conn_threads();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (stopping_.load()) return;  // listen socket closed by stop()
      switch (err) {
        // Transient: the peer hung up mid-handshake, or the process/system
        // is briefly out of fds or buffers. A daemon must keep accepting —
        // self-reaping connections release fds, so exhaustion clears.
        case ECONNABORTED:
        case EMFILE:
        case ENFILE:
        case ENOBUFS:
        case ENOMEM:
        case EAGAIN:
#if EAGAIN != EWOULDBLOCK
        case EWOULDBLOCK:
#endif
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        default:
          return;  // the listen socket itself is broken
      }
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto conn = std::make_shared<ConnState>(next_conn_id_++, Conn(fd));
    conn->conn.set_recv_timeout(config_.recv_timeout_seconds);
    conn->conn.set_send_timeout(config_.send_timeout_seconds);
    conns_.emplace(conn->id, conn);
    stats_.add(stats_.conns_accepted);
    stats_.set(stats_.conns_active, static_cast<double>(conns_.size()));
    conn_threads_.emplace(
        conn->id, std::thread([this, conn] { connection_loop(std::move(conn)); }));
  }
}

void Server::connection_loop(std::shared_ptr<ConnState> conn) {
  for (;;) {
    WireFrame frame;
    DecodeStatus st;
    try {
      st = conn->conn.recv(frame);
    } catch (const WireError&) {
      break;  // peer closed / timeout / shutdown by stop()
    }
    if (st != DecodeStatus::kFrame) {
      switch (st) {
        case DecodeStatus::kBadLength:
          stats_.add(stats_.frames_bad_length);
          break;
        case DecodeStatus::kBadCrc: stats_.add(stats_.frames_bad_crc); break;
        default: stats_.add(stats_.frames_bad_type); break;
      }
      // Protocol violation: answer with the typed reason, then close.
      // After a bad length or CRC the stream cannot be resynchronized.
      conn->send_safe(MsgType::kError, std::string("{\"reason\":") +
                                           json::quoted(
                                               decode_status_name(st)) +
                                           "}");
      break;
    }
    stats_.add(stats_.frames_decoded);
    switch (frame.type) {
      case MsgType::kSubmit: handle_submit(*conn, frame.payload); break;
      case MsgType::kQuery: handle_query(*conn, frame.payload); break;
      case MsgType::kPing: handle_ping(*conn); break;
      case MsgType::kStats: handle_stats(*conn, frame.payload); break;
      default:
        // A CRC-valid frame whose type only a server may send: treat as a
        // protocol violation like an unknown type.
        stats_.add(stats_.frames_bad_type);
        conn->send_safe(MsgType::kError,
                        "{\"reason\":\"unexpected-type\"}");
        conn->alive.store(false);
        break;
    }
    if (!conn->alive.load()) break;
  }
  conn->alive.store(false);
  conn->conn.shutdown_both();
  reap_connection(conn->id);
  // `conn` (this thread's shared_ptr) is the last long-lived reference;
  // releasing it on return closes the fd. A job thread mid-push may hold
  // a transient reference a moment longer — never past its send timeout.
}

void Server::reap_connection(std::uint64_t conn_id) {
  // Runs on the connection's own thread: move the (still running) thread
  // handle to the finished list — anyone may join it except this thread.
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn_id);
  stats_.add(stats_.conns_closed);
  stats_.set(stats_.conns_active, static_cast<double>(conns_.size()));
  const auto it = conn_threads_.find(conn_id);
  if (it != conn_threads_.end()) {
    finished_conn_threads_.push_back(std::move(it->second));
    conn_threads_.erase(it);
  }
}

void Server::join_finished_conn_threads() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    finished.swap(finished_conn_threads_);
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

std::size_t Server::connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void Server::handle_submit(ConnState& conn, const std::string& payload) {
  std::string error;
  const auto parsed = json::parse(payload, &error);
  std::optional<JobRequest> req;
  if (parsed) req = JobRequest::from_json(*parsed, error);
  if (req) {
    const std::string problem = req->validate();
    if (!problem.empty()) {
      req.reset();
      error = problem;
    }
  }
  if (!req) {
    // Payload-level failure: the frame itself was valid, so the connection
    // stays open and the tenant may retry with a fixed request.
    jobs_rejected_.fetch_add(1);
    stats_.add(stats_.rejected_bad_request);
    conn.send_safe(MsgType::kRejected,
                   "{\"reason\":\"bad-request\",\"detail\":" +
                       json::quoted(error) + "}");
    return;
  }

  if (recovering_.load()) {
    // Journal replay in progress: the idempotency map is not rebuilt yet,
    // so admitting now could double-run a resubmitted job. Retryable.
    stats_.add(stats_.rejected_recovering);
    conn.send_safe(MsgType::kRecovering, "{\"reason\":\"recovering\"}");
    return;
  }

  std::shared_ptr<ConnState> self;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    const auto it = conns_.find(conn.id);
    if (it != conns_.end()) self = it->second;
  }

  std::shared_ptr<Job> job;
  std::shared_ptr<Job> existing;
  std::unique_lock<std::mutex> jobs_lock(jobs_mu_);
  if (!req->idempotency.empty()) {
    const auto it = idempotency_.find(req->idempotency);
    if (it != idempotency_.end()) {
      const auto jit = jobs_.find(it->second);
      if (jit != jobs_.end()) existing = jit->second;
    }
  }
  if (existing) {
    // Duplicate submit (a retry after an ambiguous crash or disconnect):
    // attach this connection to the original job instead of double-running
    // it. If the job already finished, replay its result.
    jobs_lock.unlock();
    std::string result_json;
    {
      std::lock_guard<std::mutex> lock(existing->mu);
      if (existing->state == Job::State::kDone && existing->result) {
        result_json = existing->result->to_json();
      } else {
        existing->subscriber = self;
      }
    }
    conn.send_safe(MsgType::kAccepted,
                   "{\"job\":" + std::to_string(existing->id) +
                       ",\"seq\":0,\"duplicate\":true}");
    if (!result_json.empty()) {
      conn.send_safe(MsgType::kResult, result_json);
    }
    return;
  }

  job = std::make_shared<Job>();
  job->id = next_job_id_++;
  job->req = *req;
  job->subscriber = self;
  // Span id: unique across incarnations (start_us_ differs per boot, the
  // job id per job) and comfortably below 2^53 so JSON consumers keep it
  // exact. Persisted in the kAdmitted record below; recovery reuses it.
  job->span = start_us_ ^ job->id;
  job->admitted_us = obs::wall_micros();
  jobs_.emplace(job->id, job);
  if (!req->idempotency.empty()) idempotency_[req->idempotency] = job->id;

  // Holding job->mu across admit + kAccepted guarantees the client sees
  // kAccepted before any kStatus/kResult push: run_job's first action is
  // to take this same mutex.
  std::unique_lock<std::mutex> job_lock(job->mu);
  // Write-ahead: the kAdmitted record is durable before the client can see
  // kAccepted, so an acknowledged job is always recoverable. jobs_mu_ is
  // held across append + enqueue, making journal record order identical to
  // queue arrival order — recovery re-admits in journal order and thereby
  // reproduces the original deterministic schedule.
  journal_append(JournalRecord::kAdmitted,
                 "{\"job\":" + std::to_string(job->id) +
                     ",\"span\":" + std::to_string(job->span) +
                     ",\"request\":" + job->req.to_json() + "}");
  const JobQueue::Ticket ticket = queue_.submit(
      req->tenant, req->priority, [this, job] { run_job(job); });
  if (ticket.status != Admit::kAdmitted) {
    // The admission record is already on disk; mark it dead so recovery
    // never resurrects a job the client was told was rejected.
    journal_append(JournalRecord::kRejected,
                   "{\"job\":" + std::to_string(job->id) + "}");
    jobs_.erase(job->id);
    if (!req->idempotency.empty()) idempotency_.erase(req->idempotency);
    job_lock.unlock();
    jobs_lock.unlock();
    jobs_rejected_.fetch_add(1);
    switch (ticket.status) {
      case Admit::kQueueFull: stats_.add(stats_.rejected_queue_full); break;
      case Admit::kTenantQuota:
        stats_.add(stats_.rejected_tenant_quota);
        break;
      case Admit::kDraining: stats_.add(stats_.rejected_draining); break;
      default: stats_.add(stats_.rejected_stopped); break;
    }
    stats_.tenant_add(req->tenant, "rejected");
    conn.send_safe(MsgType::kRejected,
                   std::string("{\"reason\":") +
                       json::quoted(admit_reason(ticket.status)) + "}");
    return;
  }
  // The "job" span opens here and closes when run_job sends the result;
  // "queued" nests inside it. Emitting under job->mu is race-free because
  // run_job's first action takes the same mutex.
  trace_.begin(job->id, job->span, "job", req->tenant);
  trace_.begin(job->id, job->span, "queued");
  jobs_lock.unlock();
  jobs_submitted_.fetch_add(1);
  stats_.add(stats_.jobs_submitted);
  stats_.tenant_add(req->tenant, "submitted");
  stats_.tenant_add(req->tenant, "bytes_in", payload.size());
  conn.send_safe(MsgType::kAccepted,
                 "{\"job\":" + std::to_string(job->id) +
                     ",\"seq\":" + std::to_string(ticket.seq) + "}");
}

void Server::run_job(std::shared_ptr<Job> job) {
  ExecutionHooks hooks;
  bool use_hooks = false;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    // A re-admitted job runs as kResumed so tenants can tell it from a
    // fresh kRunning (the journal replayed it; its observer stream picks
    // up at the last banked step, not at 0).
    job->state =
        job->recovered ? Job::State::kResumed : Job::State::kRunning;
    hooks.resume = std::move(job->resume);
    job->resume.clear();
    use_hooks = !hooks.resume.empty();
    trace_.end(job->id, job->span, "queued");
    trace_.begin(job->id, job->span, "execute");
  }
  journal_append(JournalRecord::kStarted,
                 "{\"job\":" + std::to_string(job->id) + "}");
  const std::uint64_t exec_start_us = obs::wall_micros();

  // Per-replica status publisher: every sample lands in the job's obs
  // registry (under job->mu, preserving the registry's single-writer
  // contract even when batch workers sample concurrently) and a kStatus
  // snapshot is pushed to the submitting connection if it is still there.
  const ReplicaObserverFactory factory =
      [this, job](int replica) -> engine::StepObserver* {
    auto observer = std::make_unique<FnObserver>(
        [this, job, replica](int step, const engine::Energies& e) {
          std::string status;
          {
            std::lock_guard<std::mutex> lock(job->mu);
            auto& reg = job->hub.metrics();
            const std::string prefix = "serve.r" + std::to_string(replica);
            reg.set(obs::kClusterNode, reg.gauge(prefix + ".step"), step);
            reg.set(obs::kClusterNode, reg.gauge(prefix + ".energy.total"),
                    e.total);
            reg.set(obs::kClusterNode,
                    reg.gauge(prefix + ".energy.temperature"), e.temperature);
            reg.add(obs::kClusterNode, reg.counter("serve.samples"));
            status = job_status_json(*job);
          }
          if (auto s = job->subscriber.lock()) {
            s->send_safe(MsgType::kStatus, status);
          }
        });
    std::lock_guard<std::mutex> lock(job->mu);
    job->observers.push_back(std::move(observer));
    return job->observers.back().get();
  };

  if (journal_enabled() && job->req.supervise) {
    // Checkpoint hand-off: the supervisor saves each banked state to a
    // step-stamped file (atomic tmp+rename) and only then fires
    // `checkpointed`, so the journal record always names an
    // already-durable file. The superseded file is deleted only after the
    // new record is on disk.
    use_hooks = true;
    hooks.checkpoint_path = [this, job](int replica, long long step) {
      return checkpoint_file(job->id, replica, step);
    };
    hooks.checkpointed = [this, job](int replica, long long step) {
      long long previous = 0;
      {
        std::lock_guard<std::mutex> lock(job->mu);
        const auto it = job->banked.find(replica);
        if (it != job->banked.end()) previous = it->second;
        job->banked[replica] = step;
      }
      journal_append(JournalRecord::kCheckpoint,
                     "{\"job\":" + std::to_string(job->id) +
                         ",\"replica\":" + std::to_string(replica) +
                         ",\"step\":" + std::to_string(step) + "}");
      trace_.instant(job->id, job->span, "checkpoint", step, "step");
      if (previous > 0 && previous != step) {
        ::unlink(checkpoint_file(job->id, replica, previous).c_str());
      }
    };
  }

  JobResult result;
  try {
    result = execute_job(job->id, job->req, &factory,
                         use_hooks ? &hooks : nullptr);
  } catch (const std::exception& e) {
    result.job_id = job->id;
    result.outcome = JobOutcome::kIncomplete;
    result.exit_code = job_outcome_exit_code(result.outcome);
    result.replicas.resize(1);
    result.replicas[0].label = "r0";
    result.replicas[0].outcome = JobOutcome::kIncomplete;
    result.replicas[0].error = e.what();
  }

  stats_.observe(stats_.execute_us, obs::wall_micros() - exec_start_us);

  std::string result_json;
  std::shared_ptr<ConnState> push_to;
  {
    // Durable-before-visible: the kCompleted record reaches the disk
    // before the result becomes observable through kQuery or the kResult
    // push — an acknowledged result can never be lost to a crash, and a
    // crash before this append re-runs the job deterministically instead.
    // The append sits under jobs_mu_ so a concurrent compaction (which
    // snapshots job states under the same lock) can never rotate this
    // record away.
    std::lock_guard<std::mutex> jobs_lock(jobs_mu_);
    std::lock_guard<std::mutex> lock(job->mu);
    result_json = result.to_json();
    trace_.end(job->id, job->span, "execute");
    journal_append(JournalRecord::kCompleted,
                   "{\"job\":" + std::to_string(job->id) +
                       ",\"tenant\":" + json::quoted(job->req.tenant) +
                       ",\"idempotency\":" +
                       json::quoted(job->req.idempotency) +
                       ",\"result\":" + result_json + "}");
    if (journal_enabled()) {
      trace_.instant(job->id, job->span, "durable");
    }
    job->state = Job::State::kDone;
    job->result = result;
    // The observers' lambdas capture a shared_ptr back to this job; they
    // are dead once execute_job returns, and dropping them here breaks
    // the Job <-> FnObserver ownership cycle so reaped jobs actually free.
    job->observers.clear();
    push_to = job->subscriber.lock();
    finished_order_.push_back(job->id);
    reap_history_locked();
  }
  jobs_completed_.fetch_add(1);
  stats_.add(stats_.jobs_completed);
  stats_.tenant_add(job->req.tenant, "completed");
  stats_.tenant_add(job->req.tenant, "bytes_out", result_json.size());
  if (job->admitted_us != 0) {
    stats_.observe(stats_.submit_to_result_us,
                   obs::wall_micros() - job->admitted_us);
  }
  remove_job_checkpoints(job->id);
  if (push_to) {
    if (push_to->send_safe(MsgType::kResult, result_json)) {
      trace_.instant(job->id, job->span, "result-sent");
    }
  }
  trace_.end(job->id, job->span, "job");
  if (journal_enabled()) {
    bool oversized = false;
    {
      std::lock_guard<std::mutex> lock(journal_mu_);
      oversized = journal_.is_open() &&
                  journal_.bytes() > config_.journal_rotate_bytes;
    }
    if (oversized) compact_journal();
  }
}

std::string Server::job_status_json(Job& job) {
  // Caller holds job.mu.
  const char* state = "queued";
  switch (job.state) {
    case Job::State::kQueued: state = "queued"; break;
    case Job::State::kRunning: state = "running"; break;
    case Job::State::kRecovering: state = "recovering"; break;
    case Job::State::kResumed: state = "resumed"; break;
    case Job::State::kDone: state = "done"; break;
  }
  std::string out = "{\"job\":" + std::to_string(job.id);
  out += ",\"tenant\":" + json::quoted(job.req.tenant);
  out += std::string(",\"state\":\"") + state + "\"";
  out += std::string(",\"recovered\":") + (job.recovered ? "true" : "false");
  out += ",\"metrics\":" + job.hub.metrics().snapshot().to_json();
  if (job.result) out += ",\"result\":" + job.result->to_json();
  out += "}";
  return out;
}

void Server::handle_query(ConnState& conn, const std::string& payload) {
  if (recovering_.load()) {
    // The jobs map is mid-rebuild; answering now could claim a job that is
    // about to be restored does not exist. Retryable.
    conn.send_safe(MsgType::kRecovering, "{\"reason\":\"recovering\"}");
    return;
  }
  std::string error;
  const auto parsed = json::parse(payload, &error);
  const json::Value* id = parsed ? parsed->find("job") : nullptr;
  if (!id || !id->is_number() || !id->integral || id->integer < 0) {
    conn.send_safe(MsgType::kRejected,
                   "{\"reason\":\"bad-request\",\"detail\":\"query needs "
                   "{\\\"job\\\": id}\"}");
    return;
  }
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(static_cast<std::uint64_t>(id->integer));
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) {
    conn.send_safe(MsgType::kRejected, "{\"reason\":\"unknown-job\"}");
    return;
  }
  std::string status;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    status = job_status_json(*job);
  }
  conn.send_safe(MsgType::kStatus, status);
}

void Server::handle_ping(ConnState& conn) {
  conn.send_safe(MsgType::kPong, health_json());
}

std::string Server::health_json() {
  std::string out = "{\"queued\":" + std::to_string(queue_.queued());
  out += ",\"running\":" + std::to_string(queue_.running());
  out += ",\"submitted\":" + std::to_string(jobs_submitted_.load());
  out += ",\"completed\":" + std::to_string(jobs_completed_.load());
  out += ",\"rejected\":" + std::to_string(jobs_rejected_.load());
  out += std::string(",\"draining\":") +
         (queue_.draining() ? "true" : "false");
  out += std::string(",\"recovering\":") +
         (recovering_.load() ? "true" : "false");
  // PR 10 enrichment: capacity, durability and recovery-window facts an
  // operator's first ping should answer without a log dive.
  out += ",\"workers\":" + std::to_string(config_.queue_workers);
  out += ",\"connections\":" + std::to_string(connections());
  out += std::string(",\"journal\":\"") +
         (config_.state_dir.empty()
              ? "none"
              : (journal_enabled() ? "enabled" : "disabled")) +
         "\"";
  out += std::string(",\"fsync\":\"") +
         (config_.journal_fsync == JournalFsync::kAlways ? "always"
                                                         : "never") +
         "\"";
  out += ",\"recovered\":" + std::to_string(jobs_recovered_.load());
  out += ",\"resumed\":" + std::to_string(jobs_resumed_.load());
  out += ",\"results_restored\":" + std::to_string(results_restored_.load());
  out += ",\"uptime_us\":" +
         std::to_string(start_us_ == 0 ? 0 : obs::wall_micros() - start_us_);
  out += "}";
  return out;
}

void Server::handle_stats(ConnState& conn, const std::string& payload) {
  std::string format = "json";
  std::string error;
  if (!payload.empty()) {
    const auto parsed = json::parse(payload, &error);
    if (parsed) {
      if (const json::Value* f = parsed->find("format")) {
        format = f->str_or("json");
      }
    }
  }
  if (format == "prometheus") {
    conn.send_safe(MsgType::kStats, stats_prometheus());
    return;
  }
  if (format != "json") {
    conn.send_safe(MsgType::kRejected,
                   "{\"reason\":\"bad-request\",\"detail\":\"format must be "
                   "json or prometheus\"}");
    return;
  }
  conn.send_safe(MsgType::kStats, stats_json());
}

std::string Server::stats_json() {
  refresh_wall_gauges();
  std::string metrics = stats_.snapshot().to_json();
  while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
  return "{\"server\":" + health_json() + ",\"wall\":" + metrics +
         ",\"trace_events\":" + std::to_string(trace_.size()) +
         ",\"trace_dropped\":" + std::to_string(trace_.dropped()) + "}";
}

std::string Server::stats_prometheus() {
  refresh_wall_gauges();
  return stats_.snapshot().to_prometheus();
}

void Server::refresh_wall_gauges() {
  stats_.set(stats_.queue_depth, static_cast<double>(queue_.queued()));
  stats_.set(stats_.jobs_running, static_cast<double>(queue_.running()));
  stats_.set(stats_.conns_active, static_cast<double>(connections()));
  stats_.set(stats_.uptime_seconds,
             start_us_ == 0
                 ? 0.0
                 : static_cast<double>(obs::wall_micros() - start_us_) / 1e6);
  stats_.set(stats_.recovering, recovering_.load() ? 1.0 : 0.0);
}

void Server::dump_wall_obs() {
  if (!config_.wall_obs) return;
  if (!config_.metrics_out.empty()) {
    obs::write_text_file(config_.metrics_out, stats_prometheus());
  }
  if (!config_.trace_out.empty()) {
    obs::write_text_file(config_.trace_out, trace_.to_chrome_json());
  }
}

void Server::metrics_loop() {
  const auto period =
      std::chrono::seconds(std::max(1, config_.metrics_every_seconds));
  std::unique_lock<std::mutex> lock(metrics_cv_mu_);
  for (;;) {
    if (metrics_cv_.wait_for(lock, period, [this] { return metrics_stop_; })) {
      return;  // stop() dumps once more after the workers are quiet
    }
    lock.unlock();
    dump_wall_obs();
    lock.lock();
  }
}

std::string Server::journal_path() const {
  return config_.state_dir + "/journal.fjl";
}

std::string Server::checkpoint_file(std::uint64_t job_id, int replica,
                                    long long step) const {
  // Step-stamped so the file name itself binds step <-> state: the journal
  // record, not directory mtime or file content, is the authority on which
  // checkpoint resumes a job. A file saved after the last journaled record
  // (crash between rename and append) is simply never referenced and gets
  // swept at the next recovery.
  return config_.state_dir + "/job-" + std::to_string(job_id) + "-r" +
         std::to_string(replica) + "-s" + std::to_string(step) + ".ckpt";
}

void Server::journal_append(JournalRecord type, const std::string& payload) {
  if (!journal_ok_.load()) return;
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (!journal_.is_open()) return;
  try {
    journal_.append(type, payload);
  } catch (const JournalError& e) {
    // The disk went away under the daemon. Killing in-flight jobs would
    // turn an I/O error into lost work; instead the journal is demoted to
    // disabled — the daemon keeps serving (PR 8 ephemeral semantics) and
    // the operator sees why durability lapsed.
    journal_ok_.store(false);
    journal_.close();
    stats_.add(stats_.journal_disabled);
    util::slog(util::LogLevel::kError, util::LogFields("serve.journal"),
               "journal disabled: %s", e.what());
  }
}

void Server::recover_and_admit() {
  const std::uint64_t recovery_t0 = obs::wall_micros();
  // The recovery span lives on the server-level track (job 0); its span id
  // is this incarnation's start_us_, which is unique per boot.
  trace_.begin(0, start_us_, "recovery");
  if (config_.recovery_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.recovery_delay_ms));
  }

  // Fold the salvaged record stream into per-job facts. Duplicated records
  // (possible after a crash mid-compaction retry or in the fuzz suite) are
  // idempotent: first occurrence fixes the order, later ones overwrite
  // content with identical data.
  struct CompletedInfo {
    std::string tenant;
    std::string idempotency;
    JobResult result;
  };
  std::vector<std::uint64_t> admitted_order;
  std::unordered_map<std::uint64_t, JobRequest> admitted;
  std::unordered_map<std::uint64_t, std::uint64_t> spans;
  std::unordered_set<std::uint64_t> dead;
  std::vector<std::uint64_t> done_order;
  std::unordered_map<std::uint64_t, CompletedInfo> completed;
  std::unordered_map<std::uint64_t, std::map<int, long long>> checkpoints;
  std::uint64_t max_id = 0;

  for (const JournalEntry& entry : recovery_report_.entries) {
    std::string error;
    const auto parsed = json::parse(entry.payload, &error);
    if (!parsed || !parsed->is_object()) continue;  // defensive: skip
    const json::Value* jid = parsed->find("job");
    const std::uint64_t id =
        jid && jid->is_number() && jid->integral && jid->integer >= 0
            ? static_cast<std::uint64_t>(jid->integer)
            : 0;
    if (id > max_id) max_id = id;
    switch (entry.type) {
      case JournalRecord::kAdmitted: {
        if (id == 0) break;
        const json::Value* reqv = parsed->find("request");
        if (!reqv) break;
        const auto req = JobRequest::from_json(*reqv, error);
        if (!req) break;
        if (!admitted.count(id)) admitted_order.push_back(id);
        admitted[id] = *req;
        // The persisted wall-clock span id (PR 10): reusing it is what
        // stitches this job's spans across incarnations. Journals written
        // before PR 10 have no "span" key; those jobs get a fresh id.
        if (const json::Value* sp = parsed->find("span")) {
          if (sp->is_number() && sp->integral && sp->integer > 0) {
            spans[id] = static_cast<std::uint64_t>(sp->integer);
          }
        }
        break;
      }
      case JournalRecord::kStarted:
        break;  // informational: execution is re-derived, not replayed
      case JournalRecord::kCheckpoint: {
        const json::Value* rep = parsed->find("replica");
        const json::Value* step = parsed->find("step");
        if (id == 0 || !rep || !step) break;
        checkpoints[id][static_cast<int>(rep->int_or(0))] = step->int_or(0);
        break;
      }
      case JournalRecord::kCompleted: {
        if (id == 0) break;
        const json::Value* res = parsed->find("result");
        if (!res) break;
        const auto result = JobResult::from_json(*res, error);
        if (!result) break;
        CompletedInfo info;
        if (const json::Value* t = parsed->find("tenant")) {
          info.tenant = t->str_or("default");
        }
        if (const json::Value* k = parsed->find("idempotency")) {
          info.idempotency = k->str_or("");
        }
        info.result = *result;
        if (!completed.count(id)) done_order.push_back(id);
        completed[id] = std::move(info);
        break;
      }
      case JournalRecord::kRejected:
        if (id != 0) dead.insert(id);
        break;
      case JournalRecord::kCleanShutdown:
        break;
    }
  }

  // Restore completed results so kQuery keeps answering for them and
  // their idempotency keys keep deduplicating.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    if (next_job_id_ <= max_id) next_job_id_ = max_id + 1;
    for (const std::uint64_t id : done_order) {
      const CompletedInfo& info = completed.at(id);
      auto job = std::make_shared<Job>();
      job->id = id;
      job->req.tenant =
          info.tenant.empty() ? std::string("default") : info.tenant;
      job->req.idempotency = info.idempotency;
      job->recovered = true;
      job->state = Job::State::kDone;
      job->result = info.result;
      const auto sit = spans.find(id);
      job->span = sit != spans.end() ? sit->second : (start_us_ ^ id);
      jobs_.emplace(id, job);
      finished_order_.push_back(id);
      if (!info.idempotency.empty()) idempotency_[info.idempotency] = id;
      results_restored_.fetch_add(1);
      stats_.add(stats_.results_restored);
      // Mark the restoration on the job's own track under its persisted
      // span id: the previous incarnation's dump shows the same id, so the
      // trace records that this job's result outlived the crash
      // (validate_trace.py --expect-stitched counts exactly these).
      trace_.instant(id, job->span, "result-restored");
    }
    reap_history_locked();
  }

  // Rebuild the lost pending jobs (admitted, never completed or rejected)
  // in original journal order; supervised ones resume from their last
  // banked checkpoint when its file loads cleanly, and fall back to a
  // deterministic re-run from scratch when it does not.
  std::vector<std::shared_ptr<Job>> to_admit;
  std::unordered_set<std::string> live_checkpoint_files;
  for (const std::uint64_t id : admitted_order) {
    if (stopping_.load()) break;
    if (completed.count(id) || dead.count(id)) continue;
    auto job = std::make_shared<Job>();
    job->id = id;
    job->req = admitted.at(id);
    job->recovered = true;
    job->state = Job::State::kRecovering;
    const auto sit = spans.find(id);
    job->span = sit != spans.end() ? sit->second : (start_us_ ^ id);
    job->admitted_us = obs::wall_micros();
    if (job->req.supervise) {
      const auto cit = checkpoints.find(id);
      if (cit != checkpoints.end()) {
        for (const auto& [replica, step] : cit->second) {
          const std::string path = checkpoint_file(id, replica, step);
          try {
            md::SystemState state = md::load_checkpoint(path);
            job->resume[replica] = {step, std::move(state)};
            job->banked[replica] = step;
            live_checkpoint_files.insert(path);
          } catch (const std::exception&) {
            // Missing or torn file: the journal record outlived its state
            // (possible under --journal-fsync never). Re-run from scratch
            // — slower, still bitwise identical.
          }
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      jobs_.emplace(id, job);
      if (!job->req.idempotency.empty()) {
        idempotency_[job->req.idempotency] = id;
      }
    }
    to_admit.push_back(std::move(job));
  }

  // Sweep checkpoint files the journal does not reference: leftovers of
  // completed jobs and orphans saved after the last journaled record.
  {
    std::error_code ec;
    std::filesystem::directory_iterator it(config_.state_dir, ec);
    if (!ec) {
      for (const auto& dirent : it) {
        const std::string name = dirent.path().filename().string();
        if (name.rfind("job-", 0) != 0 ||
            name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".ckpt") != 0) {
          continue;
        }
        if (!live_checkpoint_files.count(dirent.path().string())) {
          std::filesystem::remove(dirent.path(), ec);
        }
      }
    }
  }

  // Re-admission in journal order: fresh queue seqs are assigned in the
  // original arrival order, so (priority, seq) pops reproduce the
  // pre-crash schedule exactly.
  for (const std::shared_ptr<Job>& job : to_admit) {
    if (stopping_.load()) break;
    jobs_recovered_.fetch_add(1);
    stats_.add(stats_.jobs_recovered);
    if (!job->resume.empty()) {
      jobs_resumed_.fetch_add(1);
      stats_.add(stats_.jobs_resumed);
    }
    // Re-open the job's spans under its persisted span id before the queue
    // can start it: a worker popping it immediately still finds a "queued"
    // span to close. The previous incarnation's dump shows the same span
    // id with no end — validate_trace.py stitches the two on exactly that.
    {
      std::lock_guard<std::mutex> lock(job->mu);
      trace_.begin(job->id, job->span, "job", job->req.tenant);
      trace_.begin(job->id, job->span, "queued");
    }
    const JobQueue::Ticket ticket = queue_.readmit(
        job->req.tenant, job->req.priority, [this, job] { run_job(job); });
    if (ticket.status != Admit::kAdmitted) break;  // stopped underneath us
  }

  if (!stopping_.load()) compact_journal();
  recovering_.store(false);
  const std::uint64_t recovery_us = obs::wall_micros() - recovery_t0;
  stats_.observe(stats_.recovery_us, recovery_us);
  trace_.end(0, start_us_, "recovery");
  if (!recovery_report_.entries.empty() || jobs_recovered_.load() > 0) {
    util::slog(util::LogLevel::kInfo, util::LogFields("serve.recovery"),
               "replayed %zu records in %llu us: %llu re-admitted "
               "(%llu resumed), %llu results restored, tail %s",
               recovery_report_.entries.size(),
               static_cast<unsigned long long>(recovery_us),
               static_cast<unsigned long long>(jobs_recovered_.load()),
               static_cast<unsigned long long>(jobs_resumed_.load()),
               static_cast<unsigned long long>(results_restored_.load()),
               journal_tail_name(recovery_report_.tail));
  }
}

void Server::compact_journal() {
  if (!journal_enabled()) return;
  // jobs_mu_ is held across snapshot + rotate: the appends that decide
  // exactly-once (kAdmitted, kRejected, kCompleted) also run under
  // jobs_mu_, so none of them can slip into the old file mid-rotation and
  // be lost. Advisory records (kStarted, kCheckpoint) may race and drop —
  // recovery only degrades to an earlier resume point, never loses a job.
  std::lock_guard<std::mutex> jobs_lock(jobs_mu_);
  std::vector<JournalEntry> entries;
  // Retained completed jobs first (the oldest facts), in history order.
  for (const std::uint64_t id : finished_order_) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    Job& job = *it->second;
    std::lock_guard<std::mutex> lock(job.mu);
    if (!job.result) continue;
    entries.push_back(
        {JournalRecord::kCompleted,
         "{\"job\":" + std::to_string(job.id) +
             ",\"tenant\":" + json::quoted(job.req.tenant) +
             ",\"idempotency\":" + json::quoted(job.req.idempotency) +
             ",\"result\":" + job.result->to_json() + "}"});
  }
  // Pending jobs in id order == original admission order (ids are assigned
  // under jobs_mu_ in the same critical section as the journal append).
  std::vector<Job*> by_id;
  by_id.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) by_id.push_back(job.get());
  std::sort(by_id.begin(), by_id.end(),
            [](const Job* a, const Job* b) { return a->id < b->id; });
  for (Job* job : by_id) {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->state == Job::State::kDone) continue;  // emitted above
    entries.push_back({JournalRecord::kAdmitted,
                       "{\"job\":" + std::to_string(job->id) +
                           ",\"span\":" + std::to_string(job->span) +
                           ",\"request\":" + job->req.to_json() + "}"});
    for (const auto& [replica, step] : job->banked) {
      entries.push_back({JournalRecord::kCheckpoint,
                         "{\"job\":" + std::to_string(job->id) +
                             ",\"replica\":" + std::to_string(replica) +
                             ",\"step\":" + std::to_string(step) + "}"});
    }
  }
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (!journal_.is_open()) return;
  try {
    journal_.rotate(entries);
    stats_.add(stats_.journal_rotations);
  } catch (const JournalError& e) {
    journal_ok_.store(false);
    journal_.close();
    stats_.add(stats_.journal_disabled);
    util::slog(util::LogLevel::kError, util::LogFields("serve.journal"),
               "journal disabled: %s", e.what());
  }
}

void Server::remove_job_checkpoints(std::uint64_t job_id) {
  if (config_.state_dir.empty()) return;
  const std::string prefix = "job-" + std::to_string(job_id) + "-";
  std::error_code ec;
  std::filesystem::directory_iterator it(config_.state_dir, ec);
  if (ec) return;
  for (const auto& dirent : it) {
    const std::string name = dirent.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && name.size() >= 5 &&
        name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      std::filesystem::remove(dirent.path(), ec);
    }
  }
}

void Server::reap_history_locked() {
  while (finished_order_.size() > config_.result_history) {
    const std::uint64_t id = finished_order_.front();
    finished_order_.pop_front();
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      // The job's durability ends with its history slot: drop its
      // idempotency binding too (a resubmit after eviction runs fresh,
      // exactly like PR 8's history semantics).
      const std::string& key = it->second->req.idempotency;
      if (!key.empty()) {
        const auto kit = idempotency_.find(key);
        if (kit != idempotency_.end() && kit->second == id) {
          idempotency_.erase(kit);
        }
      }
      jobs_.erase(it);
    }
  }
}

}  // namespace fasda::serve
