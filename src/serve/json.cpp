#include "fasda/serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fasda::serve::json {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value v;
    if (!parse_value(v, 0)) {
      if (error) *error = error_.empty() ? "malformed JSON" : error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing bytes after JSON value";
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* why) {
    if (error_.empty()) {
      error_ = std::string(why) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool peek(char& c) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    c = text_[pos_];
    return true;
  }

  bool consume(char want) {
    char c;
    if (!peek(c) || c != want) return false;
    ++pos_;
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    char c;
    if (!peek(c)) return fail("unexpected end of input");
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.string);
      case 't':
      case 'f': return parse_literal(out, c == 't');
      case 'n':
        if (text_.substr(pos_, 4) != "null") return fail("bad literal");
        pos_ += 4;
        out.type = Value::Type::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_literal(Value& out, bool truth) {
    const std::string_view want = truth ? "true" : "false";
    if (text_.substr(pos_, want.size()) != want) return fail("bad literal");
    pos_ += want.size();
    out.type = Value::Type::kBool;
    out.boolean = truth;
    return true;
  }

  bool parse_object(Value& out, int depth) {
    ++pos_;  // '{'
    out.type = Value::Type::kObject;
    char c;
    if (!peek(c)) return fail("unterminated object");
    if (c == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!peek(c) || c != '"') return fail("expected member key");
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out, int depth) {
    ++pos_;  // '['
    out.type = Value::Type::kArray;
    char c;
    if (!peek(c)) return fail("unterminated array");
    if (c == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.items.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogate pairs are not
          // needed by any serve payload and decode as two replacement
          // sequences rather than failing.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return fail("bad number");
    char* end = nullptr;
    out.type = Value::Type::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    if (integral) {
      errno = 0;
      char* iend = nullptr;
      const long long ll = std::strtoll(token.c_str(), &iend, 10);
      if (errno == 0 && iend == token.c_str() + token.size()) {
        out.integer = ll;
        out.integral = true;
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void dump_into(const Value& v, std::string& out) {
  switch (v.type) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.boolean ? "true" : "false"; break;
    case Value::Type::kNumber: {
      if (v.integral) {
        out += std::to_string(v.integer);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v.number);
        out += buf;
      }
      break;
    }
    case Value::Type::kString: out += quoted(v.string); break;
    case Value::Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i) out += ',';
        dump_into(v.items[i], out);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, m] : v.members) {
        if (!first) out += ',';
        first = false;
        out += quoted(k);
        out += ':';
        dump_into(m, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_escaped(out, s);
  out += '"';
  return out;
}

std::string dump(const Value& v) {
  std::string out;
  dump_into(v, out);
  return out;
}

}  // namespace fasda::serve::json
