#pragma once
// One FPGA node (§4, Figs. 8-15): the block of cells it owns as CBBs/SCBBs,
// one position ring and one force ring per SPE index (each with an EX
// station for external transactions, §4.1), a motion-update ring, packet
// endpoints for the position/force/migration channels, and the chained
// synchronization state machine that sequences force evaluation and motion
// update without any global barrier (§4.4).
//
// The node's own tick handles control: packet ingress (gated by phase so a
// fast neighbour's next-iteration data waits in the endpoint), egress
// pacing, EX conversions (GCID→LCID on arrival, §4.2), and phase
// transitions. Datapath components (CBBs, PEs, rings) are registered with
// the scheduler separately; a `slowdown` factor gates their ticks to model
// a straggler board.

#include <memory>
#include <optional>
#include <vector>

#include "fasda/cbb/cbb.hpp"
#include "fasda/net/network.hpp"
#include "fasda/obs/obs.hpp"
#include "fasda/sync/sync.hpp"

namespace fasda::fpga {

using NodeId = idmap::NodeId;

struct NodeConfig {
  cbb::CbbConfig cbb{};
  sync::SyncMode sync_mode = sync::SyncMode::kChained;
  int slowdown = 1;  ///< datapath ticks every `slowdown`-th cycle (straggler)
  /// Arms the ack/retransmit protocol on all three endpoints. Required
  /// whenever the fabrics carry a FaultPlan; must be set on every node of a
  /// cluster or on none.
  bool reliable = false;
  net::ReliabilityConfig reliability{};
  /// Injected node-level failures (crash/hang/stall) targeting this node;
  /// core::Simulation distributes them from the cluster FaultPlan. While a
  /// fault holds the node down, neither the control tick nor any datapath
  /// component runs — the node simply stops, like a real board.
  std::vector<net::NodeFault> node_faults;
  /// Telemetry hub (null = disabled). The node emits FSM phase spans, sync
  /// last-flush instants, phase-length histograms and an iteration counter,
  /// all into its own shard.
  obs::Hub* obs = nullptr;
};

class FpgaNode;

/// Gates an inner component's tick: skipped entirely while the owning node
/// is down (crash/hang/stall injection), and thinned to every k-th cycle
/// for a straggler board. Owner may be null for plain straggler gating.
class Gated : public sim::Component {
 public:
  Gated(sim::Component* inner, int factor, const FpgaNode* owner);
  void tick(sim::Cycle now) override;

  /// While the owner is down the inner component is frozen (the owner's own
  /// next_wake reports fault boundaries, so elision windows never straddle
  /// an aliveness change); otherwise the inner wake rounds up to the next
  /// gate-open cycle.
  sim::Cycle next_wake(sim::Cycle now) const override;
  /// Forwards a count-preserving sub-window covering only the gate-open
  /// ticks (inner skip_idle implementations are tick-count based).
  void skip_idle(sim::Cycle from, sim::Cycle to) override;

 private:
  sim::Component* inner_;
  int factor_;
  const FpgaNode* owner_;
};

class FpgaNode : public sim::Component {
 public:
  FpgaNode(NodeId id, const NodeConfig& config, const pe::ForceModel& model,
           const idmap::ClusterMap& map, net::Fabric<net::PosRecord>* pos_fabric,
           net::Fabric<net::FrcRecord>* frc_fabric,
           net::Fabric<net::MigRecord>* mig_fabric,
           sync::BulkBarrier* barrier /* nullptr for chained mode */);
  ~FpgaNode() override;

  FpgaNode(const FpgaNode&) = delete;
  FpgaNode& operator=(const FpgaNode&) = delete;

  /// Registers the node FSM, all datapath components (through the straggler
  /// gate if configured), and all clocked elements — every one tagged with
  /// this node's shard() so a parallel scheduler keeps the whole node on one
  /// worker. Nothing registered here touches another node's state during
  /// tick: cross-node traffic goes through the two-phase fabrics only.
  void register_with(sim::Scheduler& scheduler);

  /// Shard tag for the scheduler: one shard per FPGA node.
  sim::ShardId shard() const { return static_cast<sim::ShardId>(id_); }

  /// Arms the node for `iterations` timesteps. Cell contents must have been
  /// loaded into the CBBs first.
  void start(int iterations, float dt_fs, double cell_size,
             const md::ForceField& ff);

  bool done() const { return state_ == State::kDone; }
  std::uint64_t iterations_completed() const { return iterations_completed_; }

  /// Whether the node is up at `now` per the injected node faults: false
  /// from a crash/hang cycle on, and inside a stall window. A down node
  /// skips its entire tick (control and datapath), so alive() going false
  /// is exactly "the board stopped".
  bool alive(sim::Cycle now) const;

  /// Cycle of the node's most recent tick while alive. A healthy node
  /// ticks every cycle, so any staleness beyond a handful of cycles means
  /// the node is down — the basis of core::Simulation's watchdog, with no
  /// false positives by construction (the control tick is never gated by
  /// the straggler slowdown).
  sim::Cycle last_heartbeat() const { return last_heartbeat_; }

  /// Human-readable FSM phase ("force", "motion-update", ...) for the
  /// watchdog's NodeFailureError diagnostics.
  const char* phase_name() const;

  /// Cycle at which each force phase started (head-start measurements).
  const std::vector<sim::Cycle>& force_phase_starts() const {
    return force_phase_starts_;
  }

  cbb::Cbb& cbb_at(const geom::IVec3& lcell);
  const cbb::Cbb& cbb_at(const geom::IVec3& lcell) const;
  int num_cbbs() const { return static_cast<int>(cbbs_.size()); }
  cbb::Cbb& cbb_by_index(int i) { return *cbbs_[i]; }
  const cbb::Cbb& cbb_by_index(int i) const { return *cbbs_[i]; }

  NodeId id() const { return id_; }

  void tick(sim::Cycle now) override;

  /// Elision oracle for the control FSM (DESIGN.md §13). Folds, in order:
  /// injected fault boundaries (stall start/end, crash instant) so no
  /// elision window ever straddles an aliveness change; endpoint protocol
  /// and egress wakes; and the phase-specific sources — ingress arrivals
  /// for the current phase only (matching tick_ingress gating), pending EX
  /// slots, the exact tick_fsm guard conjunctions, and the bulk barrier's
  /// release cycle.
  sim::Cycle next_wake(sim::Cycle now) const override;
  /// Replays the only bookkeeping an idle alive tick performs: the
  /// heartbeat stamp. Aliveness is constant across any skip window because
  /// next_wake folds every fault boundary.
  void skip_idle(sim::Cycle from, sim::Cycle to) override;
  /// The watchdog reads last_heartbeat() from outside this node's shard, so
  /// the heartbeat must advance cycle-by-cycle even while the whole shard
  /// sleeps — the scheduler must not defer this component's skip_idle.
  bool eager_idle() const override { return true; }

  // ---- reliability introspection ----

  /// First degraded link detected on any channel, with the channel name
  /// ("pos"/"frc"/"mig"); nullopt while every link is healthy.
  std::optional<std::pair<net::DegradedLink, const char*>> degraded_link()
      const;

  const net::Endpoint<net::PosRecord>& pos_endpoint() const { return pos_ep_; }
  const net::Endpoint<net::FrcRecord>& frc_endpoint() const { return frc_ep_; }
  const net::Endpoint<net::MigRecord>& mig_endpoint() const { return mig_ep_; }

  // ---- aggregated statistics ----
  sim::UtilCounter pos_ring_util() const;
  sim::UtilCounter frc_ring_util() const;
  sim::UtilCounter pe_util() const;
  sim::UtilCounter filter_util() const;
  sim::UtilCounter mu_util() const;
  std::uint64_t pairs_issued() const;

 private:
  class PosExStation;
  class FrcExStation;
  class MigExStation;
  friend class FrcExStation;
  friend class MigExStation;

  enum class State {
    kIdle,
    kForce,
    kForceBarrier,  // bulk mode only
    kMotionUpdate,
    kMuBarrier,  // bulk mode only
    kDone,
  };

  void tick_protocol(sim::Cycle now);
  void tick_ingress(sim::Cycle now);
  void tick_egress(sim::Cycle now);
  void tick_fsm(sim::Cycle now);

  bool all_positions_injected() const;
  bool force_datapath_quiescent() const;
  bool frc_side_drained() const;
  bool mu_side_drained() const;
  void enter_force_phase(sim::Cycle now);
  void enter_motion_update(sim::Cycle now);
  /// Re-arms the cached scheduler wakes of the CBBs after a mid-cycle phase
  /// transition (see cbb_sched_).
  void wake_cbbs(sim::Cycle now);
  void complete_iteration(sim::Cycle now);

  static const char* phase_name_of(State state);
  /// FSM transition with telemetry: closes the open phase span, records the
  /// phase-length histogram, and opens the next span (kIdle/kDone have no
  /// span of their own).
  void set_state(State next, sim::Cycle now);
  void sync_event(const char* name, sim::Cycle now);

  geom::IVec3 node_of_lcid(const geom::IVec3& lcid) const;
  int local_delivery_count(const geom::IVec3& src_lcid) const;

  NodeId id_;
  NodeConfig config_;
  const idmap::ClusterMap& map_;
  geom::IVec3 node_coords_;
  std::vector<NodeId> neighbors_;

  std::vector<std::unique_ptr<cbb::Cbb>> cbbs_;  // by local CID

  std::vector<std::unique_ptr<ring::Ring<ring::PosToken>>> pos_rings_;
  std::vector<std::unique_ptr<ring::Ring<ring::ForceToken>>> frc_rings_;
  std::unique_ptr<ring::Ring<ring::MigrateToken>> mu_ring_;

  // EX-side injection FIFOs (one per SPE ring) and stations.
  std::vector<std::unique_ptr<sim::Fifo<ring::PosToken>>> ex_pos_inject_;
  std::vector<std::unique_ptr<sim::Fifo<ring::ForceToken>>> ex_frc_inject_;
  std::unique_ptr<sim::Fifo<ring::MigrateToken>> ex_mig_inject_;
  std::vector<std::unique_ptr<PosExStation>> pos_ex_;
  std::vector<std::unique_ptr<FrcExStation>> frc_ex_;
  std::unique_ptr<MigExStation> mig_ex_;

  net::Endpoint<net::PosRecord> pos_ep_;
  net::Endpoint<net::FrcRecord> frc_ep_;
  net::Endpoint<net::MigRecord> mig_ep_;
  net::Fabric<net::PosRecord>* pos_fabric_;
  net::Fabric<net::FrcRecord>* frc_fabric_;
  net::Fabric<net::MigRecord>* mig_fabric_;

  // Converted-but-undelivered tokens (EX serialization): one slot per SPE
  // ring for positions/forces — the EX count scales with the SPEs (§4.6) —
  // and one for migrations.
  std::vector<std::optional<ring::PosToken>> pending_pos_;
  std::vector<std::optional<ring::ForceToken>> pending_frc_;
  std::optional<ring::MigrateToken> pending_mig_;

  sync::ChainedSync chain_;
  sync::BulkBarrier* barrier_;
  std::uint64_t barrier_seq_ = 0;

  State state_ = State::kIdle;
  sim::Cycle last_heartbeat_ = 0;
  bool armed_ = false;
  int target_iterations_ = 0;
  std::uint64_t iterations_completed_ = 0;
  std::vector<sim::Cycle> force_phase_starts_;

  float dt_fs_ = 0.0f;
  double cell_size_ = 0.0;
  const md::ForceField* ff_ = nullptr;

  std::vector<std::unique_ptr<Gated>> gates_;
  /// The scheduler-registered handle of each CBB (the Gated wrapper when
  /// the datapath is gated). Phase transitions re-arm these components'
  /// cached wakes: the node ticks before its datapath within the shard, so
  /// a CBB's first tick of a new phase lands in the same cycle as the
  /// transition — after the sweep already ran (DESIGN.md §13).
  std::vector<sim::Component*> cbb_sched_;

  // Telemetry (null hub = disabled; handles resolved at construction).
  obs::Hub* obs_ = nullptr;
  obs::Handle h_iterations_ = 0;
  obs::Handle h_force_hist_ = 0;
  obs::Handle h_mu_hist_ = 0;
  sim::Cycle phase_start_ = 0;
  bool span_open_ = false;
};

}  // namespace fasda::fpga
