#pragma once
// Cell Building Block (§3.1) and its strong-scaling generalization, the
// Scalable CBB (§4.5-4.6, Figs. 14-15).
//
// One CBB owns one cell of the simulation space:
//   * particle storage — the Position/Velocity caches plus the Home Position
//     Cache that all PEs stream during force evaluation,
//   * `spes` Scalable Processing Elements, each with `pes_per_spe` PEs and
//     its own position/force ring attachment (separate routing paths per
//     SPE, §4.6),
//   * force caches — modelled as one accumulation array per cell with the
//     physical FC count (pes_per_spe + 1 per SPE) tracked for the resource
//     model; the adder-tree combine happens implicitly at motion update,
//   * a Motion-update Unit processing one particle per cycle,
//   * ring stations: one PRN and FRN per SPE ring, one MURN.
//
// Home positions are injected into SPE ring s by slot parity (slot % spes),
// the even/odd PC0/PC1 split of §4.6; intra-cell pair references are
// dispatched round-robin across every PE.

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "fasda/idmap/cell_id_map.hpp"
#include "fasda/pe/processing_element.hpp"
#include "fasda/ring/ring.hpp"
#include "fasda/ring/tokens.hpp"

namespace fasda::cbb {

struct CbbConfig {
  int pes_per_spe = 1;
  int spes = 1;
  pe::PEConfig pe{};
  std::size_t fifo_depth = 64;
  /// Arriving neighbour positions are buffered deeply (BRAM-backed, like
  /// the paper's dispatcher-fed position registers) so the position ring
  /// drains as soon as it multicasts — this is what keeps PR utilization
  /// low ("PR underused due to the excellent locality of position data",
  /// §5.3) instead of using the ring itself as a distributed queue.
  std::size_t arrival_buffer_depth = 1024;
};

/// A position record offered to the node's P2R encapsulation chain when this
/// cell borders another FPGA (§4.3).
struct RemotePosition {
  geom::IVec3 src_gcell;
  fixed::FixedVec3 offset;
  md::ElementId elem = 0;
  std::uint16_t slot = 0;
};

/// Test-only global probe observing every Force Cache write: the owning
/// cell, target slot, value, and source (fc index for PE-side writes, -1 for
/// force-ring deliveries). Never set in production runs.
struct FcProbe {
  using Fn = std::function<void(const geom::IVec3& gcell, std::uint16_t slot,
                                const geom::Vec3f& force, int source)>;
  static Fn hook;
};

class Cbb : public sim::Component, public pe::ForceSink {
 public:
  Cbb(std::string name, const CbbConfig& config, const pe::ForceModel& model,
      const idmap::ClusterMap& map, geom::IVec3 node, geom::IVec3 lcell);
  ~Cbb() override;

  Cbb(const Cbb&) = delete;
  Cbb& operator=(const Cbb&) = delete;

  /// Everything to register with the scheduler (this CBB + its PEs).
  std::vector<sim::Component*> components();
  std::vector<sim::Clocked*> clocked();

  ring::Station<ring::PosToken>& pos_station(int spe);
  ring::Station<ring::ForceToken>& frc_station(int spe);
  ring::Station<ring::MigrateToken>& mu_station();

  /// Node-level hook: offered once per home particle at force-phase start
  /// when the particle has remote destinations.
  void set_remote_position_sink(std::function<void(const RemotePosition&)> f) {
    offer_remote_ = std::move(f);
  }

  const geom::IVec3& local_cell() const { return lcell_; }
  const geom::IVec3& global_cell() const { return gcell_; }

  std::vector<pe::CellParticle>& particles() { return particles_; }
  const std::vector<pe::CellParticle>& particles() const { return particles_; }
  /// Per-slot combined forces read out of the fixed-point FC accumulators.
  /// Accumulation is order-independent (see fixed::ForceAccum), so this is
  /// bitwise identical no matter how ring/network timing interleaved the
  /// contributing writes.
  std::vector<geom::Vec3f> forces() const;

  // ---- phase control (driven by the FpgaNode) ----
  void begin_force_phase();
  /// All local force-evaluation work complete and every FIFO drained.
  bool force_quiescent() const;
  /// Every home position has been broadcast (and offered to the P2R chain).
  bool positions_injected() const { return inject_cursor_ >= particles_.size(); }
  /// No migration arrivals waiting to be folded into the particle store.
  bool migration_intake_empty() const {
    return mu_arrivals_->total_occupancy() == 0;
  }
  void begin_motion_update(float dt_fs, double cell_size,
                           const md::ForceField& ff);
  bool mu_done() const;

  void tick(sim::Cycle now) override;

  /// Elision oracle: busy while anything is queued for this cell in the
  /// current phase (migration intake, position injection, dispatcher
  /// queues, PE outputs, MU cursor); never self-schedules a future event.
  sim::Cycle next_wake(sim::Cycle now) const override;
  void skip_idle(sim::Cycle from, sim::Cycle to) override;

  void accumulate(std::uint16_t slot, const geom::Vec3f& force,
                  int fc_index) override;

  // ---- statistics ----
  sim::UtilCounter pe_util() const;
  sim::UtilCounter filter_util() const;
  const sim::UtilCounter& mu_util() const { return mu_util_; }
  std::uint64_t pairs_issued() const;

  int num_pes() const { return static_cast<int>(pes_.size()); }
  int num_fcs() const { return config_.spes * (config_.pes_per_spe + 1); }

 private:
  class PosStation;
  class FrcStation;
  class MuStation;
  friend class PosStation;
  friend class FrcStation;
  friend class MuStation;

  enum class Phase { kIdle, kForce, kMotionUpdate };

  void tick_force_phase();
  void tick_motion_update();

  pe::ProcessingElement& pe_at(int spe, int k) {
    return *pes_[static_cast<std::size_t>(spe) * config_.pes_per_spe + k];
  }

  CbbConfig config_;
  const pe::ForceModel& model_;
  const idmap::ClusterMap& map_;
  geom::IVec3 node_;
  geom::IVec3 lcell_;
  geom::IVec3 gcell_;
  int local_pos_deliveries_ = 0;  ///< local cells accepting this cell's positions
  bool has_remote_dests_ = false;

  std::vector<pe::CellParticle> particles_;
  std::vector<fixed::ForceAccum> forces_;  ///< FC accumulators, by slot
  std::vector<bool> migrated_;

  std::vector<std::unique_ptr<pe::ProcessingElement>> pes_;

  // Per-SPE plumbing.
  std::vector<std::unique_ptr<sim::Fifo<ring::PosToken>>> pr_inject_;
  std::vector<std::unique_ptr<sim::Fifo<ring::ForceToken>>> fr_inject_;
  std::vector<std::unique_ptr<sim::Fifo<pe::Reference>>> arrivals_;
  std::vector<std::deque<pe::Reference>> dispatch_;
  std::vector<std::unique_ptr<PosStation>> pos_stations_;
  std::vector<std::unique_ptr<FrcStation>> frc_stations_;
  std::unique_ptr<MuStation> mu_station_;
  std::unique_ptr<sim::Fifo<ring::MigrateToken>> mu_inject_;
  std::unique_ptr<sim::Fifo<ring::MigrateToken>> mu_arrivals_;

  std::function<void(const RemotePosition&)> offer_remote_;

  Phase phase_ = Phase::kIdle;
  std::size_t inject_cursor_ = 0;  ///< next home particle to broadcast

  // Motion update state.
  std::size_t mu_cursor_ = 0;
  std::size_t mu_limit_ = 0;
  float mu_dt_ = 0.0f;
  double mu_inv_cell_ = 0.0;
  const md::ForceField* mu_ff_ = nullptr;
  sim::UtilCounter mu_util_;
};

}  // namespace fasda::cbb
