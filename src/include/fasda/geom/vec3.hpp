#pragma once
// 3-component vector types used throughout: Vec3<double> for the reference
// engine, Vec3<float> for FASDA's float32 force/velocity paths, IVec3 for
// cell/node coordinates.

#include <cmath>
#include <cstdint>

namespace fasda::geom {

template <class T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(T s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(T s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(T s) { x *= s; y *= s; z *= s; return *this; }

  constexpr bool operator==(const Vec3&) const = default;

  constexpr T dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr T norm2() const { return dot(*this); }
  T norm() const { return std::sqrt(norm2()); }

  template <class U>
  constexpr Vec3<U> cast() const {
    return {static_cast<U>(x), static_cast<U>(y), static_cast<U>(z)};
  }
};

template <class T>
constexpr Vec3<T> operator*(T s, const Vec3<T>& v) {
  return v * s;
}

using Vec3d = Vec3<double>;
using Vec3f = Vec3<float>;

struct IVec3 {
  int x{}, y{}, z{};

  constexpr IVec3() = default;
  constexpr IVec3(int x_, int y_, int z_) : x(x_), y(y_), z(z_) {}

  constexpr IVec3 operator+(const IVec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr IVec3 operator-(const IVec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr bool operator==(const IVec3&) const = default;

  constexpr int product() const { return x * y * z; }

  template <class T>
  constexpr Vec3<T> cast() const {
    return {static_cast<T>(x), static_cast<T>(y), static_cast<T>(z)};
  }
};

}  // namespace fasda::geom
