#pragma once
// Periodic cell grid over the simulation space, with the paper's cell
// indexing (Eq. 7):  CID = Dy*Dz*x + Dz*y + z.
//
// The half-shell neighbour set (Fig. 2) implements Newton's-third-law
// pairing: each cell sends its particles to the 13 "forward" neighbour cells
// and receives from the 13 "backward" ones, so every neighbouring cell pair
// is evaluated exactly once. "Forward" means lexicographically positive
// displacement: dx>0, or dx==0 && dy>0, or dx==dy==0 && dz>0 — which also
// matches the ring rotation direction Eq. 7 optimizes for.

#include <array>
#include <cstdint>
#include <span>

#include "fasda/geom/vec3.hpp"

namespace fasda::geom {

using CellId = std::int32_t;

/// The 13 forward half-shell offsets (of the 26 neighbours of a cell).
std::span<const IVec3> half_shell_offsets();

/// All 26 neighbour offsets (full shell), forward ones first.
std::span<const IVec3> full_shell_offsets();

/// True iff d (each component in {-1,0,1}, not all zero) is a forward offset.
constexpr bool is_forward_offset(const IVec3& d) {
  return d.x > 0 || (d.x == 0 && (d.y > 0 || (d.y == 0 && d.z > 0)));
}

class CellGrid {
 public:
  /// dims: number of cells per dimension (each >= 3 so that periodic
  /// neighbour displacements are unambiguous); cell_size: edge length
  /// (= R_c in the paper's recommended configuration).
  CellGrid(IVec3 dims, double cell_size);

  const IVec3& dims() const { return dims_; }
  double cell_size() const { return cell_size_; }
  int num_cells() const { return dims_.product(); }
  Vec3d box() const {
    return {dims_.x * cell_size_, dims_.y * cell_size_, dims_.z * cell_size_};
  }

  /// Eq. 7 cell id from integer coordinates (must be in range).
  CellId cid(const IVec3& c) const {
    return static_cast<CellId>((c.x * dims_.y + c.y) * dims_.z + c.z);
  }
  IVec3 coords(CellId id) const {
    const int z = id % dims_.z;
    const int y = (id / dims_.z) % dims_.y;
    const int x = id / (dims_.y * dims_.z);
    return {x, y, z};
  }

  /// Wraps integer cell coordinates into the grid (periodic boundaries).
  IVec3 wrap(IVec3 c) const;

  /// Wraps a position into the periodic box [0, box) per component.
  Vec3d wrap_position(Vec3d p) const;

  /// Cell containing a (wrapped) position.
  IVec3 cell_of(const Vec3d& p) const;

  /// Minimum-image displacement between cell coordinates: each component of
  /// (to - from) mapped into [-dims/2, dims/2]. For the neighbour checks used
  /// by the rings the result is meaningful when it lands in {-1,0,1}^3.
  IVec3 cell_displacement(const IVec3& from, const IVec3& to) const;

  /// Minimum-image displacement vector to - from in the periodic box.
  Vec3d min_image(const Vec3d& from, const Vec3d& to) const;

  /// True iff `to` is one of `from`'s 13 forward half-shell neighbours
  /// (periodic). A cell is never its own neighbour (dims >= 3 guarantees the
  /// images are distinct).
  bool is_forward_neighbor(const IVec3& from, const IVec3& to) const;

 private:
  IVec3 dims_;
  double cell_size_;
};

}  // namespace fasda::geom
