#pragma once
// Node-level fault tolerance: supervision and recovery (DESIGN.md §11).
//
// supervisor::Supervisor wraps any engine::Engine behind the registry with
// a periodic-checkpoint + rollback-and-replay policy. It steps the engine
// in checkpoint-sized blocks; after each block it snapshots the exported
// state. When a block throws sync::NodeFailureError (a node crashed or
// hung) or sync::DegradedLinkError (a link died while its peer kept
// ticking), the supervisor records the incident, backs off, and rebuilds
// the engine over the last checkpoint:
//
//   * transient fault  — same topology; the restart models a board reboot
//     by removing the failed node's non-permanent faults from the plan.
//   * permanent death  — the same node implicated twice in a row. With
//     allow_degraded the cluster is re-sharded onto fewer FPGA nodes
//     (cells_per_node grows, node_dims shrinks) and the run completes in
//     degraded mode; otherwise the restarts just burn out.
//
// Restart attempts are bounded; on exhaustion run() returns an incomplete
// RunReport carrying every incident and the final error. Because positions
// are Q2.28 cell offsets (exported and re-imported exactly) and the FC
// accumulates in order-independent Q15.48, a run crashed at an arbitrary
// cycle and replayed from checkpoint is bitwise identical to the
// uninterrupted run — tests/supervisor_test.cpp proves it for 1/2/4
// workers.

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "fasda/engine/observers.hpp"
#include "fasda/engine/registry.hpp"

namespace fasda::supervisor {

struct SupervisorConfig {
  /// Timesteps between checkpoints (the rollback granularity); <= 0 means
  /// one checkpoint at the end (restart-from-scratch on failure).
  int checkpoint_every = 1;
  /// Engine rebuilds before giving up (the degraded re-shard counts).
  int max_restarts = 3;
  /// Wall-clock backoff before restart k: initial · 2^(k-1), capped. The
  /// default skips sleeping entirely — simulated boards reboot instantly;
  /// a real deployment would set seconds here.
  std::chrono::milliseconds backoff_initial{0};
  std::chrono::milliseconds backoff_cap{1000};
  /// Permit the degraded re-shard onto surviving nodes when the same node
  /// dies twice in a row (permanent death). Off by default: shrinking the
  /// cluster changes the topology, which callers must opt into.
  bool allow_degraded = false;
  /// Optional on-disk mirror of every checkpoint (atomic tmp+rename via
  /// md::save_checkpoint); empty = in-memory only.
  std::string checkpoint_path;
  /// Step-addressed variant: when set it wins over checkpoint_path and is
  /// called with the just-banked step to pick the file for that
  /// checkpoint (an empty return skips the save). The serve durability
  /// layer uses this to write step-stamped files whose name binds
  /// step <-> state, so a journal kCheckpoint record can name exactly
  /// which file resumes it. The save happens BEFORE observers see the
  /// banked sample — an observer that journals the checkpoint can rely on
  /// the file already being durable.
  std::function<std::string(long long step)> checkpoint_path_for;
};

enum class IncidentKind { kNodeFailure, kDegradedLink, kOther };

/// One failure the supervisor observed and reacted to.
struct Incident {
  int attempt = 0;  ///< 1-based engine build the failure occurred on
  IncidentKind kind = IncidentKind::kOther;
  /// Failed node: the unresponsive node for kNodeFailure, the degraded
  /// link's destination for kDegradedLink, -1 otherwise.
  idmap::NodeId node = -1;
  std::string phase;     ///< FSM phase a failed node stalled in (if known)
  /// Simulated cycle the failure was detected at (the watchdog's or the
  /// retransmit protocol's detection stamp) — matches the `cycle` argument
  /// of the incident's trace event when a hub is attached.
  sim::Cycle detected_at = 0;
  long long at_step = 0; ///< checkpointed step the run rolled back to
  std::string error;     ///< the exception text
  bool recovered = false;       ///< a later attempt stepped past it
  bool caused_reshard = false;  ///< this incident triggered the re-shard
};

struct RunReport {
  bool completed = false;
  bool degraded = false;  ///< finished on a re-sharded topology
  int restarts = 0;
  long long steps = 0;  ///< timesteps actually banked in checkpoints
  int checkpoints_taken = 0;
  std::vector<Incident> incidents;
  md::SystemState final_state;
  engine::Energies final_energies;
  std::string final_error;  ///< set when !completed
};

class Supervisor {
 public:
  Supervisor(md::SystemState initial, md::ForceField ff,
             engine::EngineSpec spec, SupervisorConfig config = {},
             const engine::Registry& registry = engine::Registry::instance());

  /// Runs `steps` timesteps under supervision. Observers see the step-0
  /// sample once, then one sample per banked checkpoint — a rolled-back
  /// block was never sampled, so recovery never duplicates or reorders
  /// observer frames. Only gives up by returning (never throws for the
  /// failures it supervises); unrelated exceptions propagate.
  RunReport run(int steps,
                const std::vector<engine::StepObserver*>& observers = {});

  /// The spec the next engine build will use (reflects fault removals and
  /// the degraded re-shard).
  const engine::EngineSpec& spec() const { return spec_; }

 private:
  bool reshard();  ///< shrink the topology; false if already 1 node

  md::SystemState initial_;
  md::ForceField ff_;
  engine::EngineSpec spec_;
  SupervisorConfig config_;
  const engine::Registry& registry_;
};

}  // namespace fasda::supervisor
