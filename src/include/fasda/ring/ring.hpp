#pragma once
// The 1-D daisy-chain ("ring") interconnect of §3.2.
//
// A Ring owns one hop slot per station (CBB ring nodes plus EX nodes), so a
// token takes one cycle per hop. Each cycle every occupied slot consults its
// station: pass, deliver a copy (position multicast), deliver-and-drop
// (force/migration unicast, or the last position copy), or drop. A delivery
// that the station cannot accept (input FIFO full) stalls the token in
// place — backpressure propagates upstream exactly like a ready/valid
// chain. Tokens then advance simultaneously into free slots (bubbles
// propagate backwards; a completely full ring of moving tokens rotates).
// Freed slots accept injections from their station's local FIFO.
//
// The whole ring ticks as one Component, which keeps movement atomic and
// independent of global component ordering.

#include <optional>
#include <vector>

#include "fasda/sim/kernel.hpp"

namespace fasda::ring {

template <class T>
class Station {
 public:
  enum class Action { kPass, kDeliver, kDeliverAndDrop, kDrop };

  virtual ~Station() = default;

  /// Decides what this station wants to do with a token sitting at it.
  virtual Action classify(const T& token) const = 0;

  /// Hands over a copy (kDeliver) or the token itself (kDeliverAndDrop).
  /// Returns false when the station cannot accept this cycle; the token then
  /// stalls in its slot and is retried next cycle. May mutate the token on
  /// success (e.g. decrement a multicast counter).
  virtual bool try_deliver(T& token) = 0;

  /// Local injection source, or nullptr if this station never injects.
  virtual sim::Fifo<T>* inject_source() = 0;
};

template <class T>
class Ring : public sim::Component {
 public:
  Ring(std::string name, std::vector<Station<T>*> stations)
      : Component(std::move(name)),
        stations_(std::move(stations)),
        slots_(stations_.size()) {}

  std::size_t num_stations() const { return stations_.size(); }

  /// Tokens currently travelling (occupied hop slots).
  std::size_t occupancy() const {
    std::size_t n = 0;
    for (const auto& s : slots_) n += s.has_value();
    return n;
  }

  const sim::UtilCounter& util() const { return util_; }

  /// A ring only acts on tokens in flight or waiting to inject; everything
  /// else (station FIFO fills) executes a cycle and re-sweeps.
  sim::Cycle next_wake(sim::Cycle now) const override {
    for (const auto& s : slots_) {
      if (s) return now;
    }
    for (Station<T>* st : stations_) {
      sim::Fifo<T>* src = st->inject_source();
      if (src != nullptr && !src->empty()) return now;
    }
    return sim::kNeverCycle;
  }

  /// An idle tick records util_(0, n, false) and nothing else.
  void skip_idle(sim::Cycle from, sim::Cycle to) override {
    const std::size_t n = slots_.size();
    if (n == 0) return;
    util_.record(0, static_cast<std::uint64_t>(n) * (to - from), false);
  }

  void tick(sim::Cycle) override {
    const std::size_t n = slots_.size();
    if (n == 0) return;

    wants_move_.assign(n, false);
    std::size_t occupied = 0;

    // Phase 1: station interaction. A token that delivered a copy but could
    // not advance last cycle is marked delivered_here so the station never
    // receives a duplicate while it waits for the slot ahead to free up.
    for (std::size_t i = 0; i < n; ++i) {
      if (!slots_[i]) continue;
      ++occupied;
      Slot& slot = *slots_[i];
      if (slot.delivered_here) {
        wants_move_[i] = true;
        continue;
      }
      switch (stations_[i]->classify(slot.token)) {
        case Station<T>::Action::kPass:
          wants_move_[i] = true;
          break;
        case Station<T>::Action::kDeliver:
          if (stations_[i]->try_deliver(slot.token)) {
            slot.delivered_here = true;
            wants_move_[i] = true;
          }
          break;
        case Station<T>::Action::kDeliverAndDrop:
          if (stations_[i]->try_deliver(slot.token)) {
            slots_[i].reset();
          }
          break;
        case Station<T>::Action::kDrop:
          slots_[i].reset();
          break;
      }
    }

    util_.record(occupied, n, occupied > 0);

    // Phase 2: movement. can_move relaxation handles the circular
    // dependency; a full ring of movers rotates, a stalled token blocks
    // everything behind it.
    can_move_ = wants_move_;
    for (std::size_t pass = 0; pass < n; ++pass) {
      bool changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (!can_move_[i]) continue;
        const std::size_t next = (i + 1) % n;
        const bool next_free = !slots_[next] || can_move_[next];
        if (!next_free) {
          can_move_[i] = false;
          changed = true;
        }
      }
      if (!changed) break;
    }
    scratch_slots_.assign(n, std::nullopt);
    for (std::size_t i = 0; i < n; ++i) {
      if (!slots_[i]) continue;
      if (can_move_[i]) {
        slots_[i]->delivered_here = false;  // arriving at a new station
        scratch_slots_[(i + 1) % n] = std::move(slots_[i]);
      } else {
        scratch_slots_[i] = std::move(slots_[i]);
      }
    }
    slots_.swap(scratch_slots_);

    // Phase 3: injection into empty slots.
    for (std::size_t i = 0; i < n; ++i) {
      if (slots_[i]) continue;
      sim::Fifo<T>* src = stations_[i]->inject_source();
      if (src != nullptr && !src->empty()) slots_[i] = Slot{src->pop(), false};
    }
  }

 private:
  struct Slot {
    T token;
    bool delivered_here = false;
  };

  std::vector<Station<T>*> stations_;
  std::vector<std::optional<Slot>> slots_;
  // Per-tick scratch kept as members: the movement phase used to allocate
  // three vectors every cycle, which dominated idle-ring tick cost.
  std::vector<bool> wants_move_;
  std::vector<bool> can_move_;
  std::vector<std::optional<Slot>> scratch_slots_;
  sim::UtilCounter util_;
};

}  // namespace fasda::ring
