#pragma once
// Token payloads carried by the three on-chip rings (§3.2) and, packed four
// to a 512-bit AXI-Stream packet, by the inter-FPGA links (§4.3).

#include <cstdint>

#include "fasda/fixed/fixed_point.hpp"
#include "fasda/geom/vec3.hpp"
#include "fasda/md/force_field.hpp"

namespace fasda::ring {

/// A particle position travelling the position ring. The source cell is
/// identified by its LCID in the receiving node's frame (§4.2), so every
/// CBB's acceptance check is identical on every FPGA.
struct PosToken {
  geom::IVec3 src_lcid;       ///< source cell, local-node frame, [0, G)
  fixed::FixedVec3 offset;    ///< in-cell offset (RCID = 2 on each axis)
  md::ElementId elem = 0;
  std::uint16_t slot = 0;     ///< particle index within its source cell
  /// Local CBBs still to visit; the PRN that takes the last copy drops the
  /// token from the ring (the Eq. 7 travel-time optimization).
  std::uint8_t deliveries_remaining = 0;
};

/// An accumulated neighbour force heading back to its home cell. Exactly one
/// destination (§3.2), which may be off-node (the EX node extracts those).
struct ForceToken {
  geom::IVec3 dest_lcid;  ///< home cell, local-node frame
  geom::Vec3f force;      ///< internal units
  std::uint16_t slot = 0;
};

/// A particle migrating between cells during motion update.
struct MigrateToken {
  geom::IVec3 dest_lcid;
  fixed::FixedVec3 offset;  ///< offset already rebased into the target cell
  geom::Vec3f vel;
  md::ElementId elem = 0;
  std::uint32_t particle_id = 0;
};

}  // namespace fasda::ring
