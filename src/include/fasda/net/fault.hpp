#pragma once
// Deterministic link-fault model for the inter-FPGA fabric (PR 3).
//
// FASDA's links are UDP over a 100 GbE switch (§network, Fig. 18), so a
// production cluster must assume packets can be lost, duplicated, reordered
// or corrupted in flight. A FaultPlan describes, per directed link, the
// probability of each fault plus exact "drop data packet #k on link (i,j)"
// triggers. All randomness flows through util::rng seeded from one 64-bit
// seed mixed with the link endpoints and a per-channel salt, and faults are
// applied inside net::Fabric::commit() — the single-threaded global phase of
// the two-phase scheduler — so a given (plan, workload) reproduces the same
// fault sequence bitwise for any worker count.
//
// LinkStats records both what the fabric injected (drops, dups, reorders,
// corrupts) and what the recovery protocol did about it (retransmits, acks,
// nacks, duplicate discards, CRC failures, retry depth, recovery cycles).
// DegradedLink is the typed give-up event: a sender that exhausts
// max_retries on one packet declares the link dead instead of retrying
// forever, and core::Simulation::run surfaces it as sync::DegradedLinkError
// rather than hanging until the cycle budget trips.

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fasda/idmap/cell_id_map.hpp"
#include "fasda/sim/kernel.hpp"
#include "fasda/util/crc32.hpp"
#include "fasda/util/rng.hpp"

namespace fasda::net {

using NodeId = idmap::NodeId;
using Link = std::pair<NodeId, NodeId>;  ///< directed (src, dst)

/// Per-link fault probabilities. Rates are per packet in [0, 1]; a dead
/// link drops everything in its direction (the switch port failed).
struct LinkFaults {
  double drop = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  bool dead = false;

  bool any() const {
    return dead || drop > 0.0 || dup > 0.0 || reorder > 0.0 || corrupt > 0.0;
  }
};

/// Node-level failure modes (PR 4). All three stop the node's tick — the
/// crashed FpgaNode simply never runs again, so its heartbeat goes stale —
/// but they differ in what the wire sees and whether a board reboot clears
/// the fault:
///
///   kCrash  power loss: the node stops ticking AND its links go down (the
///           fabric drops everything to/from it from `at` on). Transient
///           unless `permanent` — the supervisor's restart models a reboot
///           by removing transient faults from the plan.
///   kHang   firmware wedge: the node stops ticking but the NIC stays up —
///           inbound packets pile up unprocessed, so no acks ever flow and
///           neighbours' retransmit timers eventually give up.
///   kStall  transient pause (SEU scrub, thermal throttle): dead for
///           `duration` cycles starting at `at`, then resumes; the
///           retransmit protocol absorbs the gap without any supervisor
///           intervention.
enum class NodeFaultKind : std::uint8_t { kCrash, kHang, kStall };

struct NodeFault {
  NodeFaultKind kind = NodeFaultKind::kCrash;
  NodeId node = -1;
  sim::Cycle at = 0;        ///< scheduler cycle the fault fires
  sim::Cycle duration = 0;  ///< kStall only: cycles until the node resumes
  /// kCrash only: the board is gone for good — a supervisor restart keeps
  /// the fault armed and must re-shard around the node instead.
  bool permanent = false;
};

/// A seeded description of every fault the fabric should inject. Attaching
/// a FaultPlan (even an all-zero one) arms the ack/retransmit protocol on
/// every endpoint; the all-zero plan is the "protocol on, wire perfect"
/// baseline the golden-figure guard pins packet counts against.
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  LinkFaults all;                       ///< default for every link
  std::map<Link, LinkFaults> per_link;  ///< overrides for specific links
  /// Deterministic triggers: drop the k-th data packet (0-based, counted at
  /// the fabric) on a specific link, regardless of the random rates.
  std::map<Link, std::set<std::uint64_t>> drop_exact;
  /// Node-level triggers, keyed on (node, cycle) only — like the per-link
  /// streams they are independent of traffic interleaving, so a crash fires
  /// at the same point for any worker count.
  std::vector<NodeFault> node_faults;

  const LinkFaults& faults_for(NodeId src, NodeId dst) const {
    const auto it = per_link.find({src, dst});
    return it == per_link.end() ? all : it->second;
  }

  bool link_has_faults(NodeId src, NodeId dst) const {
    return faults_for(src, dst).any() || drop_exact.count({src, dst}) > 0;
  }

  bool has_node_faults() const { return !node_faults.empty(); }

  std::vector<NodeFault> faults_for_node(NodeId node) const {
    std::vector<NodeFault> out;
    for (const NodeFault& f : node_faults) {
      if (f.node == node) out.push_back(f);
    }
    return out;
  }

  /// Earliest cycle from which a crash takes this node's links down.
  /// Hang and stall leave the NIC up: packets keep arriving and queue in
  /// the endpoint until the node ticks again (or forever, for a hang).
  std::optional<sim::Cycle> node_links_down_at(NodeId node) const {
    std::optional<sim::Cycle> at;
    for (const NodeFault& f : node_faults) {
      if (f.node == node && f.kind == NodeFaultKind::kCrash &&
          (!at || f.at < *at)) {
        at = f.at;
      }
    }
    return at;
  }

  /// Rejects node/link ids outside [0, num_nodes) with a diagnostic naming
  /// the bad id. core::Simulation calls this before building the cluster.
  void validate(int num_nodes) const;

  /// Parses the CLI spec used by `--faults`, a comma list of key=value:
  ///   drop=0.05,dup=0.02,reorder=0.02,corrupt=0.01,seed=7,dead=0-1
  /// dead may repeat; dropk=SRC-DST-K adds an exact drop trigger. Node
  /// faults: crash=NODE-CYCLE (transient crash), die=NODE-CYCLE (permanent
  /// crash), hang=NODE-CYCLE, stall=NODE-CYCLE-CYCLES. Malformed or unknown
  /// tokens throw std::invalid_argument naming the bad token.
  static FaultPlan parse(std::string_view spec);
};

/// Per-link reliability record, folded into the Fig. 18 traffic matrix.
/// The injected_* fields are stamped by the fabric; the protocol fields by
/// the endpoints. merge() lets callers aggregate over links or channels.
struct LinkStats {
  // Fabric side: faults injected on the wire.
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_dups = 0;
  std::uint64_t injected_reorders = 0;
  std::uint64_t injected_corrupts = 0;
  // Endpoint side: what the recovery protocol observed and did.
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t duplicates_discarded = 0;
  std::uint64_t crc_failures = 0;
  int max_retry_depth = 0;
  /// Cycles a link spent recovering: from the first timeout/nack on a
  /// packet until cumulative acks moved past it again.
  sim::Cycle recovery_cycles = 0;

  void merge(const LinkStats& o) {
    injected_drops += o.injected_drops;
    injected_dups += o.injected_dups;
    injected_reorders += o.injected_reorders;
    injected_corrupts += o.injected_corrupts;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    acks_sent += o.acks_sent;
    nacks_sent += o.nacks_sent;
    duplicates_discarded += o.duplicates_discarded;
    crc_failures += o.crc_failures;
    max_retry_depth = max_retry_depth > o.max_retry_depth ? max_retry_depth
                                                          : o.max_retry_depth;
    recovery_cycles += o.recovery_cycles;
  }

  bool faults_seen() const {
    return injected_drops || injected_dups || injected_reorders ||
           injected_corrupts;
  }
};

/// Ack/retransmit protocol knobs for an armed Endpoint.
struct ReliabilityConfig {
  /// Retransmit timeout in cycles; 0 = auto (2·link_latency + 4·cooldown +
  /// 64), sized above the ack round trip so a perfect wire never times out.
  sim::Cycle rto = 0;
  /// Consecutive timeouts on one packet before the link is declared dead.
  int max_retries = 8;
  /// Exponential-backoff cap in cycles; 0 = auto (8·rto).
  sim::Cycle max_backoff = 0;
};

/// Typed give-up event for a link whose packets are never acknowledged.
struct DegradedLink {
  NodeId src = -1;
  NodeId dst = -1;
  std::uint64_t seq = 0;        ///< oldest unacknowledged data packet
  sim::Cycle detected_at = 0;   ///< cycle max_retries was exhausted
  int retries = 0;
};

/// Packet digests use the shared CRC-32 (fed field-by-field so struct
/// padding never enters the digest); md's checkpoint footer hashes with the
/// same implementation.
using Crc32 = util::Crc32;

/// Per-channel salts mixing into link_seed so the position, force and
/// migration fabrics draw independent fault streams from one plan seed.
inline constexpr std::uint64_t kPosChannelSalt = 1;
inline constexpr std::uint64_t kFrcChannelSalt = 2;
inline constexpr std::uint64_t kMigChannelSalt = 3;

/// Deterministic per-link RNG seed: one plan seed fans out to independent
/// streams per (channel, src, dst) so fault sequences never depend on how
/// traffic on other links interleaves.
inline std::uint64_t link_seed(std::uint64_t plan_seed, std::uint64_t salt,
                               NodeId src, NodeId dst) {
  util::SplitMix64 sm(plan_seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
                      (static_cast<std::uint64_t>(src) << 32) ^
                      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  return sm.next();
}

// ---------------------------------------------------------------- parsing

inline void FaultPlan::validate(int num_nodes) const {
  auto check = [&](NodeId id, const std::string& what) {
    if (id < 0 || id >= num_nodes) {
      throw std::invalid_argument(
          "FaultPlan: " + what + " node id " + std::to_string(id) +
          " out of range for a " + std::to_string(num_nodes) + "-node cluster");
    }
  };
  for (const auto& [link, faults] : per_link) {
    check(link.first, "per-link src");
    check(link.second, "per-link dst");
  }
  for (const auto& [link, seqs] : drop_exact) {
    check(link.first, "drop-exact src");
    check(link.second, "drop-exact dst");
  }
  for (const NodeFault& f : node_faults) check(f.node, "node-fault");
}

inline FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("FaultPlan: " + why + " in --faults spec '" +
                                std::string(spec) + "'");
  };
  // Strict numeric tokens: the whole token must parse (no trailing garbage,
  // no silent overflow) or the diagnostic names it.
  auto parse_u64 = [&](const std::string& v,
                       std::string_view key) -> std::uint64_t {
    try {
      if (v.empty() || v[0] == '-' || v[0] == '+') throw std::invalid_argument(v);
      std::size_t used = 0;
      const unsigned long long n = std::stoull(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
      return n;
    } catch (const std::exception&) {
      fail("bad value '" + v + "' for key '" + std::string(key) + "'");
    }
    return 0;  // unreachable: fail() throws
  };
  auto parse_node = [&](const std::string& v, std::string_view key) -> NodeId {
    const std::uint64_t n = parse_u64(v, key);
    if (n > static_cast<std::uint64_t>(std::numeric_limits<NodeId>::max())) {
      fail("node id '" + v + "' out of range for key '" + std::string(key) +
           "'");
    }
    return static_cast<NodeId>(n);
  };
  auto parse_rate = [&](const std::string& v, std::string_view key) -> double {
    double rate = 0.0;
    try {
      std::size_t used = 0;
      rate = std::stod(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
    } catch (const std::exception&) {
      fail("bad value '" + v + "' for key '" + std::string(key) + "'");
    }
    if (rate < 0.0 || rate > 1.0) {
      fail("rate '" + v + "' for key '" + std::string(key) +
           "' must be in [0, 1]");
    }
    return rate;
  };
  // Splits "A-B" or "A-B-C" into exactly `n` fields.
  auto split_fields = [&](const std::string& v, std::size_t n,
                          std::string_view key,
                          const char* shape) -> std::vector<std::string> {
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const auto dash = v.find('-', start);
      if (dash == std::string::npos) {
        fields.push_back(v.substr(start));
        break;
      }
      fields.push_back(v.substr(start, dash - start));
      start = dash + 1;
    }
    if (fields.size() != n) {
      fail(std::string(key) + " expects " + shape + ", got '" + v + "'");
    }
    return fields;
  };
  auto parse_node_fault = [&](const std::string& v, std::string_view key,
                              NodeFaultKind kind, bool permanent) {
    const bool stall = kind == NodeFaultKind::kStall;
    const auto f = split_fields(v, stall ? 3 : 2, key,
                                stall ? "NODE-CYCLE-CYCLES" : "NODE-CYCLE");
    NodeFault nf;
    nf.kind = kind;
    nf.permanent = permanent;
    nf.node = parse_node(f[0], key);
    nf.at = static_cast<sim::Cycle>(parse_u64(f[1], key));
    if (stall) {
      nf.duration = static_cast<sim::Cycle>(parse_u64(f[2], key));
      if (nf.duration == 0) fail("stall duration must be > 0 in '" + v + "'");
    }
    plan.node_faults.push_back(nf);
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) {
      fail("expected key=value, got '" + std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string value(item.substr(eq + 1));
    if (key == "drop") plan.all.drop = parse_rate(value, key);
    else if (key == "dup") plan.all.dup = parse_rate(value, key);
    else if (key == "reorder") plan.all.reorder = parse_rate(value, key);
    else if (key == "corrupt") plan.all.corrupt = parse_rate(value, key);
    else if (key == "seed") plan.seed = parse_u64(value, key);
    else if (key == "dead") {
      const auto f = split_fields(value, 2, key, "SRC-DST");
      const Link link{parse_node(f[0], key), parse_node(f[1], key)};
      LinkFaults lf = plan.faults_for(link.first, link.second);
      lf.dead = true;
      plan.per_link[link] = lf;
    } else if (key == "dropk") {
      const auto f = split_fields(value, 3, key, "SRC-DST-K");
      const Link link{parse_node(f[0], key), parse_node(f[1], key)};
      plan.drop_exact[link].insert(parse_u64(f[2], key));
    } else if (key == "crash") {
      parse_node_fault(value, key, NodeFaultKind::kCrash, false);
    } else if (key == "die") {
      parse_node_fault(value, key, NodeFaultKind::kCrash, true);
    } else if (key == "hang") {
      parse_node_fault(value, key, NodeFaultKind::kHang, false);
    } else if (key == "stall") {
      parse_node_fault(value, key, NodeFaultKind::kStall, false);
    } else {
      fail("unknown key '" + std::string(key) + "'");
    }
  }
  return plan;
}

}  // namespace fasda::net
