#pragma once
// Deterministic link-fault model for the inter-FPGA fabric (PR 3).
//
// FASDA's links are UDP over a 100 GbE switch (§network, Fig. 18), so a
// production cluster must assume packets can be lost, duplicated, reordered
// or corrupted in flight. A FaultPlan describes, per directed link, the
// probability of each fault plus exact "drop data packet #k on link (i,j)"
// triggers. All randomness flows through util::rng seeded from one 64-bit
// seed mixed with the link endpoints and a per-channel salt, and faults are
// applied inside net::Fabric::commit() — the single-threaded global phase of
// the two-phase scheduler — so a given (plan, workload) reproduces the same
// fault sequence bitwise for any worker count.
//
// LinkStats records both what the fabric injected (drops, dups, reorders,
// corrupts) and what the recovery protocol did about it (retransmits, acks,
// nacks, duplicate discards, CRC failures, retry depth, recovery cycles).
// DegradedLink is the typed give-up event: a sender that exhausts
// max_retries on one packet declares the link dead instead of retrying
// forever, and core::Simulation::run surfaces it as sync::DegradedLinkError
// rather than hanging until the cycle budget trips.

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "fasda/idmap/cell_id_map.hpp"
#include "fasda/sim/kernel.hpp"
#include "fasda/util/rng.hpp"

namespace fasda::net {

using NodeId = idmap::NodeId;
using Link = std::pair<NodeId, NodeId>;  ///< directed (src, dst)

/// Per-link fault probabilities. Rates are per packet in [0, 1]; a dead
/// link drops everything in its direction (the switch port failed).
struct LinkFaults {
  double drop = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  bool dead = false;

  bool any() const {
    return dead || drop > 0.0 || dup > 0.0 || reorder > 0.0 || corrupt > 0.0;
  }
};

/// A seeded description of every fault the fabric should inject. Attaching
/// a FaultPlan (even an all-zero one) arms the ack/retransmit protocol on
/// every endpoint; the all-zero plan is the "protocol on, wire perfect"
/// baseline the golden-figure guard pins packet counts against.
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  LinkFaults all;                       ///< default for every link
  std::map<Link, LinkFaults> per_link;  ///< overrides for specific links
  /// Deterministic triggers: drop the k-th data packet (0-based, counted at
  /// the fabric) on a specific link, regardless of the random rates.
  std::map<Link, std::set<std::uint64_t>> drop_exact;

  const LinkFaults& faults_for(NodeId src, NodeId dst) const {
    const auto it = per_link.find({src, dst});
    return it == per_link.end() ? all : it->second;
  }

  bool link_has_faults(NodeId src, NodeId dst) const {
    return faults_for(src, dst).any() || drop_exact.count({src, dst}) > 0;
  }

  /// Parses the CLI spec used by `--faults`, a comma list of key=value:
  ///   drop=0.05,dup=0.02,reorder=0.02,corrupt=0.01,seed=7,dead=0-1
  /// dead may repeat; dropk=SRC-DST-K adds an exact drop trigger.
  static FaultPlan parse(std::string_view spec);
};

/// Per-link reliability record, folded into the Fig. 18 traffic matrix.
/// The injected_* fields are stamped by the fabric; the protocol fields by
/// the endpoints. merge() lets callers aggregate over links or channels.
struct LinkStats {
  // Fabric side: faults injected on the wire.
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_dups = 0;
  std::uint64_t injected_reorders = 0;
  std::uint64_t injected_corrupts = 0;
  // Endpoint side: what the recovery protocol observed and did.
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t duplicates_discarded = 0;
  std::uint64_t crc_failures = 0;
  int max_retry_depth = 0;
  /// Cycles a link spent recovering: from the first timeout/nack on a
  /// packet until cumulative acks moved past it again.
  sim::Cycle recovery_cycles = 0;

  void merge(const LinkStats& o) {
    injected_drops += o.injected_drops;
    injected_dups += o.injected_dups;
    injected_reorders += o.injected_reorders;
    injected_corrupts += o.injected_corrupts;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    acks_sent += o.acks_sent;
    nacks_sent += o.nacks_sent;
    duplicates_discarded += o.duplicates_discarded;
    crc_failures += o.crc_failures;
    max_retry_depth = max_retry_depth > o.max_retry_depth ? max_retry_depth
                                                          : o.max_retry_depth;
    recovery_cycles += o.recovery_cycles;
  }

  bool faults_seen() const {
    return injected_drops || injected_dups || injected_reorders ||
           injected_corrupts;
  }
};

/// Ack/retransmit protocol knobs for an armed Endpoint.
struct ReliabilityConfig {
  /// Retransmit timeout in cycles; 0 = auto (2·link_latency + 4·cooldown +
  /// 64), sized above the ack round trip so a perfect wire never times out.
  sim::Cycle rto = 0;
  /// Consecutive timeouts on one packet before the link is declared dead.
  int max_retries = 8;
  /// Exponential-backoff cap in cycles; 0 = auto (8·rto).
  sim::Cycle max_backoff = 0;
};

/// Typed give-up event for a link whose packets are never acknowledged.
struct DegradedLink {
  NodeId src = -1;
  NodeId dst = -1;
  std::uint64_t seq = 0;        ///< oldest unacknowledged data packet
  sim::Cycle detected_at = 0;   ///< cycle max_retries was exhausted
  int retries = 0;
};

/// CRC-32 (reflected 0xEDB88320) fed field-by-field so struct padding never
/// enters the digest. Cheap bitwise implementation — the simulator hashes a
/// few dozen bytes per packet, not line-rate traffic.
class Crc32 {
 public:
  void add_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      crc_ ^= p[i];
      for (int b = 0; b < 8; ++b) {
        crc_ = (crc_ >> 1) ^ (0xEDB88320u & (0u - (crc_ & 1u)));
      }
    }
  }

  template <class T>
  void add(const T& v) {
    static_assert(std::is_arithmetic_v<T>, "hash scalar fields only");
    add_bytes(&v, sizeof v);
  }

  std::uint32_t value() const { return ~crc_; }

 private:
  std::uint32_t crc_ = 0xFFFFFFFFu;
};

/// Per-channel salts mixing into link_seed so the position, force and
/// migration fabrics draw independent fault streams from one plan seed.
inline constexpr std::uint64_t kPosChannelSalt = 1;
inline constexpr std::uint64_t kFrcChannelSalt = 2;
inline constexpr std::uint64_t kMigChannelSalt = 3;

/// Deterministic per-link RNG seed: one plan seed fans out to independent
/// streams per (channel, src, dst) so fault sequences never depend on how
/// traffic on other links interleaves.
inline std::uint64_t link_seed(std::uint64_t plan_seed, std::uint64_t salt,
                               NodeId src, NodeId dst) {
  util::SplitMix64 sm(plan_seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
                      (static_cast<std::uint64_t>(src) << 32) ^
                      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  return sm.next();
}

// ---------------------------------------------------------------- parsing

inline FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("FaultPlan: " + why + " in --faults spec '" +
                                std::string(spec) + "'");
  };
  auto parse_link = [&](std::string_view v) -> Link {
    const auto dash = v.find('-');
    if (dash == std::string_view::npos) fail("expected SRC-DST");
    return {static_cast<NodeId>(std::stol(std::string(v.substr(0, dash)))),
            static_cast<NodeId>(std::stol(std::string(v.substr(dash + 1))))};
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) fail("expected key=value");
    const std::string_view key = item.substr(0, eq);
    const std::string value(item.substr(eq + 1));
    try {
      if (key == "drop") plan.all.drop = std::stod(value);
      else if (key == "dup") plan.all.dup = std::stod(value);
      else if (key == "reorder") plan.all.reorder = std::stod(value);
      else if (key == "corrupt") plan.all.corrupt = std::stod(value);
      else if (key == "seed") plan.seed = std::stoull(value);
      else if (key == "dead") {
        const Link link = parse_link(value);
        LinkFaults lf = plan.faults_for(link.first, link.second);
        lf.dead = true;
        plan.per_link[link] = lf;
      } else if (key == "dropk") {
        const auto d2 = value.rfind('-');
        if (d2 == std::string::npos || d2 == 0) fail("dropk expects SRC-DST-K");
        const Link link = parse_link(std::string_view(value).substr(0, d2));
        plan.drop_exact[link].insert(std::stoull(value.substr(d2 + 1)));
      } else {
        fail("unknown key '" + std::string(key) + "'");
      }
    } catch (const std::invalid_argument&) {
      fail("bad value '" + value + "' for key '" + std::string(key) + "'");
    }
  }
  for (double rate : {plan.all.drop, plan.all.dup, plan.all.reorder,
                      plan.all.corrupt}) {
    if (rate < 0.0 || rate > 1.0) fail("rates must be in [0, 1]");
  }
  return plan;
}

}  // namespace fasda::net
