#pragma once
// Inter-FPGA communication (§4.3, Figs. 10-11).
//
// Records are packed four to a 512-bit AXI-Stream packet. Departures are
// paced by a per-board cooldown counter ("we limit the transmission of each
// board to once per several cycles", §5.4) so traffic peaks cannot
// overwhelm the switch. Packets cross a constant-latency link (switch
// time-of-flight) in order per source, and are unpacked at the destination
// one record per cycle ("the data is then serialized and sent to the EX
// node"). A `last` flag rides the final packet of a stream and implements
// the chained-synchronization signals of §4.4.
//
// An Endpoint is one node's attachment to one traffic class (positions and
// forces use separate QSFP ports in the paper; migrations get a third
// logical channel). A Fabric routes packets between the endpoints of one
// traffic class and records the per-pair traffic matrix behind Fig. 18.
//
// Cross-shard contract (parallel scheduler): the Fabric is the ONLY channel
// between FPGA-node shards, and it is two-phase. send() during tick only
// stages the packet in a per-source slot — no other shard's endpoint state
// is touched — and commit() (run single-threaded by the scheduler, the
// Fabric registers as a kGlobalShard clocked element) delivers staged
// packets to destination endpoints in ascending source-id order. Because
// link_latency >= 1 (enforced below), a delivered packet only ever becomes
// pollable in a *later* cycle, so no shard can observe another shard's
// same-cycle traffic — the property that makes parallel ticking bitwise
// identical to serial.

#include <algorithm>
#include <array>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "fasda/idmap/cell_id_map.hpp"
#include "fasda/ring/tokens.hpp"
#include "fasda/sim/kernel.hpp"

namespace fasda::net {

using NodeId = idmap::NodeId;

inline constexpr int kRecordsPerPacket = 4;
inline constexpr int kPacketBits = 512;

/// Remote position record: carries the GCID; the receiver converts to LCID
/// on arrival (§4.2).
struct PosRecord {
  geom::IVec3 src_gcell;
  fixed::FixedVec3 offset;
  md::ElementId elem = 0;
  std::uint16_t slot = 0;
};

/// Remote force record: destination carried as GCID for the same reason.
struct FrcRecord {
  geom::IVec3 dest_gcell;
  geom::Vec3f force;
  std::uint16_t slot = 0;
};

/// Remote migration record (motion-update phase).
struct MigRecord {
  geom::IVec3 dest_gcell;
  fixed::FixedVec3 offset;
  geom::Vec3f vel;
  md::ElementId elem = 0;
  std::uint32_t particle_id = 0;
};

template <class R>
struct Packet {
  std::array<R, kRecordsPerPacket> records{};
  int count = 0;
  bool last = false;
  NodeId src = -1;
  NodeId dst = -1;
};

struct ChannelConfig {
  sim::Cycle link_latency = 200;  ///< cycles; ~1 µs through the switch
  /// Minimum cycles between departures (the §5.4 cooldown counter). 2
  /// caps a port at 51.2 Gbps — still spreading peaks well below the
  /// 100 Gbps line rate while keeping the encapsulators off the critical
  /// path of the strongest-scaling variant.
  int cooldown = 2;
};

/// Per-(src,dst) traffic counts for one channel.
struct TrafficMatrix {
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> packets;
  std::uint64_t total_packets = 0;

  void record(NodeId src, NodeId dst) {
    packets[{src, dst}]++;
    total_packets++;
  }
};

template <class R>
class Endpoint {
 public:
  Endpoint(NodeId self, const ChannelConfig& config)
      : self_(self), config_(config) {}

  NodeId self() const { return self_; }

  // ---- egress ----

  /// Adds a record to the packing buffer for `dst` (a P2R/F2R encapsulator
  /// register set, Fig. 11); a full buffer becomes a ready packet.
  void enqueue(NodeId dst, const R& record) {
    auto& buf = packing_[dst];
    buf.records[buf.count++] = record;
    buf.src = self_;
    buf.dst = dst;
    if (buf.count == kRecordsPerPacket) {
      ready_.push_back(buf);
      buf = Packet<R>{};
    }
  }

  /// Ends the stream towards every peer in `peers`: flushes partial packets
  /// and guarantees each peer receives exactly one packet with last=true
  /// for THIS stream (an empty header-only packet if nothing else is
  /// pending). Packing buffers are released afterwards, so peers a node
  /// stops talking to cost nothing across the rest of the run.
  void flush_last(const std::vector<NodeId>& peers) {
    // Peers whose newest queued packet still needs finding after the flush.
    std::vector<NodeId> untagged;
    for (const NodeId dst : peers) {
      auto it = packing_.find(dst);
      if (it != packing_.end() && it->second.count > 0) {
        it->second.last = true;  // the flushed partial is the stream's end
        ready_.push_back(it->second);
      } else {
        untagged.push_back(dst);
      }
      if (it != packing_.end()) packing_.erase(it);
    }
    // One reverse scan over ready_ (not one per peer) finds each remaining
    // peer's newest queued packet. If that packet already closes an earlier
    // stream — possible when a slow link leaves the previous stream's end
    // undelivered — the peer gets a fresh header-only last packet so every
    // flush_last yields exactly one last event.
    std::vector<NodeId> needs_empty;
    for (auto rit = ready_.rbegin(); rit != ready_.rend() && !untagged.empty();
         ++rit) {
      auto found = std::find(untagged.begin(), untagged.end(), rit->dst);
      if (found == untagged.end()) continue;
      untagged.erase(found);
      if (!rit->last) rit->last = true;
      else needs_empty.push_back(rit->dst);
    }
    // Peers with nothing queued (and peers whose newest packet was already a
    // stream end) get the empty header-only last packet.
    untagged.insert(untagged.end(), needs_empty.begin(), needs_empty.end());
    for (const NodeId dst : untagged) {
      Packet<R> p;
      p.src = self_;
      p.dst = dst;
      p.last = true;
      ready_.push_back(p);
    }
  }

  /// Sends at most one packet when the cooldown allows; `send` is the
  /// fabric's delivery hook.
  void tick_egress(sim::Cycle now,
                   const std::function<void(const Packet<R>&)>& send) {
    if (ready_.empty() || now < next_departure_) return;
    send(ready_.front());
    ready_.pop_front();
    next_departure_ = now + static_cast<sim::Cycle>(config_.cooldown);
  }

  bool egress_pending() const {
    if (!ready_.empty()) return true;
    for (const auto& [dst, buf] : packing_) {
      if (buf.count > 0) return true;
    }
    return false;
  }

  /// Packing buffers (encapsulator register sets) currently allocated;
  /// flush_last releases a stream's buffers, so this tracks only the peers
  /// with an open stream.
  std::size_t packing_buffer_count() const { return packing_.size(); }

  // ---- ingress ----

  void deliver(const Packet<R>& p, sim::Cycle arrival) {
    arrivals_.emplace(arrival, p);
  }

  /// Serializes one record per cycle out of arrived packets. `last` events
  /// surface via take_last_events() when their packet is opened.
  std::optional<R> poll_record(sim::Cycle now) {
    if (unpack_.empty()) open_next_packet(now);
    if (unpack_.empty()) return std::nullopt;
    R r = unpack_.front();
    unpack_.pop_front();
    return r;
  }

  std::vector<NodeId> take_last_events() {
    return std::exchange(last_events_, {});
  }

  /// Work still queued on the receive side (arrived or in flight).
  bool ingress_pending() const { return !unpack_.empty() || !arrivals_.empty(); }

 private:
  void open_next_packet(sim::Cycle now) {
    while (!arrivals_.empty() && arrivals_.begin()->first <= now) {
      const Packet<R> p = arrivals_.begin()->second;
      arrivals_.erase(arrivals_.begin());
      for (int i = 0; i < p.count; ++i) unpack_.push_back(p.records[i]);
      if (p.last) last_events_.push_back(p.src);
      if (!unpack_.empty()) return;  // empty last-only packets keep draining
    }
  }

  NodeId self_;
  ChannelConfig config_;
  std::map<NodeId, Packet<R>> packing_;
  std::deque<Packet<R>> ready_;
  sim::Cycle next_departure_ = 0;
  std::multimap<sim::Cycle, Packet<R>> arrivals_;
  std::deque<R> unpack_;
  std::vector<NodeId> last_events_;
};

template <class R>
class Fabric : public sim::Clocked {
 public:
  explicit Fabric(const ChannelConfig& config) : config_(config) {
    if (config_.link_latency < 1) {
      // A zero-latency link would let a receiver observe same-cycle sends,
      // making results depend on component tick order (serial or parallel).
      throw std::invalid_argument("Fabric: link_latency must be >= 1");
    }
  }

  void attach(Endpoint<R>* endpoint) {
    if (static_cast<std::size_t>(endpoint->self()) >= endpoints_.size()) {
      endpoints_.resize(endpoint->self() + 1, nullptr);
    }
    endpoints_[endpoint->self()] = endpoint;
    if (staged_.size() < endpoints_.size()) staged_.resize(endpoints_.size());
  }

  /// The egress `send` hook: stages the packet in the sender's own slot.
  /// Safe to call concurrently from different source shards; two packets
  /// from the same source are staged in send order.
  void send(const Packet<R>& p, sim::Cycle now) {
    staged_.at(p.src).push_back(Staged{p, now + config_.link_latency});
  }

  /// Applies the cycle's staged sends: stamps the traffic matrix and
  /// schedules the in-order arrival at each destination. Single-threaded;
  /// ascending source order matches what serial in-id-order ticking did.
  void commit() override {
    for (auto& q : staged_) {
      for (Staged& s : q) {
        traffic_.record(s.packet.src, s.packet.dst);
        endpoints_.at(s.packet.dst)->deliver(s.packet, s.arrival);
      }
      q.clear();
    }
  }

  const TrafficMatrix& traffic() const { return traffic_; }
  const ChannelConfig& config() const { return config_; }

 private:
  struct Staged {
    Packet<R> packet;
    sim::Cycle arrival;
  };

  ChannelConfig config_;
  std::vector<Endpoint<R>*> endpoints_;
  std::vector<std::vector<Staged>> staged_;  // one slot per source node
  TrafficMatrix traffic_;
};

}  // namespace fasda::net
