#pragma once
// Inter-FPGA communication (§4.3, Figs. 10-11).
//
// Records are packed four to a 512-bit AXI-Stream packet. Departures are
// paced by a per-board cooldown counter ("we limit the transmission of each
// board to once per several cycles", §5.4) so traffic peaks cannot
// overwhelm the switch. Packets cross a constant-latency link (switch
// time-of-flight) in order per source, and are unpacked at the destination
// one record per cycle ("the data is then serialized and sent to the EX
// node"). A `last` flag rides the final packet of a stream and implements
// the chained-synchronization signals of §4.4.
//
// An Endpoint is one node's attachment to one traffic class (positions and
// forces use separate QSFP ports in the paper; migrations get a third
// logical channel). A Fabric routes packets between the endpoints of one
// traffic class and records the per-pair traffic matrix behind Fig. 18.
//
// Reliability (PR 3): the physical links are UDP over a 100 GbE switch, so
// packets can be lost, duplicated, reordered or corrupted. An Endpoint that
// has been armed via arm_reliability() stamps every data packet with a
// per-link sequence number and a field-wise CRC-32, acknowledges received
// data with out-of-band control packets (cumulative ack + optional nack),
// buffers unacknowledged packets for retransmission with a bounded
// exponential backoff, and declares the link degraded after max_retries.
// All endpoints of a fabric must be armed together: Fabric::set_fault_plan
// makes the wire lossy, and only armed endpoints recover. An *unarmed*
// endpoint behaves bit-for-bit as before this layer existed; an armed
// endpoint on a perfect wire keeps identical data-packet timing (acks are
// out-of-band and counted separately), which the golden-figure guard pins.
//
// Cross-shard contract (parallel scheduler): the Fabric is the ONLY channel
// between FPGA-node shards, and it is two-phase. send() during tick only
// stages the packet in a per-source slot — no other shard's endpoint state
// is touched — and commit() (run single-threaded by the scheduler, the
// Fabric registers as a kGlobalShard clocked element) delivers staged
// packets to destination endpoints in ascending source-id order. Because
// link_latency >= 1 (enforced below), a delivered packet only ever becomes
// pollable in a *later* cycle, so no shard can observe another shard's
// same-cycle traffic — the property that makes parallel ticking bitwise
// identical to serial. Fault injection happens inside commit(), drawing
// from per-link RNG streams, so a FaultPlan produces the same fault
// sequence for any worker count.

#include <algorithm>
#include <array>
#include <bit>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fasda/idmap/cell_id_map.hpp"
#include "fasda/net/fault.hpp"
#include "fasda/ring/tokens.hpp"
#include "fasda/sim/kernel.hpp"

namespace fasda::net {

inline constexpr int kRecordsPerPacket = 4;
inline constexpr int kPacketBits = 512;

/// Remote position record: carries the GCID; the receiver converts to LCID
/// on arrival (§4.2).
struct PosRecord {
  geom::IVec3 src_gcell;
  fixed::FixedVec3 offset;
  md::ElementId elem = 0;
  std::uint16_t slot = 0;
};

/// Remote force record: destination carried as GCID for the same reason.
struct FrcRecord {
  geom::IVec3 dest_gcell;
  geom::Vec3f force;
  std::uint16_t slot = 0;
};

/// Remote migration record (motion-update phase).
struct MigRecord {
  geom::IVec3 dest_gcell;
  fixed::FixedVec3 offset;
  geom::Vec3f vel;
  md::ElementId elem = 0;
  std::uint32_t particle_id = 0;
};

// CRC input is fed field by field so struct padding bytes never enter the
// digest (byte-hashing the whole struct would be indeterminate).

inline void hash_record(Crc32& crc, const PosRecord& r) {
  crc.add(r.src_gcell.x);
  crc.add(r.src_gcell.y);
  crc.add(r.src_gcell.z);
  crc.add(r.offset.x.raw());
  crc.add(r.offset.y.raw());
  crc.add(r.offset.z.raw());
  crc.add(r.elem);
  crc.add(r.slot);
}

inline void hash_record(Crc32& crc, const FrcRecord& r) {
  crc.add(r.dest_gcell.x);
  crc.add(r.dest_gcell.y);
  crc.add(r.dest_gcell.z);
  crc.add(r.force.x);
  crc.add(r.force.y);
  crc.add(r.force.z);
  crc.add(r.slot);
}

inline void hash_record(Crc32& crc, const MigRecord& r) {
  crc.add(r.dest_gcell.x);
  crc.add(r.dest_gcell.y);
  crc.add(r.dest_gcell.z);
  crc.add(r.offset.x.raw());
  crc.add(r.offset.y.raw());
  crc.add(r.offset.z.raw());
  crc.add(r.vel.x);
  crc.add(r.vel.y);
  crc.add(r.vel.z);
  crc.add(r.elem);
  crc.add(r.particle_id);
}

// Bit-flip corruption targets a real payload field (never padding), so a
// corrupted packet always fails its CRC check at the receiver.

inline void corrupt_record(PosRecord& r, std::uint64_t rnd) {
  r.offset.x = fixed::FixedCoord::from_raw(
      r.offset.x.raw() ^ (1u << (rnd % 32)));
}

inline void corrupt_record(FrcRecord& r, std::uint64_t rnd) {
  r.force.x = std::bit_cast<float>(
      std::bit_cast<std::uint32_t>(r.force.x) ^ (1u << (rnd % 32)));
}

inline void corrupt_record(MigRecord& r, std::uint64_t rnd) {
  r.vel.x = std::bit_cast<float>(
      std::bit_cast<std::uint32_t>(r.vel.x) ^ (1u << (rnd % 32)));
}

enum class PacketKind : std::uint8_t {
  kData,     ///< sequenced payload, subject to ack/retransmit when armed
  kControl,  ///< out-of-band cumulative ack / nack, never retransmitted
};

template <class R>
struct Packet {
  std::array<R, kRecordsPerPacket> records{};
  int count = 0;
  bool last = false;
  NodeId src = -1;
  NodeId dst = -1;
  // Reliability header, stamped only by armed endpoints.
  PacketKind kind = PacketKind::kData;
  std::uint64_t seq = 0;   ///< data: per-(src,dst) sequence number
  std::uint64_t ack = 0;   ///< control: cumulative — every seq < ack received
  std::uint64_t nack = 0;  ///< control: first missing seq (valid iff has_nack)
  bool has_nack = false;
  bool retransmit = false;  ///< diagnostic: data resent after timeout/nack
  std::uint32_t crc = 0;
};

/// Field-wise CRC over header and payload. `retransmit` is deliberately
/// excluded: a retransmitted copy must verify against the original digest.
template <class R>
std::uint32_t packet_crc(const Packet<R>& p) {
  Crc32 crc;
  crc.add(static_cast<std::uint8_t>(p.kind));
  crc.add(p.seq);
  crc.add(p.ack);
  crc.add(p.nack);
  crc.add(static_cast<std::uint8_t>(p.has_nack));
  crc.add(p.count);
  crc.add(static_cast<std::uint8_t>(p.last));
  crc.add(p.src);
  crc.add(p.dst);
  for (int i = 0; i < p.count; ++i) hash_record(crc, p.records[i]);
  return crc.value();
}

/// Flips one payload bit; a header-only packet has its stream-end flag
/// flipped instead. Either way the receiver's CRC check catches it.
template <class R>
void corrupt_packet(Packet<R>& p, std::uint64_t rnd) {
  if (p.count > 0) {
    corrupt_record(p.records[rnd % static_cast<std::uint64_t>(p.count)],
                   rnd / 13);
  } else {
    p.last = !p.last;
  }
}

struct ChannelConfig {
  sim::Cycle link_latency = 200;  ///< cycles; ~1 µs through the switch
  /// Minimum cycles between departures (the §5.4 cooldown counter). 2
  /// caps a port at 51.2 Gbps — still spreading peaks well below the
  /// 100 Gbps line rate while keeping the encapsulators off the critical
  /// path of the strongest-scaling variant.
  int cooldown = 2;
};

/// Per-(src,dst) traffic counts for one channel.
struct TrafficMatrix {
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> packets;
  std::uint64_t total_packets = 0;
  /// Reliability traffic, counted separately so the Fig. 18 data numbers
  /// stay comparable whether or not the protocol is armed: acks/nacks land
  /// in control_packets only, while retransmitted data counts in both
  /// packets and retransmit_packets (it is real switch load).
  std::uint64_t control_packets = 0;
  std::uint64_t retransmit_packets = 0;

  void record(NodeId src, NodeId dst) {
    packets[{src, dst}]++;
    total_packets++;
  }

  /// Folds another matrix in (shard-transport fold: each worker process
  /// counts the rows its own nodes sourced, so the per-link sets are
  /// disjoint and addition reproduces the in-process matrix exactly).
  void merge(const TrafficMatrix& o) {
    for (const auto& [link, n] : o.packets) packets[link] += n;
    total_packets += o.total_packets;
    control_packets += o.control_packets;
    retransmit_packets += o.retransmit_packets;
  }
};

template <class R>
class Endpoint {
 public:
  Endpoint(NodeId self, const ChannelConfig& config)
      : self_(self), config_(config) {}

  NodeId self() const { return self_; }

  /// Turns on sequence numbers, CRC stamping and the ack/retransmit
  /// protocol. Must be called on every endpoint of a fabric (arming is
  /// all-or-nothing per channel) before any traffic flows. An armed
  /// endpoint additionally needs tick_protocol() pumped every cycle.
  void arm_reliability(const ReliabilityConfig& rc = {}) {
    armed_ = true;
    rel_ = rc;
    if (rel_.rto == 0) {
      rel_.rto = 2 * config_.link_latency +
                 4 * static_cast<sim::Cycle>(config_.cooldown) + 64;
    }
    if (rel_.max_backoff == 0) rel_.max_backoff = 8 * rel_.rto;
  }

  bool reliable() const { return armed_; }

  // ---- egress ----

  /// Adds a record to the packing buffer for `dst` (a P2R/F2R encapsulator
  /// register set, Fig. 11); a full buffer becomes a ready packet.
  void enqueue(NodeId dst, const R& record) {
    auto& buf = packing_[dst];
    buf.records[buf.count++] = record;
    buf.src = self_;
    buf.dst = dst;
    if (buf.count == kRecordsPerPacket) {
      push_ready(buf);
      buf = Packet<R>{};
    }
  }

  /// Ends the stream towards every peer in `peers`: flushes partial packets
  /// and guarantees each peer receives exactly one packet with last=true
  /// for THIS stream (an empty header-only packet if nothing else is
  /// pending). Packing buffers are released afterwards, so peers a node
  /// stops talking to cost nothing across the rest of the run. A peer that
  /// saw no traffic at all this stream still gets its boundary packet —
  /// idle traffic classes participate in flush bookkeeping like any other.
  void flush_last(const std::vector<NodeId>& peers) {
    // Peers whose newest queued packet still needs finding after the flush.
    std::vector<NodeId> untagged;
    for (const NodeId dst : peers) {
      auto it = packing_.find(dst);
      if (it != packing_.end() && it->second.count > 0) {
        it->second.last = true;  // the flushed partial is the stream's end
        push_ready(it->second);
      } else {
        untagged.push_back(dst);
      }
      if (it != packing_.end()) packing_.erase(it);
    }
    // One reverse scan over ready_ (not one per peer) finds each remaining
    // peer's newest queued packet. If that packet already closes an earlier
    // stream — possible when a slow link leaves the previous stream's end
    // undelivered — the peer gets a fresh header-only last packet so every
    // flush_last yields exactly one last event.
    std::vector<NodeId> needs_empty;
    for (auto rit = ready_.rbegin(); rit != ready_.rend() && !untagged.empty();
         ++rit) {
      auto found = std::find(untagged.begin(), untagged.end(), rit->dst);
      if (found == untagged.end()) continue;
      untagged.erase(found);
      if (!rit->last) rit->last = true;
      else needs_empty.push_back(rit->dst);
    }
    // Peers with nothing queued (and peers whose newest packet was already a
    // stream end) get the empty header-only last packet.
    untagged.insert(untagged.end(), needs_empty.begin(), needs_empty.end());
    for (const NodeId dst : untagged) {
      Packet<R> p;
      p.src = self_;
      p.dst = dst;
      p.last = true;
      push_ready(p);
    }
  }

  /// Sends at most one data packet when the cooldown allows — pending
  /// retransmits take priority over new data. Armed endpoints also flush
  /// any due control packets, which bypass the cooldown (acks ride a
  /// dedicated sideband, not the data encapsulators). `send` is the
  /// fabric's delivery hook.
  void tick_egress(sim::Cycle now,
                   const std::function<void(const Packet<R>&)>& send) {
    if (armed_) flush_control(send);
    if (now < next_departure_) return;
    if (armed_ && !retx_q_.empty()) {
      send(retx_q_.front());
      retx_q_.pop_front();
      next_departure_ = now + static_cast<sim::Cycle>(config_.cooldown);
      return;
    }
    if (ready_.empty()) return;
    if (armed_) {
      Packet<R>& p = ready_.front();
      p.crc = packet_crc(p);  // after flush_last may have tagged `last`
      TxLink& tx = tx_[p.dst];
      if (tx.unacked.empty()) tx.deadline = now + rel_.rto;
      tx.unacked.push_back(p);
    }
    send(ready_.front());
    ready_.pop_front();
    next_departure_ = now + static_cast<sim::Cycle>(config_.cooldown);
  }

  /// Armed-mode per-cycle pump, independent of the owner's FSM phase:
  /// classifies arrivals (data → in-order accept queue, control → ack
  /// bookkeeping), fires retransmit timeouts, and emits due control
  /// packets. Unarmed endpoints ignore it.
  void tick_protocol(sim::Cycle now,
                     const std::function<void(const Packet<R>&)>& send) {
    if (!armed_) return;
    process_arrivals_armed(now);
    check_timeouts(now);
    flush_control(send);
  }

  bool egress_pending() const {
    if (!ready_.empty() || !retx_q_.empty()) return true;
    for (const auto& [dst, buf] : packing_) {
      if (buf.count > 0) return true;
    }
    return false;
  }

  /// Packing buffers (encapsulator register sets) currently allocated;
  /// flush_last releases a stream's buffers, so this tracks only the peers
  /// with an open stream.
  std::size_t packing_buffer_count() const { return packing_.size(); }

  // ---- ingress ----

  void deliver(const Packet<R>& p, sim::Cycle arrival) {
    arrivals_.emplace(arrival, p);
    if (wake_hook_) wake_hook_(arrival);
  }

  /// Elision poke (DESIGN.md §13): called on every delivery with the
  /// arrival cycle, so a scheduler that put the owning node's whole shard
  /// to sleep learns that new input is coming. Fabric commits run on the
  /// driving thread, which makes the hook race-free by construction.
  void set_wake_hook(std::function<void(sim::Cycle)> hook) {
    wake_hook_ = std::move(hook);
  }

  /// Serializes one record per cycle out of arrived packets. `last` events
  /// surface via take_last_events() when their packet is opened. Armed
  /// endpoints read protocol-accepted packets (tick_protocol must run);
  /// unarmed endpoints read raw arrivals directly.
  std::optional<R> poll_record(sim::Cycle now) {
    if (unpack_.empty()) open_next_packet(now);
    if (unpack_.empty()) return std::nullopt;
    R r = unpack_.front();
    unpack_.pop_front();
    return r;
  }

  std::vector<NodeId> take_last_events() {
    return std::exchange(last_events_, {});
  }

  /// Work still queued on the receive side (arrived, accepted, or parked
  /// out-of-order awaiting a retransmit).
  bool ingress_pending() const {
    if (!unpack_.empty() || !arrivals_.empty() || !accept_q_.empty()) {
      return true;
    }
    for (const auto& [src, rx] : rx_) {
      if (!rx.ooo.empty()) return true;
    }
    return false;
  }

  // ---- elision wake oracle (DESIGN.md §13) ----
  // Earliest cycle >= now at which the corresponding tick_* entry point
  // could change state, judged from committed state. Conservative-early is
  // safe; late is a correctness bug (the differential harness would catch
  // it as a bitwise divergence).

  /// tick_protocol: next in-flight arrival, due/overdue retransmit timeout,
  /// or a pending control emission. kNeverCycle when unarmed (the pump is a
  /// no-op then).
  sim::Cycle protocol_wake(sim::Cycle now) const {
    if (!armed_) return sim::kNeverCycle;
    sim::Cycle wake = sim::kNeverCycle;
    if (!arrivals_.empty()) {
      wake = std::min(wake, std::max(arrivals_.begin()->first, now));
    }
    for (const auto& [dst, tx] : tx_) {
      if (tx.degraded || tx.unacked.empty()) continue;
      wake = std::min(wake, std::max(tx.deadline, now));
    }
    for (const auto& [src, rx] : rx_) {
      if (rx.ack_due || rx.nack_due) return now;
    }
    return wake;
  }

  /// tick_egress: due control packets, or a queued data/retransmit packet
  /// once the cooldown expires.
  sim::Cycle egress_wake(sim::Cycle now) const {
    if (armed_) {
      for (const auto& [src, rx] : rx_) {
        if (rx.ack_due || rx.nack_due) return now;
      }
    }
    if (!retx_q_.empty() || !ready_.empty()) {
      return std::max(now, next_departure_);
    }
    return sim::kNeverCycle;
  }

  /// poll_record/take_last_events: records mid-unpack, unconsumed last
  /// events, accepted (armed) or arrived/arriving (unarmed) packets.
  sim::Cycle ingress_wake(sim::Cycle now) const {
    if (!unpack_.empty() || !last_events_.empty()) return now;
    if (armed_) return accept_q_.empty() ? sim::kNeverCycle : now;
    if (!arrivals_.empty()) return std::max(arrivals_.begin()->first, now);
    return sim::kNeverCycle;
  }

  // ---- reliability introspection ----

  /// Protocol counters, keyed by directed link: {self,dst} carries the tx
  /// side (retransmits, timeouts, retry depth, recovery cycles), {src,self}
  /// the rx side (acks/nacks sent, duplicates discarded, CRC failures).
  const std::map<Link, LinkStats>& link_stats() const { return stats_; }

  bool degraded() const { return !degraded_.empty(); }
  const std::vector<DegradedLink>& degraded_links() const { return degraded_; }

 private:
  struct TxLink {
    std::uint64_t next_seq = 0;     ///< assigned when a packet is staged
    std::uint64_t base = 0;         ///< oldest unacknowledged seq
    std::deque<Packet<R>> unacked;  ///< sent, awaiting cumulative ack
    sim::Cycle deadline = 0;        ///< next retransmit timeout
    int retries = 0;                ///< consecutive timeouts on `base`
    bool degraded = false;
    bool recovering = false;
    sim::Cycle recovery_start = 0;
  };

  struct RxLink {
    std::uint64_t expected = 0;            ///< next in-order seq
    std::map<std::uint64_t, Packet<R>> ooo;  ///< parked out-of-order packets
    bool ack_due = false;
    bool nack_due = false;
  };

  void push_ready(const Packet<R>& p) {
    ready_.push_back(p);
    if (armed_) {
      Packet<R>& q = ready_.back();
      q.kind = PacketKind::kData;
      q.seq = tx_[q.dst].next_seq++;
    }
  }

  void process_arrivals_armed(sim::Cycle now) {
    while (!arrivals_.empty() && arrivals_.begin()->first <= now) {
      const Packet<R> p = arrivals_.begin()->second;
      arrivals_.erase(arrivals_.begin());
      if (p.kind == PacketKind::kControl) handle_control(p, now);
      else handle_data(p);
    }
  }

  void handle_control(const Packet<R>& p, sim::Cycle now) {
    if (packet_crc(p) != p.crc) {
      ++stats_[{p.src, self_}].crc_failures;
      return;  // the sender's own timeout recovers a lost/garbled ack
    }
    TxLink& tx = tx_[p.src];  // acks our data on the self→p.src link
    LinkStats& st = stats_[{self_, p.src}];
    bool advanced = false;
    while (tx.base < p.ack && !tx.unacked.empty()) {
      tx.unacked.pop_front();
      ++tx.base;
      advanced = true;
    }
    if (advanced) {
      tx.retries = 0;
      tx.deadline = now + rel_.rto;
      if (tx.recovering) {
        st.recovery_cycles += now - tx.recovery_start;
        tx.recovering = false;
      }
    }
    if (p.has_nack && p.nack == tx.base && !tx.unacked.empty() &&
        !tx.degraded) {
      queue_retransmit(tx, st, now);
    }
  }

  void handle_data(const Packet<R>& p) {
    RxLink& rx = rx_[p.src];
    LinkStats& st = stats_[{p.src, self_}];
    if (packet_crc(p) != p.crc) {
      ++st.crc_failures;
      rx.ack_due = rx.nack_due = true;  // seq untrusted: nack `expected`
      return;
    }
    if (p.seq < rx.expected) {
      ++st.duplicates_discarded;
      rx.ack_due = true;  // re-ack so the sender stops resending
      return;
    }
    if (p.seq > rx.expected) {
      if (!rx.ooo.emplace(p.seq, p).second) ++st.duplicates_discarded;
      rx.ack_due = rx.nack_due = true;
      return;
    }
    accept_q_.push_back(p);
    ++rx.expected;
    for (auto it = rx.ooo.find(rx.expected); it != rx.ooo.end();
         it = rx.ooo.find(rx.expected)) {
      accept_q_.push_back(it->second);
      rx.ooo.erase(it);
      ++rx.expected;
    }
    rx.ack_due = true;
  }

  void check_timeouts(sim::Cycle now) {
    for (auto& [dst, tx] : tx_) {
      if (tx.degraded || tx.unacked.empty() || now < tx.deadline) continue;
      LinkStats& st = stats_[{self_, dst}];
      ++st.timeouts;
      ++tx.retries;
      if (tx.retries > st.max_retry_depth) st.max_retry_depth = tx.retries;
      if (tx.retries > rel_.max_retries) {
        tx.degraded = true;
        degraded_.push_back(
            DegradedLink{self_, dst, tx.base, now, tx.retries - 1});
        continue;
      }
      queue_retransmit(tx, st, now);
      const int shift = tx.retries < 16 ? tx.retries : 16;
      sim::Cycle backoff = rel_.rto << shift;
      if (backoff > rel_.max_backoff) backoff = rel_.max_backoff;
      tx.deadline = now + backoff;
    }
  }

  void queue_retransmit(TxLink& tx, LinkStats& st, sim::Cycle now) {
    Packet<R> rp = tx.unacked.front();
    rp.retransmit = true;
    retx_q_.push_back(rp);
    ++st.retransmits;
    if (!tx.recovering) {
      tx.recovering = true;
      tx.recovery_start = now;
    }
  }

  void flush_control(const std::function<void(const Packet<R>&)>& send) {
    for (auto& [src, rx] : rx_) {
      if (!rx.ack_due && !rx.nack_due) continue;
      Packet<R> c;
      c.kind = PacketKind::kControl;
      c.src = self_;
      c.dst = src;
      c.ack = rx.expected;
      if (rx.nack_due) {
        c.has_nack = true;
        c.nack = rx.expected;
      }
      c.crc = packet_crc(c);
      LinkStats& st = stats_[{src, self_}];
      ++st.acks_sent;
      if (rx.nack_due) ++st.nacks_sent;
      rx.ack_due = rx.nack_due = false;
      send(c);
    }
  }

  void open_next_packet(sim::Cycle now) {
    if (armed_) {
      // Arrivals were already filtered into seq order by tick_protocol.
      while (!accept_q_.empty()) {
        const Packet<R> p = accept_q_.front();
        accept_q_.pop_front();
        for (int i = 0; i < p.count; ++i) unpack_.push_back(p.records[i]);
        if (p.last) last_events_.push_back(p.src);
        if (!unpack_.empty()) return;  // empty last-only packets keep draining
      }
      return;
    }
    while (!arrivals_.empty() && arrivals_.begin()->first <= now) {
      const Packet<R> p = arrivals_.begin()->second;
      arrivals_.erase(arrivals_.begin());
      for (int i = 0; i < p.count; ++i) unpack_.push_back(p.records[i]);
      if (p.last) last_events_.push_back(p.src);
      if (!unpack_.empty()) return;  // empty last-only packets keep draining
    }
  }

  NodeId self_;
  ChannelConfig config_;
  std::map<NodeId, Packet<R>> packing_;
  std::deque<Packet<R>> ready_;
  sim::Cycle next_departure_ = 0;
  std::multimap<sim::Cycle, Packet<R>> arrivals_;
  std::deque<R> unpack_;
  std::vector<NodeId> last_events_;
  std::function<void(sim::Cycle)> wake_hook_;

  // Reliability state (armed mode only).
  bool armed_ = false;
  ReliabilityConfig rel_;
  std::map<NodeId, TxLink> tx_;
  std::map<NodeId, RxLink> rx_;
  std::deque<Packet<R>> retx_q_;   ///< retransmit copies, sent before new data
  std::deque<Packet<R>> accept_q_;  ///< CRC-checked, in-seq-order packets
  std::map<Link, LinkStats> stats_;
  std::vector<DegradedLink> degraded_;
};

template <class R>
class Fabric : public sim::Clocked {
 public:
  explicit Fabric(const ChannelConfig& config) : config_(config) {
    if (config_.link_latency < 1) {
      // A zero-latency link would let a receiver observe same-cycle sends,
      // making results depend on component tick order (serial or parallel).
      throw std::invalid_argument("Fabric: link_latency must be >= 1");
    }
  }

  void attach(Endpoint<R>* endpoint) {
    if (static_cast<std::size_t>(endpoint->self()) >= endpoints_.size()) {
      endpoints_.resize(endpoint->self() + 1, nullptr);
    }
    endpoints_[endpoint->self()] = endpoint;
    if (staged_.size() < endpoints_.size()) staged_.resize(endpoints_.size());
  }

  /// Makes the wire lossy per `plan`. Every endpoint must be armed (only
  /// armed endpoints detect and recover losses). `channel_salt`
  /// distinguishes the pos/frc/mig channels so each draws independent
  /// per-link fault streams from one plan seed.
  void set_fault_plan(const FaultPlan& plan, std::uint64_t channel_salt) {
    plan_ = plan;
    salt_ = channel_salt;
  }

  const std::optional<FaultPlan>& fault_plan() const { return plan_; }

  /// Attaches telemetry (null detaches): live per-packet counters
  /// attributed to the source node, plus instant trace events for injected
  /// faults and retransmitted data packets. Counters and events are emitted
  /// from commit() — single-threaded, ascending source order — so they are
  /// worker-count independent. Call after every endpoint is attached.
  void set_obs(obs::Hub* hub, obs::Comp comp, std::string_view channel) {
    obs_ = hub;
    comp_ = comp;
    if (hub == nullptr) return;
    auto& m = hub->metrics();
    const std::string base = "net." + std::string(channel);
    h_packets_ = m.counter(base + ".packets");
    h_control_ = m.counter(base + ".control_packets");
    h_retransmits_ = m.counter(base + ".retransmit_packets");
    h_fault_drop_ = m.counter(base + ".faults.drop");
    h_fault_dup_ = m.counter(base + ".faults.dup");
    h_fault_reorder_ = m.counter(base + ".faults.reorder");
    h_fault_corrupt_ = m.counter(base + ".faults.corrupt");
    to_handles_.clear();
    for (std::size_t dst = 0; dst < endpoints_.size(); ++dst) {
      to_handles_.push_back(m.counter(base + ".to." + std::to_string(dst)));
    }
  }

  /// The egress `send` hook: stages the packet in the sender's own slot.
  /// Safe to call concurrently from different source shards; two packets
  /// from the same source are staged in send order.
  void send(const Packet<R>& p, sim::Cycle now) {
    staged_.at(p.src).push_back(Staged{p, now + config_.link_latency});
  }

  /// Shard-transport uplink (DESIGN.md §14). When set, commit() hands every
  /// delivery — including fault-mutated copies and duplicates — to the sink
  /// instead of the local destination endpoint; traffic counting and fault
  /// injection still run here, on the source-owning side, so the per-link
  /// fault streams and counters keep their worker-count-independent
  /// positions. The parent routes each delivery to the worker process that
  /// owns the destination node, which applies it via deliver_remote().
  using Uplink = std::function<void(const Packet<R>&, sim::Cycle)>;
  void set_uplink(Uplink sink) { uplink_ = std::move(sink); }

  /// Applies a routed delivery on the destination-owning side: lands in the
  /// endpoint's arrival queue exactly as a local commit() delivery would,
  /// wake hook included.
  void deliver_remote(const Packet<R>& p, sim::Cycle arrival) {
    endpoints_.at(p.dst)->deliver(p, arrival);
  }

  /// Applies the cycle's staged sends: stamps the traffic matrix and
  /// schedules the in-order arrival at each destination. Single-threaded;
  /// ascending source order matches what serial in-id-order ticking did —
  /// and gives every fault draw a worker-count-independent position in its
  /// per-link stream.
  void commit() override {
    for (auto& q : staged_) {
      for (Staged& s : q) {
        // Everything staged this cycle was sent this cycle; reorder delay is
        // added after this point, so the send stamp is exact.
        const sim::Cycle sent = s.arrival - config_.link_latency;
        count_traffic(s.packet, sent);
        if (plan_) {
          apply_faults(s, sent);
        } else {
          emit(s.packet, s.arrival);
        }
      }
      q.clear();
    }
  }

  const TrafficMatrix& traffic() const { return traffic_; }
  const ChannelConfig& config() const { return config_; }

  /// Faults injected so far, per directed link (empty without a plan).
  const std::map<Link, LinkStats>& fault_stats() const { return fault_stats_; }

 private:
  struct Staged {
    Packet<R> packet;
    sim::Cycle arrival;
  };

  /// Per-link injection state: an independent RNG stream plus the data
  /// packet index that drop_exact triggers count against.
  struct FaultState {
    util::Xoshiro256 rng{0};
    std::uint64_t data_seen = 0;
  };

  void count_traffic(const Packet<R>& p, sim::Cycle sent) {
    if (p.kind == PacketKind::kControl) {
      ++traffic_.control_packets;
      if (obs_ != nullptr) obs_->metrics().add(p.src, h_control_);
      return;
    }
    traffic_.record(p.src, p.dst);
    if (p.retransmit) ++traffic_.retransmit_packets;
    if (obs_ != nullptr) {
      auto& m = obs_->metrics();
      m.add(p.src, h_packets_);
      m.add(p.src, to_handles_[static_cast<std::size_t>(p.dst)]);
      if (p.retransmit) {
        m.add(p.src, h_retransmits_);
        obs_->trace().instant(obs::kClusterShard, p.src, comp_, "retransmit",
                              sent, "dst", p.dst);
      }
    }
  }

  void fault_event(const char* name, obs::Handle h, NodeId src, NodeId dst,
                   sim::Cycle sent) {
    if (obs_ == nullptr) return;
    obs_->metrics().add(src, h);
    obs_->trace().instant(obs::kClusterShard, src, comp_, name, sent, "dst",
                          dst);
  }

  void apply_faults(Staged& s, sim::Cycle sent) {
    const NodeId src = s.packet.src;
    const NodeId dst = s.packet.dst;
    // A crashed node's switch port is down: everything addressed to it
    // disappears at the fabric from the crash cycle on. (Nothing departs a
    // crashed node — it no longer ticks — so only the destination side
    // needs checking; a hang or stall leaves the NIC up and packets queue
    // in the endpoint instead.)
    if (plan_->has_node_faults()) {
      const auto down = plan_->node_links_down_at(dst);
      if (down && s.arrival >= *down) {
        ++fault_stats_[{src, dst}].injected_drops;
        fault_event("port-down-drop", h_fault_drop_, src, dst, sent);
        return;
      }
    }
    const LinkFaults& lf = plan_->faults_for(src, dst);
    const auto exact_it = plan_->drop_exact.find({src, dst});
    const bool has_exact = exact_it != plan_->drop_exact.end();
    if (!lf.any() && !has_exact) {
      emit(s.packet, s.arrival);
      return;
    }
    LinkStats& st = fault_stats_[{src, dst}];
    if (lf.dead) {
      ++st.injected_drops;
      fault_event("dead-link-drop", h_fault_drop_, src, dst, sent);
      return;
    }
    FaultState& fs = fault_state(src, dst);
    bool drop = false;
    if (s.packet.kind == PacketKind::kData) {
      if (has_exact && exact_it->second.count(fs.data_seen) > 0) drop = true;
      ++fs.data_seen;
    }
    if (lf.drop > 0 && fs.rng.uniform() < lf.drop) drop = true;
    if (drop) {
      ++st.injected_drops;
      fault_event("drop", h_fault_drop_, src, dst, sent);
      return;
    }
    Packet<R> p = s.packet;
    if (lf.corrupt > 0 && fs.rng.uniform() < lf.corrupt) {
      corrupt_packet(p, fs.rng());
      ++st.injected_corrupts;
      fault_event("corrupt", h_fault_corrupt_, src, dst, sent);
    }
    sim::Cycle arrival = s.arrival;
    if (lf.reorder > 0 && fs.rng.uniform() < lf.reorder) {
      // Extra in-flight delay: enough for later departures to overtake.
      arrival += 1 + fs.rng.below(
                         static_cast<std::uint64_t>(4 * config_.cooldown + 8));
      ++st.injected_reorders;
      fault_event("reorder", h_fault_reorder_, src, dst, sent);
    }
    emit(p, arrival);
    if (lf.dup > 0 && fs.rng.uniform() < lf.dup) {
      emit(p, arrival + 1);
      ++st.injected_dups;
      fault_event("dup", h_fault_dup_, src, dst, sent);
    }
  }

  /// Terminal delivery point of commit(): local endpoint, or the uplink
  /// when this fabric runs inside a shard-transport worker.
  void emit(const Packet<R>& p, sim::Cycle arrival) {
    if (uplink_) {
      uplink_(p, arrival);
      return;
    }
    endpoints_.at(p.dst)->deliver(p, arrival);
  }

  FaultState& fault_state(NodeId src, NodeId dst) {
    auto it = fault_state_.find({src, dst});
    if (it == fault_state_.end()) {
      FaultState fs;
      fs.rng = util::Xoshiro256(link_seed(plan_->seed, salt_, src, dst));
      it = fault_state_.emplace(Link{src, dst}, fs).first;
    }
    return it->second;
  }

  ChannelConfig config_;
  std::vector<Endpoint<R>*> endpoints_;
  std::vector<std::vector<Staged>> staged_;  // one slot per source node
  TrafficMatrix traffic_;
  std::optional<FaultPlan> plan_;
  std::uint64_t salt_ = 0;
  std::map<Link, FaultState> fault_state_;
  std::map<Link, LinkStats> fault_stats_;
  Uplink uplink_;

  // Telemetry (null hub = disabled; handles resolved once in set_obs).
  obs::Hub* obs_ = nullptr;
  obs::Comp comp_ = obs::Comp::kNetPos;
  obs::Handle h_packets_ = 0;
  obs::Handle h_control_ = 0;
  obs::Handle h_retransmits_ = 0;
  obs::Handle h_fault_drop_ = 0;
  obs::Handle h_fault_dup_ = 0;
  obs::Handle h_fault_reorder_ = 0;
  obs::Handle h_fault_corrupt_ = 0;
  std::vector<obs::Handle> to_handles_;
};

}  // namespace fasda::net
