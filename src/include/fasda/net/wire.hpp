#pragma once
// Byte-level wire format for net::Packet and its record types (DESIGN.md
// §14). The shard-transport worker processes ship staged fabric deliveries
// between address spaces with these codecs, so the encoding is exact and
// self-checking:
//
//   - every field is serialized explicitly in the same order packet_crc
//     hashes it (plus `retransmit`, which the CRC deliberately excludes),
//     little-endian, no struct padding on the wire;
//   - fixed-point coordinates travel as their raw Q2.28 bits, so a decoded
//     particle is bit-identical to the staged one;
//   - encode_packet appends a trailing CRC-32 over the serialized bytes.
//     decode_packet rejects truncation, trailing garbage, and any bit flip
//     (the trailing CRC covers every byte, including fields outside the
//     field-wise packet_crc digest).
//
// decode_packet validates shape (count in [0, kRecordsPerPacket], known
// kind, canonical bools) but deliberately does NOT check p.crc against
// packet_crc(p): endpoints own that policy — a corrupted-in-flight packet
// must still cross the process boundary intact so the destination worker's
// protocol sees the same CRC failure the in-process fabric would deliver.

#include <cstdint>
#include <vector>

#include "fasda/net/network.hpp"
#include "fasda/util/bytes.hpp"

namespace fasda::net::wire {

inline void put(util::ByteWriter& w, const geom::IVec3& v) {
  w.i32(v.x);
  w.i32(v.y);
  w.i32(v.z);
}

inline void get(util::ByteReader& r, geom::IVec3& v) {
  v.x = r.i32();
  v.y = r.i32();
  v.z = r.i32();
}

inline void put(util::ByteWriter& w, const geom::Vec3f& v) {
  w.f32(v.x);
  w.f32(v.y);
  w.f32(v.z);
}

inline void get(util::ByteReader& r, geom::Vec3f& v) {
  v.x = r.f32();
  v.y = r.f32();
  v.z = r.f32();
}

inline void put(util::ByteWriter& w, const fixed::FixedVec3& v) {
  w.u32(v.x.raw());
  w.u32(v.y.raw());
  w.u32(v.z.raw());
}

inline void get(util::ByteReader& r, fixed::FixedVec3& v) {
  v.x = fixed::FixedCoord::from_raw(r.u32());
  v.y = fixed::FixedCoord::from_raw(r.u32());
  v.z = fixed::FixedCoord::from_raw(r.u32());
}

inline void put(util::ByteWriter& w, const PosRecord& rec) {
  put(w, rec.src_gcell);
  put(w, rec.offset);
  w.u8(rec.elem);
  w.u16(rec.slot);
}

inline void get(util::ByteReader& r, PosRecord& rec) {
  get(r, rec.src_gcell);
  get(r, rec.offset);
  rec.elem = r.u8();
  rec.slot = r.u16();
}

inline void put(util::ByteWriter& w, const FrcRecord& rec) {
  put(w, rec.dest_gcell);
  put(w, rec.force);
  w.u16(rec.slot);
}

inline void get(util::ByteReader& r, FrcRecord& rec) {
  get(r, rec.dest_gcell);
  get(r, rec.force);
  rec.slot = r.u16();
}

inline void put(util::ByteWriter& w, const MigRecord& rec) {
  put(w, rec.dest_gcell);
  put(w, rec.offset);
  put(w, rec.vel);
  w.u8(rec.elem);
  w.u32(rec.particle_id);
}

inline void get(util::ByteReader& r, MigRecord& rec) {
  get(r, rec.dest_gcell);
  get(r, rec.offset);
  get(r, rec.vel);
  rec.elem = r.u8();
  rec.particle_id = r.u32();
}

/// Header + `count` records, in packet_crc field order (retransmit and the
/// stored crc ride after the digest-covered fields).
template <class R>
void put_packet(util::ByteWriter& w, const Packet<R>& p) {
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u64(p.seq);
  w.u64(p.ack);
  w.u64(p.nack);
  w.u8(p.has_nack ? 1 : 0);
  w.i32(p.count);
  w.u8(p.last ? 1 : 0);
  w.i32(p.src);
  w.i32(p.dst);
  w.u8(p.retransmit ? 1 : 0);
  w.u32(p.crc);
  for (int i = 0; i < p.count && i < kRecordsPerPacket; ++i) {
    put(w, p.records[i]);
  }
}

/// Returns false on overrun or out-of-range shape fields. Records beyond
/// `count` stay default-constructed, exactly as Endpoint packing leaves
/// them.
template <class R>
bool get_packet(util::ByteReader& r, Packet<R>& p) {
  const std::uint8_t kind = r.u8();
  p.seq = r.u64();
  p.ack = r.u64();
  p.nack = r.u64();
  const std::uint8_t has_nack = r.u8();
  p.count = r.i32();
  const std::uint8_t last = r.u8();
  p.src = r.i32();
  p.dst = r.i32();
  const std::uint8_t retransmit = r.u8();
  p.crc = r.u32();
  if (!r.ok() || kind > 1 || has_nack > 1 || last > 1 || retransmit > 1 ||
      p.count < 0 || p.count > kRecordsPerPacket) {
    return false;
  }
  p.kind = static_cast<PacketKind>(kind);
  p.has_nack = has_nack != 0;
  p.last = last != 0;
  p.retransmit = retransmit != 0;
  p.records = {};
  for (int i = 0; i < p.count; ++i) get(r, p.records[i]);
  return r.ok();
}

/// Self-checking buffer: serialized packet + trailing CRC-32 over the
/// serialized bytes.
template <class R>
std::vector<std::uint8_t> encode_packet(const Packet<R>& p) {
  util::ByteWriter w;
  put_packet(w, p);
  util::Crc32 crc;
  crc.add_bytes(w.data().data(), w.size());
  w.u32(crc.value());
  return w.take();
}

/// Strict decode of an encode_packet buffer: rejects truncation, trailing
/// garbage, shape violations, and any flipped bit (trailing CRC mismatch).
template <class R>
bool decode_packet(const std::vector<std::uint8_t>& bytes, Packet<R>& p) {
  if (bytes.size() < 4) return false;
  const std::size_t body = bytes.size() - 4;
  util::Crc32 crc;
  crc.add_bytes(bytes.data(), body);
  util::ByteReader tail(bytes.data() + body, 4);
  if (tail.u32() != crc.value()) return false;
  util::ByteReader r(bytes.data(), body);
  return get_packet(r, p) && r.done();
}

}  // namespace fasda::net::wire
