#pragma once
// Generator for the paper's custom dataset (§5.1): 64 randomly distributed
// sodium particles per cell "while ensuring that none of the particles are
// too close to be excluded", in a periodic box of cubic cells with edge R_c.
//
// At 64 particles per (8.5 Å)³ cell the density is too high for naive
// rejection sampling (it exceeds the random-sequential-adsorption jamming
// limit), so particles are placed on a jittered sublattice: per cell, a
// k×k×k sublattice with k = ceil(cbrt(per_cell)), each site displaced by a
// uniform jitter. This keeps every initial pair distance above
// (lattice spacing − 2·jitter) while remaining random, satisfying the
// paper's "none too close" constraint. Positions are quantized to the
// fixed-point grid so the reference and FASDA engines start bit-identically.

#include <cstdint>

#include "fasda/md/system_state.hpp"

namespace fasda::md {

enum class Placement {
  /// Jittered sublattice (default): supports the paper's high density.
  kJitteredLattice,
  /// Uniform rejection sampling with `min_distance`; only feasible below the
  /// random-sequential-adsorption limit (packing fraction ≲ 0.3), throws if
  /// a particle cannot be placed.
  kUniform,
};

enum class ElementAssignment {
  kRandom,  ///< uniform over the force field's elements
  /// Lattice mode: checkerboard over the sublattice (rock-salt motif,
  /// charge-neutral for two ±q species with an even site count per axis or
  /// balanced parity). Uniform mode: round-robin by index.
  kAlternating,
};

struct DatasetParams {
  int particles_per_cell = 64;
  std::uint64_t seed = 0x5eed;
  Placement placement = Placement::kJitteredLattice;
  ElementAssignment elements = ElementAssignment::kRandom;
  double jitter = 0.1;         ///< Å, lattice mode: per-axis displacement
  double min_distance = 2.0;   ///< Å, uniform mode: hard-sphere exclusion
  double temperature = 300.0;  ///< K, Maxwell-Boltzmann initial velocities
  bool zero_net_momentum = true;
};

/// Builds the dataset over `cell_dims` cells of edge `cell_size` Å.
SystemState generate_dataset(geom::IVec3 cell_dims, double cell_size,
                             const ForceField& ff, const DatasetParams& params);

}  // namespace fasda::md
