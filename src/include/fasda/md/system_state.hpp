#pragma once
// Flat particle state shared by every engine (reference, functional,
// cycle-level). Positions are absolute coordinates in the periodic box;
// engines that store per-cell offsets (like the hardware) import/export
// through this structure.

#include <cstdint>
#include <vector>

#include "fasda/geom/cell_grid.hpp"
#include "fasda/geom/vec3.hpp"
#include "fasda/md/force_field.hpp"

namespace fasda::md {

struct SystemState {
  geom::IVec3 cell_dims;   ///< cells per dimension
  double cell_size = 0.0;  ///< Å; equals R_c in the recommended configuration

  std::vector<geom::Vec3d> positions;   ///< Å, wrapped into the box
  std::vector<geom::Vec3d> velocities;  ///< Å/fs (leapfrog half-step)
  std::vector<ElementId> elements;

  std::size_t size() const { return positions.size(); }

  geom::CellGrid grid() const { return geom::CellGrid(cell_dims, cell_size); }
};

/// Kinetic energy in internal units given a force field (for masses).
double kinetic_energy(const SystemState& state, const ForceField& ff);

/// Total linear momentum (amu·Å/fs); conserved by a correct force loop.
geom::Vec3d total_momentum(const SystemState& state, const ForceField& ff);

}  // namespace fasda::md
