#pragma once
// Standalone double-precision observables over a SystemState, computed with
// a cell list. Shared by the engines' validation paths and the Fig. 19
// harness (which measures both trajectories with this one yardstick).

#include "fasda/md/system_state.hpp"

namespace fasda::md {

/// Potential energy of the enabled force terms with the given cutoff (Å),
/// internal units.
double compute_potential_energy(const SystemState& state, const ForceField& ff,
                                double cutoff, const ForceTerms& terms = {});

/// Analytic per-particle forces with the given cutoff (internal units).
std::vector<geom::Vec3d> compute_forces(const SystemState& state,
                                        const ForceField& ff, double cutoff,
                                        const ForceTerms& terms = {});

/// Number of unordered pairs within the cutoff.
std::size_t count_pairs_within_cutoff(const SystemState& state, double cutoff);

}  // namespace fasda::md
