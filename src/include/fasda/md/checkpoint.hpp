#pragma once
// Binary checkpoint/restart for SystemState: exact round trip of positions,
// velocities and elements (XYZ trajectories drop velocities, so they cannot
// restart a leapfrog run bit-exactly). Little-endian, versioned header,
// CRC-32 footer (format v2; v1 files without the footer still load).

#include <iosfwd>
#include <string>

#include "fasda/md/system_state.hpp"

namespace fasda::md {

void save_checkpoint(std::ostream& out, const SystemState& state);
/// Writes to `path + ".tmp"` then atomically renames, so a crash mid-write
/// never replaces a good checkpoint with a torn one.
void save_checkpoint(const std::string& path, const SystemState& state);

/// Throws std::runtime_error on bad magic/version/truncation, and on a
/// CRC-footer mismatch (torn or corrupt file) for v2 checkpoints.
SystemState load_checkpoint(std::istream& in);
SystemState load_checkpoint(const std::string& path);

}  // namespace fasda::md
