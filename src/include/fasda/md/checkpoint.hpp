#pragma once
// Binary checkpoint/restart for SystemState: exact round trip of positions,
// velocities and elements (XYZ trajectories drop velocities, so they cannot
// restart a leapfrog run bit-exactly). Little-endian, versioned header.

#include <iosfwd>
#include <string>

#include "fasda/md/system_state.hpp"

namespace fasda::md {

void save_checkpoint(std::ostream& out, const SystemState& state);
void save_checkpoint(const std::string& path, const SystemState& state);

/// Throws std::runtime_error on bad magic/version/truncation.
SystemState load_checkpoint(std::istream& in);
SystemState load_checkpoint(const std::string& path);

}  // namespace fasda::md
