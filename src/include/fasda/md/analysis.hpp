#pragma once
// Host-side trajectory analysis: the observables a user checks after an MD
// run (instantaneous temperature, radial distribution function, mean square
// displacement, velocity-rescaling for equilibration). These operate on
// exported SystemStates, so they work identically for the reference,
// functional, and cycle-level engines.

#include <vector>

#include "fasda/md/system_state.hpp"

namespace fasda::md {

/// Instantaneous temperature in kelvin from the kinetic energy
/// (3N degrees of freedom; the 3 conserved momenta are negligible here).
double temperature(const SystemState& state, const ForceField& ff);

/// Rescales velocities so the instantaneous temperature equals `target_k`.
/// The standard equilibration step before a production run.
void rescale_to_temperature(SystemState& state, const ForceField& ff,
                            double target_k);

struct RdfResult {
  double bin_width = 0.0;          ///< Å
  std::vector<double> g;           ///< g(r) per bin
  std::vector<std::size_t> count;  ///< raw pair counts per bin
  double r(std::size_t bin) const { return (bin + 0.5) * bin_width; }
};

/// Radial distribution function up to `r_max` (must be <= half the shortest
/// box edge), optionally restricted to pairs of the given element ids
/// (pass -1 for "any").
RdfResult radial_distribution(const SystemState& state, double r_max, int bins,
                              int elem_a = -1, int elem_b = -1);

/// Tracks mean square displacement across snapshots, unwrapping periodic
/// jumps (valid while per-step motion stays below half a box edge).
class MsdTracker {
 public:
  explicit MsdTracker(const SystemState& initial);

  /// Feeds the next snapshot (same particle ordering); returns MSD in Å².
  double update(const SystemState& state);

  const std::vector<double>& history() const { return history_; }

 private:
  geom::CellGrid grid_;
  std::vector<geom::Vec3d> reference_;  ///< initial positions
  std::vector<geom::Vec3d> previous_;   ///< last wrapped positions
  std::vector<geom::Vec3d> unwrapped_;
  std::vector<double> history_;
};

}  // namespace fasda::md
