#pragma once
// Long-range (reciprocal-space) Ewald summation — the "LR" component of the
// non-bonded force that the paper treats as a separate, memory- and
// communication-bound task (§1: LR parallelization on FPGA clusters is
// prior work [50, 51]; FASDA owns RL). This reference implementation is the
// direct structure-factor sum,
//
//   E_recip = k_e · (2π/V) · Σ_{k≠0} e^(−|k|²/4β²)/|k|² · |S(k)|²,
//   S(k)    = Σ_i q_i e^(i k·r_i),
//   E_self  = −k_e · β/√π · Σ_i q_i²,
//
// O(N·K) rather than the PME FFT, which is exact for validation purposes:
// together with the RL real-space term the total Coulomb energy/forces are
// independent of the splitting parameter β — the property the tests pin.

#include <complex>
#include <vector>

#include "fasda/md/system_state.hpp"

namespace fasda::md {

class EwaldLongRange {
 public:
  /// `beta` in Å⁻¹ (must match the RL term); `kmax` bounds the integer
  /// k-vector components (truncation error falls off as
  /// e^(−(π·kmax/(β·L))²)).
  EwaldLongRange(const ForceField& ff, double beta, int kmax);

  /// Reciprocal-space energy plus the self-energy correction (internal
  /// units). For non-neutral systems the neutralizing-background term is
  /// included as well.
  double energy(const SystemState& state) const;

  /// Reciprocal-space forces (internal units), by particle.
  std::vector<geom::Vec3d> forces(const SystemState& state) const;

  double beta() const { return beta_; }
  int kmax() const { return kmax_; }

 private:
  const ForceField& ff_;
  double beta_;
  int kmax_;
};

}  // namespace fasda::md
