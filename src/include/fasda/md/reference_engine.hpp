#pragma once
// Double-precision multithreaded range-limited MD engine: the in-repo
// stand-in for "OpenMM with only the LJ force field" (§5.1). Used both as
// the numerical ground truth for Fig. 19 and as the measured CPU series of
// Fig. 16.
//
// Algorithm per timestep (matching the paper's FPGA workflow, Fig. 4):
//   1. rebuild the cell list (the paper recomputes neighbour lists every
//      timestep, so there is no Verlet-list margin),
//   2. evaluate LJ forces over home-cell pairs and the 13 forward half-shell
//      neighbour cells (Newton's third law),
//   3. leapfrog motion update: v += F/m·Δt, x += v·Δt, wrap periodically.
//
// Threading: cells are split across a persistent thread pool; each worker
// accumulates into its own force buffer and buffers are reduced in parallel.
// The reduction traffic grows with thread count, which is the same
// communication-versus-computation tradeoff that limits CPU strong scaling
// in the paper's measurements.

#include <cstddef>
#include <vector>

#include "fasda/md/system_state.hpp"
#include "fasda/util/thread_pool.hpp"

namespace fasda::md {

/// Software neighbour-list policy. The FPGA recomputes neighbour lists
/// every timestep (§2.2: "the usual benefit for having a margin does not
/// apply"), which is what kCellListEveryStep models; kVerletList adds the
/// classic skin margin so the pair list survives several steps — the
/// optimization CPU packages like OpenMM rely on.
struct NeighborPolicy {
  bool use_verlet_list = false;
  double skin = 1.0;  ///< Å; list radius = cutoff + skin
};

class ReferenceEngine {
 public:
  /// `cutoff` in Å (forces beyond it are zero); `dt` in fs; `threads` sizes
  /// the persistent pool; `terms` selects the RL components (default: LJ
  /// only, matching the paper's evaluation).
  ReferenceEngine(SystemState state, ForceField ff, double cutoff, double dt,
                  std::size_t threads = 1, ForceTerms terms = {},
                  NeighborPolicy neighbors = {});

  /// Advances `n` timesteps.
  void step(int n = 1);

  const SystemState& state() const { return state_; }
  const ForceField& force_field() const { return ff_; }
  const std::vector<geom::Vec3d>& forces() const { return forces_; }

  /// Potential energy (internal units) of the current configuration with the
  /// engine's cutoff, recomputed in double precision.
  double potential_energy();

  double kinetic() const { return kinetic_energy(state_, ff_); }
  double total_energy() { return potential_energy() + kinetic(); }

  /// Number of pairs that passed the cutoff in the last force evaluation;
  /// used by filter-acceptance property tests.
  std::size_t last_pair_count() const { return last_pair_count_; }

  /// Verlet-list rebuilds performed so far (0 when the policy is off).
  std::size_t list_rebuilds() const { return list_rebuilds_; }

 private:
  void rebuild_cells();
  void compute_forces();
  void rebuild_verlet_list();
  bool verlet_list_valid() const;
  void compute_forces_from_list();

  SystemState state_;
  ForceField ff_;
  geom::CellGrid grid_;
  double cutoff2_;
  double dt_;
  ForceTerms terms_;
  util::ThreadPool pool_;

  std::vector<std::vector<std::uint32_t>> cell_particles_;
  std::vector<geom::Vec3d> forces_;
  std::vector<std::vector<geom::Vec3d>> worker_forces_;
  std::vector<std::size_t> worker_pair_counts_;
  std::size_t last_pair_count_ = 0;

  // Verlet-list state (unused when the policy is off).
  NeighborPolicy neighbors_;
  std::vector<std::vector<std::uint32_t>> verlet_;  ///< i -> partners j > i
  std::vector<geom::Vec3d> list_positions_;  ///< positions at last rebuild
  std::size_t list_rebuilds_ = 0;
};

}  // namespace fasda::md
