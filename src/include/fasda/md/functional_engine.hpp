#pragma once
// FunctionalEngine: the FASDA datapath numerics without the timing model.
//
// Reproduces exactly what the hardware computes each timestep:
//   * positions stored per cell as Q2.28 fixed-point in-cell offsets (§4.2),
//   * pair filtering on exact fixed-point r² against R_c normalized to 1,
//     with the small-r region below the interpolation table excluded (§3.4),
//   * pair forces via float32 section/bin interpolation of r^-14 and r^-8
//     with element-indexed folded coefficients (Fig. 6),
//   * float32 force and velocity accumulation (FC/VC are 32-bit, §3.1),
//   * leapfrog motion update with the position delta re-quantized to the
//     fixed-point grid, and cell-to-cell migration (the MU ring's job).
//
// Force evaluation iterates the full shell (every pair is computed from both
// sides). Because fixed-point r² is exactly symmetric and the interpolated
// magnitude depends only on r², the two evaluations are exact negations —
// the same invariant the hardware gets from Newton's third law — while
// keeping the cell loop embarrassingly parallel and deterministic.
//
// The cycle-level simulator (src/core) produces forces that match this
// engine pair-for-pair; tests cross-validate the two.

#include <cstdint>
#include <vector>

#include "fasda/fixed/fixed_point.hpp"
#include "fasda/geom/cell_grid.hpp"
#include "fasda/interp/interp_table.hpp"
#include "fasda/md/system_state.hpp"
#include "fasda/util/thread_pool.hpp"

namespace fasda::md {

struct FunctionalConfig {
  double cutoff = 8.5;  ///< Å; also the cell edge (cell_size must equal it)
  double dt = 2.0;      ///< fs
  interp::InterpConfig table{};
  ForceTerms terms{};  ///< LJ and/or Ewald real-space (§2.1)
  std::size_t threads = 1;
};

class FunctionalEngine {
 public:
  FunctionalEngine(const SystemState& state, ForceField ff,
                   const FunctionalConfig& config);

  void step(int n = 1);

  /// Exports the current state (absolute double positions reconstructed from
  /// the fixed-point cell offsets, float32 velocities widened).
  SystemState state() const;

  /// Potential/total energy of the current configuration, measured in double
  /// precision from the exported trajectory — the same observable the paper
  /// dumps from the boards and compares against OpenMM in Fig. 19.
  double potential_energy() const;
  double total_energy() const;

  /// Potential energy evaluated with the hardware's own float32
  /// interpolation tables (α = 12, 6); used by interpolation-depth ablation.
  double interp_potential_energy() const;

  /// Forces (internal units, float32 accumulated) from the last force
  /// evaluation, indexed by original particle id.
  std::vector<geom::Vec3f> forces_by_particle() const;

  /// Runs force evaluation only (no motion update); lets tests compare
  /// forces on a frozen configuration.
  void evaluate_forces();

  std::size_t size() const { return num_particles_; }
  const geom::CellGrid& grid() const { return grid_; }

  /// Pairs accepted by the fixed-point filter in the last evaluation,
  /// counted once per unordered pair.
  std::size_t last_pair_count() const { return last_pair_count_; }

 private:
  struct Slot {
    fixed::FixedVec3 pos;  ///< in-cell offset, RCID = 2 on every axis
    geom::Vec3f vel;       ///< Å/fs
    geom::Vec3f force;     ///< internal units, valid after evaluate_forces()
    ElementId elem = 0;
    std::uint32_t id = 0;  ///< original particle index
  };

  /// Returns the number of accepted unordered pairs owned by this cell.
  std::size_t evaluate_cell_forces(std::size_t cell);
  void motion_update();

  ForceField ff_;
  geom::CellGrid grid_;
  FunctionalConfig config_;
  interp::InterpTable table14_;
  interp::InterpTable table8_;
  interp::InterpTable table12_;
  interp::InterpTable table6_;
  interp::InterpTable table_ew_force_;
  interp::InterpTable table_ew_energy_;
  std::vector<PairForceCoeffs> force_coeffs_;
  std::vector<PairEnergyCoeffs> energy_coeffs_;
  std::vector<float> ewald_force_coeffs_;
  std::vector<float> ewald_energy_coeffs_;
  std::size_t num_elements_;
  std::size_t num_particles_;
  float min_r2_ = 0.0f;  ///< table lower edge: 2^-ns (normalized)

  std::vector<std::vector<Slot>> cells_;
  util::ThreadPool pool_;
  std::vector<std::size_t> worker_pair_counts_;
  std::size_t last_pair_count_ = 0;
};

}  // namespace fasda::md
