#pragma once
// Internal unit system: length in Å, time in fs, mass in amu.
// Derived energy unit: 1 amu·Å²/fs² = 2390.057 kcal/mol.
// Force-field parameters are specified in the chemistry-native units
// (kcal/mol, Å) and converted on entry, so all simulation math is unit-free.

namespace fasda::md::units {

/// kcal/mol per internal energy unit (amu·Å²/fs²).
inline constexpr double kKcalPerMolPerInternal = 2390.05736;

/// Converts kcal/mol to internal energy.
inline constexpr double from_kcal_per_mol(double e) {
  return e / kKcalPerMolPerInternal;
}

/// Converts internal energy to kcal/mol.
inline constexpr double to_kcal_per_mol(double e) {
  return e * kKcalPerMolPerInternal;
}

/// Boltzmann constant in internal energy per kelvin.
inline constexpr double kBoltzmann = 8.31446262e-7;

}  // namespace fasda::md::units
