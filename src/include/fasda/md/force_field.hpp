#pragma once
// Lennard-Jones force field (Eqs. 1-2) with per-element parameters and
// Lorentz-Berthelot mixing. Provides both the analytic double-precision
// evaluation used by the reference engine and the pre-folded float32
// pair-coefficient tables that the FASDA force pipeline looks up by element
// type (Fig. 6: "the elements are used to index a table-lookup to retrieve
// pre-calculated coefficients").

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fasda/geom/vec3.hpp"

namespace fasda::md {

using ElementId = std::uint8_t;

struct Element {
  std::string name;
  double epsilon;  ///< dispersion energy, internal units (see units.hpp)
  double sigma;    ///< zero-potential distance, Å
  double mass;     ///< amu
  double charge;   ///< elementary charges
};

/// Which range-limited force components are evaluated (§2.1: "RL forces
/// have two components: the short range term of the electrostatic force
/// obtained using the Particle Mesh Ewald method, and the force deduced
/// from the Lennard-Jones potential"). The paper's evaluation enables only
/// LJ; the Ewald real-space term uses a nearly identical pipeline — one
/// more interpolation table and a charge-product coefficient.
struct ForceTerms {
  bool lj = true;
  bool ewald_real = false;
  double ewald_beta = 0.3;  ///< Ewald splitting parameter, Å⁻¹
};

/// Pipeline coefficients with the cutoff folded in: with u = r / R_c the
/// pairwise force in internal units is
///   F(u) = (c14 · u^-14 − c8 · u^-8) · u_vec,
/// i.e. c14 = 48·ε·σ¹²/R_c¹³ and c8 = 24·ε·σ⁶/R_c⁷.
struct PairForceCoeffs {
  float c14;
  float c8;
};

/// Same folding for the potential: V(u) = e12 · u^-12 − e6 · u^-6 with
/// e12 = 4·ε·(σ/R_c)¹² and e6 = 4·ε·(σ/R_c)⁶.
struct PairEnergyCoeffs {
  float e12;
  float e6;
};

/// Coulomb constant k_e in internal units × Å per e² (332.0636 kcal·Å/mol
/// converted; see units.hpp).
inline constexpr double kCoulomb = 332.0636 / 2390.05736;

class ForceField {
 public:
  /// Registers an element; epsilon is given in kcal/mol (converted
  /// internally), sigma in Å, mass in amu, charge in elementary charges.
  /// Returns its id.
  ElementId add_element(std::string name, double epsilon_kcal_per_mol,
                        double sigma_angstrom, double mass_amu,
                        double charge_e = 0.0);

  /// Standard sodium parameters used by the paper's custom dataset
  /// (Åqvist-style Na: ε = 0.0469 kcal/mol, σ = 2.43 Å, m = 22.99 amu).
  static ForceField sodium();

  /// Na⁺ / Cl⁻ pair with charges, for electrostatics-enabled runs.
  static ForceField sodium_chloride();

  std::size_t num_elements() const { return elements_.size(); }
  const Element& element(ElementId id) const { return elements_.at(id); }

  /// Lorentz-Berthelot mixed parameters (internal units / Å).
  double epsilon(ElementId a, ElementId b) const;
  double sigma(ElementId a, ElementId b) const;

  /// Analytic pair potential, double precision; r2 in Å². No cutoff applied.
  double lj_energy(double r2, ElementId a, ElementId b) const;

  /// Analytic pair force on the first particle of the pair; dr = r_a - r_b
  /// in Å. F = ε/σ²·[48(σ/r)^14 − 24(σ/r)^8]·dr (Eq. 2).
  geom::Vec3d lj_force(const geom::Vec3d& dr, ElementId a, ElementId b) const;

  /// Ewald real-space electrostatic pair energy:
  /// k_e·q_a·q_b·erfc(β·r)/r (the PME short-range term, §2.1).
  double ewald_real_energy(double r2, ElementId a, ElementId b,
                           double beta) const;

  /// Ewald real-space force on the first particle:
  /// k_e·q_a·q_b·[erfc(βr) + (2βr/√π)·e^(−β²r²)]/r³ · dr.
  geom::Vec3d ewald_real_force(const geom::Vec3d& dr, ElementId a, ElementId b,
                               double beta) const;

  /// Combined pair energy/force for the enabled terms.
  double pair_energy(double r2, ElementId a, ElementId b,
                     const ForceTerms& terms) const;
  geom::Vec3d pair_force(const geom::Vec3d& dr, ElementId a, ElementId b,
                         const ForceTerms& terms) const;

  /// Coefficient tables for a given cutoff, indexed [a * num_elements + b].
  std::vector<PairForceCoeffs> force_coeff_table(double cutoff) const;
  std::vector<PairEnergyCoeffs> energy_coeff_table(double cutoff) const;

  /// Ewald charge-product coefficients: force table entries are
  /// k_e·q_a·q_b/R_c² (the T_ew(u²)·u_vec convention of
  /// interp::ewald tables); energy entries k_e·q_a·q_b/R_c.
  std::vector<float> ewald_force_coeff_table(double cutoff) const;
  std::vector<float> ewald_energy_coeff_table(double cutoff) const;

 private:
  std::vector<Element> elements_;
};

}  // namespace fasda::md
