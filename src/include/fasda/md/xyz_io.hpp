#pragma once
// Extended-XYZ trajectory output/input, the lingua franca of MD
// visualization tools (OVITO, VMD, ASE). One frame per step() call; the
// comment line carries the box so tools reconstruct the periodic cell.

#include <iosfwd>
#include <string>

#include "fasda/md/system_state.hpp"

namespace fasda::md {

/// Writes one frame. `comment_extra` is appended to the metadata line.
void write_xyz_frame(std::ostream& out, const SystemState& state,
                     const ForceField& ff, const std::string& comment_extra = "");

/// Streams frames to a file, flushing per frame so partial runs are usable.
class XyzWriter {
 public:
  XyzWriter(std::string path, const ForceField& ff);
  ~XyzWriter();

  XyzWriter(const XyzWriter&) = delete;
  XyzWriter& operator=(const XyzWriter&) = delete;

  void write(const SystemState& state, const std::string& comment_extra = "");
  int frames_written() const { return frames_; }

 private:
  struct Impl;
  Impl* impl_;
  const ForceField& ff_;
  int frames_ = 0;
};

/// Reads one frame (positions + element names resolved against `ff`);
/// returns false at EOF. Velocities default to zero.
bool read_xyz_frame(std::istream& in, const ForceField& ff, SystemState& state);

}  // namespace fasda::md
