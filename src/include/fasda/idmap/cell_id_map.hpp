#pragma once
// Two-level cell ID conversion (§4.2, Fig. 9).
//
// The simulation space of G = node_dims ⊙ cells_per_node cells is block-
// partitioned across FPGA nodes. Each cell has a Global Cell ID (GCID). To
// keep nodes homogeneous — every FPGA runs the identical bitstream with the
// identical static neighbour lists — a particle's GCID is converted on
// arrival:
//
//   GCID → LCID: the source cell re-expressed in the destination node's
//   frame as if that node were node (0,0,0). The conversion wraps through
//   the periodic boundary, so a cell just left of the node appears at
//   coordinate G-1 (the paper's (2,1) → (5,1) example).
//
//   LCID → RCID: once a particle reaches its destination CBB, the relative
//   cell ID per axis is 2 + displacement ∈ {1,2,3} (2 = same cell).
//   Starting at 1 keeps a leading "1" in the fixed-point concatenation for
//   cheap fixed-to-float conversion.
//
// All functions are pure; the hardware equivalents are a subtractor and a
// comparator per axis.

#include <vector>

#include "fasda/geom/cell_grid.hpp"

namespace fasda::idmap {

using NodeId = int;

class ClusterMap {
 public:
  /// node_dims: FPGAs per dimension; cells_per_node: the block each FPGA
  /// owns. Global dims must be >= 3 per axis.
  ClusterMap(geom::IVec3 node_dims, geom::IVec3 cells_per_node);

  const geom::IVec3& node_dims() const { return node_dims_; }
  const geom::IVec3& cells_per_node() const { return cells_per_node_; }
  geom::IVec3 global_dims() const {
    return {node_dims_.x * cells_per_node_.x, node_dims_.y * cells_per_node_.y,
            node_dims_.z * cells_per_node_.z};
  }
  int num_nodes() const { return node_dims_.product(); }
  int cells_in_node() const { return cells_per_node_.product(); }

  /// Eq. 7 indexing over the node grid.
  NodeId node_id(const geom::IVec3& node) const {
    return (node.x * node_dims_.y + node.y) * node_dims_.z + node.z;
  }
  geom::IVec3 node_coords(NodeId id) const;

  /// Node owning a global cell.
  geom::IVec3 node_of_cell(const geom::IVec3& gcell) const {
    return {gcell.x / cells_per_node_.x, gcell.y / cells_per_node_.y,
            gcell.z / cells_per_node_.z};
  }

  /// Local coordinates of a global cell within its own node ([0, cpn)).
  geom::IVec3 local_cell(const geom::IVec3& gcell) const {
    return {gcell.x % cells_per_node_.x, gcell.y % cells_per_node_.y,
            gcell.z % cells_per_node_.z};
  }

  /// Global coordinates of a node's local cell.
  geom::IVec3 global_cell(const geom::IVec3& node, const geom::IVec3& lcell) const {
    return {node.x * cells_per_node_.x + lcell.x,
            node.y * cells_per_node_.y + lcell.y,
            node.z * cells_per_node_.z + lcell.z};
  }

  /// GCID → LCID: source cell in `dest_node`'s frame, wrapped into
  /// [0, global_dims) so the destination never needs to know where it sits
  /// in the cluster. For a cell already owned by dest_node this is just its
  /// local coordinates.
  geom::IVec3 gcid_to_lcid(const geom::IVec3& gcell,
                           const geom::IVec3& dest_node) const;

  /// LCID → RCID relative to a destination local cell; each component in
  /// {1,2,3} when the source is the cell itself or one of its 26 neighbours
  /// (2 = same cell). Uses minimum-image displacement over the global grid.
  geom::IVec3 lcid_to_rcid(const geom::IVec3& src_lcid,
                           const geom::IVec3& dest_lcell) const;

  /// True iff the local cell `dest_lcell` is a forward half-shell neighbour
  /// of the (converted) source LCID — the PRN's acceptance test.
  bool accepts_position(const geom::IVec3& src_lcid,
                        const geom::IVec3& dest_lcell) const;

  /// Remote nodes a particle of cell `gcell` must be shipped to: the owners
  /// of its forward half-shell neighbour cells, excluding its own node.
  /// Order is deterministic (the P2R encapsulation chain order, §4.3).
  std::vector<NodeId> remote_destinations(const geom::IVec3& gcell) const;

  /// All neighbouring nodes of `node` (nodes that exchange any traffic with
  /// it, in either direction). Used to size sync counters (§4.4).
  std::vector<NodeId> neighbor_nodes(NodeId node) const;

  /// Minimum-image displacement over the global cell grid.
  geom::IVec3 min_image(const geom::IVec3& from, const geom::IVec3& to) const {
    return grid_.cell_displacement(from, to);
  }

  const geom::CellGrid& grid() const { return grid_; }

 private:
  geom::IVec3 node_dims_;
  geom::IVec3 cells_per_node_;
  geom::CellGrid grid_;  // global grid (cell size irrelevant here)
};

}  // namespace fasda::idmap
