#pragma once
// Analytic FPGA resource model behind Table 1.
//
// The paper reports post-route LUT/FF/BRAM/URAM/DSP percentages of a Xilinx
// Alveo U280 for seven design variants. We cannot run Vivado here, so the
// model derives component counts from the same ClusterConfig that drives
// the cycle simulator and multiplies by per-unit costs. Constants are
// calibrated against Table 1's single-FPGA 3x3x3 row; the remaining rows
// are then predictions, compared against the paper in
// bench/table1_resources and EXPERIMENTS.md. Memory columns carry the
// largest residuals — the paper itself notes that resource consumption
// "can be, to some extent, balanced by trading off LUT, BRAM, and URAM",
// i.e. different variants chose different balances.

#include "fasda/core/simulation.hpp"

namespace fasda::model {

struct ResourceVector {
  double lut = 0;
  double ff = 0;
  double bram = 0;  ///< 36 Kb blocks
  double uram = 0;  ///< 288 Kb blocks
  double dsp = 0;

  ResourceVector& operator+=(const ResourceVector& o) {
    lut += o.lut;
    ff += o.ff;
    bram += o.bram;
    uram += o.uram;
    dsp += o.dsp;
    return *this;
  }
  friend ResourceVector operator*(double s, const ResourceVector& v) {
    return {s * v.lut, s * v.ff, s * v.bram, s * v.uram, s * v.dsp};
  }
};

/// Alveo U280 capacities (§5.1).
inline constexpr ResourceVector kU280Capacity{1303000, 2607000, 2016, 960, 9024};

struct ResourceModelParams {
  // Pair filter: fixed-point subtract/square/compare — LUT fabric only
  // (the paper motivates fixed-point positions by filter cost, §4.2).
  ResourceVector filter{280, 250, 0, 0, 0};
  // Force pipeline: float32 interpolation datapath, pair buffers and
  // arbitration; the 6 BRAM cover pair/retirement buffering.
  ResourceVector pipeline{9200, 9000, 6, 0, 45};
  /// Interpolation coefficient storage is added from the actual table
  /// configuration (bits / 36 Kb), on top of `pipeline`.
  // Motion-update unit (one per CBB): float add/mul + fixed requantize.
  ResourceVector mu{2600, 2900, 1, 0, 22};
  // One BRAM-backed cache (PC / HPC / VC / each FC).
  ResourceVector cache{150, 150, 1, 0, 0};
  // Per-cell particle store kept in URAM (positions + velocities, banked).
  ResourceVector cell_store{0, 0, 0, 7, 0};
  // Ring node (PRN / FRN / MURN).
  ResourceVector ring_node{420, 600, 0, 0, 0};
  // EX node (per SPE ring, §4.1).
  ResourceVector ex_node{650, 800, 0, 0, 0};
  // CBB control / dispatch / arbitration.
  ResourceVector cbb_control{900, 950, 0, 0, 0};
  // Static per-FPGA base: shell, clocking, host interface.
  ResourceVector node_base{90000, 100000, 60, 0, 50};
  // Communication stack when the design is distributed: 100G MAC + UDP +
  // packetizers (§4.3), plus a per-neighbour encapsulation chain. Chains
  // are shared beyond 3 neighbours (traffic to distant nodes is light,
  // §5.4, so encapsulators are time-multiplexed).
  ResourceVector comm_base{32000, 35000, 30, 50, 0};
  ResourceVector comm_per_neighbor{13000, 12500, 10, 55, 0};
  int comm_neighbor_cap = 3;
};

class ResourceModel {
 public:
  explicit ResourceModel(ResourceModelParams params = {}) : params_(params) {}

  /// Absolute resources for one FPGA of the given cluster configuration.
  ResourceVector per_fpga(const core::ClusterConfig& config) const;

  /// Same, as fractions of the U280 (Table 1's percentages).
  ResourceVector utilization(const core::ClusterConfig& config) const;

  const ResourceModelParams& params() const { return params_; }

 private:
  ResourceModelParams params_;
};

}  // namespace fasda::model
