#pragma once
// Analytic CPU/GPU performance models for the Fig. 16 comparison series.
//
// The paper measured OpenMM (LJ force field only) on a Xeon Gold (up to 32
// threads), 2x NVIDIA A100 (NVLink) and 4x V100 (all-to-all NVLink). This
// environment has neither the GPUs nor a many-core CPU, so the comparison
// series come from latency/throughput models whose *structure* produces the
// paper's qualitative behaviour:
//
//   GPU: t_step = launch/sync latency(devices) + pair_work / throughput.
//        Small systems are latency-bound, so adding GPUs (more sync, same
//        latency floor) gives negative strong scaling; large systems
//        approach the throughput bound (§5.2's 8x8x8/10x10x10 discussion).
//
//   CPU: t_step = pair_work / (per-thread throughput · threads)
//               + barrier·log2(threads) + reduction ∝ N·threads.
//        Scales well to a few threads, then synchronization and
//        force-reduction traffic swamp the shrinking per-thread work —
//        negative scaling at 16+ threads, as measured in the paper.
//
// Every constant is documented and calibrated so the 4x4x4 anchor points
// match the paper's headline ratios (1 GPU ≈ 2 µs/day; 2 GPUs -26 %;
// 4 V100s ≈ -49 %; FASDA variant C ≈ 4.67x the best GPU).
//
// All rates are returned as simulated µs/day for Δt = 2 fs.

#include <cstddef>

namespace fasda::model {

/// Unordered pairs within the cutoff for the paper's standard density
/// (64 Na per (8.5 Å)³ cell): m ≈ 0.155·27·64 neighbours per particle.
double standard_pair_count(std::size_t particles);

double us_per_day_from_step_seconds(double step_seconds, double dt_fs = 2.0);

enum class GpuKind { kA100, kV100 };

struct GpuModelParams {
  double a100_pairs_per_second = 2.0e10;
  double v100_pairs_per_second = 1.2e10;
  double base_latency_s = 60e-6;        ///< kernel launches + integration
  double per_extra_gpu_latency_s = 45e-6;  ///< NVLink sync/halo per extra GPU
};

class GpuModel {
 public:
  explicit GpuModel(GpuModelParams params = {}) : params_(params) {}

  double step_seconds(std::size_t particles, int gpus, GpuKind kind) const;
  double us_per_day(std::size_t particles, int gpus, GpuKind kind) const {
    return us_per_day_from_step_seconds(step_seconds(particles, gpus, kind));
  }

 private:
  GpuModelParams params_;
};

struct CpuModelParams {
  /// Vectorized (AVX-512) LJ inner loop, OpenMM CPU platform class.
  double pairs_per_second_per_thread = 3.0e8;
  /// Parallel efficiency loss (scheduling, NUMA, cache contention):
  /// effective threads = T / (1 + k·T²). k = 0.01 peaks throughput near 8
  /// threads and turns negative past 16, the §5.2 measurement.
  double efficiency_quadratic = 0.01;
  double barrier_s = 6e-6;  ///< per barrier, ×log2(threads)
  double reduction_s_per_particle_thread = 1.1e-9;
};

class CpuModel {
 public:
  explicit CpuModel(CpuModelParams params = {}) : params_(params) {}

  double step_seconds(std::size_t particles, int threads) const;
  double us_per_day(std::size_t particles, int threads) const {
    return us_per_day_from_step_seconds(step_seconds(particles, threads));
  }

 private:
  CpuModelParams params_;
};

}  // namespace fasda::model
