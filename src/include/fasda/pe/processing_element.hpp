#pragma once
// The Processing Element (§3.3-3.4, Fig. 6).
//
// Pipeline organization modelled per the paper:
//   * A bank of `num_filters` filters (default 6) shares one home position
//     streamed per cycle from the cell's position cache — one BRAM read,
//     broadcast, so six pair candidates are examined per cycle.
//   * Each filter holds one reference particle: an incoming neighbour
//     position dispatched from the PRN, or a home particle for intra-cell
//     pairs (stream-index > own-index keeps each home pair unique).
//   * Accepted pairs are buffered and arbitrated into the force pipeline
//     (one pair per cycle, fixed latency, fully pipelined). The home half of
//     the result accumulates straight into the Force Cache; the negated
//     neighbour half accumulates in the reference's register.
//   * When a pass over the home stream completes and a reference's last
//     pairs have drained from the pipeline, the reference retires: home
//     references fold their register into the FC, neighbour references emit
//     a ForceToken for the force ring. References whose pairs all failed
//     the filter produce no token (zero forces are discarded, §5.4).
//
// Backpressure: the stream only advances when the pair buffer can absorb a
// worst-case burst (all loaded filters accepting), and retirement emits at
// most one token per cycle into the CBB's arbiter FIFO.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "fasda/pe/force_model.hpp"
#include "fasda/ring/tokens.hpp"
#include "fasda/sim/kernel.hpp"

namespace fasda::pe {

/// One particle as stored in a cell's caches (PC slot + VC slot + element).
struct CellParticle {
  fixed::FixedVec3 pos;  ///< in-cell offset, RCID = 2 frame
  geom::Vec3f vel;       ///< Å/fs
  md::ElementId elem = 0;
  std::uint32_t id = 0;  ///< global particle id
};

/// A reference particle waiting for (or loaded into) a filter.
struct Reference {
  fixed::FixedVec3 pos;  ///< rebased into the home cell's frame (RCID 1..3)
  md::ElementId elem = 0;
  bool is_home = false;
  std::uint16_t home_index = 0;  ///< own stream index when is_home
  geom::IVec3 src_lcid;          ///< neighbour refs: force-return address
  std::uint16_t slot = 0;        ///< particle slot in the source cell
};

struct PEConfig {
  int num_filters = 6;
  int pipeline_latency = 40;        ///< cycles from pair issue to FC write
  std::size_t pair_buffer_depth = 16;
  std::size_t input_queue_depth = 16;   ///< references from the dispatcher
  std::size_t output_queue_depth = 8;   ///< retired neighbour-force tokens
};

/// Where home-side forces land (the cell's FC bank); implemented by the CBB.
class ForceSink {
 public:
  virtual ~ForceSink() = default;
  /// Accumulates into FC[slot]; `fc_index` says which physical FC is
  /// written (one per PE), for resource accounting only.
  virtual void accumulate(std::uint16_t slot, const geom::Vec3f& force,
                          int fc_index) = 0;
};

/// Test-only global probe: observes every pair issued into any force
/// pipeline (home particle id, the reference, and the computed force on the
/// home particle). Used by equivalence tests to diff pair multisets against
/// a golden enumeration; never set in production runs.
struct PairProbe {
  using Fn = std::function<void(std::uint32_t home_id, const Reference& ref,
                                const geom::Vec3f& force_on_home)>;
  static Fn hook;
};

/// Test-only global probe observing every neighbour-force token emitted at
/// reference retirement (before it enters the force ring).
struct RetireProbe {
  using Fn = std::function<void(const ring::ForceToken& token)>;
  static Fn hook;
};

class ProcessingElement : public sim::Component {
 public:
  /// `home` is the cell's particle array (the PC/HPC view this PE streams);
  /// it must outlive the PE and only change between force phases.
  ProcessingElement(std::string name, const PEConfig& config,
                    const ForceModel& model,
                    const std::vector<CellParticle>* home, ForceSink* sink,
                    int fc_index);

  /// References in: the CBB dispatcher pushes here.
  sim::Fifo<Reference>& input() { return input_; }
  /// Retired neighbour forces out: the CBB arbiter pops from here.
  sim::Fifo<ring::ForceToken>& output() { return output_; }

  void tick(sim::Cycle now) override;

  /// Elision oracle: busy whenever a pass is streaming or anything is
  /// queued; an otherwise-empty PE with pairs in flight sleeps until the
  /// pipeline head completes (the only self-scheduled future event here).
  sim::Cycle next_wake(sim::Cycle now) const override;
  void skip_idle(sim::Cycle from, sim::Cycle to) override;

  /// No loaded references, empty pipeline/buffers, nothing retiring.
  bool quiescent() const;

  /// Begins a new force phase: home stream may have changed size.
  void reset_phase();

  const sim::UtilCounter& pe_util() const { return pe_util_; }
  const sim::UtilCounter& filter_util() const { return filter_util_; }
  std::uint64_t pairs_issued() const { return pairs_issued_; }
  std::uint64_t refs_processed() const { return refs_processed_; }
  std::uint64_t zero_force_refs() const { return zero_force_refs_; }

 private:
  /// Index into the reference slot pool. References used to be
  /// heap-allocated shared_ptr<RefState>; the pool plus the parallel
  /// position/min-stream arrays below keep the filter inner loop walking
  /// contiguous memory (struct-of-arrays hot state).
  using RefSlot = std::uint32_t;

  struct RefState {
    Reference ref;
    geom::Vec3f acc{};  ///< accumulated force on the reference
    int pending = 0;    ///< pairs still in the pipeline
    bool pass_done = false;
    bool any_pair = false;
  };

  struct PipelineEntry {
    RefSlot ref;
    std::uint16_t home_slot;
    geom::Vec3f force_on_home;
    sim::Cycle completes_at;
  };

  struct PairCandidate {
    RefSlot ref;
    std::uint16_t home_slot;
  };

  RefSlot alloc_ref();
  void release_ref(RefSlot slot);

  void drain_pipeline(sim::Cycle now);
  void issue_pair(sim::Cycle now);
  void stream_and_filter();
  void retire_references();
  void reload_filters();

  PEConfig config_;
  const ForceModel& model_;
  const std::vector<CellParticle>* home_;
  ForceSink* sink_;
  int fc_index_;

  sim::Fifo<Reference> input_;
  sim::Fifo<ring::ForceToken> output_;

  std::vector<RefState> pool_;        ///< reference slot pool (grows on demand)
  std::vector<RefSlot> free_slots_;

  std::vector<RefSlot> filters_;      ///< loaded references
  // Hot mirrors of the loaded filters, walked every streaming cycle:
  // reference position and the first stream index it pairs with (home
  // references only pair below their own index).
  std::vector<fixed::FixedVec3> filter_pos_;
  std::vector<std::uint32_t> filter_min_stream_;

  std::vector<RefSlot> retiring_;
  std::deque<PairCandidate> pair_buffer_;
  std::deque<PipelineEntry> pipeline_;
  std::size_t stream_index_ = 0;
  bool pass_active_ = false;

  sim::UtilCounter pe_util_;
  sim::UtilCounter filter_util_;
  std::uint64_t pairs_issued_ = 0;
  std::uint64_t refs_processed_ = 0;
  std::uint64_t zero_force_refs_ = 0;
};

}  // namespace fasda::pe
