#pragma once
// The numeric context shared by every force pipeline in a cluster: the
// r^-14 / r^-8 interpolation tables and the element-pair coefficient ROM
// (Fig. 6). Owned by the Simulation; PEs hold a const reference.

#include <cstdint>
#include <vector>

#include "fasda/fixed/fixed_point.hpp"
#include "fasda/geom/vec3.hpp"
#include "fasda/interp/interp_table.hpp"
#include "fasda/md/force_field.hpp"

namespace fasda::pe {

class ForceModel {
 public:
  /// `terms` selects which RL components the pipelines compute (default LJ
  /// only, the paper's evaluation). Enabling ewald_real adds one more
  /// table lookup and a charge-product coefficient per pair — "nearly
  /// identical" pipelines (§2.1).
  ForceModel(const md::ForceField& ff, double cutoff,
             const interp::InterpConfig& table_config,
             const md::ForceTerms& terms = {});

  /// The filter acceptance test: inside the cutoff and above the excluded
  /// small-r region, computed on exact fixed-point r² (§3.3).
  bool filter(std::uint64_t r2q) const {
    return r2q < fixed::kR2One && r2q >= min_r2q_;
  }

  /// Force on particle `a` due to `b`, with both positions in the same
  /// cell-relative frame. Float32 datapath.
  geom::Vec3f pair_force(const fixed::FixedVec3& a, md::ElementId ea,
                         const fixed::FixedVec3& b, md::ElementId eb) const {
    const float r2 = fixed::r2_to_float(fixed::r2_fixed(a, b));
    float magnitude = 0.0f;
    if (terms_.lj) {
      const md::PairForceCoeffs& k = coeffs_[ea * num_elements_ + eb];
      magnitude += k.c14 * table14_.eval(r2) - k.c8 * table8_.eval(r2);
    }
    if (terms_.ewald_real) {
      magnitude += ewald_coeffs_[ea * num_elements_ + eb] * table_ew_.eval(r2);
    }
    return fixed::displacement_to_float(a, b) * magnitude;
  }

  std::uint64_t min_r2q() const { return min_r2q_; }
  const md::ForceTerms& terms() const { return terms_; }

 private:
  md::ForceTerms terms_;
  interp::InterpTable table14_;
  interp::InterpTable table8_;
  interp::InterpTable table_ew_;
  std::vector<md::PairForceCoeffs> coeffs_;
  std::vector<float> ewald_coeffs_;
  std::size_t num_elements_;
  std::uint64_t min_r2q_;
};

}  // namespace fasda::pe
