#pragma once
// Public entry point: builds a FASDA cluster (Fig. 1's full stack) over a
// SystemState and executes range-limited MD timesteps at cycle level.
//
//   fasda::core::ClusterConfig cfg;
//   cfg.node_dims = {2, 2, 2};         // 8 FPGAs
//   cfg.cells_per_node = {2, 2, 2};    // 4x4x4 simulation space
//   cfg.pes_per_spe = 3; cfg.spes = 2; // the paper's strongest variant "C"
//   fasda::core::Simulation sim(state, ForceField::sodium(), cfg);
//   sim.run(10);
//   double rate = sim.microseconds_per_day();
//
// The simulation carries real particle data through the modelled hardware:
// forces computed by the PE pipelines land in the FCs, motion updates move
// the particles, and the exported state is genuine MD — cross-validated
// against md::FunctionalEngine (identical numerics) and md::ReferenceEngine
// (double precision) by the integration tests.

#include <sys/types.h>

#include <memory>
#include <vector>

#include "fasda/fpga/node.hpp"
#include "fasda/md/system_state.hpp"

namespace fasda::shard {
class ShardTransport;
}

namespace fasda::core {

struct ClusterConfig {
  geom::IVec3 node_dims{1, 1, 1};      ///< FPGAs per dimension
  geom::IVec3 cells_per_node{3, 3, 3}; ///< cells owned by each FPGA
  int pes_per_spe = 1;
  int spes = 1;
  int filters_per_pipeline = 6;
  int pipeline_latency = 40;
  int pe_pair_buffer_depth = 16;
  int pe_input_queue_depth = 16;
  interp::InterpConfig table{};
  md::ForceTerms terms{};  ///< RL components (default LJ only, §5.1)
  double cutoff = 8.5;     ///< Å; also the cell edge
  double dt = 2.0;      ///< fs
  double clock_hz = 200e6;
  net::ChannelConfig channel{};
  sync::SyncMode sync_mode = sync::SyncMode::kChained;
  sim::Cycle bulk_barrier_latency = 2000;  ///< central-FPGA coordinator cost
  /// Straggler injection: (node id, slowdown factor) pairs.
  std::vector<std::pair<idmap::NodeId, int>> stragglers;
  /// Attaching a FaultPlan (even all-zero rates) makes the fabrics lossy
  /// per the plan and arms the ack/retransmit protocol on every endpoint.
  /// run() throws sync::DegradedLinkError if a link exhausts its retries
  /// and sync::NodeFailureError when a node stops ticking (plan node faults
  /// or watchdog). Node/link ids are validated against the cluster shape.
  std::optional<net::FaultPlan> faults;
  net::ReliabilityConfig reliability{};
  /// Watchdog over the chained-sync EX path: run() throws
  /// sync::NodeFailureError once a node that is not done has gone this many
  /// cycles without ticking (0 disables). A healthy node ticks every cycle
  /// — its control tick is never straggler-gated — so fault-free runs can
  /// never trip the watchdog at any budget >= 1; the default only needs to
  /// beat max_cycles_per_iteration to fail fast instead of spinning.
  sim::Cycle watchdog_budget = 50'000;
  sim::Cycle max_cycles_per_iteration = 4'000'000;
  /// Cycle-scheduler worker threads. 0 = auto (hardware concurrency),
  /// 1 = the exact old serial behaviour, N > 1 = node-sharded parallel
  /// execution on min(N, num_nodes) workers. Parallel runs are bitwise
  /// identical to serial ones (see "Threading model" in DESIGN.md).
  int num_worker_threads = 0;
  /// Shard worker processes (DESIGN.md §14). 0 = the in-process transport
  /// (serial or thread-parallel per num_worker_threads — the historical
  /// behaviour). N >= 1 forks min(N, num_nodes) worker processes, each
  /// owning a contiguous node slice and driven over socketpairs in
  /// lock-step rounds; bitwise identical to in-process by the same
  /// >= 1-cycle-delay argument that makes threads identical to serial.
  /// Requires num_worker_threads <= 1 (each worker runs the serial
  /// scheduler), a kElide or kNaive tick mode (the kValidate oracle audit
  /// is process-local), and bulk_barrier_latency >= 1 under kBulk sync.
  int proc_workers = 0;
  /// Telemetry hub (null = disabled). When set, every layer publishes into
  /// it: nodes emit FSM phase spans and sync instants into their own shard,
  /// the fabrics emit traffic counters and fault/retransmit events, and
  /// run() folds the utilization/traffic reports into registry gauges. All
  /// stamps are simulated cycles, so output is identical across worker
  /// counts. The hub must outlive the Simulation.
  obs::Hub* obs = nullptr;
  /// Scheduler ticking strategy (DESIGN.md §13). kElide (the default) skips
  /// cycles and components the wake-time oracle proves inert — bitwise
  /// identical to kNaive by contract, just faster. kValidate runs the naive
  /// tick while auditing the oracle. The FASDA_NAIVE_TICK environment
  /// variable (set and not "0") forces kNaive regardless of this field.
  sim::TickMode tick_mode = sim::TickMode::kElide;
};

/// Fig. 17's per-component breakdown, aggregated over the cluster.
struct UtilizationReport {
  double pr_hardware = 0, pr_time = 0;
  double fr_hardware = 0, fr_time = 0;
  double filter_hardware = 0, filter_time = 0;
  double pe_hardware = 0, pe_time = 0;
  double mu_hardware = 0, mu_time = 0;
};

/// Fig. 18's per-channel communication summary.
struct TrafficReport {
  net::TrafficMatrix positions;
  net::TrafficMatrix forces;
  net::TrafficMatrix migrations;
  /// Average per-node egress bandwidth in Gbps over the elapsed cycles.
  double position_gbps_per_node = 0;
  double force_gbps_per_node = 0;
  /// Reliability record per directed link, merged over the three channels:
  /// faults the fabrics injected plus what the endpoint protocol did about
  /// them. Empty maps/zero counters when no FaultPlan is attached.
  std::map<net::Link, net::LinkStats> link_stats;
  net::LinkStats reliability_total;
};

class Simulation {
 public:
  Simulation(const md::SystemState& state, md::ForceField ff,
             const ClusterConfig& config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs `iterations` timesteps to completion (all nodes synchronized out).
  void run(int iterations);

  /// Absolute state reconstructed from the CBB caches.
  md::SystemState state() const;

  /// Float32 forces from the last force-evaluation phase, by particle id.
  std::vector<geom::Vec3f> forces_by_particle() const;

  double potential_energy() const;
  double total_energy() const;

  /// Cycles consumed by run() calls so far.
  sim::Cycle total_cycles() const;
  /// Cycles of the most recent run() call.
  sim::Cycle last_run_cycles() const { return last_run_cycles_; }

  /// Simulated microseconds of MD per wall-clock day at `clock_hz`, from the
  /// most recent run(): the Fig. 16 metric.
  double microseconds_per_day() const;

  UtilizationReport utilization() const;
  TrafficReport traffic() const;

  /// Per-node force-phase start cycles (chained-sync head-start evidence).
  const std::vector<sim::Cycle>& force_phase_starts(idmap::NodeId node) const;

  std::uint64_t pairs_issued() const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Effective scheduler worker count after the auto/clamp policy: 1 means
  /// the serial scheduler is driving the cluster.
  int num_workers() const { return num_workers_; }

  /// Ticking strategy actually in effect (config + FASDA_NAIVE_TICK).
  sim::TickMode tick_mode() const { return scheduler_->tick_mode(); }
  /// Elision/validation counters accumulated by the scheduler (folded over
  /// the worker processes when proc_workers > 0).
  const sim::ElisionStats& elision_stats() const;

  /// Worker process count actually forked (0 = in-process transport).
  int proc_workers() const;
  /// Worker process ids (empty in-process); exposed for lifecycle tests.
  std::vector<pid_t> proc_worker_pids() const;

  const idmap::ClusterMap& map() const { return map_; }

  /// The attached telemetry hub (null when telemetry is disabled).
  obs::Hub* obs() const { return config_.obs; }

  /// Folds the utilization/traffic/health reports into the metrics
  /// registry: `util.*` and `net.*.gbps_per_node` gauges, `net.rel.*`
  /// reliability counters (cluster totals plus per-link breakdowns at the
  /// source node), `sim.cycles`/`sim.us_per_day`, and per-node
  /// `node.heartbeat`/`node.alive` health gauges. run() calls this on every
  /// exit path (including before rethrowing a failure); it is idempotent —
  /// gauges overwrite and counters are set, not accumulated. No-op with no
  /// hub attached.
  void publish_metrics();

 private:
  md::ForceField ff_;
  ClusterConfig config_;
  idmap::ClusterMap map_;
  std::unique_ptr<pe::ForceModel> model_;
  std::unique_ptr<net::Fabric<net::PosRecord>> pos_fabric_;
  std::unique_ptr<net::Fabric<net::FrcRecord>> frc_fabric_;
  std::unique_ptr<net::Fabric<net::MigRecord>> mig_fabric_;
  std::unique_ptr<sync::BulkBarrier> barrier_;
  std::vector<std::unique_ptr<fpga::FpgaNode>> nodes_;
  std::unique_ptr<sim::Scheduler> scheduler_;
  int num_workers_ = 1;
  sim::Cycle last_run_cycles_ = 0;
  int last_run_iterations_ = 0;
  std::size_t num_particles_ = 0;
  /// The pluggable shard boundary (DESIGN.md §14). Declared last: its
  /// destructor must run first, so worker processes shut down and are
  /// reaped while the cluster they mirror is still alive.
  std::unique_ptr<shard::ShardTransport> transport_;
};

}  // namespace fasda::core
