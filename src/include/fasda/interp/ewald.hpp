#pragma once
// Interpolation tables for the Ewald real-space (PME short-range)
// electrostatic term — the other half of the RL force (§2.1). The paper
// notes the force pipelines are "nearly identical"; concretely, only the
// tabulated function changes:
//
//   force:  F_vec = (k_e·q_a·q_b / R_c²) · T_f(u²) · u_vec
//           T_f(u²) = [erfc(βR_c·u) + (2βR_c·u/√π)·e^(−(βR_c·u)²)] / u³
//   energy: V = (k_e·q_a·q_b / R_c) · T_e(u²),  T_e(u²) = erfc(βR_c·u)/u
//
// with u the cutoff-normalized distance (u² ∈ (0, 1], same section/bin
// indexing as the r^-α tables).

#include "fasda/interp/interp_table.hpp"

namespace fasda::interp {

/// `beta_rc` = β·R_c (the splitting parameter times the cutoff).
InterpTable build_ewald_force_table(double beta_rc, const InterpConfig& config);
InterpTable build_ewald_energy_table(double beta_rc, const InterpConfig& config);

}  // namespace fasda::interp
