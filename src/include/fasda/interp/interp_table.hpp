#pragma once
// Force table-lookup interpolation (§3.4, Eqs. 8-10, Fig. 7).
//
// Instead of computing r^-α directly (α = 14, 8 for the LJ force; 12, 6 for
// the potential), the hardware evaluates f(r²) by piecewise-linear
// interpolation:   f(r²) ≈ a(s,b)·r² + b(s,b)
// where the section index s comes from the exponent bits of the float32 r²
// (Eq. 9) and the bin index b from its mantissa bits (Eq. 10). With the
// cutoff radius normalized to 1, valid r² lies in (0, 1], so sections cover
// [2^-ns, 1) and the region below 2^-ns is excluded as non-physically high
// energy (Fig. 7).
//
// Tables are built for arbitrary f, which is how the paper supports
// "different force models with trivial modification".

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace fasda::interp {

struct InterpConfig {
  int num_sections = 14;  ///< n_s: sections below r² = 1, one per exponent
  int num_bins = 256;     ///< n_b: equal-width bins per section

  bool operator==(const InterpConfig&) const = default;
};

/// Section/bin index pair for a given r² (float32 semantics).
struct TableIndex {
  int section = 0;
  int bin = 0;
  bool below_range = false;  ///< r² < 2^-ns: excluded small-r region
  bool above_range = false;  ///< r² >= 1: beyond the cutoff
};

class InterpTable {
 public:
  /// Builds a table for f over (0, 1]; f is sampled in double precision and
  /// coefficients are stored as float32, exactly like coefficient BRAMs.
  static InterpTable build(const std::function<double(double)>& f,
                           const InterpConfig& config);

  /// Convenience: f(r²) = r^-alpha = (r²)^(-alpha/2).
  static InterpTable build_r_pow(int alpha, const InterpConfig& config);

  const InterpConfig& config() const { return config_; }

  /// Computes the section/bin index of a float32 r² (Eqs. 9-10).
  TableIndex index_of(float r2) const;

  /// Evaluates the interpolation in float32. Out-of-range inputs clamp to
  /// the nearest bin (the hardware filter guarantees in-range inputs; the
  /// clamp keeps the functional model total).
  float eval(float r2) const;

  /// Maximum |eval - f| / |f| over `samples_per_bin` probes per bin,
  /// restricted to the covered range. Used by accuracy tests/ablation.
  double max_relative_error(const std::function<double(double)>& f,
                            int samples_per_bin = 8) const;

  /// Coefficient storage footprint in bits (two float32 per bin), used by
  /// the resource model.
  std::uint64_t storage_bits() const {
    return static_cast<std::uint64_t>(a_.size()) * 2 * 32;
  }

 private:
  InterpTable(InterpConfig config) : config_(config) {}

  double bin_left_edge(int section, int bin) const;

  InterpConfig config_;
  // Row-major [section][bin]; a_ and b_ are the Eq. 8 coefficient arrays.
  std::vector<float> a_;
  std::vector<float> b_;
};

}  // namespace fasda::interp
