#pragma once
// Fixed-point particle coordinates (§4.2 of the paper).
//
// A particle travelling the rings carries, per axis, its Relative Cell ID
// (RCID ∈ {1,2,3}; the local cell is 2) concatenated with a fixed-point
// in-cell offset. Starting RCIDs at 1 keeps the leading "1" present so the
// hardware's fixed-to-float conversion (leading-one detection) is trivial,
// and lets a filter compute inter-particle displacement by direct
// subtraction without knowing either cell.
//
// Representation: unsigned Q2.28 (value in [0, 4), resolution 2^-28 cell
// edges ≈ 3e-8 Å at R_c = 8.5 Å). Differences are signed Q3.28; squared
// distances are exact unsigned Q6.56 (no rounding before the filter
// threshold compare), matching the paper's claim that filters run on cheap
// fixed-point arithmetic while the force pipeline runs on float32.

#include <bit>
#include <cmath>
#include <cstdint>

#include "fasda/geom/vec3.hpp"

namespace fasda::fixed {

class FixedCoord {
 public:
  static constexpr int kFracBits = 28;
  static constexpr std::uint32_t kOne = 1u << kFracBits;
  static constexpr double kResolution = 1.0 / static_cast<double>(kOne);

  constexpr FixedCoord() = default;

  /// Builds RCID ∥ offset. rcid must be in {1,2,3}; frac01 in [0,1).
  static FixedCoord from_cell_offset(int rcid, double frac01) {
    return FixedCoord(static_cast<std::uint32_t>(rcid) * kOne +
                      quantize_frac(frac01));
  }

  /// Quantizes an arbitrary value in [0,4). Used by tests and the MU when
  /// re-encoding updated positions.
  static FixedCoord from_real(double v) {
    return FixedCoord(static_cast<std::uint32_t>(
        static_cast<std::int64_t>(std::floor(v * kOne + 0.5))));
  }

  static constexpr FixedCoord from_raw(std::uint32_t raw) { return FixedCoord(raw); }

  constexpr std::uint32_t raw() const { return raw_; }
  constexpr int rcid() const { return static_cast<int>(raw_ >> kFracBits); }

  /// Fractional in-cell offset in [0,1).
  constexpr double frac() const {
    return static_cast<double>(raw_ & (kOne - 1)) * kResolution;
  }

  constexpr double to_double() const { return raw_ * kResolution; }
  float to_float() const { return static_cast<float>(to_double()); }

  /// Signed difference, exact (Q3.28 in an int64).
  constexpr std::int64_t sub(FixedCoord o) const {
    return static_cast<std::int64_t>(raw_) - static_cast<std::int64_t>(o.raw_);
  }

  constexpr bool operator==(const FixedCoord&) const = default;

 private:
  explicit constexpr FixedCoord(std::uint32_t raw) : raw_(raw) {}

  static std::uint32_t quantize_frac(double frac01) {
    auto q = static_cast<std::int64_t>(std::floor(frac01 * kOne + 0.5));
    if (q >= kOne) q = kOne - 1;  // round-up at the top edge stays in-cell
    if (q < 0) q = 0;
    return static_cast<std::uint32_t>(q);
  }

  std::uint32_t raw_ = 0;
};

struct FixedVec3 {
  FixedCoord x, y, z;

  constexpr bool operator==(const FixedVec3&) const = default;

  geom::Vec3d to_vec3d() const { return {x.to_double(), y.to_double(), z.to_double()}; }
};

/// Exact squared distance in Q6.56. Maximum value 27·2^56 < 2^62, so it fits
/// an unsigned 64-bit without saturation.
constexpr std::uint64_t r2_fixed(const FixedVec3& a, const FixedVec3& b) {
  const std::int64_t dx = a.x.sub(b.x);
  const std::int64_t dy = a.y.sub(b.y);
  const std::int64_t dz = a.z.sub(b.z);
  return static_cast<std::uint64_t>(dx * dx) +
         static_cast<std::uint64_t>(dy * dy) +
         static_cast<std::uint64_t>(dz * dz);
}

/// Force Cache accumulator: one 64-bit fixed-point register per axis
/// (Q15.48), mirroring the paper's on-chip accumulation in a fixed format
/// rather than float32. Integer addition is associative and commutative, so
/// the combined force depends only on the *set* of contributions — never on
/// arrival order. That is what lets the fault-injection layer guarantee
/// bitwise-identical trajectories: retransmits and reordering shift when a
/// force token lands, not what the accumulated sum reads at motion update.
/// Resolution is 2^-48 force units per contribution — finer than one
/// float32 ulp of any realistic pairwise force, so the quantization is
/// invisible next to the float arithmetic that produced the contribution —
/// with ~2^15 units of headroom, far above any force the PE table emits.
struct ForceAccum {
  static constexpr int kFracBits = 48;
  static constexpr double kScale =
      static_cast<double>(std::int64_t{1} << kFracBits);

  std::int64_t x = 0, y = 0, z = 0;

  void add(const geom::Vec3f& f) {
    x += quantize(f.x);
    y += quantize(f.y);
    z += quantize(f.z);
  }

  geom::Vec3f to_vec3f() const {
    return {static_cast<float>(static_cast<double>(x) / kScale),
            static_cast<float>(static_cast<double>(y) / kScale),
            static_cast<float>(static_cast<double>(z) / kScale)};
  }

  static std::int64_t quantize(float v) {
    // Exactly llround(double(v) * kScale), without the libm call (this is
    // the hottest scalar op in the force path: three per accumulate).
    // The product is exact: a float's 24-bit significand scaled by a power
    // of two fits a double. Below 2^52 the half-away adjustment is exact
    // too (ulp <= 0.5), so truncation implements round-half-away. At or
    // above 2^52 the product is already an integer (24-bit significand,
    // exponent >= 28), where llround is the identity.
    const double x = static_cast<double>(v) * kScale;
    if (x >= 0x1p52 || x <= -0x1p52) return static_cast<std::int64_t>(x);
    return static_cast<std::int64_t>(x + (x >= 0 ? 0.5 : -0.5));
  }
};

/// The filter threshold: r^2 < R_c^2 with R_c normalized to 1 cell edge.
constexpr std::uint64_t kR2One = 1ull << (2 * FixedCoord::kFracBits);

/// Fixed-to-float conversion of a Q6.56 squared distance (the hardware does
/// this with a leading-one detector; ldexp is the software equivalent).
inline float r2_to_float(std::uint64_t r2q) {
  // Power-of-two scaling is exact in float (exponent shift, result normal
  // for the whole Q6.56 range), so the constant multiply is bit-identical
  // to ldexp without the libm call.
  constexpr float kInv = 0x1p-56f;  // 2^-(2*kFracBits)
  static_assert(2 * FixedCoord::kFracBits == 56);
  return static_cast<float>(r2q) * kInv;
}

/// Displacement vector (a - b) as float32 components, as produced by the
/// fixed subtractors feeding the force pipeline.
inline geom::Vec3f displacement_to_float(const FixedVec3& a, const FixedVec3& b) {
  constexpr float scale = 0x1p-28f;  // 2^-kFracBits, exact
  static_assert(FixedCoord::kFracBits == 28);
  return {static_cast<float>(a.x.sub(b.x)) * scale,
          static_cast<float>(a.y.sub(b.y)) * scale,
          static_cast<float>(a.z.sub(b.z)) * scale};
}

}  // namespace fasda::fixed
