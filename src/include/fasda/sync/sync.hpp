#pragma once
// Chained synchronization (§4.4, Figs. 12-13).
//
// Each node exchanges "last position" / "last force" signals with its
// immediate neighbours only (the signals ride the final packet of each
// stream, net::Packet::last). A node may advance to motion update once all
// four criteria hold — last position sent and received, last force sent and
// received, each counted against the number of neighbouring nodes — and the
// motion-update phase uses the simplified single-signal variant. There is
// no global barrier: distant nodes decouple from a straggler and get a head
// start into the next iteration.
//
// BulkBarrier models the conventional alternative (Fig. 12 left): every
// node arrives at a central coordinator and is released `release_latency`
// cycles after the slowest arrival. Used by the synchronization ablation.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "fasda/net/fault.hpp"
#include "fasda/sim/kernel.hpp"

namespace fasda::sync {

enum class SyncMode { kChained, kBulk };

/// Raised when a sync round cannot complete because the retransmit protocol
/// declared a fabric link dead (net::DegradedLink): the chained-sync `last`
/// signal for that neighbour will never arrive, so the run surfaces a typed
/// error instead of spinning until the cycle budget trips. Thrown by
/// core::Simulation::run on the caller's thread, between scheduler cycles —
/// never from inside a worker tick.
class DegradedLinkError : public std::runtime_error {
 public:
  DegradedLinkError(const net::DegradedLink& link, std::string channel)
      : std::runtime_error(
            "sync: " + channel + " link " + std::to_string(link.src) + "->" +
            std::to_string(link.dst) + " degraded after " +
            std::to_string(link.retries) + " retries at cycle " +
            std::to_string(link.detected_at) + " (seq " +
            std::to_string(link.seq) + ")"),
        link_(link),
        channel_(std::move(channel)) {}

  const net::DegradedLink& link() const { return link_; }
  const std::string& channel() const { return channel_; }

 private:
  net::DegradedLink link_;
  std::string channel_;
};

/// Raised when an FPGA node itself stops making progress: its per-cycle
/// heartbeat (FpgaNode::tick stamps the current cycle whenever the node is
/// alive) has gone stale past the watchdog budget, or the retransmit
/// protocol degraded a link whose destination node is no longer ticking —
/// the node died, not the wire. Carries which node, which FSM phase it
/// stalled in, and for how many cycles. Like DegradedLinkError this is
/// thrown by core::Simulation::run on the caller's thread between scheduler
/// cycles, never from inside a worker tick.
class NodeFailureError : public std::runtime_error {
 public:
  NodeFailureError(int node, std::string phase, sim::Cycle cycles_stalled,
                   sim::Cycle detected_at)
      : std::runtime_error("sync: node " + std::to_string(node) +
                           " unresponsive in phase '" + phase + "' for " +
                           std::to_string(cycles_stalled) +
                           " cycles (detected at cycle " +
                           std::to_string(detected_at) + ")"),
        node_(node),
        phase_(std::move(phase)),
        cycles_stalled_(cycles_stalled),
        detected_at_(detected_at) {}

  int node() const { return node_; }
  const std::string& phase() const { return phase_; }
  sim::Cycle cycles_stalled() const { return cycles_stalled_; }
  sim::Cycle detected_at() const { return detected_at_; }

 private:
  int node_;
  std::string phase_;
  sim::Cycle cycles_stalled_;
  sim::Cycle detected_at_;
};

/// Per-node signal counters for one iteration.
class ChainedSync {
 public:
  explicit ChainedSync(int num_neighbors) : neighbors_(num_neighbors) {}

  void begin_iteration() {
    pos_received_ = frc_received_ = mu_received_ = 0;
    pos_sent_ = frc_sent_ = mu_sent_ = false;
  }

  void on_last_position_received() { ++pos_received_; }
  void on_last_force_received() { ++frc_received_; }
  void on_last_mu_received() { ++mu_received_; }

  void mark_last_position_sent() { pos_sent_ = true; }
  void mark_last_force_sent() { frc_sent_ = true; }
  void mark_last_mu_sent() { mu_sent_ = true; }

  bool last_position_sent() const { return pos_sent_; }
  bool last_force_sent() const { return frc_sent_; }
  bool last_mu_sent() const { return mu_sent_; }

  bool all_positions_received() const { return pos_received_ >= neighbors_; }
  bool all_forces_received() const { return frc_received_ >= neighbors_; }
  bool all_mu_received() const { return mu_received_ >= neighbors_; }

  /// The four §4.4 criteria.
  bool may_enter_motion_update() const {
    return pos_sent_ && frc_sent_ && all_positions_received() &&
           all_forces_received();
  }

  bool may_finish_motion_update() const { return mu_sent_ && all_mu_received(); }

  int num_neighbors() const { return neighbors_; }

 private:
  int neighbors_;
  int pos_received_ = 0, frc_received_ = 0, mu_received_ = 0;
  bool pos_sent_ = false, frc_sent_ = false, mu_sent_ = false;
};

/// Global barrier with a release latency (host round trip or central-FPGA
/// hop). A node arrives once per (iteration, phase) sequence number and is
/// released `release_latency` cycles after the slowest arrival.
///
/// Shared across every FPGA-node shard, so arrive()/released() take an
/// internal mutex: both are called from concurrent shard ticks under the
/// parallel scheduler. The outcome stays independent of arrival order
/// within a cycle — and therefore bitwise identical to serial — as long as
/// release_latency >= 1, because a generation completed at cycle N is only
/// ever releasable at N + release_latency > N (core::Simulation enforces
/// the precondition when parallel execution is requested).
///
/// arrive/released/release_cycle are virtual so shard::SplitBarrier can run
/// the same barrier split across worker processes: the worker-side override
/// records votes and mirrors releases announced by the parent instead of
/// counting arrivals locally (DESIGN.md §14).
class BulkBarrier {
 public:
  BulkBarrier(int num_nodes, sim::Cycle release_latency)
      : num_nodes_(num_nodes), release_latency_(release_latency) {}

  virtual ~BulkBarrier() = default;

  virtual void arrive(std::uint64_t seq, sim::Cycle now) {
    std::lock_guard lock(mutex_);
    Generation& g = generations_[seq];
    if (g.arrived >= num_nodes_) {
      throw std::logic_error("BulkBarrier: more arrivals than nodes");
    }
    if (++g.arrived == num_nodes_) {
      g.release_at = now + release_latency_;
      // Elision poke: nodes already waiting on this generation reported no
      // wake of their own (release_cycle was nullopt when they were swept),
      // so a scheduler with their shards asleep must hear the release got
      // scheduled. The hook must be thread-safe — the completing arrival
      // happens inside a concurrent shard tick.
      if (wake_hook_) wake_hook_(g.release_at);
    }
  }

  /// See arrive(). Wired once at cluster construction, before any ticks.
  void set_wake_hook(std::function<void(sim::Cycle)> hook) {
    wake_hook_ = std::move(hook);
  }

  virtual bool released(std::uint64_t seq, sim::Cycle now) const {
    std::lock_guard lock(mutex_);
    const auto it = generations_.find(seq);
    return it != generations_.end() && it->second.arrived == num_nodes_ &&
           now >= it->second.release_at;
  }

  /// Elision wake oracle: the cycle released(seq, ·) turns true, or nullopt
  /// while the generation is still filling (a waiting node then sleeps
  /// until another node's arrival executes a cycle and triggers a fresh
  /// wake sweep). Called single-threaded between cycles.
  virtual std::optional<sim::Cycle> release_cycle(std::uint64_t seq) const {
    std::lock_guard lock(mutex_);
    const auto it = generations_.find(seq);
    if (it == generations_.end() || it->second.arrived != num_nodes_) {
      return std::nullopt;
    }
    return it->second.release_at;
  }

 private:
  struct Generation {
    int arrived = 0;
    sim::Cycle release_at = 0;
  };

  int num_nodes_;
  sim::Cycle release_latency_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Generation> generations_;
  std::function<void(sim::Cycle)> wake_hook_;
};

}  // namespace fasda::sync
