#pragma once
// Thin client for the fasda_serve protocol, shared by fasda_loadgen, the
// serve bench, and the test battery. One Client owns one connection; the
// server pushes kStatus/kResult frames for jobs submitted on that
// connection, so run_job() can submit and then just read frames until the
// result lands, counting status pushes along the way.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "fasda/serve/job.hpp"
#include "fasda/serve/wire.hpp"

namespace fasda::serve {

class Client {
 public:
  Client(const std::string& host, std::uint16_t port);

  struct SubmitReply {
    bool accepted = false;
    std::uint64_t job_id = 0;
    std::string reason;  ///< admit_reason / "bad-request" when rejected
    std::string detail;
  };

  /// Sends kSubmit and reads the kAccepted/kRejected reply. Throws
  /// WireError on socket failure or protocol violation.
  SubmitReply submit(const JobRequest& req);

  struct RunOutcome {
    SubmitReply reply;
    std::optional<JobResult> result;  ///< set iff reply.accepted
    int status_frames = 0;            ///< kStatus pushes seen on the way
  };

  /// submit() + read frames until this job's kResult arrives.
  RunOutcome run_job(const JobRequest& req);

  /// Reads frames until kResult for `job_id`; counts kStatus pushes into
  /// `status_frames` when non-null.
  JobResult wait_result(std::uint64_t job_id, int* status_frames = nullptr);

  /// kQuery for any job id; returns the kStatus payload (JSON text), or
  /// the kRejected payload with `rejected` set true.
  std::string query(std::uint64_t job_id, bool& rejected);

  /// kPing; returns the kPong payload (server stats JSON).
  std::string ping();

  Conn& conn() { return conn_; }

 private:
  WireFrame recv_checked();
  /// Buffers an unsolicited kStatus/kResult push (returns true) so a reply
  /// scan never loses a result that raced it; throws on kError.
  bool absorb_push(const WireFrame& frame);

  Conn conn_;
  std::unordered_map<std::uint64_t, JobResult> results_;
  std::unordered_map<std::uint64_t, int> status_counts_;
};

}  // namespace fasda::serve
