#pragma once
// Thin client for the fasda_serve protocol, shared by fasda_loadgen, the
// serve bench, and the test battery. One Client owns one connection; the
// server pushes kStatus/kResult frames for jobs submitted on that
// connection, so run_job() can submit and then just read frames until the
// result lands, counting status pushes along the way.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "fasda/serve/job.hpp"
#include "fasda/serve/wire.hpp"

namespace fasda::serve {

/// Bounded reconnect policy for riding out a daemon restart window
/// (DESIGN.md §16): attempt k sleeps backoff_initial * 2^(k-1), capped.
/// Only connection-level failures with a retryable errno (ECONNREFUSED,
/// ECONNRESET, ECONNABORTED, ETIMEDOUT) are retried — a bad address or
/// any other hard error throws immediately.
struct RetryPolicy {
  int max_attempts = 10;
  std::chrono::milliseconds backoff_initial{50};
  std::chrono::milliseconds backoff_cap{2000};
};

/// The typed give-up: every attempt the policy allowed failed with a
/// retryable errno. Carries the attempt count so callers (loadgen) can
/// report how long they waited out the restart window.
class RetryGiveUpError : public WireError {
 public:
  RetryGiveUpError(const std::string& what, int attempts)
      : WireError(what), attempts_(attempts) {}
  int attempts() const { return attempts_; }

 private:
  int attempts_;
};

class Client {
 public:
  Client(const std::string& host, std::uint16_t port);
  /// Connects with bounded retry-with-backoff: a daemon mid-restart
  /// (ECONNREFUSED) is retried per `policy` instead of failing the first
  /// dial; throws RetryGiveUpError once the attempts are spent.
  Client(const std::string& host, std::uint16_t port,
         const RetryPolicy& policy);

  /// Drops the current connection and re-dials with the constructor's
  /// policy. Results already buffered from the old connection survive;
  /// jobs in flight on the old connection must be resubmitted (use an
  /// idempotency key so the server attaches instead of double-running).
  void reconnect();

  static bool errno_retryable(int err);

  struct SubmitReply {
    bool accepted = false;
    std::uint64_t job_id = 0;
    std::string reason;  ///< admit_reason / "bad-request" when rejected
    std::string detail;
  };

  /// Sends kSubmit and reads the kAccepted/kRejected reply. Throws
  /// WireError on socket failure or protocol violation.
  SubmitReply submit(const JobRequest& req);

  struct RunOutcome {
    SubmitReply reply;
    std::optional<JobResult> result;  ///< set iff reply.accepted
    int status_frames = 0;            ///< kStatus pushes seen on the way
  };

  /// submit() + read frames until this job's kResult arrives.
  RunOutcome run_job(const JobRequest& req);

  /// Reads frames until kResult for `job_id`; counts kStatus pushes into
  /// `status_frames` when non-null.
  JobResult wait_result(std::uint64_t job_id, int* status_frames = nullptr);

  /// kQuery for any job id; returns the kStatus payload (JSON text), or
  /// the kRejected payload with `rejected` set true.
  std::string query(std::uint64_t job_id, bool& rejected);

  /// kPing; returns the kPong payload (server stats JSON).
  std::string ping();

  /// kStats; returns the wall-clock observability body — JSON for
  /// format "json", Prometheus text exposition for "prometheus"
  /// (DESIGN.md §17). Throws WireError if the server rejects the format.
  std::string stats(const std::string& format = "json");

  Conn& conn() { return conn_; }

 private:
  WireFrame recv_checked();
  /// Buffers an unsolicited kStatus/kResult push (returns true) so a reply
  /// scan never loses a result that raced it; throws on kError.
  bool absorb_push(const WireFrame& frame);

  Conn conn_;
  std::string host_;
  std::uint16_t port_ = 0;
  RetryPolicy policy_;
  std::unordered_map<std::uint64_t, JobResult> results_;
  std::unordered_map<std::uint64_t, int> status_counts_;
};

}  // namespace fasda::serve
