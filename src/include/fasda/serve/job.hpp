#pragma once
// Job model for fasda_serve (DESIGN.md §15): what a tenant submits, what
// comes back, and the one execution path both the daemon and the direct
// BatchRunner comparison share.
//
// Determinism contract: execute_job() is a pure function of the JobRequest
// — the workload is regenerated from (space, per_cell, seed, …) with
// md::generate_dataset, replica r uses seed + r, and every replica runs
// through engine::BatchRunner whose per-replica results are worker-count
// independent (DESIGN.md §9). A JobResult produced by the daemon is
// therefore bitwise identical to one produced by calling execute_job()
// in-process, for any queue worker count and across daemon restarts —
// tests/serve_test.cpp proves it over a real loopback socket. To make
// "bitwise" checkable through a JSON protocol, energies travel as f64 bit
// patterns and the optional final state as hex-encoded bytes, never as
// decimal floats.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fasda/engine/batch_runner.hpp"
#include "fasda/engine/observers.hpp"
#include "fasda/serve/json.hpp"

namespace fasda::serve {

/// Admission resource caps (enforced by JobRequest::validate, so an
/// over-budget submit is a typed bad-request, never an allocation). The
/// daemon is shared across a trust boundary: without these, one request
/// for a huge space × per_cell × replicas product would OOM-kill every
/// tenant's jobs at make_replica_state time.
inline constexpr long long kMaxCellsPerAxis = 1024;
inline constexpr std::uint64_t kMaxSpaceCells = 1ull << 20;
inline constexpr std::uint64_t kMaxReplicaParticles = 1ull << 22;
inline constexpr std::uint64_t kMaxJobParticles = 1ull << 24;
/// return_state ships ~98 hex chars per particle in one kResult frame;
/// this keeps the worst-case result comfortably under wire.hpp's
/// 16 MiB kMaxFrameBytes (2^17 × 98 ≈ 12.3 MiB plus JSON overhead).
inline constexpr std::uint64_t kMaxReturnStateParticles = 1ull << 17;

/// One submitted job: a tenant, scheduling hints, the generated workload,
/// and the engine configuration for every replica of the ensemble.
struct JobRequest {
  std::string tenant = "default";
  /// Client-chosen dedup key (<= 128 chars; "" = none). A durable server
  /// remembers key -> job id across restarts, so resubmitting after an
  /// ambiguous crash (kAccepted lost in flight) attaches to the original
  /// job instead of double-running it (DESIGN.md §16).
  std::string idempotency;
  int priority = 0;    ///< higher runs first; ties break by arrival seq
  int replicas = 1;    ///< ensemble width; replica r gets seed + r
  int steps = 10;      ///< timesteps per replica
  int sample = 0;      ///< status-publish granularity; <= 0 = one block

  // Workload (md::generate_dataset over space cells of edge 8.5 Å).
  std::string space = "333";
  int per_cell = 8;
  std::uint64_t seed = 0x5eed;
  double temperature = 300.0;
  std::string forcefield = "na";  ///< na | nacl

  // Engine configuration (mirrors the fasda_md flags).
  std::string engine = "functional";
  double dt = 2.0;
  bool ewald = false;
  int threads = 1;            ///< reference/functional worker threads
  std::string cells;          ///< cycle engine: cells per node; "" = space
  int pes = 1;
  int spes = 1;
  int workers = 1;            ///< cycle-scheduler threads
  int proc_workers = 0;       ///< cycle engine: forked shard workers
  bool naive_tick = false;
  std::string faults;         ///< net::FaultPlan::parse spec; "" = none

  // Execution policy.
  int batch_workers = 1;      ///< BatchRunner threads for the ensemble
  bool supervise = false;     ///< run each replica under the supervisor
  int checkpoint_every = 0;   ///< supervised: steps between checkpoints
  int max_restarts = 3;
  bool allow_degraded = false;
  bool return_state = false;  ///< include hex final state per replica

  /// Parses a submit payload. Unknown keys are ignored (forward
  /// compatibility); a type-mismatched or out-of-range value fails with a
  /// one-line diagnostic in `error`.
  static std::optional<JobRequest> from_json(const json::Value& v,
                                             std::string& error);
  std::string to_json() const;

  /// Validates semantics that from_json cannot see alone (engine name
  /// registered, space/cells parse, faults spec parses, cycle-only flags).
  /// Returns a diagnostic or empty for OK.
  std::string validate() const;
};

/// Typed job outcome mapping the fasda_md exit-code taxonomy
/// (DESIGN.md §15): ok(0), degraded(4, completed on a re-sharded
/// topology), degraded-link(2), node-failure(3), incomplete(1).
enum class JobOutcome : std::uint8_t {
  kOk = 0,
  kDegraded,
  kDegradedLink,
  kNodeFailure,
  kIncomplete,
};

const char* job_outcome_name(JobOutcome o);
int job_outcome_exit_code(JobOutcome o);
std::optional<JobOutcome> job_outcome_from_name(std::string_view name);

/// Per-replica result. Energies are f64 bit patterns (hex); state_hex is
/// the byte-exact final state when the request asked for it; state_crc32
/// covers the same encoding always, so a client can verify bitwise
/// determinism without shipping the coordinates.
struct ReplicaOutcome {
  std::string label;
  JobOutcome outcome = JobOutcome::kIncomplete;
  std::string error;          ///< exception text when not kOk/kDegraded
  long long steps = 0;
  std::uint64_t potential_bits = 0;
  std::uint64_t kinetic_bits = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t temperature_bits = 0;
  std::uint32_t state_crc32 = 0;
  std::string state_hex;      ///< empty unless return_state
};

struct JobResult {
  std::uint64_t job_id = 0;
  JobOutcome outcome = JobOutcome::kIncomplete;  ///< worst replica outcome
  int exit_code = 1;
  std::vector<ReplicaOutcome> replicas;
  double wall_seconds = 0;  ///< excluded from the determinism contract

  static std::optional<JobResult> from_json(const json::Value& v,
                                            std::string& error);
  /// `deterministic_only` drops the wall-clock field so two results can be
  /// compared as strings.
  std::string to_json(bool deterministic_only = false) const;
};

/// Byte-exact state codec backing state_hex/state_crc32: cell_dims,
/// cell_size, then per-particle position/velocity f64 bits and element.
std::string encode_state_hex(const md::SystemState& state);
std::optional<md::SystemState> decode_state_hex(const std::string& hex);
std::uint32_t state_crc32(const md::SystemState& state);

/// Builds the engine spec the request describes. Throws
/// std::invalid_argument on specs validate() would reject.
engine::EngineSpec engine_spec_for(const JobRequest& req);

/// Generates replica r's initial state (seed + r, quantized dataset).
md::SystemState make_replica_state(const JobRequest& req, int replica);

/// Runs the whole ensemble and folds it into a JobResult. `observers`
/// (optional, may be null) yields a per-replica StepObserver the engine
/// run loop calls at every sample — the daemon hangs its streaming-status
/// publisher here; the direct path passes nullptr and still steps through
/// the identical engine::run() chunking, so observation never perturbs
/// results. Supervised requests run replicas sequentially under
/// supervisor::Supervisor; everything else goes through BatchRunner.
using ReplicaObserverFactory =
    std::function<engine::StepObserver*(int replica)>;

/// Durability hand-off between execute_job and the serve journal
/// (DESIGN.md §16). Only supervised jobs participate: the supervisor is
/// the layer that banks checkpoints, so non-supervised jobs recover by
/// deterministic re-run from scratch instead.
struct ExecutionHooks {
  /// Step-stamped checkpoint file for (replica, absolute step); "" skips
  /// the save. The supervisor writes the file (atomic tmp+rename) BEFORE
  /// `checkpointed` fires for the same step.
  std::function<std::string(int replica, long long step)> checkpoint_path;
  /// Called after the checkpoint file for (replica, absolute step) is
  /// durable — the journal appends its kCheckpoint record here.
  std::function<void(int replica, long long step)> checkpointed;
  /// Resume points: replica -> (banked step, checkpointed state). A listed
  /// replica restarts from that state and runs the remaining steps; its
  /// observers and result report absolute steps, so the output is bitwise
  /// identical to an uninterrupted run (the PR 4 supervisor guarantee
  /// lifted through the serve boundary).
  std::map<int, std::pair<long long, md::SystemState>> resume;
};

JobResult execute_job(std::uint64_t job_id, const JobRequest& req,
                      const ReplicaObserverFactory* observers = nullptr,
                      const ExecutionHooks* hooks = nullptr);

}  // namespace fasda::serve
