#pragma once
// Client-facing framing for fasda_serve (DESIGN.md §15).
//
// A serve connection speaks the same length-prefixed frame shape as the
// shard transport (shard/frames.hpp):
//
//   [u32 length][u32 crc][u8 type][payload ...]
//
// `length` counts the type byte plus the payload, little-endian; `crc` is
// CRC-32 over the same bytes. Payloads are JSON (serve/json.hpp) — the
// protocol crosses trust boundaries (any process may dial the socket), so
// unlike the shard transport the decoder here never trusts the peer:
// frames are capped at kMaxFrameBytes, a bad length/CRC/type is a typed
// DecodeStatus the server answers with a kError frame before closing, and
// the incremental FrameDecoder consumes byte streams of any chunking
// without ever reading past what arrived (fuzzed in tests/serve_test.cpp).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fasda/util/crc32.hpp"

namespace fasda::serve {

/// Frame types. Client-to-server requests first, server-to-client replies
/// second; kStatus and kResult are also pushed unsolicited to the
/// connection that submitted the job.
enum class MsgType : std::uint8_t {
  kSubmit = 1,  ///< client→server: JobRequest JSON
  kQuery,       ///< client→server: {"job": id}
  kPing,        ///< client→server: liveness + server health probe
  kStats,       ///< both ways: request {"format":"json"|"prometheus"};
                ///< the reply frame reuses the type, its payload is the
                ///< wall-clock stats body in the requested format
  kAccepted = 64,  ///< server→client: {"job": id} — admitted to the queue
  kRejected,       ///< server→client: {"reason": ..., "detail": ...}
  kStatus,         ///< server→client: job state + metrics snapshot
  kResult,         ///< server→client: JobResult JSON
  kPong,           ///< server→client: server metrics snapshot
  kError,          ///< server→client: protocol violation; connection closes
  kRecovering,     ///< server→client: journal replay in progress; retry
};

inline bool msg_type_known(std::uint8_t t) {
  return (t >= static_cast<std::uint8_t>(MsgType::kSubmit) &&
          t <= static_cast<std::uint8_t>(MsgType::kStats)) ||
         (t >= static_cast<std::uint8_t>(MsgType::kAccepted) &&
          t <= static_cast<std::uint8_t>(MsgType::kRecovering));
}

/// Hard cap on one frame (type byte + payload). A JobRequest is a few
/// hundred bytes and a full-state JobResult for served workloads stays in
/// the low megabytes; anything bigger is a desynchronized or hostile
/// stream.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

struct WireFrame {
  MsgType type = MsgType::kError;
  std::string payload;
};

enum class DecodeStatus : std::uint8_t {
  kFrame,     ///< a complete frame was produced
  kNeedMore,  ///< the buffered bytes end mid-frame; feed more
  kBadLength, ///< zero or over-cap length prefix
  kBadCrc,    ///< frame CRC mismatch
  kBadType,   ///< CRC-valid frame with an unknown type byte
};

inline const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadCrc: return "bad-crc";
    case DecodeStatus::kBadType: return "bad-type";
  }
  return "unknown";
}

/// Socket-level failure: peer closed, syscall error, send/recv timeout.
/// Protocol violations are NOT exceptions — they come back as DecodeStatus
/// so the server can answer with a typed kError frame before closing.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what)
      : std::runtime_error("serve: " + what) {}
};

inline std::vector<std::uint8_t> encode_frame(MsgType type,
                                              std::string_view payload) {
  // Enforce the cap on the sending side too: an oversized payload must
  // fail loudly here, not poison the peer's decoder with kBadLength (or,
  // past 4 GiB, silently wrap the u32 length prefix and desync the
  // stream). Admission caps (job.hpp) keep legitimate results under this.
  if (payload.size() > kMaxFrameBytes - 1) {
    throw WireError("frame payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame cap");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
  const std::uint8_t type_byte = static_cast<std::uint8_t>(type);
  util::Crc32 crc;
  crc.add_bytes(&type_byte, 1);
  if (!payload.empty()) crc.add_bytes(payload.data(), payload.size());
  std::vector<std::uint8_t> buf;
  buf.reserve(9 + payload.size());
  const auto put_u32 = [&buf](std::uint32_t v) {
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
    buf.push_back(static_cast<std::uint8_t>(v >> 16));
    buf.push_back(static_cast<std::uint8_t>(v >> 24));
  };
  put_u32(length);
  put_u32(crc.value());
  buf.push_back(type_byte);
  buf.insert(buf.end(), payload.begin(), payload.end());
  return buf;
}

/// Incremental frame extractor. feed() appends arriving bytes; next()
/// produces at most one frame per call. An error status poisons the stream
/// (the caller must close the connection) — after a bad length or CRC the
/// frame boundary is unknowable, so resynchronization is not attempted.
class FrameDecoder {
 public:
  void feed(const void* data, std::size_t n) {
    if (n == 0) return;
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  DecodeStatus next(WireFrame& out) {
    if (poisoned_ != DecodeStatus::kFrame) return poisoned_;
    if (buf_.size() - pos_ < 8) return compact(DecodeStatus::kNeedMore);
    const std::uint32_t length = get_u32(pos_);
    const std::uint32_t want_crc = get_u32(pos_ + 4);
    if (length == 0 || length > kMaxFrameBytes) {
      return poison(DecodeStatus::kBadLength);
    }
    if (buf_.size() - pos_ < 8 + static_cast<std::size_t>(length)) {
      return compact(DecodeStatus::kNeedMore);
    }
    util::Crc32 crc;
    crc.add_bytes(buf_.data() + pos_ + 8, length);
    if (crc.value() != want_crc) return poison(DecodeStatus::kBadCrc);
    const std::uint8_t type_byte = buf_[pos_ + 8];
    if (!msg_type_known(type_byte)) return poison(DecodeStatus::kBadType);
    out.type = static_cast<MsgType>(type_byte);
    out.payload.assign(
        reinterpret_cast<const char*>(buf_.data() + pos_ + 9), length - 1);
    pos_ += 8 + static_cast<std::size_t>(length);
    compact(DecodeStatus::kFrame);
    return DecodeStatus::kFrame;
  }

  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  DecodeStatus poison(DecodeStatus s) {
    poisoned_ = s;
    return s;
  }
  DecodeStatus compact(DecodeStatus s) {
    if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return s;
  }
  std::uint32_t get_u32(std::size_t at) const {
    return static_cast<std::uint32_t>(buf_[at]) |
           (static_cast<std::uint32_t>(buf_[at + 1]) << 8) |
           (static_cast<std::uint32_t>(buf_[at + 2]) << 16) |
           (static_cast<std::uint32_t>(buf_[at + 3]) << 24);
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  DecodeStatus poisoned_ = DecodeStatus::kFrame;
};

/// One serve connection. Owns the fd; move-only. send() writes whole
/// frames; recv() blocks until one frame (or a protocol error) is
/// available. Both ends use this class — the framing is symmetric.
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn() { close(); }

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  Conn(Conn&& o) noexcept
      : fd_(std::exchange(o.fd_, -1)), decoder_(std::move(o.decoder_)) {}
  Conn& operator=(Conn&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = std::exchange(o.fd_, -1);
      decoder_ = std::move(o.decoder_);
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Unblocks a recv() stuck in another thread; the fd stays owned.
  void shutdown_both() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void set_recv_timeout(int seconds) {
    if (fd_ < 0) return;
    timeval tv{};
    tv.tv_sec = seconds;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  /// Bounds every blocking send: a peer that stops reading makes send()
  /// throw WireError after `seconds` instead of holding the sending thread
  /// (a queue worker, on the server) forever once its TCP buffer fills.
  void set_send_timeout(int seconds) {
    if (fd_ < 0) return;
    timeval tv{};
    tv.tv_sec = seconds;
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }

  void send(MsgType type, std::string_view payload) {
    const std::vector<std::uint8_t> buf = encode_frame(type, payload);
    write_all(buf.data(), buf.size());
  }

  /// Raw bytes, bypassing the framer — fault-battery tests use this to
  /// deliver deliberately damaged frames.
  void send_raw(const void* data, std::size_t n) { write_all(data, n); }

  /// Returns kFrame with `out` filled, or the typed protocol error. Throws
  /// WireError on EOF/syscall failure/timeout.
  DecodeStatus recv(WireFrame& out) {
    for (;;) {
      const DecodeStatus st = decoder_.next(out);
      if (st != DecodeStatus::kNeedMore) return st;
      std::uint8_t chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          throw WireError("recv timed out");
        }
        throw WireError(std::string("recv failed: ") + std::strerror(errno));
      }
      if (n == 0) throw WireError("peer closed the connection");
      decoder_.feed(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  void write_all(const void* data, std::size_t size) {
    if (fd_ < 0) throw WireError("send on closed connection");
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (size > 0) {
      // MSG_NOSIGNAL: a vanished client surfaces as EPIPE, never SIGPIPE.
      const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // SO_SNDTIMEO expired: the peer stopped reading. The frame may
          // be half-written, so the stream is dead either way.
          throw WireError("send timed out");
        }
        throw WireError(std::string("send failed: ") + std::strerror(errno));
      }
      p += n;
      size -= static_cast<std::size_t>(n);
    }
  }

  int fd_ = -1;
  FrameDecoder decoder_;
};

/// Non-throwing connect: returns an invalid Conn with `err_out` set to the
/// failing errno (0 for a non-errno failure like a bad address). The retry
/// layer in serve::Client needs the raw errno to tell a restart window
/// (ECONNREFUSED) from a dead address.
inline Conn try_dial(const std::string& host, std::uint16_t port,
                     int& err_out) {
  err_out = 0;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    err_out = errno;
    return Conn();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Conn();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    err_out = errno;
    ::close(fd);
    return Conn();
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Conn(fd);
}

/// Connects to host:port (numeric IPv4, loopback in every shipped driver).
inline Conn dial(const std::string& host, std::uint16_t port) {
  int err = 0;
  Conn conn = try_dial(host, port, err);
  if (!conn.valid()) {
    if (err == 0) throw WireError("bad address: " + host);
    throw WireError("connect " + host + ":" + std::to_string(port) +
                    " failed: " + std::strerror(err));
  }
  return conn;
}

/// Binds and listens on host:port; port 0 picks an ephemeral port. Returns
/// the listening fd and the actual port.
inline std::pair<int, std::uint16_t> listen_on(const std::string& host,
                                               std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw WireError(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw WireError("bad address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    throw WireError("bind/listen " + host + ":" + std::to_string(port) +
                    " failed: " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw WireError(std::string("getsockname failed: ") + std::strerror(err));
  }
  return {fd, ntohs(bound.sin_port)};
}

}  // namespace fasda::serve
