#pragma once
// Write-ahead job journal for fasda_serve (DESIGN.md §16).
//
// An append-only file of CRC-framed records using the same discipline as
// the client wire protocol (serve/wire.hpp):
//
//   [u32 length][u32 crc][u8 type][payload ...]
//
// `length` counts the type byte plus the payload, little-endian; `crc` is
// CRC-32 over the same bytes. Payloads are JSON. The journal is the
// server's durability root: a job is acknowledged to a client only after
// its kAdmitted record is on disk, and a result is pushed only after its
// kCompleted record is on disk, so "acknowledged" always implies
// "recoverable".
//
// Recovery never trusts the file: scan_journal_bytes() walks records until
// the first damaged byte, salvages the valid prefix, and classifies the
// tail (clean / torn mid-record / corrupt) in a typed RecoveryReport — a
// torn final append from a crash is indistinguishable from power loss and
// both land in the same salvage path. open_appending() then truncates the
// file to the salvaged prefix (preserving the damaged tail in a
// `.quarantined` sidecar for post-mortems) and resumes appending.
// Compaction (rotate) rewrites the journal through the same tmp+rename
// path as md::save_checkpoint, so a crash mid-rotation leaves either the
// old complete journal or the new complete journal, never a mix.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fasda::serve {

/// Journal record types. The numeric values are the on-disk format;
/// renumbering breaks every existing state directory.
enum class JournalRecord : std::uint8_t {
  kAdmitted = 1,   ///< {"job","request":{...}} — written (and fsynced)
                   ///< BEFORE the client sees kAccepted. The request JSON
                   ///< is complete (tenant, idempotency, workload):
                   ///< recovery re-runs the job from this record alone.
  kStarted,        ///< {"job"} — a queue worker picked the job up.
  kCheckpoint,     ///< {"job","replica","step"} — the supervisor banked a
                   ///< checkpoint; the step-stamped state file is already
                   ///< durable (supervisor saves before observers fire).
  kCompleted,      ///< {"job","tenant","idempotency","result":{...}} —
                   ///< written BEFORE the kResult push. Self-sufficient
                   ///< so compaction can keep lone kCompleted records.
  kRejected,       ///< {"job"} — admission failed after the kAdmitted
                   ///< record (queue raced to capacity); the job is dead.
  kCleanShutdown,  ///< {} — drain finished with an idle queue; the next
                   ///< startup has no lost jobs to re-admit.
};

inline bool journal_record_known(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(JournalRecord::kAdmitted) &&
         t <= static_cast<std::uint8_t>(JournalRecord::kCleanShutdown);
}

inline const char* journal_record_name(JournalRecord t) {
  switch (t) {
    case JournalRecord::kAdmitted: return "admitted";
    case JournalRecord::kStarted: return "started";
    case JournalRecord::kCheckpoint: return "checkpoint";
    case JournalRecord::kCompleted: return "completed";
    case JournalRecord::kRejected: return "rejected";
    case JournalRecord::kCleanShutdown: return "clean-shutdown";
  }
  return "unknown";
}

/// Same cap as the wire protocol: a journal record carries at most one
/// JobResult, which admission caps keep in the low megabytes.
inline constexpr std::uint32_t kMaxJournalRecordBytes = 1u << 24;

/// When appends reach the disk. The exactly-once guarantee is stated per
/// policy in DESIGN.md §16: kAlways survives power loss, kNever survives
/// process death (SIGKILL) but not a machine crash.
enum class JournalFsync : std::uint8_t {
  kAlways,  ///< fsync after every append (default; the guarantee).
  kNever,   ///< rely on the page cache; fast, survives SIGKILL only.
};

/// I/O failure on the journal file itself (open/write/fsync/rename).
/// Record damage is NOT an exception — it comes back typed in a
/// RecoveryReport so startup can salvage instead of refusing to boot.
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what)
      : std::runtime_error("journal: " + what) {}
};

struct JournalEntry {
  JournalRecord type = JournalRecord::kAdmitted;
  std::string payload;
};

/// What the scan found past the last valid record.
enum class JournalTail : std::uint8_t {
  kClean,    ///< the file ends exactly on a record boundary
  kTorn,     ///< bytes end mid-record — the classic crashed-append tail
  kCorrupt,  ///< CRC mismatch, bad length, or unknown type in the tail
};

inline const char* journal_tail_name(JournalTail t) {
  switch (t) {
    case JournalTail::kClean: return "clean";
    case JournalTail::kTorn: return "torn";
    case JournalTail::kCorrupt: return "corrupt";
  }
  return "unknown";
}

/// Typed result of scanning a journal: the salvaged record prefix plus a
/// classification of whatever follows it. Never throws, never crashes,
/// never silently drops a valid prefix record — fuzzed in
/// tests/serve_durability_test.cpp (JournalFuzz).
struct RecoveryReport {
  std::vector<JournalEntry> entries;  ///< valid prefix, in append order
  std::size_t salvaged_bytes = 0;     ///< prefix length; truncate-to point
  std::size_t quarantined_bytes = 0;  ///< damaged tail length
  JournalTail tail = JournalTail::kClean;
  bool clean_shutdown = false;  ///< last salvaged record is kCleanShutdown
  std::string issue;            ///< human-readable tail diagnosis
};

/// Encodes one record in the on-disk framing (exposed for fuzzing).
std::vector<std::uint8_t> encode_journal_record(JournalRecord type,
                                                std::string_view payload);

/// Walks `n` bytes of journal, salvaging the valid record prefix.
RecoveryReport scan_journal_bytes(const std::uint8_t* data, std::size_t n);

/// The append handle. Move-only; owns the fd.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  Journal(Journal&& o) noexcept;
  Journal& operator=(Journal&& o) noexcept;

  /// Reads and scans `path`. A missing file is an empty clean report (a
  /// fresh state directory); a read failure throws JournalError.
  static RecoveryReport recover(const std::string& path);

  /// Truncates `path` to the salvaged prefix (writing any damaged tail to
  /// `path + ".quarantined"` first) and opens it for appending.
  void open_appending(const std::string& path, const RecoveryReport& report,
                      JournalFsync fsync_policy);

  /// Appends one record, fsyncing per policy. Throws JournalError on I/O
  /// failure — the server demotes that to journal-disabled rather than
  /// killing in-flight jobs.
  void append(JournalRecord type, std::string_view payload);

  /// Wall-clock latency observer for the second observability plane
  /// (DESIGN.md §17): called after every successful append with the whole
  /// call's duration and the fsync's share of it, both in microseconds
  /// (fsync_us is 0 under JournalFsync::kNever). Runs on the appending
  /// thread under journal locking — keep it cheap and non-throwing.
  using AppendObserver = std::function<void(std::uint64_t append_us,
                                            std::uint64_t fsync_us)>;
  void set_append_observer(AppendObserver observer) {
    observer_ = std::move(observer);
  }

  /// Atomically replaces the journal with `compacted` (tmp + fsync +
  /// rename + directory fsync) and keeps appending to the new file.
  void rotate(const std::vector<JournalEntry>& compacted);

  void close();
  bool is_open() const { return fd_ >= 0; }
  std::size_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  void write_file_all(int fd, const void* data, std::size_t size);
  void fsync_parent_dir();

  int fd_ = -1;
  std::string path_;
  std::size_t bytes_ = 0;
  JournalFsync fsync_policy_ = JournalFsync::kAlways;
  AppendObserver observer_;
};

}  // namespace fasda::serve
