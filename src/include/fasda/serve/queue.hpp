#pragma once
// Bounded job queue with admission control for fasda_serve (DESIGN.md
// §15). Admission is decided synchronously under one lock — a submit is
// either admitted with a monotonically increasing arrival sequence or
// rejected with a typed reason (queue full, tenant over quota, draining,
// stopped). Execution order is strict priority (higher first) with the
// arrival sequence as the deterministic tie-break, so for any fixed
// arrival order the pop order is a pure function of the submitted set —
// worker count only changes concurrency, never which job a free worker
// takes next.
//
// Drain protocol (the SIGTERM path): begin_drain() atomically stops
// admitting; everything already admitted still runs; wait_idle() returns
// once queued == running == 0. stop() is the hard variant for teardown —
// queued-but-unstarted work is dropped (each dropped entry's work is
// destroyed, never run).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fasda::obs {
class ServerStats;
}

namespace fasda::serve {

struct QueueConfig {
  std::size_t capacity = 256;    ///< max queued (not yet running) jobs
  std::size_t tenant_quota = 0;  ///< max queued+running per tenant; 0 = ∞
};

enum class Admit : std::uint8_t {
  kAdmitted = 0,
  kQueueFull,
  kTenantQuota,
  kDraining,
  kStopped,
};

const char* admit_reason(Admit a);

class JobQueue {
 public:
  explicit JobQueue(QueueConfig config);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Spawns `n` worker threads that pop and run admitted work. May be
  /// called once; n = 0 leaves the queue admission-only (tests pop with
  /// try_run_one()).
  void start_workers(std::size_t n);

  struct Ticket {
    Admit status = Admit::kStopped;
    std::uint64_t seq = 0;  ///< arrival sequence when admitted
  };

  /// Admission decision + enqueue, atomically. `work` runs exactly once on
  /// some worker (or try_run_one caller) unless the queue is stopped first.
  Ticket submit(const std::string& tenant, int priority,
                std::function<void()> work);

  /// Recovery-path enqueue (DESIGN.md §16): the work was already admitted
  /// and acknowledged by a previous daemon incarnation, so capacity,
  /// tenant-quota, and draining checks do not apply — refusing would drop
  /// an acknowledged job. Still charges tenant load and still refuses
  /// after stop(). Callers enqueue in original journal order, so the
  /// (priority, seq) pop order reproduces the pre-crash schedule.
  Ticket readmit(const std::string& tenant, int priority,
                 std::function<void()> work);

  /// Pops and runs the highest-priority entry on the calling thread.
  /// Returns false when nothing was queued.
  bool try_run_one();

  /// Stops admitting new work; admitted work keeps running.
  void begin_drain();
  bool draining() const;

  /// Blocks until queued == running == 0 (drain completion).
  void wait_idle();

  /// Hard stop: refuse new work, drop queued-but-unstarted entries, wake
  /// and join workers (the job each worker is executing finishes first).
  void stop();

  std::size_t queued() const;
  std::size_t running() const;
  /// Queued + running entries currently charged to `tenant`.
  std::size_t tenant_load(const std::string& tenant) const;

  /// Wall-clock observability sink (DESIGN.md §17): when set, the queue
  /// observes per-entry queue-wait (enqueue -> pop, covering recovery
  /// readmits too) and keeps the depth/running gauges current. The sink
  /// must outlive the queue; call before start_workers().
  void set_stats(obs::ServerStats* stats) { stats_ = stats; }

 private:
  struct Entry {
    int priority = 0;
    std::uint64_t seq = 0;
    std::uint64_t enqueued_us = 0;  ///< wall_micros() at admission
    std::string tenant;
    // Shared because std::set elements are const; the function itself is
    // only invoked once, by whichever thread extracts the entry.
    std::shared_ptr<std::function<void()>> work;
  };
  struct Order {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq < b.seq;
    }
  };

  Ticket enqueue_locked(const std::string& tenant, int priority,
                        std::function<void()> work);
  bool pop_locked(Entry& out);
  void run_entry(Entry entry);
  void worker_loop();

  QueueConfig config_;
  obs::ServerStats* stats_ = nullptr;  ///< leaf lock; safe under mu_
  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // workers: queue non-empty or stopping
  std::condition_variable cv_idle_;   // wait_idle: queued+running drained
  std::set<Entry, Order> pending_;
  std::unordered_map<std::string, std::size_t> tenant_load_;
  std::vector<std::thread> workers_;
  std::uint64_t next_seq_ = 1;
  std::size_t running_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
};

}  // namespace fasda::serve
