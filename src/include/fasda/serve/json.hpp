#pragma once
// Minimal JSON for the serve protocol (DESIGN.md §15): enough to parse a
// JobRequest from an untrusted socket and to build responses. Bounded
// recursion, strict (trailing bytes rejected), no dependencies. Numbers
// keep an exact int64 view when the text was integral, so seeds and job
// ids round-trip without double rounding; bitwise-critical doubles
// (energies, coordinates) never travel as JSON numbers at all — the job
// codec ships them as hex bit patterns.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fasda::serve::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  long long integer = 0;       ///< exact when `integral` is set
  bool integral = false;       ///< number text had no '.', 'e' or 'E'
  std::string string;
  std::vector<Value> items;                               ///< kArray
  std::vector<std::pair<std::string, Value>> members;     ///< kObject, in order

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_bool() const { return type == Type::kBool; }

  /// First member with `key`, or nullptr.
  const Value* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  double num_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  long long int_or(long long fallback) const {
    if (!is_number()) return fallback;
    return integral ? integer : static_cast<long long>(number);
  }
  bool bool_or(bool fallback) const { return is_bool() ? boolean : fallback; }
  std::string str_or(std::string_view fallback) const {
    return is_string() ? string : std::string(fallback);
  }
};

/// Strict parse of a complete JSON document. Returns nullopt and sets
/// `error` (if non-null) on malformed input, depth overflow (64), or
/// trailing non-whitespace.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Appends `s` JSON-escaped (no surrounding quotes).
void append_escaped(std::string& out, std::string_view s);

/// `"s"` with escaping — the building block for handwritten writers.
std::string quoted(std::string_view s);

/// Serializes a Value (round-trip form; integral numbers print exactly).
std::string dump(const Value& v);

}  // namespace fasda::serve::json
