#pragma once
// fasda_serve daemon core (DESIGN.md §15): a long-running TCP front door
// over the engine registry. Connections submit JobRequests; admitted jobs
// flow through the bounded priority JobQueue onto queue-worker threads
// that call serve::execute_job — the same pure function the direct
// BatchRunner path uses, which is the whole served-vs-direct determinism
// argument. Per-job streaming status is published into a per-job obs
// metrics registry and pushed to the submitting connection as kStatus
// frames; anyone may poll any job with kQuery.
//
// Lifecycle: start() binds and spawns the acceptor + queue workers;
// begin_drain() (the SIGTERM path) atomically stops admissions while
// admitted jobs keep running; drain_and_stop() waits for the queue to
// empty, then closes every socket and joins every thread. The destructor
// hard-stops (queued-but-unstarted jobs are dropped).

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fasda/obs/obs.hpp"
#include "fasda/obs/server_stats.hpp"
#include "fasda/serve/job.hpp"
#include "fasda/serve/journal.hpp"
#include "fasda/serve/queue.hpp"
#include "fasda/serve/wire.hpp"

namespace fasda::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;     ///< 0 = ephemeral; read back via port()
  std::size_t queue_workers = 1;  ///< 0 = admission-only (tests)
  QueueConfig queue;
  std::size_t result_history = 256;  ///< finished jobs kept for kQuery
  int recv_timeout_seconds = 600;    ///< per-connection read timeout
  /// Per-connection write timeout. A tenant that submits and then stops
  /// reading would otherwise block a queue worker forever inside a
  /// kStatus/kResult push once its TCP buffer fills; after this many
  /// seconds the send fails, the connection is marked dead and the job
  /// finishes without it.
  int send_timeout_seconds = 30;
  /// Durability root (DESIGN.md §16): "" keeps the PR 8 behavior (all
  /// state dies with the process). Non-empty names a directory holding
  /// the write-ahead journal + step-stamped supervisor checkpoints; on
  /// start() the journal is replayed, lost queued jobs are re-admitted in
  /// original order, interrupted supervised jobs resume from their last
  /// checkpoint, and completed results answer kQuery again.
  std::string state_dir;
  JournalFsync journal_fsync = JournalFsync::kAlways;
  /// Compact (rotate) the journal when it grows past this many bytes.
  std::size_t journal_rotate_bytes = 4u << 20;
  /// Test hook: hold the kRecovering window open this long before replay
  /// so tests can observe the recovering protocol deterministically.
  int recovery_delay_ms = 0;
  /// Wall-clock observability plane (DESIGN.md §17). `wall_obs` gates the
  /// whole plane — the ServerStats registry, per-job spans, and the kStats
  /// surface's numbers; off is the bench's metrics-off baseline. The
  /// deterministic per-job obs Hubs are unaffected either way.
  bool wall_obs = true;
  /// Periodic Prometheus text dump: "" disables; otherwise the file is
  /// rewritten every `metrics_every_seconds` (minimum 1) and once more at
  /// drain/stop.
  std::string metrics_out;
  int metrics_every_seconds = 5;
  /// Chrome trace dump of the wall-clock job spans, same cadence as
  /// metrics_out. The last periodic dump a SIGKILLed incarnation leaves
  /// behind is what stitches its spans to the next incarnation's.
  std::string trace_out;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, spawns the acceptor and queue workers. Throws
  /// WireError if the address cannot be bound.
  void start();

  std::uint16_t port() const { return port_; }
  const std::string& host() const { return config_.host; }

  /// Stops admitting jobs (kRejected "draining"); running jobs continue.
  void begin_drain();
  bool draining() const { return queue_.draining(); }

  /// Drain to empty, then tear down sockets and threads. Idempotent.
  void drain_and_stop();

  /// Hard stop for teardown: queued-but-unstarted jobs are dropped.
  void stop();

  // Introspection for tests and the daemon's exit report.
  std::uint64_t jobs_submitted() const { return jobs_submitted_.load(); }
  std::uint64_t jobs_completed() const { return jobs_completed_.load(); }
  std::uint64_t jobs_rejected() const { return jobs_rejected_.load(); }
  /// True while startup replay runs; kSubmit/kQuery answer kRecovering.
  bool recovering() const { return recovering_.load(); }
  /// Jobs this incarnation re-admitted from the journal (lost by a crash).
  std::uint64_t jobs_recovered() const { return jobs_recovered_.load(); }
  /// Re-admitted supervised jobs that resumed from a banked checkpoint.
  std::uint64_t jobs_resumed() const { return jobs_resumed_.load(); }
  /// Completed results restored from the journal for kQuery.
  std::uint64_t results_restored() const { return results_restored_.load(); }
  /// The startup scan's report (valid after start(); empty without a
  /// state_dir).
  const RecoveryReport& recovery_report() const { return recovery_report_; }
  std::size_t queue_depth() const { return queue_.queued(); }
  std::size_t jobs_running() const { return queue_.running(); }
  /// Live (not yet reaped) connections. A closed connection removes
  /// itself, so this returns to 0 once every client is gone — the
  /// long-running daemon never accumulates dead fds or threads.
  std::size_t connections() const;

  /// The wall-clock plane (DESIGN.md §17). Tests and benches read these
  /// directly; remote scrapers go through kStats / fasda_stat.
  obs::ServerStats& wall_stats() { return stats_; }
  obs::ServeTrace& wall_trace() { return trace_; }
  /// The kStats bodies, also usable in-process: health + metrics as JSON,
  /// or the Prometheus text exposition. Both refresh the gauges first.
  std::string stats_json();
  std::string stats_prometheus();

  /// Installs a SIGTERM + SIGINT handler that routes to `server`'s drain
  /// pipe (async-signal-safe write). Pass nullptr to restore the previous
  /// handlers. One server at a time.
  static void install_signal_drain(Server* server);

  /// Blocks until a drain signal arrives (SIGTERM/SIGINT via
  /// install_signal_drain, or request_drain()), then calls begin_drain()
  /// and returns.
  void wait_for_drain_signal();

  /// Programmatic equivalent of SIGTERM (also unblocks
  /// wait_for_drain_signal).
  void request_drain();

 private:
  struct ConnState;
  struct Job;

  void accept_loop();
  void connection_loop(std::shared_ptr<ConnState> conn);
  void reap_connection(std::uint64_t conn_id);
  void join_finished_conn_threads();
  void handle_submit(ConnState& conn, const std::string& payload);
  void handle_query(ConnState& conn, const std::string& payload);
  void handle_ping(ConnState& conn);
  void handle_stats(ConnState& conn, const std::string& payload);
  void run_job(std::shared_ptr<Job> job);
  std::string job_status_json(Job& job);
  void reap_history_locked();

  // Wall-clock plane plumbing (DESIGN.md §17).
  std::string health_json();    ///< the kPing body (also embedded in kStats)
  void refresh_wall_gauges();
  void dump_wall_obs();         ///< rewrite metrics_out / trace_out
  void metrics_loop();          ///< periodic dump thread

  // Durability plumbing (all no-ops without a state_dir).
  bool journal_enabled() const { return journal_ok_.load(); }
  std::string journal_path() const;
  std::string checkpoint_file(std::uint64_t job_id, int replica,
                              long long step) const;
  /// Appends one record; an I/O failure demotes the journal to disabled
  /// (jobs keep running non-durably) instead of killing the daemon.
  void journal_append(JournalRecord type, const std::string& payload);
  /// Replays the salvaged journal: restores completed results, re-admits
  /// lost jobs in original order (resuming supervised ones from their
  /// checkpoints), sweeps orphan checkpoint files, compacts, and closes
  /// the kRecovering window. Runs on recovery_thread_.
  void recover_and_admit();
  void join_recovery_thread();
  /// Rewrites the journal to the live minimum (kCompleted for retained
  /// finished jobs, kAdmitted + latest kCheckpoint for pending ones).
  void compact_journal();
  void remove_job_checkpoints(std::uint64_t job_id);

  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> torn_down_{false};

  JobQueue queue_;
  std::thread accept_thread_;

  // Connection registry. A connection_loop thread reaps itself on exit:
  // it erases its ConnState (dropping the last long-lived reference, which
  // closes the fd) and parks its joinable std::thread handle on
  // finished_conn_threads_, which the acceptor (and stop()) joins. A
  // long-running daemon therefore holds fds/threads only for live clients.
  mutable std::mutex conns_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ConnState>> conns_;
  std::unordered_map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::thread> finished_conn_threads_;
  std::uint64_t next_conn_id_ = 1;

  std::mutex jobs_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::uint64_t> finished_order_;
  std::unordered_map<std::string, std::uint64_t> idempotency_;  // key -> id
  std::uint64_t next_job_id_ = 1;

  // Lock order: jobs_mu_ -> job->mu -> journal_mu_ -> queue internals.
  std::mutex journal_mu_;
  Journal journal_;
  std::atomic<bool> journal_ok_{false};
  std::atomic<bool> recovering_{false};
  std::mutex recovery_join_mu_;
  std::thread recovery_thread_;
  RecoveryReport recovery_report_;

  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> jobs_recovered_{0};
  std::atomic<std::uint64_t> jobs_resumed_{0};
  std::atomic<std::uint64_t> results_restored_{0};

  // The wall-clock observability plane (DESIGN.md §17) — never mixed with
  // the deterministic per-job Hubs. stats_'s mutex is a leaf lock: safe to
  // emit under any server lock, and it takes none itself.
  obs::ServerStats stats_;
  obs::ServeTrace trace_;
  std::uint64_t start_us_ = 0;  ///< wall_micros() at start()
  std::mutex metrics_cv_mu_;
  std::condition_variable metrics_cv_;
  bool metrics_stop_ = false;
  std::thread metrics_thread_;

  int drain_pipe_[2] = {-1, -1};  // [0] read, [1] write (signal-safe)
};

}  // namespace fasda::serve
