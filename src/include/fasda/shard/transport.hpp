#pragma once
// The shard boundary (DESIGN.md §14). Exactly four interactions cross
// between FPGA-node shards during a run:
//
//   1. two-phase packet commit — fabric deliveries into peer endpoints,
//   2. bulk-barrier arrival votes and releases (kBulk sync only),
//   3. cross-shard wake pokes (elision contract, DESIGN.md §13),
//   4. the end-of-run fold of traffic/utilization/metrics into the cluster
//      reports.
//
// ShardTransport makes that boundary explicit and pluggable:
//
//   InProcTransport — all shards in one address space, driven by
//     Scheduler::run_until exactly as before (zero-copy, bit-for-bit the
//     historical behaviour, including the thread-parallel scheduler).
//   ProcTransport — one forked worker process per shard slice; the same
//     four interactions move over socketpairs using the net/wire.hpp packet
//     encoding plus the frames.hpp control framing. Bitwise identical to
//     in-process by the same argument that makes threads identical to
//     serial: every cross-shard effect is >= 1 cycle delayed, so shipping
//     it between cycles cannot change what any tick reads.
//
// core::Simulation constructs one transport at the end of its constructor
// and drives every run() through it.

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fasda/fpga/node.hpp"

namespace fasda::shard {

/// A degraded link whose peer node has been heartbeat-silent longer than
/// this is attributed to the dead node, not the wire (the same slack the
/// in-process health check has always used).
inline constexpr sim::Cycle kNodeSilenceSlack = 64;

/// Per-run limits handed down from core::Simulation's config. Kept out of
/// ClusterRefs so the transport layer has no dependency on core.
struct RunLimits {
  /// Cycle budget per iteration; the absolute budget for a run is
  /// cycle() + max_cycles_per_iteration * iterations.
  sim::Cycle max_cycles_per_iteration = 0;
  /// Watchdog trip budget (0 disables the watchdog checks).
  sim::Cycle watchdog_budget = 0;
  /// True when a FaultPlan is attached: arms the degraded-link checks.
  bool fault_aware = false;
};

/// Borrowed references to the cluster the transport drives. Everything is
/// owned by core::Simulation and outlives the transport. `barrier` is only
/// non-null for process transports in kBulk mode (the split barrier is a
/// transport concern; chained sync crosses shards through the fabrics).
class SplitBarrier;
struct ClusterRefs {
  sim::Scheduler* scheduler = nullptr;
  net::Fabric<net::PosRecord>* pos = nullptr;
  net::Fabric<net::FrcRecord>* frc = nullptr;
  net::Fabric<net::MigRecord>* mig = nullptr;
  SplitBarrier* barrier = nullptr;
  const std::vector<std::unique_ptr<fpga::FpgaNode>>* nodes = nullptr;
  obs::Hub* obs = nullptr;
  const md::ForceField* ff = nullptr;
  double cutoff = 0.0;
  float dt_fs = 0.0f;
};

/// One node's health sample, shipped worker→parent after every state
/// change (arm, jump, executed cycle) so the parent's between-cycles health
/// check reads exactly what the in-process done() predicate would.
struct NodeStatus {
  bool done = false;
  sim::Cycle heartbeat = 0;
  std::string phase;
  /// First degraded link reported by the node's endpoints, if any.
  bool has_degraded = false;
  net::DegradedLink degraded{};
  std::string degraded_channel;
};

/// Post-run image of everything core::Simulation's report accessors read
/// from live objects in the in-process case. Particle positions/velocities
/// are NOT here — the fold writes them back into the parent's own CBB
/// caches, so state() and the energy accessors stay transport-agnostic.
/// Forces are carried (Cbb::forces() derives them from fixed-point
/// accumulators that only the owning worker holds).
struct ClusterFold {
  struct Node {
    std::uint64_t pairs_issued = 0;
    sim::Cycle heartbeat = 0;
    bool alive = false;
    std::vector<sim::Cycle> force_phase_starts;
    sim::UtilCounter pos_ring, frc_ring, filter, pe, mu;
    /// Endpoint protocol counters, merged over the three channels.
    std::map<net::Link, net::LinkStats> link_stats;
    /// Per local CBB index: the force readout for each particle slot.
    std::vector<std::vector<geom::Vec3f>> cbb_forces;
  };

  std::vector<Node> nodes;  // by node id
  net::TrafficMatrix pos_traffic, frc_traffic, mig_traffic;
  std::map<net::Link, net::LinkStats> pos_faults, frc_faults, mig_faults;
  sim::ElisionStats elision;
};

/// BulkBarrier split across worker processes. The parent keeps the base
/// counting behaviour; a worker (after enter_worker_mode(), called between
/// fork and the first tick) records its nodes' arrivals as votes for the
/// parent to replay, and answers released()/release_cycle() from the
/// release announcements the parent mirrors back. Bitwise identical to the
/// shared barrier because a generation completed at cycle T is releasable
/// no earlier than T + release_latency >= T + 1 — the round trip fits in
/// the same between-cycles gap the fabrics use.
class SplitBarrier : public sync::BulkBarrier {
 public:
  SplitBarrier(int num_nodes, sim::Cycle release_latency)
      : sync::BulkBarrier(num_nodes, release_latency) {}

  /// Irreversibly switches this copy to the worker-side protocol. The
  /// worker scheduler is serial, so the vote/mirror state needs no lock.
  void enter_worker_mode() { worker_mode_ = true; }

  void arrive(std::uint64_t seq, sim::Cycle now) override {
    if (!worker_mode_) {
      sync::BulkBarrier::arrive(seq, now);
      return;
    }
    (void)now;  // the parent replays the vote at the round's cycle
    votes_.push_back(seq);
  }

  bool released(std::uint64_t seq, sim::Cycle now) const override {
    if (!worker_mode_) return sync::BulkBarrier::released(seq, now);
    const auto it = releases_.find(seq);
    return it != releases_.end() && now >= it->second;
  }

  std::optional<sim::Cycle> release_cycle(std::uint64_t seq) const override {
    if (!worker_mode_) return sync::BulkBarrier::release_cycle(seq);
    const auto it = releases_.find(seq);
    if (it == releases_.end()) return std::nullopt;
    return it->second;
  }

  /// Worker side: drains the arrivals recorded since the last executed
  /// cycle, in arrival order, for the kReport frame.
  std::vector<std::uint64_t> take_votes() {
    std::vector<std::uint64_t> v;
    v.swap(votes_);
    return v;
  }

  /// Worker side: mirrors a release announced by the parent. The caller
  /// also pokes the scheduler (wake_all_shards) — the mirror replaces the
  /// wake hook the completing arrival would have fired in-process.
  void add_release(std::uint64_t seq, sim::Cycle release_at) {
    releases_[seq] = release_at;
  }

 private:
  bool worker_mode_ = false;
  std::vector<std::uint64_t> votes_;
  std::map<std::uint64_t, sim::Cycle> releases_;
};

/// The pluggable shard boundary. One instance per Simulation, constructed
/// after the cluster is fully built and particles are loaded.
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  virtual const char* kind() const = 0;  ///< "inproc" | "proc"
  /// Worker process count (0 for the in-process transport).
  virtual int num_procs() const = 0;

  /// The cluster's current cycle (the scheduler clock in-process, the
  /// parent's lock-step round clock for process workers).
  virtual sim::Cycle cycle() const = 0;

  /// Runs `iterations` armed timesteps to completion. Throws
  /// sync::NodeFailureError / sync::DegradedLinkError from the
  /// between-cycles health checks and std::runtime_error on cycle-budget
  /// overrun — identical types, messages and detection cycles across
  /// transports. On every exit path the end-of-run fold is refreshed.
  virtual void run(int iterations, const RunLimits& limits) = 0;

  /// The post-run cluster image, or nullptr when the live objects are
  /// current (in-process transport) and the accessors should read them
  /// directly.
  virtual const ClusterFold* fold() const = 0;

  virtual const sim::ElisionStats& elision_stats() const = 0;

  /// Worker process ids (empty in-process); exposed for lifecycle tests.
  virtual std::vector<pid_t> worker_pids() const { return {}; }
};

std::unique_ptr<ShardTransport> make_inproc_transport(ClusterRefs refs);
std::unique_ptr<ShardTransport> make_proc_transport(ClusterRefs refs,
                                                    int num_workers);

}  // namespace fasda::shard
