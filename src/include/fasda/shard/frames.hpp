#pragma once
// Control framing for the shard transport (DESIGN.md §14).
//
// A shard::ProcTransport parent and its worker processes speak a
// length-prefixed frame protocol over a stream socketpair:
//
//   [u32 length][u32 crc][u8 type][payload ...]
//
// `length` counts the type byte plus the payload, little-endian; `crc` is
// CRC-32 over the same bytes, so a torn or corrupted frame is detected at
// the boundary instead of desynchronizing the round protocol. Data packets
// ride inside kReport/kDeliver payloads in the net/wire.hpp encoding — the
// same Packet wire format the fuzz tests cover — framed, not re-framed:
// the frame CRC covers them like any other payload bytes.
//
// The channel is strictly request/reply in frame order (the socket is a
// FIFO), so no frame carries a sequence number. A peer that dies mid-frame
// surfaces as TransportError from recv()/send(), which ProcTransport
// converts into the typed sync::NodeFailureError for the owning node.

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fasda/util/crc32.hpp"

namespace fasda::shard {

/// Round protocol frame types (DESIGN.md §14). Parent-to-worker frames
/// first, worker-to-parent replies second; kError may replace any reply.
enum class FrameType : std::uint8_t {
  kStart = 1,   ///< parent→worker: arm owned nodes for N iterations
  kSweep,       ///< parent→worker: run the loop-top wake sweep
  kJump,        ///< parent→worker: jump a globally dead window
  kExec,        ///< parent→worker: execute one cycle
  kDeliver,     ///< parent→worker: routed deliveries + barrier releases
  kFinish,      ///< parent→worker: settle the run (flush deferred idle)
  kFold,        ///< parent→worker: request the end-of-run cluster fold
  kShutdown,    ///< parent→worker: exit cleanly
  kStatus,      ///< worker→parent: per-owned-node health statuses
  kWake,        ///< worker→parent: the swept minimum wake cycle
  kReport,      ///< worker→parent: statuses + barrier votes + deliveries
  kFoldData,    ///< worker→parent: the serialized fold payload
  kError,       ///< worker→parent: exception text; worker exits after
};

/// Transport-boundary failure: peer closed, syscall error, or a frame that
/// failed the length/CRC checks. Never escapes shard::ProcTransport — it is
/// converted to sync::NodeFailureError naming the dead worker's first node.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error("shard: " + what) {}
};

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// One end of a worker socketpair. Owns the fd; move-only. send()/recv()
/// block until the whole frame moved (the protocol is lock-step, so a
/// blocked peer means the other side is computing, not deadlocked).
class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel() { close(); }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Channel& operator=(Channel&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send(FrameType type, const std::vector<std::uint8_t>& payload) {
    const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
    util::Crc32 crc;
    const std::uint8_t type_byte = static_cast<std::uint8_t>(type);
    crc.add_bytes(&type_byte, 1);
    if (!payload.empty()) crc.add_bytes(payload.data(), payload.size());
    std::vector<std::uint8_t> buf;
    buf.reserve(9 + payload.size());
    put_u32(buf, length);
    put_u32(buf, crc.value());
    buf.push_back(type_byte);
    buf.insert(buf.end(), payload.begin(), payload.end());
    write_all(buf.data(), buf.size());
  }

  Frame recv() {
    std::uint8_t header[8];
    read_all(header, sizeof header);
    const std::uint32_t length = get_u32(header);
    const std::uint32_t want_crc = get_u32(header + 4);
    if (length == 0 || length > kMaxFrameBytes) {
      throw TransportError("bad frame length " + std::to_string(length));
    }
    std::vector<std::uint8_t> body(length);
    read_all(body.data(), body.size());
    util::Crc32 crc;
    crc.add_bytes(body.data(), body.size());
    if (crc.value() != want_crc) throw TransportError("frame CRC mismatch");
    Frame f;
    f.type = static_cast<FrameType>(body[0]);
    f.payload.assign(body.begin() + 1, body.end());
    return f;
  }

 private:
  /// A control frame bigger than this is certainly a desynchronized stream:
  /// even a full-cluster fold stays far below it.
  static constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

  static void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  }
  static std::uint32_t get_u32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  void write_all(const void* data, std::size_t size) {
    if (fd_ < 0) throw TransportError("send on closed channel");
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (size > 0) {
      // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
      // parent with SIGPIPE.
      const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw TransportError(std::string("send failed: ") +
                             std::strerror(errno));
      }
      p += n;
      size -= static_cast<std::size_t>(n);
    }
  }

  void read_all(void* data, std::size_t size) {
    if (fd_ < 0) throw TransportError("recv on closed channel");
    auto* p = static_cast<std::uint8_t*>(data);
    while (size > 0) {
      const ssize_t n = ::recv(fd_, p, size, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw TransportError(std::string("recv failed: ") +
                             std::strerror(errno));
      }
      if (n == 0) throw TransportError("peer closed the channel");
      p += n;
      size -= static_cast<std::size_t>(n);
    }
  }

  int fd_ = -1;
};

}  // namespace fasda::shard
