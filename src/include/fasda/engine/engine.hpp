#pragma once
// Library-level engine abstraction over the repo's three MD back ends
// (see the README engine table):
//
//   "reference"   md::ReferenceEngine  — float64 ground truth
//   "functional"  md::FunctionalEngine — exact FASDA hardware numerics
//   "cycle"       core::Simulation     — the cycle-level cluster machine
//
// Every engine advances the same physics, so a single interface covers
// stepping, state export, forces, energies and last-run metrics. The
// adapters wrap the existing engines without changing their numerics: a
// program written against engine::Engine produces bit-identical
// trajectories to one driving the underlying engine directly. Future back
// ends (GPU model, remote cluster, checkpoint-resume farm) plug in through
// engine::Registry without touching call sites.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fasda/md/force_field.hpp"
#include "fasda/md/system_state.hpp"

namespace fasda::engine {

/// Counters from step() calls so far. The cycle-level fields mirror the
/// AXI-Lite counters the paper's artifact reads back and are populated only
/// when has_cycle_counters is set (the "cycle" engine).
struct StepMetrics {
  long long steps_completed = 0;
  double wall_seconds = 0;          ///< wall time spent inside step()
  std::size_t last_pair_count = 0;  ///< pairs accepted in the last evaluation

  bool has_cycle_counters = false;
  std::uint64_t total_cycles = 0;
  double microseconds_per_day = 0;  ///< the Fig. 16 metric
  double pe_hardware_utilization = 0;
  double pe_time_utilization = 0;
  std::uint64_t position_packets = 0;
  std::uint64_t force_packets = 0;
};

/// Energies of one sampled configuration, measured in double precision from
/// the exported state — the observable the paper compares against OpenMM.
struct Energies {
  double potential = 0;  ///< internal units
  double kinetic = 0;
  double total = 0;
  double temperature = 0;  ///< K
};

/// Rollback point for supervised runs: the absolute step count plus the
/// exported state. Rebuilding an engine with the same spec over `state`
/// resumes the trajectory — bit-identically for the fixed-point back ends,
/// whose Q2.28 cell-offset positions survive the export/import round trip
/// exactly (supervisor::Supervisor's replay-parity guarantee rests on
/// this; see DESIGN.md "Supervision and recovery").
struct Checkpoint {
  long long step = 0;
  md::SystemState state;
};

/// Uniform stepping interface over the back ends. Implementations advance
/// real particle data; step(n) then state() is the whole contract a driver
/// needs, everything else is observation.
class Engine {
 public:
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registry key of the back end ("reference", "functional", "cycle", …).
  const std::string& name() const { return name_; }
  const md::ForceField& force_field() const { return ff_; }

  /// Advances n timesteps, accumulating wall time into metrics().
  void step(int n = 1);

  /// Exports the current state as absolute double-precision coordinates.
  virtual md::SystemState state() const = 0;

  /// Snapshot for rollback-and-replay. The default — step count + state()
  /// — is complete for every built-in back end; a back end carrying extra
  /// evolving state (thermostat history, RNG streams) must override.
  virtual Checkpoint checkpoint() const {
    return {metrics().steps_completed, state()};
  }

  /// Forces from the most recent force evaluation (i.e. the last timestep),
  /// indexed by original particle id, widened losslessly to double for the
  /// float32 back ends. Zero before the first step().
  virtual std::vector<geom::Vec3d> forces_by_particle() const = 0;

  /// Potential energy of the current configuration in internal units,
  /// measured with the engine's own cutoff/terms.
  virtual double potential_energy() = 0;
  double total_energy() { return potential_energy() + kinetic_energy(); }
  double kinetic_energy() const;

  /// Potential + kinetic + temperature of the current configuration.
  Energies energies();

  const StepMetrics& metrics() const { return metrics_; }

 protected:
  Engine(std::string name, md::ForceField ff)
      : name_(std::move(name)), ff_(std::move(ff)) {}

  virtual void do_step(int n) = 0;
  /// Called after each do_step() so back ends can refresh counters.
  virtual void update_metrics(StepMetrics& m) = 0;

 private:
  std::string name_;
  md::ForceField ff_;
  StepMetrics metrics_;
};

}  // namespace fasda::engine
