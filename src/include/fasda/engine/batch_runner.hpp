#pragma once
// BatchRunner: N independent replicas (distinct seeds, datasets, force
// fields, even back ends) run concurrently on a shared util::ThreadPool.
// This is the throughput half of the ROADMAP's "sharding, batching, async"
// — the ensemble/screening regime where FASDA's strong-scaling argument
// lives (many small systems, time-to-solution per candidate).
//
// Determinism contract: each replica is a pure function of its BatchJob —
// no replica reads another's state, results land in a pre-sized slot by
// index — so per-replica results are identical for any worker count
// (the same discipline DESIGN.md §8 established for the cycle scheduler).
// Only the wall-clock aggregates vary with workers.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fasda/engine/registry.hpp"
#include "fasda/util/thread_pool.hpp"

namespace fasda::engine {

class ReplicaContext;

/// One independent work unit: a state, a force field, the engine spec to
/// build over them, and either a default run (`steps` timesteps, score =
/// final total energy) or a custom `body` (equilibration protocols,
/// scoring windows, anything that drives the Engine).
struct BatchJob {
  std::string label;
  md::SystemState state;
  md::ForceField ff;
  EngineSpec spec;
  int steps = 0;
  /// Optional custom replica body; returns the replica's score.
  std::function<double(ReplicaContext&)> body;
};

/// Handed to a custom body: the live engine plus the ability to rebuild it
/// over a modified state (velocity rescaling between equilibration blocks,
/// restarts — anything that must re-import coordinates).
class ReplicaContext {
 public:
  ReplicaContext(const BatchJob& job, const Registry& registry);

  Engine& engine() { return *engine_; }
  const BatchJob& job() const { return job_; }

  /// Recreates the engine (same spec) over `state`.
  void rebuild(const md::SystemState& state);

  /// Timesteps advanced across every engine this replica has built.
  long long total_steps() const {
    return steps_before_rebuilds_ + engine_->metrics().steps_completed;
  }

 private:
  const BatchJob& job_;
  const Registry& registry_;
  /// job.spec with the telemetry hub detached: replicas run concurrently,
  /// and the obs sharding contract (one writer per shard) does not hold
  /// across independent replicas sharing a hub.
  EngineSpec spec_;
  std::unique_ptr<Engine> engine_;
  long long steps_before_rebuilds_ = 0;
};

/// What took a failed replica down. Fabric/node failures are first-class:
/// an ensemble screen keeps its surviving replicas and reports exactly
/// which candidate hit a degraded link or a dead node.
enum class ReplicaFailure { kNone, kDegradedLink, kNodeFailure, kOther };

struct ReplicaResult {
  std::string label;
  bool ok = false;
  std::string error;  ///< exception text when !ok
  ReplicaFailure failure = ReplicaFailure::kNone;
  /// Failed node for kNodeFailure, degraded link's dst for kDegradedLink.
  idmap::NodeId failed_node = -1;
  double score = 0;
  Energies final_energies;
  md::SystemState final_state;
  long long steps = 0;      ///< timesteps the replica's engine advanced
  double seconds = 0;       ///< replica wall time
  double simulated_us = 0;  ///< steps × dt, in µs of MD
};

struct BatchReport {
  std::vector<ReplicaResult> replicas;  ///< same order as the jobs
  std::size_t workers = 1;
  double wall_seconds = 0;

  // Aggregate throughput.
  double replicas_per_hour = 0;
  double simulated_us = 0;            ///< total µs of MD across replicas
  double us_per_day_per_replica = 0;  ///< mean per-replica Fig. 16 metric
};

class BatchRunner {
 public:
  /// `workers` = 0 picks hardware_concurrency. The pool is created once and
  /// shared by every run() call.
  explicit BatchRunner(std::size_t workers = 0,
                       const Registry& registry = Registry::instance());

  std::size_t workers() const { return pool_.size(); }

  /// Runs every job to completion; a replica that throws is reported with
  /// ok = false and does not disturb the others.
  BatchReport run(const std::vector<BatchJob>& jobs);

 private:
  const Registry& registry_;
  util::ThreadPool pool_;
};

}  // namespace fasda::engine
