#pragma once
// StepObserver: the sampling hook that replaces the copy-pasted
// energy-print / XYZ-dump / checkpoint loops the tool and examples used to
// carry. engine::run() drives an Engine in sample-sized blocks and fans
// each snapshot out to the observers; the built-ins below cover the three
// things every driver did by hand.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "fasda/engine/engine.hpp"
#include "fasda/md/xyz_io.hpp"
#include "fasda/obs/obs.hpp"

namespace fasda::engine {

/// Receives every sampled snapshot of a run, including the initial one
/// (step 0) before any stepping.
class StepObserver {
 public:
  virtual ~StepObserver() = default;

  virtual void on_sample(int step, const md::SystemState& state,
                         const Energies& energies) = 0;

  /// Called once after the last step of engine::run().
  virtual void on_finish(int /*steps*/, Engine& /*engine*/) {}
};

struct RunResult {
  int steps = 0;
  double wall_seconds = 0;
  Energies initial;
  Energies final_energies;
};

/// Steps `engine` for `steps` timesteps in blocks of `sample_every`
/// (clamped to the remainder; <= 0 means a single block), sampling the
/// state + energies at step 0 and after every block. The last sample is
/// always the final configuration.
RunResult run(Engine& engine, int steps, int sample_every,
              const std::vector<StepObserver*>& observers);

/// Prints the classic "step / E total / T" table.
class EnergyTablePrinter final : public StepObserver {
 public:
  explicit EnergyTablePrinter(std::FILE* out = stdout);
  void on_sample(int step, const md::SystemState& state,
                 const Energies& energies) override;

 private:
  std::FILE* out_;
  bool header_printed_ = false;
};

/// Writes one extended-XYZ frame per sample ("step=N" in the comment).
class XyzObserver final : public StepObserver {
 public:
  XyzObserver(const std::string& path, const md::ForceField& ff);
  void on_sample(int step, const md::SystemState& state,
                 const Energies& energies) override;
  int frames_written() const { return writer_.frames_written(); }

 private:
  md::XyzWriter writer_;
};

/// Publishes every sample into the metrics registry (`md.step` and the
/// `md.energy.*` gauges, a `md.samples` counter) and, when given a path,
/// rewrites the whole snapshot there every `write_every` samples and once
/// more on finish — a poor man's scrape endpoint for a batch run. A path
/// ending in ".prom" gets Prometheus text exposition, anything else JSON.
/// The registry values are simulation state only, so the written file is
/// identical for any worker count.
class MetricsObserver final : public StepObserver {
 public:
  explicit MetricsObserver(obs::Hub& hub, std::string path = {},
                           int write_every = 1);
  void on_sample(int step, const md::SystemState& state,
                 const Energies& energies) override;
  void on_finish(int steps, Engine& engine) override;

  int writes() const { return writes_; }

 private:
  void write_file();

  obs::Hub& hub_;
  std::string path_;
  int write_every_;
  int samples_since_write_ = 0;
  int writes_ = 0;
  obs::Handle h_step_;
  obs::Handle h_potential_;
  obs::Handle h_kinetic_;
  obs::Handle h_total_;
  obs::Handle h_temperature_;
  obs::Handle h_samples_;
};

/// Remembers the most recent sample and saves it as a binary checkpoint on
/// finish — because the final sample is always the final configuration,
/// the file restarts the run exactly where it ended. The save goes through
/// md::save_checkpoint's tmp-then-rename path, so an interrupted write
/// never leaves a torn restore point behind.
class CheckpointObserver final : public StepObserver {
 public:
  explicit CheckpointObserver(std::string path);
  void on_sample(int step, const md::SystemState& state,
                 const Energies& energies) override;
  void on_finish(int steps, Engine& engine) override;

  const std::optional<md::SystemState>& last_state() const { return last_; }

 private:
  std::string path_;
  std::optional<md::SystemState> last_;
};

}  // namespace fasda::engine
