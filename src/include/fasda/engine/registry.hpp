#pragma once
// EngineSpec + Registry: one config struct and one factory keyed by name
// build any back end over a SystemState. The three built-ins register
// themselves; additional back ends register at startup via Registry::add
// and become available to every driver (fasda_md, examples, BatchRunner)
// with no call-site changes.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fasda/core/simulation.hpp"
#include "fasda/engine/engine.hpp"
#include "fasda/interp/interp_table.hpp"
#include "fasda/obs/obs.hpp"

namespace fasda::engine {

/// Everything needed to build an engine from a SystemState. Geometry comes
/// from the state itself (cell_dims / cell_size); the spec carries the
/// integration, threading and — for the cycle engine — cluster parameters.
struct EngineSpec {
  std::string engine = "functional";  ///< registry key
  double dt = 2.0;                    ///< fs
  md::ForceTerms terms{};
  interp::InterpConfig table{};
  std::size_t threads = 1;  ///< reference/functional worker threads

  // Cycle-engine cluster shape. cells_per_node defaults to the whole space
  // (a single simulated FPGA); node_dims is derived as space / cells.
  std::optional<geom::IVec3> cells_per_node;
  int pes_per_spe = 1;
  int spes = 1;
  int num_worker_threads = 1;  ///< cycle-scheduler threads (DESIGN.md §8)
  /// Cycle-engine shard worker processes (DESIGN.md §14). 0 = in-process;
  /// N >= 1 forks min(N, nodes) workers, bitwise identical to in-process.
  /// Mutually exclusive with num_worker_threads > 1.
  int proc_workers = 0;
  net::ChannelConfig channel{};
  /// Lossy-fabric model (DESIGN.md §10). Attaching a plan arms the
  /// ack/retransmit protocol; stepping throws sync::DegradedLinkError if a
  /// link exhausts its retries, sync::NodeFailureError if a node dies.
  std::optional<net::FaultPlan> faults;
  net::ReliabilityConfig reliability{};
  /// Cycle-engine watchdog budget (DESIGN.md §11); 0 = keep the
  /// ClusterConfig default.
  sim::Cycle watchdog_budget = 0;
  /// Force the cycle engine's naive every-cycle tick instead of idle-cycle
  /// elision (DESIGN.md §13). Results are bitwise identical either way;
  /// this exists for differential testing and as an escape hatch.
  bool naive_tick = false;
  /// Telemetry hub (null = disabled; DESIGN.md §12). The cycle engine
  /// plumbs it through the whole cluster; every back end emits engine-level
  /// step events. Must outlive every engine built from this spec. Replicas
  /// running concurrently (BatchRunner) must not share one hub — the runner
  /// detaches it.
  obs::Hub* obs = nullptr;
};

class Registry {
 public:
  using Factory = std::function<std::unique_ptr<Engine>(
      const md::SystemState&, const md::ForceField&, const EngineSpec&)>;

  /// The process-wide registry, with the three built-ins pre-registered.
  static Registry& instance();

  /// Registers (or replaces) a back end under `name`.
  void add(std::string name, Factory factory);

  bool contains(std::string_view name) const;
  std::vector<std::string> names() const;  ///< sorted

  /// Builds the engine named by spec.engine; throws std::invalid_argument
  /// for an unknown name (the message lists the registered ones).
  std::unique_ptr<Engine> create(const md::SystemState& state,
                                 const md::ForceField& ff,
                                 const EngineSpec& spec) const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

/// Builds the ClusterConfig the "cycle" factory uses for `spec` over
/// `state`'s geometry; exposed so drivers can report the derived cluster
/// shape (FPGAs, PEs) without re-deriving it. Throws std::invalid_argument
/// when the space does not tile by cells_per_node.
core::ClusterConfig cluster_config_for(const EngineSpec& spec,
                                       const md::SystemState& state);

/// The "cycle" adapter, exposed for drivers that report the detailed
/// utilization/traffic counters beyond StepMetrics (cluster_scaling).
class CycleEngine final : public Engine {
 public:
  CycleEngine(const md::SystemState& state, md::ForceField ff,
              const core::ClusterConfig& config);

  md::SystemState state() const override { return sim_.state(); }
  std::vector<geom::Vec3d> forces_by_particle() const override;
  double potential_energy() override { return sim_.potential_energy(); }

  const core::Simulation& simulation() const { return sim_; }

 protected:
  void do_step(int n) override { sim_.run(n); }
  void update_metrics(StepMetrics& m) override;

 private:
  core::Simulation sim_;
  std::uint64_t prev_pairs_issued_ = 0;
};

}  // namespace fasda::engine
