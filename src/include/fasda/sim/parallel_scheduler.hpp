#pragma once
// Node-sharded parallel cycle driver.
//
// Components register tagged with a ShardId (one shard per FPGA node).
// Every cycle runs as one two-phase fan-out on a persistent ThreadPool:
//
//   phase 1 (tick):   shards tick concurrently, one worker per contiguous
//                     shard range; global components tick on the caller
//                     before the fan-out.
//   -- barrier --     every tick completes before any state commits.
//   phase 2 (commit): per-shard clocked elements commit concurrently;
//                     global clocked elements (the net::Fabric instances)
//                     commit on the caller after the join.
//
// Why this is *bitwise identical* to the serial Scheduler: the tick/commit
// contract (kernel.hpp) guarantees ticks read only state committed in
// earlier cycles, so tick order within a cycle is immaterial — concurrent
// ticks are just one more order. The only cross-shard mutable state is in
// kGlobalShard elements, which stage writes during tick (per-source, so
// writers never share a slot) and apply them single-threaded on the caller.
// Per-shard UtilCounters live inside the shard's own components and are
// only merged at report time, after run_until returns.
//
// What a shard-tagged component must never do in tick(): read or write
// another shard's components, pop/push a Fifo owned by another shard, or
// touch any shared element that is not two-phase. Cross-node traffic must
// flow through a kGlobalShard Fabric.

#include <cstddef>
#include <vector>

#include "fasda/sim/kernel.hpp"
#include "fasda/util/thread_pool.hpp"

namespace fasda::sim {

class ParallelScheduler : public Scheduler {
 public:
  /// `threads` caps the worker count; shards are statically chunked over
  /// min(threads, num_shards) participants. 0 and 1 both run the fan-out
  /// inline on the caller (still bitwise identical, no pool).
  explicit ParallelScheduler(std::size_t threads);

  void run_cycle() override;

  std::size_t num_shards() const { return groups_.size(); }
  std::size_t num_threads() const { return pool_.size(); }

 protected:
  /// Elided fan-out: identical shape to run_cycle(), but each worker ticks
  /// only awake shards' due components (group wakes and per-component
  /// caches are written by the caller between cycles — the pool barrier
  /// orders those writes before these reads), replaying single-cycle idle
  /// bookkeeping for the rest, and commits only awake shards.
  void run_cycle_elided() override;

 private:
  util::ThreadPool pool_;
};

}  // namespace fasda::sim
