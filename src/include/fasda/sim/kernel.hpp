#pragma once
// Cycle-driven simulation kernel.
//
// One Scheduler cycle models one 200 MHz FPGA clock. Every cycle has two
// phases: all Components tick() (reading only state committed in earlier
// cycles, staging their writes), then all Clocked elements commit().
// Because reads never observe same-cycle writes, results are independent of
// the order components are ticked in — the same property RTL gets from
// edge-triggered registers.

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fasda/obs/obs.hpp"

namespace fasda::sim {

using Cycle = std::uint64_t;

/// Anything with two-phase (staged) state.
class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void commit() = 0;
};

/// Anything that does work each cycle.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;
  virtual void tick(Cycle now) = 0;
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Two-phase FIFO: push() stages (visible next cycle); pop()/front() operate
/// on the committed view. Intended for a single consumer per FIFO. Callers
/// must check empty() first; pop()/front() on an empty committed queue throw.
template <class T>
class Fifo : public Clocked {
 public:
  explicit Fifo(std::size_t capacity) : capacity_(capacity) {}

  /// Space check against committed + staged occupancy.
  bool can_push() const { return items_.size() + staged_.size() < capacity_; }

  /// Stages an item; returns false (and drops nothing) when full.
  bool push(T value) {
    if (!can_push()) return false;
    staged_.push_back(std::move(value));
    return true;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Committed + staged: used by drain/quiescence checks, not by datapaths.
  std::size_t total_occupancy() const { return items_.size() + staged_.size(); }

  const T& front() const {
    if (items_.empty()) throw std::logic_error("Fifo::front on empty committed queue");
    return items_.front();
  }

  T pop() {
    if (items_.empty()) throw std::logic_error("Fifo::pop on empty committed queue");
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  void commit() override {
    for (auto& v : staged_) items_.push_back(std::move(v));
    staged_.clear();
  }

 private:
  std::deque<T> items_;
  std::vector<T> staged_;
  std::size_t capacity_;
};

/// Two-phase single-entry register. Writes land only into a slot that was
/// empty at cycle start (conservative handshake: a full slot must be cleared
/// one cycle before it can be refilled), which keeps behaviour independent
/// of component tick order. Rings own their hop slots collectively and do
/// not use this class.
template <class T>
class Reg : public Clocked {
 public:
  bool valid() const { return valid_; }
  const T& value() const { return value_; }

  bool can_write() const { return !valid_ && !write_staged_; }

  void write(T value) {
    if (!can_write()) throw std::logic_error("Reg overwrite");
    staged_value_ = std::move(value);
    write_staged_ = true;
  }

  void clear() { clear_staged_ = true; }

  void commit() override {
    if (clear_staged_) valid_ = false;
    if (write_staged_) {
      value_ = std::move(staged_value_);
      valid_ = true;
    }
    clear_staged_ = write_staged_ = false;
  }

 private:
  T value_{};
  T staged_value_{};
  bool valid_ = false;
  bool write_staged_ = false;
  bool clear_staged_ = false;
};

/// Utilization bookkeeping for Fig. 17. "Hardware utilization" is work done
/// relative to capacity while the whole run lasted; "time utilization" is
/// the fraction of cycles the component was active (pipeline possibly not
/// full, but functioning).
struct UtilCounter {
  std::uint64_t work = 0;
  std::uint64_t capacity = 0;
  std::uint64_t active_cycles = 0;

  void record(std::uint64_t done, std::uint64_t possible, bool active) {
    work += done;
    capacity += possible;
    active_cycles += active ? 1 : 0;
  }

  void merge(const UtilCounter& o) {
    work += o.work;
    capacity += o.capacity;
    active_cycles += o.active_cycles;
  }

  double hardware_utilization() const {
    return capacity == 0 ? 0.0
                         : static_cast<double>(work) / static_cast<double>(capacity);
  }

  double time_utilization(Cycle total_cycles, std::uint64_t instances = 1) const {
    const auto denom = total_cycles * instances;
    return denom == 0 ? 0.0
                      : static_cast<double>(active_cycles) /
                            static_cast<double>(denom);
  }
};

/// Shard tag for registration. Components of one FPGA node share one shard;
/// elements that are touched from more than one shard during a cycle (the
/// net::Fabric instances, for example) register as kGlobalShard and are
/// ticked/committed by the scheduler outside the sharded fan-out.
using ShardId = int;
inline constexpr ShardId kGlobalShard = -1;

/// Serial cycle driver, and the interface parallel drivers implement.
/// Ticks every component in registration order, then commits every clocked
/// element. The two-phase contract makes results independent of tick order,
/// so subclasses are free to reorder or parallelize — see
/// sim/parallel_scheduler.hpp for the node-sharded implementation.
class Scheduler {
 public:
  Scheduler() = default;
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// `shard` is advisory: the serial scheduler ignores it; parallel
  /// schedulers run same-shard registrants on the same worker. (Non-virtual
  /// wrappers keep the default argument out of the virtual interface.)
  void add(Component* c, ShardId shard = kGlobalShard) { add_impl(c, shard); }
  void add_clocked(Clocked* c, ShardId shard = kGlobalShard) {
    add_clocked_impl(c, shard);
  }

  Cycle cycle() const { return cycle_; }

  /// Telemetry hub (nullable; null is the disabled path). Attach after
  /// registration is complete and never mid-run; run_until brackets each
  /// driving window in a scheduler-track span. Note nothing published here
  /// may depend on the worker count — traces and snapshots are bitwise
  /// identical across 1/2/4 workers, so the execution shape stays out of
  /// the registry.
  void set_obs(obs::Hub* hub) { obs_ = hub; }
  obs::Hub* obs() const { return obs_; }

  virtual void run_cycle() {
    for (Component* c : components_) c->tick(cycle_);
    for (Clocked* c : clocked_) c->commit();
    ++cycle_;
  }

  /// Runs until done() is true (checked between cycles) or the budget is
  /// exhausted; returns the cycle count at exit. Throws on budget overrun so
  /// deadlocks in the model fail loudly. When done() throws (watchdog, link
  /// degradation) the scheduler span stays open and is closed at the trace
  /// high-water mark by the next epoch or the export.
  Cycle run_until(const std::function<bool()>& done, Cycle max_cycles) {
    if (obs_ != nullptr) {
      obs_->trace().begin(obs::kClusterShard, obs::kClusterPid,
                          obs::Comp::kScheduler, "run-until", cycle_);
    }
    while (!done()) {
      if (cycle_ >= max_cycles) {
        throw std::runtime_error("Scheduler::run_until exceeded cycle budget");
      }
      run_cycle();
    }
    if (obs_ != nullptr) {
      obs_->trace().end(obs::kClusterShard, obs::kClusterPid,
                        obs::Comp::kScheduler, cycle_);
      obs_->metrics().set(obs::kClusterNode,
                          obs_->metrics().gauge("sched.cycles"),
                          static_cast<double>(cycle_));
    }
    return cycle_;
  }

 protected:
  virtual void add_impl(Component* c, ShardId) { components_.push_back(c); }
  virtual void add_clocked_impl(Clocked* c, ShardId) { clocked_.push_back(c); }

  std::vector<Component*> components_;
  std::vector<Clocked*> clocked_;
  Cycle cycle_ = 0;
  obs::Hub* obs_ = nullptr;
};

}  // namespace fasda::sim
