#pragma once
// Cycle-driven simulation kernel.
//
// One Scheduler cycle models one 200 MHz FPGA clock. Every cycle has two
// phases: all Components tick() (reading only state committed in earlier
// cycles, staging their writes), then all Clocked elements commit().
// Because reads never observe same-cycle writes, results are independent of
// the order components are ticked in — the same property RTL gets from
// edge-triggered registers.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fasda/obs/obs.hpp"

namespace fasda::sim {

using Cycle = std::uint64_t;

/// "No self-scheduled event": a component returning this from next_wake can
/// only be re-activated by another component's activity (which executes a
/// cycle and triggers a fresh wake sweep).
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Anything with two-phase (staged) state.
class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void commit() = 0;
};

/// Anything that does work each cycle.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;
  virtual void tick(Cycle now) = 0;

  /// Wake-time contract (DESIGN.md §13). Earliest cycle >= `now` at which
  /// tick() could change ANY observable state, judged from state committed
  /// through cycle now-1 — exactly what tick(now) would read. Must never
  /// over-predict: returning W means every tick in [now, W) is a no-op
  /// apart from the bookkeeping skip_idle replays. The scheduler re-sweeps
  /// after every executed cycle, so a component only needs to report its
  /// OWN pending work (`now`) or self-scheduled future events (timer
  /// expiry, in-flight packet arrival, barrier release, fault boundary);
  /// activation by another component's output is caught by the re-sweep.
  /// The default — always busy — opts a component out of elision safely.
  virtual Cycle next_wake(Cycle now) const {
    (void)now;
    return now;
  }

  /// Replays the bookkeeping `to - from` naive ticks would have accrued
  /// over a window the oracle declared inert (utilization capacity,
  /// heartbeat stamps). Implementations may rely only on the tick count and
  /// the window end: a straggler gate forwards a count-preserving
  /// sub-window for its open cycles.
  virtual void skip_idle(Cycle from, Cycle to) {
    (void)from;
    (void)to;
  }

  /// Eager idle bookkeeping (DESIGN.md §13). A component returning true
  /// gets its skip_idle replayed at every executed cycle and every window
  /// jump even while its whole shard sleeps, instead of being batched into
  /// one deferred window at shard wake-up. Opt in when the bookkeeping is
  /// read by outside observers mid-sleep — the node heartbeat feeding the
  /// watchdog is the one case.
  virtual bool eager_idle() const { return false; }

  const std::string& name() const { return name_; }

  /// Scheduler-managed cache of the last wake sweep; written on the driving
  /// thread between cycles, read during the tick fan-out. Not part of the
  /// component contract.
  Cycle sched_wake() const { return sched_wake_; }
  void set_sched_wake(Cycle w) { sched_wake_ = w; }

 private:
  std::string name_;
  Cycle sched_wake_ = 0;
};

/// Two-phase FIFO: push() stages (visible next cycle); pop()/front() operate
/// on the committed view. Intended for a single consumer per FIFO. Callers
/// must check empty() first; pop()/front() on an empty committed queue throw.
template <class T>
class Fifo : public Clocked {
 public:
  explicit Fifo(std::size_t capacity) : capacity_(capacity) {}

  /// Space check against committed + staged occupancy.
  bool can_push() const { return items_.size() + staged_.size() < capacity_; }

  /// Stages an item; returns false (and drops nothing) when full.
  bool push(T value) {
    if (!can_push()) return false;
    staged_.push_back(std::move(value));
    return true;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Committed + staged: used by drain/quiescence checks, not by datapaths.
  std::size_t total_occupancy() const { return items_.size() + staged_.size(); }

  const T& front() const {
    if (items_.empty()) throw std::logic_error("Fifo::front on empty committed queue");
    return items_.front();
  }

  T pop() {
    if (items_.empty()) throw std::logic_error("Fifo::pop on empty committed queue");
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  void commit() override {
    for (auto& v : staged_) items_.push_back(std::move(v));
    staged_.clear();
  }

 private:
  std::deque<T> items_;
  std::vector<T> staged_;
  std::size_t capacity_;
};

/// Two-phase single-entry register. Writes land only into a slot that was
/// empty at cycle start (conservative handshake: a full slot must be cleared
/// one cycle before it can be refilled), which keeps behaviour independent
/// of component tick order. Rings own their hop slots collectively and do
/// not use this class.
template <class T>
class Reg : public Clocked {
 public:
  bool valid() const { return valid_; }
  const T& value() const { return value_; }

  bool can_write() const { return !valid_ && !write_staged_; }

  void write(T value) {
    if (!can_write()) throw std::logic_error("Reg overwrite");
    staged_value_ = std::move(value);
    write_staged_ = true;
  }

  void clear() { clear_staged_ = true; }

  void commit() override {
    if (clear_staged_) valid_ = false;
    if (write_staged_) {
      value_ = std::move(staged_value_);
      valid_ = true;
    }
    clear_staged_ = write_staged_ = false;
  }

 private:
  T value_{};
  T staged_value_{};
  bool valid_ = false;
  bool write_staged_ = false;
  bool clear_staged_ = false;
};

/// Utilization bookkeeping for Fig. 17. "Hardware utilization" is work done
/// relative to capacity while the whole run lasted; "time utilization" is
/// the fraction of cycles the component was active (pipeline possibly not
/// full, but functioning).
struct UtilCounter {
  std::uint64_t work = 0;
  std::uint64_t capacity = 0;
  std::uint64_t active_cycles = 0;

  void record(std::uint64_t done, std::uint64_t possible, bool active) {
    work += done;
    capacity += possible;
    active_cycles += active ? 1 : 0;
  }

  void merge(const UtilCounter& o) {
    work += o.work;
    capacity += o.capacity;
    active_cycles += o.active_cycles;
  }

  double hardware_utilization() const {
    return capacity == 0 ? 0.0
                         : static_cast<double>(work) / static_cast<double>(capacity);
  }

  double time_utilization(Cycle total_cycles, std::uint64_t instances = 1) const {
    const auto denom = total_cycles * instances;
    return denom == 0 ? 0.0
                      : static_cast<double>(active_cycles) /
                            static_cast<double>(denom);
  }
};

/// Shard tag for registration. Components of one FPGA node share one shard;
/// elements that are touched from more than one shard during a cycle (the
/// net::Fabric instances, for example) register as kGlobalShard and are
/// ticked/committed by the scheduler outside the sharded fan-out.
using ShardId = int;
inline constexpr ShardId kGlobalShard = -1;

/// Busy-shard fast path (DESIGN.md §13). A group that stays awake for
/// kHotStreak consecutive executed cycles without ever having slept is
/// marked hot: its per-cycle wake sweep (one next_wake call per member,
/// which costs more than the ticks it could save on a busy datapath) is
/// skipped and every member is ticked unconditionally — bitwise safe
/// because unconditional ticking is exactly the naive schedule. Every
/// kHotProbePeriod cycles the group is re-swept so a workload that goes
/// idle later is demoted and can sleep again; the probe bounds the elision
/// opportunity a hot group can hide to one period per demotion.
inline constexpr std::uint32_t kHotStreak = 4;
inline constexpr std::uint32_t kHotProbePeriod = 64;

/// How Scheduler::run_until drives the cluster.
///   kElide    — idle-cycle elision: skip globally-dead windows outright and
///               skip the tick of individually-idle components inside
///               executed cycles. Bitwise identical to kNaive by the
///               next_wake contract (DESIGN.md §13).
///   kNaive    — tick every component every cycle (the pre-elision loop and
///               the FASDA_NAIVE_TICK escape hatch).
///   kValidate — tick naively but audit the elision oracle each cycle:
///               counts cycles the oracle would have skipped (idle wakes)
///               and oracle violations (mispredicts, must stay zero).
enum class TickMode { kElide, kNaive, kValidate };

/// FASDA_NAIVE_TICK (set and not "0") overrides any configured mode with
/// kNaive — the environment escape hatch for bisecting elision bugs.
inline TickMode resolve_tick_mode(TickMode configured) {
  const char* env = std::getenv("FASDA_NAIVE_TICK");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    return TickMode::kNaive;
  }
  return configured;
}

/// Elision bookkeeping. Deliberately NOT published through the obs registry
/// on elided runs: metrics snapshots must stay bitwise identical between
/// naive and elided runs, so execution-shape counters live here and only
/// kValidate runs surface them as metrics (core::Simulation::publish).
struct ElisionStats {
  /// Cycles actually executed (tick fan-out ran).
  std::uint64_t executed_cycles = 0;
  /// Cycles skipped outright because every component slept past them.
  std::uint64_t elided_cycles = 0;
  /// Component-ticks skipped inside executed cycles (component slept while
  /// others ran).
  std::uint64_t component_idle_skips = 0;
  /// Shard-cycles spent asleep inside executed cycles: the whole shard's
  /// tick fan-out, wake sweep and commits were skipped (kElide only).
  std::uint64_t shard_sleep_cycles = 0;
  /// kValidate: executed cycles the oracle declared globally dead — naive
  /// ticks that "woke with no state change".
  std::uint64_t idle_wakes = 0;
  /// kValidate: sweeps inside a predicted-quiet window that reported an
  /// earlier wake — "state changed while skipped". Must be zero.
  std::uint64_t mispredicts = 0;
};

/// Serial cycle driver, and the interface parallel drivers implement.
/// Ticks every component in registration order, then commits every clocked
/// element. The two-phase contract makes results independent of tick order,
/// so subclasses are free to reorder or parallelize — see
/// sim/parallel_scheduler.hpp for the node-sharded implementation.
class Scheduler {
 public:
  Scheduler() = default;
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// `shard` is advisory: the serial scheduler ignores it; parallel
  /// schedulers run same-shard registrants on the same worker. (Non-virtual
  /// wrappers keep the default argument out of the virtual interface.)
  void add(Component* c, ShardId shard = kGlobalShard) { add_impl(c, shard); }
  void add_clocked(Clocked* c, ShardId shard = kGlobalShard) {
    add_clocked_impl(c, shard);
  }

  Cycle cycle() const { return cycle_; }

  /// Telemetry hub (nullable; null is the disabled path). Attach after
  /// registration is complete and never mid-run; run_until brackets each
  /// driving window in a scheduler-track span. Note nothing published here
  /// may depend on the worker count — traces and snapshots are bitwise
  /// identical across 1/2/4 workers, so the execution shape stays out of
  /// the registry.
  void set_obs(obs::Hub* hub) { obs_ = hub; }
  obs::Hub* obs() const { return obs_; }

  virtual void run_cycle() {
    for (Component* c : components_) c->tick(cycle_);
    for (Clocked* c : clocked_) c->commit();
    ++cycle_;
  }

  void set_tick_mode(TickMode mode) { mode_ = mode; }
  TickMode tick_mode() const { return mode_; }
  const ElisionStats& elision_stats() const { return stats_; }

  /// Cross-shard wake pokes (DESIGN.md §13). A sleeping shard is not
  /// re-swept after every executed cycle, so the two mechanisms that can
  /// activate a shard from outside must poke it explicitly:
  ///
  ///   wake_shard      — a fabric delivery to one node's endpoint. Fabric
  ///                     commits run single-threaded on the driving thread,
  ///                     so a plain min on the group wake is race-free.
  ///   wake_all_shards — a bulk-barrier release, computed under the barrier
  ///                     mutex on whichever worker ticked the last arriving
  ///                     node. Folds through an atomic that the elided loop
  ///                     drains before each sweep.
  ///
  /// Pokes may only shorten a sleep (spurious wakes are safe; the woken
  /// shard just re-sweeps and goes back down). Unknown shard ids and calls
  /// outside kElide are harmless no-ops.
  void wake_shard(ShardId shard, Cycle at) {
    if (shard < 0 || static_cast<std::size_t>(shard) >= groups_.size()) return;
    ShardGroup& g = groups_[static_cast<std::size_t>(shard)];
    if (at < g.wake) g.wake = at;
  }
  void wake_all_shards(Cycle at) {
    Cycle cur = poke_all_.load(std::memory_order_relaxed);
    while (at < cur && !poke_all_.compare_exchange_weak(
                           cur, at, std::memory_order_relaxed)) {
    }
  }

  /// External wake bound for run_until: earliest cycle at which the done()
  /// predicate could change outcome for reasons no component reports itself
  /// (in practice the watchdog trip deadline, which depends on heartbeat
  /// silence rather than on any component's own pending work).
  using ExternalWake = std::function<Cycle(Cycle)>;

  /// Runs until done() is true (checked between cycles) or the budget is
  /// exhausted; returns the cycle count at exit. Throws on budget overrun so
  /// deadlocks in the model fail loudly. When done() throws (watchdog, link
  /// degradation) the scheduler span stays open and is closed at the trace
  /// high-water mark by the next epoch or the export.
  ///
  /// Elision safety: done() is evaluated only between executed cycles and at
  /// skip-window boundaries. That is equivalent to the naive every-cycle
  /// check because done() reads only state that changes on executed cycles —
  /// except the watchdog silence clock, whose trip cycles the caller folds
  /// in through `external_wake` so windows never straddle a trip.
  Cycle run_until(const std::function<bool()>& done, Cycle max_cycles,
                  const ExternalWake& external_wake = {}) {
    if (obs_ != nullptr) {
      obs_->trace().begin(obs::kClusterShard, obs::kClusterPid,
                          obs::Comp::kScheduler, "run-until", cycle_);
    }
    switch (mode_) {
      case TickMode::kNaive:
        run_until_naive(done, max_cycles);
        break;
      case TickMode::kElide:
        run_until_elided(done, max_cycles, external_wake);
        break;
      case TickMode::kValidate:
        run_until_validate(done, max_cycles, external_wake);
        break;
    }
    if (obs_ != nullptr) {
      obs_->trace().end(obs::kClusterShard, obs::kClusterPid,
                        obs::Comp::kScheduler, cycle_);
      obs_->metrics().set(obs::kClusterNode,
                          obs_->metrics().gauge("sched.cycles"),
                          static_cast<double>(cycle_));
    }
    return cycle_;
  }

  // ------------------------------------------------ shard-transport driver
  // The elided loop decomposed into externally drivable phases (DESIGN.md
  // §14). A shard::ProcTransport worker process owns a contiguous slice of
  // the shard groups and is driven cycle-by-cycle by its parent: begin-run,
  // then per round loop-top (sweep, returns the min wake over the owned
  // slice), either a window jump or one executed cycle, and a finishing
  // jump+flush. run_until drives the same phases in-process over the full
  // group range, so the two paths cannot diverge.

  /// Restricts every sharded loop (sweeps, ticks, commits, flushes, stats)
  /// to groups [begin, end). Global components/clocked stay included — a
  /// worker's fabrics only ever stage traffic from its own nodes.
  void set_owned_shards(std::size_t begin, std::size_t end) {
    own_begin_ = begin;
    own_end_ = end;
  }

  /// Mirrors the run_until_elided entry: arbitrary state may have changed
  /// since the last run (loaders, node arming), so mark every owned group
  /// awake for a total first sweep, and force the first hot probe.
  void driver_begin_run() {
    const auto [lo, hi] = owned_range();
    for (std::size_t i = lo; i < hi; ++i) {
      ShardGroup& g = groups_[i];
      g.wake = cycle_;
      g.skip_from = kNeverCycle;
      g.idle = 0;
      g.probe_in = 0;
    }
    poke_all_.store(kNeverCycle, std::memory_order_relaxed);
  }

  /// Loop top at now == cycle_: drains pokes, sweeps global components,
  /// flushes and re-sweeps due groups (with the busy-shard fast path), opens
  /// deferred windows for groups that fall asleep, and returns the earliest
  /// wake over the owned slice.
  Cycle driver_loop_top() {
    const Cycle now = cycle_;
    const auto [lo, hi] = owned_range();
    // Fold worker-thread pokes (barrier releases) into every group.
    const Cycle poke =
        poke_all_.exchange(kNeverCycle, std::memory_order_relaxed);
    if (poke != kNeverCycle) {
      for (std::size_t i = lo; i < hi; ++i) {
        groups_[i].wake = std::min(groups_[i].wake, poke);
      }
    }
    Cycle wake = kNeverCycle;
    for (Component* c : global_components_) {
      const Cycle w = c->next_wake(now);
      c->set_sched_wake(w);
      wake = std::min(wake, w);
    }
    for (std::size_t i = lo; i < hi; ++i) {
      ShardGroup& g = groups_[i];
      if (g.hot) {
        if (g.probe_in == 0) {
          sweep_group(g, now);
          if (g.wake > now) {
            // Probe found the group idle: demote and let it sleep.
            g.hot = false;
            g.ever_slept = true;
            g.busy_streak = 0;
            g.skip_from = now;
          } else {
            g.probe_in = kHotProbePeriod;
          }
        } else {
          --g.probe_in;
          g.wake = now;  // hot groups never have a deferred window open
          g.idle = 0;
        }
      } else if (g.wake <= now) {
        flush_group_idle(g, now);
        sweep_group(g, now);
        if (g.wake > now) {  // falls asleep: open window
          g.skip_from = now;
          g.ever_slept = true;
          g.busy_streak = 0;
        } else if (!g.ever_slept && ++g.busy_streak >= kHotStreak) {
          g.hot = true;
          g.probe_in = kHotProbePeriod;
        }
      }
      wake = std::min(wake, g.wake);
    }
    return wake;
  }

  /// Jumps the clock over a globally dead window [cycle_, to): sleeping
  /// groups' deferred windows absorb it, only global components and the
  /// eager prefixes replay it directly.
  void driver_jump(Cycle to) {
    const Cycle now = cycle_;
    const auto [lo, hi] = owned_range();
    for (Component* c : global_components_) c->skip_idle(now, to);
    for (std::size_t i = lo; i < hi; ++i) {
      ShardGroup& g = groups_[i];
      for (std::size_t e = 0; e < g.eager; ++e) {
        g.components[e]->skip_idle(now, to);
      }
    }
    stats_.elided_cycles += to - now;
    cycle_ = to;
  }

  /// Executes one elided cycle: stats accounting over the owned slice, then
  /// the selective tick/commit fan-out.
  void driver_execute() {
    const auto [lo, hi] = owned_range();
    for (std::size_t i = lo; i < hi; ++i) {
      const ShardGroup& g = groups_[i];
      if (g.wake > cycle_) {
        stats_.component_idle_skips += g.components.size();
        ++stats_.shard_sleep_cycles;
      } else {
        stats_.component_idle_skips += g.idle;
      }
    }
    run_cycle_elided();
    ++stats_.executed_cycles;
  }

  /// Executes one naive cycle over the owned slice (the worker-side
  /// FASDA_NAIVE_TICK path; the in-process naive loop keeps using
  /// run_cycle over the flat registration order).
  void driver_execute_naive() {
    const Cycle now = cycle_;
    const auto [lo, hi] = owned_range();
    for (Component* c : global_components_) c->tick(now);
    for (std::size_t i = lo; i < hi; ++i) {
      for (Component* c : groups_[i].components) c->tick(now);
    }
    for (std::size_t i = lo; i < hi; ++i) {
      for (Clocked* c : groups_[i].clocked) c->commit();
    }
    for (Clocked* c : global_clocked_) c->commit();
    ++cycle_;
    ++stats_.executed_cycles;
  }

  /// Settles a run at `at`: jumps any remaining window, then flushes every
  /// open deferred idle window so post-run bookkeeping matches the naive
  /// schedule (the worker-side equivalent of run_until's exit flush).
  void driver_finish(Cycle at) {
    if (cycle_ < at) driver_jump(at);
    flush_deferred_idle();
  }

  /// Global (unsharded) components cannot be split across worker processes;
  /// shard::ProcTransport refuses clusters that register any.
  std::size_t global_component_count() const {
    return global_components_.size();
  }

 protected:
  /// One shard's slice of the registration, plus its sleep state. `wake` is
  /// the cached minimum of the members' swept wakes (folded with any poke);
  /// the group is awake when wake <= now. While a group sleeps its members
  /// are neither ticked, swept nor committed — their idle bookkeeping is
  /// deferred into one [skip_from, wake-cycle) window flushed when the
  /// group wakes, except the eager_idle() prefix, which is replayed every
  /// executed cycle and window jump (the watchdog reads node heartbeats
  /// from outside the shard mid-sleep).
  struct ShardGroup {
    std::vector<Component*> components;  // eager_idle() members first
    std::size_t eager = 0;               // length of the eager prefix
    std::vector<Clocked*> clocked;
    Cycle wake = 0;                      // cached group wake (<= now: awake)
    Cycle skip_from = kNeverCycle;       // deferred idle window start
    std::size_t idle = 0;                // sleepers at the last sweep (stats)
    // Busy-shard fast path: `hot` groups skip the per-cycle sweep and tick
    // every member; demoted by the periodic probe the moment a sweep finds
    // the group asleep. ever_slept gates promotion — a group that has ever
    // slept is elision-profitable and never goes hot.
    bool hot = false;
    bool ever_slept = false;
    std::uint32_t busy_streak = 0;
    std::uint32_t probe_in = 0;
  };

  virtual void add_impl(Component* c, ShardId shard) {
    components_.push_back(c);
    if (shard == kGlobalShard) {
      global_components_.push_back(c);
      return;
    }
    ShardGroup& g = group_at(shard);
    if (c->eager_idle()) {
      g.components.insert(
          g.components.begin() + static_cast<std::ptrdiff_t>(g.eager), c);
      ++g.eager;
    } else {
      g.components.push_back(c);
    }
  }
  virtual void add_clocked_impl(Clocked* c, ShardId shard) {
    clocked_.push_back(c);
    if (shard == kGlobalShard) {
      global_clocked_.push_back(c);
    } else {
      group_at(shard).clocked.push_back(c);
    }
  }

  ShardGroup& group_at(ShardId shard) {
    if (shard < 0) throw std::invalid_argument("Scheduler: bad shard id");
    if (static_cast<std::size_t>(shard) >= groups_.size()) {
      groups_.resize(static_cast<std::size_t>(shard) + 1);
    }
    return groups_[static_cast<std::size_t>(shard)];
  }

  /// One cycle of the elided fast path. Awake groups run the selective
  /// fan-out (tick components whose swept wake is due, replay single-cycle
  /// idle bookkeeping for the rest) and commit their clocked elements;
  /// sleeping groups replay only the eager prefix — no member can have
  /// writes staged, because the sweep that put the group to sleep ran after
  /// its last awake cycle's commits, so skipping the commits is exact.
  /// run_cycle() is left untouched for direct (test) callers.
  virtual void run_cycle_elided() {
    const Cycle now = cycle_;
    const auto [lo, hi] = owned_range();
    for (Component* c : global_components_) {
      if (c->sched_wake() <= now) {
        c->tick(now);
      } else {
        c->skip_idle(now, now + 1);
      }
    }
    for (std::size_t gi = lo; gi < hi; ++gi) {
      ShardGroup& g = groups_[gi];
      if (g.wake > now) {
        for (std::size_t i = 0; i < g.eager; ++i) {
          g.components[i]->skip_idle(now, now + 1);
        }
        continue;
      }
      if (g.hot) {
        // Busy-shard fast path: the loop top skipped the sweep, so the
        // per-member wake caches are stale — tick everyone. That is the
        // naive schedule for this shard, hence bitwise identical.
        for (Component* c : g.components) c->tick(now);
        continue;
      }
      for (Component* c : g.components) {
        if (c->sched_wake() <= now) {
          c->tick(now);
        } else {
          c->skip_idle(now, now + 1);
        }
      }
    }
    for (std::size_t gi = lo; gi < hi; ++gi) {
      ShardGroup& g = groups_[gi];
      if (g.wake > now) continue;
      for (Clocked* c : g.clocked) c->commit();
    }
    for (Clocked* c : global_clocked_) c->commit();
    ++cycle_;
  }

  [[noreturn]] static void throw_budget_overrun() {
    throw std::runtime_error("Scheduler::run_until exceeded cycle budget");
  }

  void run_until_naive(const std::function<bool()>& done, Cycle max_cycles) {
    while (!done()) {
      if (cycle_ >= max_cycles) throw_budget_overrun();
      run_cycle();
      ++stats_.executed_cycles;
    }
  }

  /// Flat full sweep: every component's next_wake from post-commit state
  /// (what the next tick would read), cached on the component; returns the
  /// global minimum and counts components that sleep past `now`. The
  /// kValidate audit uses this — the elided path sweeps per group so
  /// sleeping shards cost nothing.
  Cycle sweep_wakes() {
    const Cycle now = cycle_;
    Cycle min_wake = kNeverCycle;
    for (Component* c : components_) {
      const Cycle w = c->next_wake(now);
      c->set_sched_wake(w);
      if (w < min_wake) min_wake = w;
      if (w > now) ++stats_.component_idle_skips;
    }
    return min_wake;
  }

  /// Re-sweeps one awake group from post-commit state, caching per-member
  /// wakes for the selective fan-out and the group minimum for the sleep
  /// decision.
  void sweep_group(ShardGroup& g, Cycle now) {
    Cycle min_wake = kNeverCycle;
    std::size_t idle = 0;
    for (Component* c : g.components) {
      const Cycle w = c->next_wake(now);
      c->set_sched_wake(w);
      if (w < min_wake) min_wake = w;
      if (w > now) ++idle;
    }
    g.wake = min_wake;
    g.idle = idle;
  }

  /// Flushes a waking group's deferred idle window: one count-preserving
  /// skip_idle over every cycle the group slept through, for the non-eager
  /// members (the eager prefix was replayed cycle-by-cycle all along).
  void flush_group_idle(ShardGroup& g, Cycle now) {
    if (g.skip_from == kNeverCycle) return;
    if (g.skip_from < now) {
      for (std::size_t i = g.eager; i < g.components.size(); ++i) {
        g.components[i]->skip_idle(g.skip_from, now);
      }
    }
    g.skip_from = kNeverCycle;
  }

  /// Settles every open deferred window at run_until exit (normal or
  /// unwinding), so utilization counters observed after the run match the
  /// naive schedule exactly.
  void flush_deferred_idle() {
    const auto [lo, hi] = owned_range();
    for (std::size_t i = lo; i < hi; ++i) flush_group_idle(groups_[i], cycle_);
  }

  /// The owned slice of groups_, clamped to its current size (groups are
  /// created lazily during registration).
  std::pair<std::size_t, std::size_t> owned_range() const {
    const std::size_t hi = std::min(own_end_, groups_.size());
    return {std::min(own_begin_, hi), hi};
  }

  void run_until_elided(const std::function<bool()>& done, Cycle max_cycles,
                        const ExternalWake& external_wake) {
    driver_begin_run();
    try {
      while (!done()) {
        if (cycle_ >= max_cycles) throw_budget_overrun();
        const Cycle now = cycle_;
        Cycle wake = driver_loop_top();
        if (external_wake) wake = std::min(wake, external_wake(now));
        if (wake > now) {
          // Globally dead window [now, wake): no ticks can change state, so
          // jump. Clamping to the budget keeps the overrun throw at the
          // same cycle the naive loop would reach it.
          driver_jump(std::min(wake, max_cycles));
          continue;
        }
        driver_execute();
      }
    } catch (...) {
      flush_deferred_idle();
      throw;
    }
    flush_deferred_idle();
  }

  void run_until_validate(const std::function<bool()>& done, Cycle max_cycles,
                          const ExternalWake& external_wake) {
    // Audits the component oracle alone: external_wake only ever shortens
    // skip windows, so it cannot mask a mispredict and stays out of the
    // predicted-quiet horizon.
    (void)external_wake;
    Cycle quiet_until = cycle_;
    while (!done()) {
      if (cycle_ >= max_cycles) throw_budget_overrun();
      const Cycle wake = sweep_wakes();
      if (cycle_ < quiet_until && wake <= cycle_) ++stats_.mispredicts;
      if (wake > cycle_) {
        ++stats_.idle_wakes;
        if (wake > quiet_until) quiet_until = wake;
      }
      run_cycle();
      ++stats_.executed_cycles;
    }
  }

  // Flat registration order — the naive and validate paths drive these, and
  // sweep_wakes audits over them.
  std::vector<Component*> components_;
  std::vector<Clocked*> clocked_;
  // Sharded view — the elided paths (serial and parallel) drive these.
  std::vector<ShardGroup> groups_;  // indexed by ShardId
  std::vector<Component*> global_components_;
  std::vector<Clocked*> global_clocked_;
  /// Pending wake_all_shards poke (kNeverCycle = none); written by workers,
  /// drained by the driving thread before each sweep.
  std::atomic<Cycle> poke_all_{kNeverCycle};
  /// Owned group window [own_begin_, own_end_), see set_owned_shards. The
  /// defaults cover every group — only ProcTransport workers narrow it.
  std::size_t own_begin_ = 0;
  std::size_t own_end_ = std::numeric_limits<std::size_t>::max();
  Cycle cycle_ = 0;
  obs::Hub* obs_ = nullptr;
  TickMode mode_ = TickMode::kNaive;
  ElisionStats stats_;
};

}  // namespace fasda::sim
