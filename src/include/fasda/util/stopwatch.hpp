#pragma once
// Wall-clock stopwatch used by the measured (CPU) side of Fig. 16.

#include <chrono>

namespace fasda::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fasda::util
