#pragma once
// CRC-32 (reflected 0xEDB88320) fed field-by-field so struct padding never
// enters the digest. Cheap bitwise implementation — callers hash a few dozen
// bytes per packet or one checkpoint per run, not line-rate traffic. Shared
// by the fabric's packet digests (net) and the checkpoint footer (md).

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace fasda::util {

class Crc32 {
 public:
  void add_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      crc_ ^= p[i];
      for (int b = 0; b < 8; ++b) {
        crc_ = (crc_ >> 1) ^ (0xEDB88320u & (0u - (crc_ & 1u)));
      }
    }
  }

  template <class T>
  void add(const T& v) {
    static_assert(std::is_arithmetic_v<T>, "hash scalar fields only");
    add_bytes(&v, sizeof v);
  }

  std::uint32_t value() const { return ~crc_; }

 private:
  std::uint32_t crc_ = 0xFFFFFFFFu;
};

}  // namespace fasda::util
