#pragma once
// Minimal leveled logger (printf-style; GCC 12 lacks <format>). Benches and
// examples print their own tables; the logger is for diagnostics, so it
// stays out of hot paths entirely.

#include <cstdarg>

namespace fasda::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users see nothing unless they opt in.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, const char* fmt, std::va_list args);
}

#if defined(__GNUC__)
#define FASDA_PRINTF_LIKE __attribute__((format(printf, 2, 3)))
#else
#define FASDA_PRINTF_LIKE
#endif

inline void log(LogLevel level, const char* fmt, ...) FASDA_PRINTF_LIKE;

inline void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  detail::log_emit(level, fmt, args);
  va_end(args);
}

#undef FASDA_PRINTF_LIKE

}  // namespace fasda::util
