#pragma once
// Minimal leveled logger (printf-style; GCC 12 lacks <format>). Benches and
// examples print their own tables; the logger is for diagnostics, so it
// stays out of hot paths entirely. Output goes to stderr unless a sink is
// installed (set_log_sink), which lets tests capture log lines and tools
// redirect them.

#include <cstdarg>
#include <functional>
#include <string_view>

namespace fasda::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users see nothing unless they opt in.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off"; throws
/// std::invalid_argument naming the bad token otherwise (--log-level flag).
LogLevel parse_log_level(std::string_view name);
const char* log_level_name(LogLevel level) noexcept;

/// Receives every emitted line, already formatted and without a trailing
/// newline. Called under the emit mutex, so sinks need no locking of their
/// own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the stderr writer; an empty sink restores it.
void set_log_sink(LogSink sink);

namespace detail {
void log_emit(LogLevel level, const char* fmt, std::va_list args);
}

#if defined(__GNUC__)
#define FASDA_PRINTF_LIKE __attribute__((format(printf, 2, 3)))
#else
#define FASDA_PRINTF_LIKE
#endif

inline void log(LogLevel level, const char* fmt, ...) FASDA_PRINTF_LIKE;

inline void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  detail::log_emit(level, fmt, args);
  va_end(args);
}

#undef FASDA_PRINTF_LIKE

}  // namespace fasda::util
