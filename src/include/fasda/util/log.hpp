#pragma once
// Minimal leveled logger (printf-style; GCC 12 lacks <format>). Benches and
// examples print their own tables; the logger is for diagnostics, so it
// stays out of hot paths entirely. Output goes to stderr unless a sink is
// installed (set_log_sink), which lets tests capture log lines and tools
// redirect them.

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace fasda::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users see nothing unless they opt in.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off"; throws
/// std::invalid_argument naming the bad token otherwise (--log-level flag).
LogLevel parse_log_level(std::string_view name);
const char* log_level_name(LogLevel level) noexcept;

/// Receives every emitted line, already formatted and without a trailing
/// newline. Called under the emit mutex, so sinks need no locking of their
/// own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the stderr writer; an empty sink restores it.
void set_log_sink(LogSink sink);

/// Structured context attached to a log line by slog(). All fields are
/// optional; job 0 means "no job association".
struct LogFields {
  LogFields() = default;
  LogFields(std::string_view component_, std::uint64_t job_ = 0,
            std::string_view tenant_ = {})
      : component(component_), job(job_), tenant(tenant_) {}

  std::string_view component;  ///< e.g. "serve.server", "serve.journal"
  std::uint64_t job = 0;       ///< server-assigned job id
  std::string_view tenant;
};

/// Opens (appending) a JSON-lines structured sink. Every line emitted
/// through log()/slog() is additionally written to the file as one JSON
/// object: {"ts_us":…,"level":"…","component":…,"job":…,"tenant":…,
/// "msg":"…"} with empty fields omitted. Returns false if the file cannot
/// be opened. The JSON sink runs alongside the stderr/LogSink path, not
/// instead of it.
bool open_json_log(const std::string& path);
void close_json_log();
bool json_log_active();

namespace detail {
void log_emit(LogLevel level, const LogFields& fields, const char* fmt,
              std::va_list args);
}

#if defined(__GNUC__)
#define FASDA_PRINTF_LIKE(fmt_at) \
  __attribute__((format(printf, fmt_at, fmt_at + 1)))
#else
#define FASDA_PRINTF_LIKE(fmt_at)
#endif

inline void log(LogLevel level, const char* fmt, ...) FASDA_PRINTF_LIKE(2);

inline void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  detail::log_emit(level, LogFields{}, fmt, args);
  va_end(args);
}

/// log() with structured context: the stderr line is prefixed with the
/// component, and the JSON sink (when open) gets the fields as columns.
inline void slog(LogLevel level, const LogFields& fields, const char* fmt, ...)
    FASDA_PRINTF_LIKE(3);

inline void slog(LogLevel level, const LogFields& fields, const char* fmt,
                 ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  detail::log_emit(level, fields, fmt, args);
  va_end(args);
}

#undef FASDA_PRINTF_LIKE

}  // namespace fasda::util
