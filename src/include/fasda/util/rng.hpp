#pragma once
// Deterministic, seedable random number generation for dataset construction
// and failure-injection tests. xoshiro256** seeded through SplitMix64, so a
// single 64-bit seed reproduces every dataset in the paper's evaluation.

#include <cstdint>
#include <limits>

namespace fasda::util {

/// SplitMix64: used to expand one 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator; satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless method is overkill here; modulo bias is
    // negligible for n << 2^64 and determinism is what matters.
    return (*this)() % n;
  }

  /// Standard normal via Marsaglia polar method (deterministic, no <cmath>
  /// calls beyond sqrt/log which are IEEE-exact enough for reproducibility).
  double normal() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace fasda::util
