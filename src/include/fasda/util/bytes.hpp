#pragma once
// Bounds-checked little-endian byte codec for the shard-transport control
// frames and the Packet wire format (DESIGN.md §14). Writers append to a
// growable buffer; readers consume from a span and latch a sticky failure
// flag on overrun instead of throwing, so decoders read an entire message
// unconditionally and check ok() once at the end — truncated or garbage
// input can never read out of bounds.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace fasda::util {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  /// u32 length prefix + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <class T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  /// False once any read ran past the end; reads after a failure return 0.
  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// A fully consumed, never-overrun buffer — what a strict decoder wants.
  bool done() const { return ok_ && pos_ == size_; }

  std::uint8_t u8() { return take(1) ? data_[pos_ - 1] : 0; }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - n), n);
  }

 private:
  template <class T>
  T get_le() {
    if (!take(sizeof(T))) return 0;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ - sizeof(T) + i])
                                 << (8 * i));
    }
    return v;
  }

  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fasda::util
