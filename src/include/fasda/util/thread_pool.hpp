#pragma once
// Fixed-size thread pool with a parallel_for suited to the reference MD
// engine: static chunking (cache-friendly, reproducible partitioning) with an
// optional grain size. Worker threads persist across calls so per-timestep
// dispatch overhead is a few microseconds — the same regime as OpenMM's CPU
// platform, which matters for the Fig. 16 thread-scaling measurement.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fasda::util {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 or 1 means "run inline on the caller".
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs body(worker, begin, end) over [0, n) split into one contiguous
  /// chunk per worker (including the caller, which is worker 0). Blocks
  /// until all chunks complete. `worker` < size() and is unique per chunk,
  /// so it can index per-thread scratch buffers.
  using Body = std::function<void(std::size_t, std::size_t, std::size_t)>;
  void parallel_for(std::size_t n, const Body& body);

  /// Blocking two-phase fan-out/join: runs phase1(worker, begin, end) over
  /// [0, n) with the same static chunking as parallel_for, then rendezvous
  /// at an internal barrier (every participant, even those with an empty
  /// chunk), then runs phase2 over the same chunks. The barrier guarantees
  /// every phase1 write happens-before every phase2 read — exactly the
  /// tick/commit separation the parallel cycle scheduler needs.
  void parallel_phases(std::size_t n, const Body& phase1, const Body& phase2);

 private:
  struct Task {
    const Body* body = nullptr;
    const Body* phase2 = nullptr;  // non-null only for parallel_phases calls
    std::size_t worker = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t worker_index);
  void barrier_wait(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::condition_variable cv_barrier_;
  std::vector<Task> tasks_;       // one slot per worker
  std::uint64_t generation_ = 0;  // bumped per parallel_for call
  std::size_t pending_ = 0;
  std::size_t barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool stop_ = false;
};

}  // namespace fasda::util
