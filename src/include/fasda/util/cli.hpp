#pragma once
// Tiny flag parser shared by benches and examples: --key value / --key=value
// / bare --switch. Unknown flags are collected so harnesses can forward them.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fasda/geom/vec3.hpp"

namespace fasda::util {

/// Parses a grid/config dimension triple: either the artifact's 3-digit
/// shorthand ("444" → 4×4×4) or the general "XxYxZ" form ("12x4x4"),
/// which is the only way to express axes ≥ 10 cells. Every component must
/// be ≥ 1; throws std::invalid_argument otherwise.
geom::IVec3 parse_dims(std::string_view s);

class Cli {
 public:
  Cli(int argc, char** argv);

  /// True if --name was present (with or without a value).
  bool has(std::string_view name) const;

  std::optional<std::string> get(std::string_view name) const;
  std::string get_or(std::string_view name, std::string_view fallback) const;
  long get_or(std::string_view name, long fallback) const;
  double get_or(std::string_view name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;  // name -> value ("" if none)
  std::vector<std::string> positional_;
};

}  // namespace fasda::util
