#pragma once
// Cycle-stamped trace/event bus (DESIGN.md §12). Components emit typed
// events — phase spans, sync instants, fault/incident markers — stamped
// with the *simulated* cycle, never wall-clock, so the exported trace is
// bitwise identical for any worker count. Buffering is sharded exactly like
// the metrics registry: shard i is appended to only by the worker ticking
// node i, the cluster shard only from single-threaded phases. Export merges
// the shards under the canonical order (ts, shard, per-shard sequence),
// which is independent of how ticks interleaved across threads.
//
// Supervised runs restart the scheduler clock at cycle 0 on every engine
// rebuild; begin_epoch() closes any spans the crashed attempt left open and
// re-bases subsequent stamps past the trace high-water mark, keeping `ts`
// monotone per thread track while `args.cycle` stays the raw simulated
// cycle within the attempt.

#include <cstdint>
#include <string>
#include <vector>

namespace fasda::obs {

using Cycle = std::uint64_t;

/// Thread track within a node process in the exported Chrome trace: one pid
/// per FPGA node (kClusterPid for cluster-scope events), one tid per
/// component.
enum class Comp : std::uint8_t {
  kFsm = 0,        // node datapath FSM phases (spans)
  kSync = 1,       // EX-node last-flush sends (instants)
  kNetPos = 2,     // position fabric: faults / retransmits (instants)
  kNetFrc = 3,     // force fabric
  kNetMig = 4,     // migration fabric
  kEngine = 5,     // engine StepMetrics samples (instants)
  kScheduler = 6,  // scheduler run_until windows (spans)
  kHealth = 7,     // watchdog / degraded-link detection (instants)
  kSupervisor = 8, // supervisor incidents, checkpoints, restarts (instants)
};

const char* comp_name(Comp comp);

inline constexpr int kClusterPid = -1;
inline constexpr int kClusterShard = -1;

struct TraceEvent {
  Cycle ts = 0;     // epoch-rebased stamp (monotone per track)
  Cycle cycle = 0;  // raw simulated cycle within its epoch
  std::int32_t pid = kClusterPid;
  Comp tid = Comp::kFsm;
  char phase = 'i';             // 'B' span begin, 'E' span end, 'i' instant
  const char* name = "";        // static-lifetime strings only
  const char* arg_name = nullptr;  // optional extra integer argument
  std::int64_t arg = 0;
};

class TraceBus {
 public:
  /// Grows the shard set to cover nodes [0, num_nodes). Never call while
  /// worker threads are running.
  void ensure_nodes(int num_nodes);

  // ---- emission (shard = owning node id, kClusterShard for the caller
  // thread / single-threaded phases; pid may differ from shard, e.g. a
  // fabric commit stamps the source node's pid from the cluster shard) ----
  void begin(int shard, int pid, Comp tid, const char* name, Cycle cycle);
  void end(int shard, int pid, Comp tid, Cycle cycle);
  void instant(int shard, int pid, Comp tid, const char* name, Cycle cycle,
               const char* arg_name = nullptr, std::int64_t arg = 0);

  /// Between engine runs: closes every span still open (a crashed attempt
  /// never reaches its 'E') at the trace high-water mark, then re-bases so
  /// the next epoch's cycle 0 stamps strictly after everything emitted so
  /// far.
  void begin_epoch();

  /// All events in canonical order, with spans still open at export time
  /// closed at the high-water mark. Bitwise identical across worker counts.
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON (one pid per node, one tid per component,
  /// process_name/thread_name metadata) — loadable at ui.perfetto.dev.
  std::string to_chrome_json() const;

  bool empty() const;

 private:
  struct Open {
    std::int32_t pid;
    Comp tid;
    const char* name;
  };
  struct Shard {
    std::vector<TraceEvent> events;
    std::vector<Open> open;  // span stack; spans are well nested per shard
    Cycle max_ts = 0;
  };

  Shard& shard_at(int shard) {
    return shards_[static_cast<std::size_t>(shard + 1)];
  }
  Cycle high_water() const;
  void append(Shard& shard, TraceEvent event);

  std::vector<Shard> shards_{1};  // [0] = cluster, [i + 1] = node i
  Cycle base_ = 0;                // epoch re-base offset
};

}  // namespace fasda::obs
