#pragma once
// fasda::obs — deterministic telemetry hub (DESIGN.md §12). One Hub owns
// the metrics registry and the trace bus for one observed engine/cluster at
// a time; every surface takes a nullable `obs::Hub*` and a null hub is the
// disabled path (a single pointer test per emission site, nothing else).
//
// Determinism rule: everything published through the hub is derived from
// simulated state only — cycle counts, packet counts, fixed-point sums —
// never wall-clock or thread identity, so snapshots and traces from the
// same workload are bitwise identical for 1/2/4 workers.

#include <string>
#include <string_view>

#include "fasda/obs/metrics.hpp"
#include "fasda/obs/trace.hpp"

namespace fasda::obs {

class Hub {
 public:
  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  TraceBus& trace() { return trace_; }
  const TraceBus& trace() const { return trace_; }

  /// Sizes both pillars for a cluster of `num_nodes`. Idempotent and
  /// grow-only, so supervised rebuilds (and degraded re-shards) keep
  /// appending to the same telemetry.
  void attach_cluster(int num_nodes) {
    metrics_.ensure_nodes(num_nodes);
    trace_.ensure_nodes(num_nodes);
  }

  /// Supervisor hook: call between engine attempts (see TraceBus).
  void begin_epoch() { trace_.begin_epoch(); }

 private:
  Registry metrics_;
  TraceBus trace_;
};

/// Writes `content` to `path` (truncating). Returns false on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace fasda::obs
