#pragma once
// Metrics registry (DESIGN.md §12): named counters / gauges / histograms
// owned per simulated node. Registration resolves a name to a Handle once;
// after that the hot path is a bounds-free indexed add into a plain uint64
// slot, cheap enough to stay on inside Fabric::commit or an FSM transition.
//
// Sharding mirrors the scheduler contract (DESIGN.md §8): slot shard i is
// written only by whichever worker thread ticks node i, the cluster shard
// (node = kClusterNode) only from single-threaded phases (fabric commit,
// the run_until caller). Registration and snapshotting happen between runs
// on the caller thread. Under those rules no locks are needed and a
// snapshot — which merges the shards in node-id order — is bitwise
// identical for any worker count.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fasda::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Slot index with the metric kind packed into the top two bits, so the
/// hot-path add/set/observe is a single indexed write with no name lookup.
using Handle = std::uint32_t;

/// Shard id for cluster-wide metrics (written single-threaded only).
inline constexpr int kClusterNode = -1;

/// Histograms bucket by bit width: bucket k counts values v with
/// bit_width(v) == k (v = 0 lands in bucket 0), capped at the last bucket.
inline constexpr int kHistogramBuckets = 65;

const char* metric_kind_name(MetricKind kind);

/// Deterministic point-in-time view of a Registry: series sorted by name,
/// per-node breakdowns sorted by node id, shards already merged.
struct MetricsSnapshot {
  struct Series {
    std::string name;
    std::string help;  ///< exporter HELP text; empty = use the name
    MetricKind kind = MetricKind::kCounter;
    // Counters: total is the sum over shards; per_node lists the nonzero
    // shards. Gauges: value is the cluster slot (or, if only per-node slots
    // were set, the last node's); per_node_values lists every touched slot.
    std::uint64_t total = 0;
    double value = 0.0;
    std::vector<std::pair<int, std::uint64_t>> per_node;
    std::vector<std::pair<int, double>> per_node_values;
    // Histograms: buckets merged across shards, plus the exact sum of all
    // observed values (u64 wraparound adds, so merging stays
    // order-independent) for native Prometheus `_sum` exposition.
    std::vector<std::uint64_t> buckets;
    std::uint64_t sum = 0;

    std::uint64_t bucket_count() const;
  };

  std::vector<Series> series;  // sorted by name

  const Series* find(std::string_view name) const;
  std::uint64_t counter_total(std::string_view name) const;
  std::uint64_t counter(std::string_view name, int node) const;
  double gauge_or(std::string_view name, double fallback = 0.0) const;

  /// Folds `other` in: counters and histogram buckets add, gauges take
  /// `other`'s value where it has one. Series order stays name-sorted.
  void merge(const MetricsSnapshot& other);

  std::string to_json() const;
  std::string to_prometheus() const;
};

class Registry {
 public:
  /// Registers (or re-resolves) a metric. Same name + same kind returns the
  /// same handle; same name under a different kind throws
  /// std::invalid_argument. Single-threaded: never call during a run.
  /// `help` is exporter HELP text; the first non-empty help wins.
  Handle counter(std::string_view name, std::string_view help = {});
  Handle gauge(std::string_view name, std::string_view help = {});
  Handle histogram(std::string_view name, std::string_view help = {});

  /// Grows the shard set to cover nodes [0, count). Never shrinks, so a
  /// degraded re-shard keeps publishing into the same registry.
  void ensure_nodes(int count);
  int num_nodes() const { return static_cast<int>(shards_.size()) - 1; }

  // ---- hot path (node = owning shard, kClusterNode for cluster slots) ----
  void add(int node, Handle h, std::uint64_t delta = 1) noexcept {
    shards_[static_cast<std::size_t>(node + 1)].counters[slot_of(h)] += delta;
  }
  /// Overwrites a counter slot with an externally accumulated total —
  /// idempotent publishing of already-counted stats (TrafficMatrix,
  /// LinkStats) into the registry.
  void set_counter(int node, Handle h, std::uint64_t total) noexcept {
    shards_[static_cast<std::size_t>(node + 1)].counters[slot_of(h)] = total;
  }
  void set(int node, Handle h, double value) noexcept {
    auto& shard = shards_[static_cast<std::size_t>(node + 1)];
    shard.gauges[slot_of(h)] = value;
    shard.gauge_set[slot_of(h)] = 1;
  }
  void observe(int node, Handle h, std::uint64_t value) noexcept;

  std::uint64_t counter_value(int node, Handle h) const {
    return shards_[static_cast<std::size_t>(node + 1)].counters[slot_of(h)];
  }

  /// Merges the shards in node-id order into a name-sorted snapshot.
  MetricsSnapshot snapshot() const;

  /// Raw per-node slot image for the shard-transport metrics fold
  /// (DESIGN.md §14): counters and histogram buckets of nodes in
  /// [node_begin, node_end), by name. Gauges are excluded — the parent's
  /// publish pass recomputes every gauge from folded state. Zero slots are
  /// skipped (counters only grow, so a slot once exported stays exported).
  struct NodeImage {
    struct Series {
      std::string name;
      MetricKind kind = MetricKind::kCounter;
      /// (node, value) for counters; (node, offset-into-buckets) pairs with
      /// kHistogramBuckets + 1 values each in `buckets` for histograms —
      /// the bucket counts followed by the observed-value sum.
      std::vector<std::pair<int, std::uint64_t>> values;
      std::vector<std::uint64_t> buckets;
    };
    std::vector<Series> series;  // registration order
  };
  NodeImage image_nodes(int node_begin, int node_end) const;

  /// Applies an image with SET semantics: each exported slot overwrites the
  /// local value. A worker process and its parent construct identical
  /// registries pre-fork, so the owning worker's slot value IS the
  /// in-process value for that node — set, not add, keeps repeated folds
  /// across multiple runs idempotent. Unknown names register on demand.
  void apply_image(const NodeImage& img);

 private:
  struct Shard {
    std::vector<std::uint64_t> counters;
    std::vector<double> gauges;
    std::vector<std::uint8_t> gauge_set;
    std::vector<std::uint64_t> hist;  // kHistogramBuckets per histogram slot
    std::vector<std::uint64_t> hist_sum;  // one running sum per slot
  };
  struct Meta {
    std::string name;
    std::string help;
    MetricKind kind;
    Handle handle;
  };

  static constexpr std::uint32_t kSlotMask = (1u << 30) - 1;
  static std::uint32_t slot_of(Handle h) noexcept { return h & kSlotMask; }
  static MetricKind kind_of(Handle h) noexcept {
    return static_cast<MetricKind>(h >> 30);
  }
  static Handle make_handle(MetricKind kind, std::uint32_t slot) noexcept {
    return (static_cast<Handle>(kind) << 30) | slot;
  }

  Handle register_metric(std::string_view name, MetricKind kind,
                         std::string_view help = {});
  void resize_shard(Shard& shard) const;

  std::vector<Meta> metas_;             // registration order
  std::array<std::uint32_t, 3> next_slot_{0, 0, 0};
  std::vector<Shard> shards_{1};        // [0] = cluster, [i + 1] = node i
};

/// Fig. 18 egress breakdown sourced from the registry: the share (percent)
/// of `src`'s data packets on channel `ch` ("net.pos" / "net.frc" /
/// "net.mig") sent to each destination node, in node-id order. Replaces the
/// per-bench aggregation that used to live in fig18_communication.
std::vector<double> egress_percentages(const MetricsSnapshot& snap,
                                       std::string_view channel, int src,
                                       int num_nodes);

}  // namespace fasda::obs
