#pragma once
// Wall-clock observability plane for the serving stack (DESIGN.md §17).
//
// The deterministic plane (obs.hpp) is forbidden from expressing wall-clock
// time: its whole contract is that snapshots are bitwise identical across
// worker counts. A serving daemon needs the opposite — request latency
// distributions, queue-wait, fsync stalls, per-tenant load — all of which
// are real time on a real host. This header is that second plane:
//
//   * ServerStats — a mutex-guarded wrapper over the same 65-bucket log2
//     Registry the deterministic plane uses (one registry instance, never
//     shared with a deterministic Hub). Latencies are observed in
//     microseconds; the log2 bit-width bucketing that indexes cycle counts
//     indexes microseconds just as well.
//   * ServeTrace — a span recorder stamping events with rebased realtime
//     microseconds, exported as Chrome trace JSON. Spans are correlated
//     across daemon incarnations by a span id the server persists in the
//     journal's kAdmitted records (DESIGN.md §16/§17).
//
// Nothing from this file may ever be published into a deterministic
// registry or trace; nothing deterministic may ever read a wall clock.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fasda/obs/metrics.hpp"

namespace fasda::obs {

/// Microseconds since the Unix epoch, sampled from the monotonic clock and
/// rebased to the realtime epoch captured once at process start — monotone
/// within one process (NTP steps cannot reorder spans) while still being
/// comparable across daemon incarnations.
std::uint64_t wall_micros();

/// The serve daemon's wall-clock metrics. Thread-safe (one short mutex per
/// emission — the serve path is tens of jobs per second, not a per-cycle
/// hot path). Handles are pre-registered public members so call sites pay
/// one lock and one indexed add, no name lookup. Disabled instances
/// (set_enabled(false)) drop every emission before taking the lock, which
/// is what the bench's metrics-off baseline measures against.
class ServerStats {
 public:
  ServerStats();

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void add(Handle h, std::uint64_t delta = 1) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    reg_.add(kClusterNode, h, delta);
  }
  void observe(Handle h, std::uint64_t value) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    reg_.observe(kClusterNode, h, value);
  }
  void set(Handle h, double value) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    reg_.set(kClusterNode, h, value);
  }

  /// Per-tenant counter: "serve.tenant.<tenant>.<what>". Registers lazily
  /// on first use (registration scans linearly; tenants number dozens, not
  /// millions — quotas bound them long before the registry would care).
  void tenant_add(std::string_view tenant, std::string_view what,
                  std::uint64_t delta = 1);

  MetricsSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reg_.snapshot();
  }

  // ---- latency histograms (microseconds) ----
  Handle submit_to_result_us;  ///< kAccepted sent -> kResult pushed
  Handle queue_wait_us;        ///< enqueue -> a worker popped it
  Handle execute_us;           ///< execute_job wall time
  Handle journal_append_us;    ///< whole append() call incl. fsync
  Handle journal_fsync_us;     ///< the fsync alone
  Handle recovery_us;          ///< startup replay window
  // ---- counters ----
  Handle frames_decoded, frames_bad_length, frames_bad_crc, frames_bad_type;
  Handle rejected_bad_request, rejected_queue_full, rejected_tenant_quota,
      rejected_draining, rejected_stopped, rejected_recovering;
  Handle jobs_submitted, jobs_completed, jobs_recovered, jobs_resumed,
      results_restored;
  Handle journal_appends, journal_disabled, journal_rotations;
  Handle conns_accepted, conns_closed;
  // ---- gauges (refreshed by the server before each scrape/dump) ----
  Handle queue_depth, jobs_running, conns_active, uptime_seconds, recovering;

 private:
  bool enabled_ = true;  // flipped only before the server starts
  mutable std::mutex mu_;
  Registry reg_;
};

/// Wall-clock span recorder for serve jobs. Unlike the deterministic
/// TraceBus this is mutex-guarded (connection threads, queue workers and
/// the recovery thread all emit concurrently) and each event carries the
/// server-assigned job id (the Chrome tid, so every job gets its own
/// track) plus the journal-persisted span id that stitches a job's spans
/// across kill -9 incarnations.
class ServeTrace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// `name` must have static lifetime (string literals at every call site).
  /// job is the track; job 0 is the server-level track (recovery, etc.).
  void begin(std::uint64_t job, std::uint64_t span, const char* name,
             std::string tenant = {});
  void end(std::uint64_t job, std::uint64_t span, const char* name);
  void instant(std::uint64_t job, std::uint64_t span, const char* name,
               std::int64_t arg = -1, const char* arg_name = nullptr);

  std::size_t size() const;
  std::uint64_t dropped() const;

  /// Chrome trace JSON ("traceEvents"). Spans still open at export time
  /// are closed at the export timestamp (snapshot semantics), so periodic
  /// dumps from a live daemon — including the last dump a SIGKILLed
  /// incarnation left behind — always validate as well nested.
  std::string to_chrome_json() const;

 private:
  struct Event {
    std::uint64_t ts_us = 0;
    std::uint64_t job = 0;
    std::uint64_t span = 0;
    char phase = 'i';
    const char* name = "";
    std::string tenant;
    std::int64_t arg = -1;
    const char* arg_name = nullptr;
  };
  void push(Event e);

  bool enabled_ = true;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  /// Memory bound for a long-running daemon: past this many retained
  /// events new ones are dropped (and counted) rather than growing without
  /// limit. ~10 events/job => room for ~26k jobs between dumps.
  std::size_t capacity_ = std::size_t{1} << 18;
  std::uint64_t dropped_ = 0;
};

}  // namespace fasda::obs
