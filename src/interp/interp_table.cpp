#include "fasda/interp/interp_table.hpp"

#include <cmath>

namespace fasda::interp {

InterpTable InterpTable::build(const std::function<double(double)>& f,
                               const InterpConfig& config) {
  if (config.num_sections < 1 || config.num_bins < 1) {
    throw std::invalid_argument("InterpConfig must have >=1 section and bin");
  }
  InterpTable table(config);
  table.a_.resize(static_cast<std::size_t>(config.num_sections) * config.num_bins);
  table.b_.resize(table.a_.size());
  for (int s = 0; s < config.num_sections; ++s) {
    for (int b = 0; b < config.num_bins; ++b) {
      const double x0 = table.bin_left_edge(s, b);
      const double x1 = table.bin_left_edge(s, b + 1);
      const double f0 = f(x0);
      const double f1 = f(x1);
      const double slope = (f1 - f0) / (x1 - x0);
      const std::size_t i =
          static_cast<std::size_t>(s) * config.num_bins + b;
      table.a_[i] = static_cast<float>(slope);
      table.b_[i] = static_cast<float>(f0 - slope * x0);
    }
  }
  return table;
}

InterpTable InterpTable::build_r_pow(int alpha, const InterpConfig& config) {
  const double exponent = -static_cast<double>(alpha) / 2.0;
  return build([exponent](double r2) { return std::pow(r2, exponent); }, config);
}

double InterpTable::bin_left_edge(int section, int bin) const {
  // Section s covers [2^(s-ns), 2^(s-ns+1)); bin b starts at
  // 2^(s-ns) * (1 + b/nb).
  const double section_base = std::ldexp(1.0, section - config_.num_sections);
  return section_base *
         (1.0 + static_cast<double>(bin) / config_.num_bins);
}

TableIndex InterpTable::index_of(float r2) const {
  TableIndex idx;
  if (!(r2 > 0.0f) || r2 < std::ldexp(1.0f, -config_.num_sections)) {
    idx.below_range = true;
    idx.section = 0;
    idx.bin = 0;
    return idx;
  }
  if (r2 >= 1.0f) {
    idx.above_range = true;
    idx.section = config_.num_sections - 1;
    idx.bin = config_.num_bins - 1;
    return idx;
  }
  // Eq. 9: s = floor(log2(r²)) + n_s, taken from the float exponent bits.
  int exponent = 0;
  const float mantissa = std::frexp(r2, &exponent);  // r2 = mantissa * 2^exponent, mantissa in [0.5,1)
  // floor(log2(r2)) = exponent - 1 for normalized mantissa in [0.5, 1).
  idx.section = exponent - 1 + config_.num_sections;
  // Eq. 10: b = floor((2^(ns-s) * r² - 1) * n_b); 2^(ns-s)*r² = 2*mantissa.
  int bin = static_cast<int>((2.0f * mantissa - 1.0f) * config_.num_bins);
  if (bin >= config_.num_bins) bin = config_.num_bins - 1;
  idx.bin = bin;
  return idx;
}

float InterpTable::eval(float r2) const {
  const TableIndex idx = index_of(r2);
  const std::size_t i =
      static_cast<std::size_t>(idx.section) * config_.num_bins + idx.bin;
  return a_[i] * r2 + b_[i];
}

double InterpTable::max_relative_error(const std::function<double(double)>& f,
                                       int samples_per_bin) const {
  double worst = 0.0;
  for (int s = 0; s < config_.num_sections; ++s) {
    for (int b = 0; b < config_.num_bins; ++b) {
      const double x0 = bin_left_edge(s, b);
      const double x1 = bin_left_edge(s, b + 1);
      for (int k = 0; k < samples_per_bin; ++k) {
        const double x =
            x0 + (x1 - x0) * (k + 0.5) / samples_per_bin;
        const double exact = f(x);
        const double approx = eval(static_cast<float>(x));
        const double rel = std::abs(approx - exact) / std::abs(exact);
        if (rel > worst) worst = rel;
      }
    }
  }
  return worst;
}

}  // namespace fasda::interp
