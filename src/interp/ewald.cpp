#include "fasda/interp/ewald.hpp"

#include <cmath>

namespace fasda::interp {

namespace {
constexpr double kTwoOverSqrtPi = 1.1283791670955126;
}

InterpTable build_ewald_force_table(double beta_rc, const InterpConfig& config) {
  return InterpTable::build(
      [beta_rc](double u2) {
        const double u = std::sqrt(u2);
        const double bu = beta_rc * u;
        return (std::erfc(bu) + kTwoOverSqrtPi * bu * std::exp(-bu * bu)) /
               (u2 * u);
      },
      config);
}

InterpTable build_ewald_energy_table(double beta_rc, const InterpConfig& config) {
  return InterpTable::build(
      [beta_rc](double u2) { return std::erfc(beta_rc * std::sqrt(u2)) / std::sqrt(u2); },
      config);
}

}  // namespace fasda::interp
