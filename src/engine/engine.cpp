#include "fasda/engine/engine.hpp"

#include "fasda/md/analysis.hpp"
#include "fasda/util/stopwatch.hpp"

namespace fasda::engine {

void Engine::step(int n) {
  if (n <= 0) return;
  util::Stopwatch wall;
  do_step(n);
  metrics_.wall_seconds += wall.seconds();
  metrics_.steps_completed += n;
  update_metrics(metrics_);
}

double Engine::kinetic_energy() const { return md::kinetic_energy(state(), ff_); }

Energies Engine::energies() {
  const md::SystemState s = state();
  Energies e;
  e.potential = potential_energy();
  e.kinetic = md::kinetic_energy(s, ff_);
  e.total = e.potential + e.kinetic;
  e.temperature = md::temperature(s, ff_);
  return e;
}

}  // namespace fasda::engine
