#include "fasda/engine/batch_runner.hpp"

#include <exception>
#include <thread>

#include "fasda/sync/sync.hpp"
#include "fasda/util/stopwatch.hpp"

namespace fasda::engine {

ReplicaContext::ReplicaContext(const BatchJob& job, const Registry& registry)
    : job_(job), registry_(registry), spec_(job.spec) {
  spec_.obs = nullptr;
  engine_ = registry.create(job.state, job.ff, spec_);
}

void ReplicaContext::rebuild(const md::SystemState& state) {
  steps_before_rebuilds_ += engine_->metrics().steps_completed;
  engine_ = registry_.create(state, job_.ff, spec_);
}

BatchRunner::BatchRunner(std::size_t workers, const Registry& registry)
    : registry_(registry),
      pool_(workers ? workers : std::thread::hardware_concurrency()) {}

BatchReport BatchRunner::run(const std::vector<BatchJob>& jobs) {
  BatchReport report;
  report.workers = pool_.size();
  report.replicas.resize(jobs.size());

  util::Stopwatch wall;
  // Each replica writes only its own pre-sized slot, and its result is a
  // pure function of its job — worker count cannot change any result.
  pool_.parallel_for(jobs.size(), [&](std::size_t, std::size_t begin,
                                      std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const BatchJob& job = jobs[i];
      ReplicaResult& out = report.replicas[i];
      out.label = job.label;
      util::Stopwatch replica_wall;
      try {
        ReplicaContext ctx(job, registry_);
        if (job.body) {
          out.score = job.body(ctx);
        } else {
          ctx.engine().step(job.steps);
          out.score = ctx.engine().total_energy();
        }
        Engine& engine = ctx.engine();
        out.final_energies = engine.energies();
        out.final_state = engine.state();
        out.steps = ctx.total_steps();
        out.simulated_us = static_cast<double>(out.steps) * job.spec.dt * 1e-9;
        out.ok = true;
      } catch (const sync::DegradedLinkError& e) {
        out.ok = false;
        out.error = e.what();
        out.failure = ReplicaFailure::kDegradedLink;
        out.failed_node = e.link().dst;
      } catch (const sync::NodeFailureError& e) {
        out.ok = false;
        out.error = e.what();
        out.failure = ReplicaFailure::kNodeFailure;
        out.failed_node = e.node();
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
        out.failure = ReplicaFailure::kOther;
      }
      out.seconds = replica_wall.seconds();
    }
  });
  report.wall_seconds = wall.seconds();

  double us_per_day_sum = 0;
  std::size_t ok_count = 0;
  for (const ReplicaResult& r : report.replicas) {
    if (!r.ok) continue;
    ++ok_count;
    report.simulated_us += r.simulated_us;
    if (r.seconds > 0) us_per_day_sum += r.simulated_us / (r.seconds / 86400.0);
  }
  if (report.wall_seconds > 0) {
    report.replicas_per_hour =
        static_cast<double>(ok_count) / (report.wall_seconds / 3600.0);
  }
  if (ok_count > 0) {
    report.us_per_day_per_replica = us_per_day_sum / static_cast<double>(ok_count);
  }
  return report;
}

}  // namespace fasda::engine
