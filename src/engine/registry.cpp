#include "fasda/engine/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "fasda/md/functional_engine.hpp"
#include "fasda/md/reference_engine.hpp"

namespace fasda::engine {

namespace {

/// md::ReferenceEngine behind the uniform interface: float64 ground truth.
class ReferenceAdapter final : public Engine {
 public:
  ReferenceAdapter(const md::SystemState& state, const md::ForceField& ff,
                   const EngineSpec& spec)
      : Engine("reference", ff),
        engine_(state, ff, state.cell_size, spec.dt, spec.threads, spec.terms) {}

  md::SystemState state() const override { return engine_.state(); }

  std::vector<geom::Vec3d> forces_by_particle() const override {
    return engine_.forces();
  }

  double potential_energy() override { return engine_.potential_energy(); }

 protected:
  void do_step(int n) override { engine_.step(n); }
  void update_metrics(StepMetrics& m) override {
    m.last_pair_count = engine_.last_pair_count();
  }

 private:
  md::ReferenceEngine engine_;
};

/// md::FunctionalEngine behind the uniform interface: exact FASDA numerics.
class FunctionalAdapter final : public Engine {
 public:
  FunctionalAdapter(const md::SystemState& state, const md::ForceField& ff,
                    const EngineSpec& spec)
      : Engine("functional", ff),
        engine_(state, ff, functional_config(state, spec)) {}

  md::SystemState state() const override { return engine_.state(); }

  std::vector<geom::Vec3d> forces_by_particle() const override {
    std::vector<geom::Vec3d> out;
    for (const geom::Vec3f& f : engine_.forces_by_particle()) {
      out.push_back(f.cast<double>());  // float -> double is exact
    }
    return out;
  }

  double potential_energy() override { return engine_.potential_energy(); }

 protected:
  void do_step(int n) override { engine_.step(n); }
  void update_metrics(StepMetrics& m) override {
    m.last_pair_count = engine_.last_pair_count();
  }

 private:
  static md::FunctionalConfig functional_config(const md::SystemState& state,
                                                const EngineSpec& spec) {
    md::FunctionalConfig c;
    c.cutoff = state.cell_size;
    c.dt = spec.dt;
    c.table = spec.table;
    c.terms = spec.terms;
    c.threads = spec.threads;
    return c;
  }

  md::FunctionalEngine engine_;
};

}  // namespace

core::ClusterConfig cluster_config_for(const EngineSpec& spec,
                                       const md::SystemState& state) {
  core::ClusterConfig c;
  c.cells_per_node = spec.cells_per_node.value_or(state.cell_dims);
  if (c.cells_per_node.x < 1 || c.cells_per_node.y < 1 ||
      c.cells_per_node.z < 1 || state.cell_dims.x % c.cells_per_node.x ||
      state.cell_dims.y % c.cells_per_node.y ||
      state.cell_dims.z % c.cells_per_node.z) {
    throw std::invalid_argument(
        "EngineSpec: the cell space must tile by cells_per_node");
  }
  c.node_dims = {state.cell_dims.x / c.cells_per_node.x,
                 state.cell_dims.y / c.cells_per_node.y,
                 state.cell_dims.z / c.cells_per_node.z};
  c.pes_per_spe = spec.pes_per_spe;
  c.spes = spec.spes;
  c.table = spec.table;
  c.terms = spec.terms;
  c.cutoff = state.cell_size;
  c.dt = spec.dt;
  c.channel = spec.channel;
  c.num_worker_threads = spec.num_worker_threads;
  c.proc_workers = spec.proc_workers;
  c.faults = spec.faults;
  c.reliability = spec.reliability;
  if (spec.watchdog_budget > 0) c.watchdog_budget = spec.watchdog_budget;
  if (spec.naive_tick) c.tick_mode = sim::TickMode::kNaive;
  c.obs = spec.obs;
  return c;
}

CycleEngine::CycleEngine(const md::SystemState& state, md::ForceField ff,
                         const core::ClusterConfig& config)
    : Engine("cycle", ff), sim_(state, std::move(ff), config) {}

std::vector<geom::Vec3d> CycleEngine::forces_by_particle() const {
  std::vector<geom::Vec3d> out;
  for (const geom::Vec3f& f : sim_.forces_by_particle()) {
    out.push_back(f.cast<double>());
  }
  return out;
}

void CycleEngine::update_metrics(StepMetrics& m) {
  m.has_cycle_counters = true;
  m.total_cycles = sim_.total_cycles();
  m.microseconds_per_day = sim_.microseconds_per_day();
  const auto u = sim_.utilization();
  m.pe_hardware_utilization = u.pe_hardware;
  m.pe_time_utilization = u.pe_time;
  const auto t = sim_.traffic();
  m.position_packets = t.positions.total_packets;
  m.force_packets = t.forces.total_packets;
  const std::uint64_t pairs = sim_.pairs_issued();
  m.last_pair_count = static_cast<std::size_t>(pairs - prev_pairs_issued_);
  prev_pairs_issued_ = pairs;
  if (obs::Hub* hub = sim_.obs()) {
    // One engine-track instant per successful step() block, stamped with
    // the simulated cycle the block ended on.
    hub->trace().instant(obs::kClusterShard, obs::kClusterPid,
                         obs::Comp::kEngine, "step", m.total_cycles, "steps",
                         static_cast<std::int64_t>(m.steps_completed));
  }
}

Registry& Registry::instance() {
  static Registry registry = [] {
    Registry r;
    r.add("reference", [](const md::SystemState& s, const md::ForceField& ff,
                          const EngineSpec& spec) -> std::unique_ptr<Engine> {
      return std::make_unique<ReferenceAdapter>(s, ff, spec);
    });
    r.add("functional", [](const md::SystemState& s, const md::ForceField& ff,
                           const EngineSpec& spec) -> std::unique_ptr<Engine> {
      return std::make_unique<FunctionalAdapter>(s, ff, spec);
    });
    r.add("cycle", [](const md::SystemState& s, const md::ForceField& ff,
                      const EngineSpec& spec) -> std::unique_ptr<Engine> {
      return std::make_unique<CycleEngine>(s, ff, cluster_config_for(spec, s));
    });
    return r;
  }();
  return registry;
}

void Registry::add(std::string name, Factory factory) {
  for (auto& [existing, f] : factories_) {
    if (existing == name) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(std::move(name), std::move(factory));
}

bool Registry::contains(std::string_view name) const {
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& e) { return e.first == name; });
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, f] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Engine> Registry::create(const md::SystemState& state,
                                         const md::ForceField& ff,
                                         const EngineSpec& spec) const {
  for (const auto& [name, factory] : factories_) {
    if (name == spec.engine) return factory(state, ff, spec);
  }
  std::ostringstream msg;
  msg << "unknown engine '" << spec.engine << "' (registered:";
  for (const auto& name : names()) msg << ' ' << name;
  msg << ')';
  throw std::invalid_argument(msg.str());
}

}  // namespace fasda::engine
