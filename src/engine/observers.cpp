#include "fasda/engine/observers.hpp"

#include <algorithm>

#include "fasda/md/checkpoint.hpp"
#include "fasda/util/stopwatch.hpp"

namespace fasda::engine {

RunResult run(Engine& engine, int steps, int sample_every,
              const std::vector<StepObserver*>& observers) {
  const int block_size = sample_every > 0 ? sample_every : std::max(steps, 1);
  RunResult result;
  result.steps = steps;

  util::Stopwatch wall;
  Energies e = engine.energies();
  result.initial = e;
  for (StepObserver* obs : observers) obs->on_sample(0, engine.state(), e);

  for (int done = 0; done < steps;) {
    const int block = std::min(block_size, steps - done);
    engine.step(block);
    done += block;
    e = engine.energies();
    const md::SystemState snapshot = engine.state();
    for (StepObserver* obs : observers) obs->on_sample(done, snapshot, e);
  }

  result.final_energies = e;
  result.wall_seconds = wall.seconds();
  for (StepObserver* obs : observers) obs->on_finish(steps, engine);
  return result;
}

EnergyTablePrinter::EnergyTablePrinter(std::FILE* out) : out_(out) {}

void EnergyTablePrinter::on_sample(int step, const md::SystemState&,
                                   const Energies& energies) {
  if (!header_printed_) {
    std::fprintf(out_, "%8s %16s %10s\n", "step", "E total", "T (K)");
    header_printed_ = true;
  }
  std::fprintf(out_, "%8d %16.8g %10.1f\n", step, energies.total,
               energies.temperature);
}

XyzObserver::XyzObserver(const std::string& path, const md::ForceField& ff)
    : writer_(path, ff) {}

void XyzObserver::on_sample(int step, const md::SystemState& state,
                            const Energies&) {
  writer_.write(state, "step=" + std::to_string(step));
}

MetricsObserver::MetricsObserver(obs::Hub& hub, std::string path,
                                 int write_every)
    : hub_(hub),
      path_(std::move(path)),
      write_every_(write_every > 0 ? write_every : 1),
      h_step_(hub.metrics().gauge("md.step")),
      h_potential_(hub.metrics().gauge("md.energy.potential")),
      h_kinetic_(hub.metrics().gauge("md.energy.kinetic")),
      h_total_(hub.metrics().gauge("md.energy.total")),
      h_temperature_(hub.metrics().gauge("md.temperature")),
      h_samples_(hub.metrics().counter("md.samples")) {}

void MetricsObserver::on_sample(int step, const md::SystemState&,
                                const Energies& energies) {
  obs::Registry& m = hub_.metrics();
  m.set(obs::kClusterNode, h_step_, static_cast<double>(step));
  m.set(obs::kClusterNode, h_potential_, energies.potential);
  m.set(obs::kClusterNode, h_kinetic_, energies.kinetic);
  m.set(obs::kClusterNode, h_total_, energies.total);
  m.set(obs::kClusterNode, h_temperature_, energies.temperature);
  m.add(obs::kClusterNode, h_samples_);
  if (path_.empty()) return;
  if (++samples_since_write_ >= write_every_) {
    samples_since_write_ = 0;
    write_file();
  }
}

void MetricsObserver::on_finish(int, Engine&) {
  if (!path_.empty()) write_file();
}

void MetricsObserver::write_file() {
  const obs::MetricsSnapshot snap = hub_.metrics().snapshot();
  const bool prom =
      path_.size() >= 5 && path_.compare(path_.size() - 5, 5, ".prom") == 0;
  obs::write_text_file(path_, prom ? snap.to_prometheus() : snap.to_json());
  ++writes_;
}

CheckpointObserver::CheckpointObserver(std::string path)
    : path_(std::move(path)) {}

void CheckpointObserver::on_sample(int, const md::SystemState& state,
                                   const Energies&) {
  last_ = state;
}

void CheckpointObserver::on_finish(int, Engine& engine) {
  if (!last_) last_ = engine.state();
  md::save_checkpoint(path_, *last_);
}

}  // namespace fasda::engine
