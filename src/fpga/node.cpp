#include "fasda/fpga/node.hpp"

#include <algorithm>
#include <cassert>

namespace fasda::fpga {

namespace {
std::string node_name(NodeId id) { return "node" + std::to_string(id); }
}  // namespace

Gated::Gated(sim::Component* inner, int factor, const FpgaNode* owner)
    : Component(inner->name() + "/gated"),
      inner_(inner),
      factor_(factor),
      owner_(owner) {}

void Gated::tick(sim::Cycle now) {
  if (owner_ && !owner_->alive(now)) return;
  if (factor_ <= 1 || now % static_cast<sim::Cycle>(factor_) == 0) {
    inner_->tick(now);
  }
}

sim::Cycle Gated::next_wake(sim::Cycle now) const {
  // While the owner is down the inner component is frozen; the owner's own
  // next_wake reports the revival boundary, after which a fresh sweep sees
  // the inner wake again.
  if (owner_ && !owner_->alive(now)) return sim::kNeverCycle;
  sim::Cycle w = inner_->next_wake(now);
  if (w == sim::kNeverCycle || factor_ <= 1) return w;
  // First gate-open cycle at or after the inner wake: earlier open cycles
  // would tick an inner that has declared itself inert, and closed cycles
  // never tick it at all.
  const auto f = static_cast<sim::Cycle>(factor_);
  w = std::max(w, now);
  return (w + f - 1) / f * f;
}

void Gated::skip_idle(sim::Cycle from, sim::Cycle to) {
  if (owner_ && !owner_->alive(from)) return;  // frozen: no ticks to replay
  if (factor_ <= 1) {
    inner_->skip_idle(from, to);
    return;
  }
  // Only gate-open cycles in [from, to) would have ticked the inner; inner
  // skip_idle implementations are tick-count based, so forward a window of
  // exactly that many cycles.
  const auto f = static_cast<sim::Cycle>(factor_);
  const sim::Cycle first = (from + f - 1) / f * f;
  if (first >= to) return;
  const sim::Cycle ticks = (to - 1 - first) / f + 1;
  inner_->skip_idle(to - ticks, to);
}

// ------------------------------------------------------------- EX stations

/// Position EX: arrivals only (positions depart through the P2R chain at
/// their source CBB, §4.3), spliced into the ring as an extra node.
class FpgaNode::PosExStation : public ring::Station<ring::PosToken> {
 public:
  explicit PosExStation(sim::Fifo<ring::PosToken>* inject) : inject_(inject) {}
  Action classify(const ring::PosToken&) const override { return Action::kPass; }
  bool try_deliver(ring::PosToken&) override { return false; }
  sim::Fifo<ring::PosToken>* inject_source() override { return inject_; }

 private:
  sim::Fifo<ring::PosToken>* inject_;
};

/// Force EX: extracts tokens whose destination cell lies on another node
/// (F2R departure gates) and injects remote arrivals.
class FpgaNode::FrcExStation : public ring::Station<ring::ForceToken> {
 public:
  FrcExStation(FpgaNode* node, sim::Fifo<ring::ForceToken>* inject)
      : node_(node), inject_(inject) {}

  Action classify(const ring::ForceToken& t) const override {
    const geom::IVec3& cpn = node_->map_.cells_per_node();
    const bool local = t.dest_lcid.x < cpn.x && t.dest_lcid.y < cpn.y &&
                       t.dest_lcid.z < cpn.z;
    return local ? Action::kPass : Action::kDeliverAndDrop;
  }

  bool try_deliver(ring::ForceToken& t) override {
    const idmap::ClusterMap& map = node_->map_;
    const geom::IVec3 origin = map.global_cell(node_->node_coords_, {0, 0, 0});
    const geom::IVec3 gcell = map.grid().wrap(t.dest_lcid + origin);
    const NodeId dst = map.node_id(map.node_of_cell(gcell));
    node_->frc_ep_.enqueue(dst, net::FrcRecord{gcell, t.force, t.slot});
    return true;
  }

  sim::Fifo<ring::ForceToken>* inject_source() override { return inject_; }

 private:
  FpgaNode* node_;
  sim::Fifo<ring::ForceToken>* inject_;
};

class FpgaNode::MigExStation : public ring::Station<ring::MigrateToken> {
 public:
  MigExStation(FpgaNode* node, sim::Fifo<ring::MigrateToken>* inject)
      : node_(node), inject_(inject) {}

  Action classify(const ring::MigrateToken& t) const override {
    const geom::IVec3& cpn = node_->map_.cells_per_node();
    const bool local = t.dest_lcid.x < cpn.x && t.dest_lcid.y < cpn.y &&
                       t.dest_lcid.z < cpn.z;
    return local ? Action::kPass : Action::kDeliverAndDrop;
  }

  bool try_deliver(ring::MigrateToken& t) override {
    const idmap::ClusterMap& map = node_->map_;
    const geom::IVec3 origin = map.global_cell(node_->node_coords_, {0, 0, 0});
    const geom::IVec3 gcell = map.grid().wrap(t.dest_lcid + origin);
    const NodeId dst = map.node_id(map.node_of_cell(gcell));
    node_->mig_ep_.enqueue(
        dst, net::MigRecord{gcell, t.offset, t.vel, t.elem, t.particle_id});
    return true;
  }

  sim::Fifo<ring::MigrateToken>* inject_source() override { return inject_; }

 private:
  FpgaNode* node_;
  sim::Fifo<ring::MigrateToken>* inject_;
};

// ------------------------------------------------------------ construction

FpgaNode::FpgaNode(NodeId id, const NodeConfig& config,
                   const pe::ForceModel& model, const idmap::ClusterMap& map,
                   net::Fabric<net::PosRecord>* pos_fabric,
                   net::Fabric<net::FrcRecord>* frc_fabric,
                   net::Fabric<net::MigRecord>* mig_fabric,
                   sync::BulkBarrier* barrier)
    : Component(node_name(id)),
      id_(id),
      config_(config),
      map_(map),
      node_coords_(map.node_coords(id)),
      neighbors_(map.neighbor_nodes(id)),
      pos_ep_(id, pos_fabric->config()),
      frc_ep_(id, frc_fabric->config()),
      mig_ep_(id, mig_fabric->config()),
      pos_fabric_(pos_fabric),
      frc_fabric_(frc_fabric),
      mig_fabric_(mig_fabric),
      chain_(static_cast<int>(neighbors_.size())),
      barrier_(barrier),
      obs_(config.obs) {
  pos_fabric_->attach(&pos_ep_);
  frc_fabric_->attach(&frc_ep_);
  mig_fabric_->attach(&mig_ep_);
  if (obs_ != nullptr) {
    auto& m = obs_->metrics();
    h_iterations_ = m.counter("node.iterations");
    h_force_hist_ = m.histogram("phase.force.cycles");
    h_mu_hist_ = m.histogram("phase.mu.cycles");
  }
  if (config_.reliable) {
    pos_ep_.arm_reliability(config_.reliability);
    frc_ep_.arm_reliability(config_.reliability);
    mig_ep_.arm_reliability(config_.reliability);
  }

  const geom::IVec3& cpn = map_.cells_per_node();
  const int spes = config_.cbb.spes;
  const std::size_t fifo_depth = config_.cbb.fifo_depth;

  // CBBs in local Eq. 7 CID order.
  for (int x = 0; x < cpn.x; ++x) {
    for (int y = 0; y < cpn.y; ++y) {
      for (int z = 0; z < cpn.z; ++z) {
        const geom::IVec3 lcell{x, y, z};
        auto block = std::make_unique<cbb::Cbb>(
            node_name(id) + "/cbb" + std::to_string(cbbs_.size()), config_.cbb,
            model, map_, node_coords_, lcell);
        const geom::IVec3 gcell = map_.global_cell(node_coords_, lcell);
        auto dests = map_.remote_destinations(gcell);
        if (!dests.empty()) {
          block->set_remote_position_sink(
              [this, dests](const cbb::RemotePosition& rp) {
                for (const NodeId dst : dests) {
                  pos_ep_.enqueue(dst, net::PosRecord{rp.src_gcell, rp.offset,
                                                      rp.elem, rp.slot});
                }
              });
        }
        cbbs_.push_back(std::move(block));
      }
    }
  }

  // Rings: positions rotate through CBBs in ascending CID order ("clockwise",
  // matching Eq. 7's travel-time optimization), forces in the opposite
  // direction. Each ring gets one EX station (§4.1: one extra cycle).
  for (int s = 0; s < spes; ++s) {
    ex_pos_inject_.push_back(
        std::make_unique<sim::Fifo<ring::PosToken>>(fifo_depth));
    ex_frc_inject_.push_back(
        std::make_unique<sim::Fifo<ring::ForceToken>>(fifo_depth));
    pos_ex_.push_back(std::make_unique<PosExStation>(ex_pos_inject_.back().get()));
    frc_ex_.push_back(
        std::make_unique<FrcExStation>(this, ex_frc_inject_.back().get()));

    std::vector<ring::Station<ring::PosToken>*> pos_stations;
    for (auto& c : cbbs_) pos_stations.push_back(&c->pos_station(s));
    pos_stations.push_back(pos_ex_.back().get());
    pos_rings_.push_back(std::make_unique<ring::Ring<ring::PosToken>>(
        node_name(id) + "/pr" + std::to_string(s), std::move(pos_stations)));

    std::vector<ring::Station<ring::ForceToken>*> frc_stations;
    for (auto it = cbbs_.rbegin(); it != cbbs_.rend(); ++it) {
      frc_stations.push_back(&(*it)->frc_station(s));
    }
    frc_stations.push_back(frc_ex_.back().get());
    frc_rings_.push_back(std::make_unique<ring::Ring<ring::ForceToken>>(
        node_name(id) + "/fr" + std::to_string(s), std::move(frc_stations)));
  }

  pending_pos_.resize(spes);
  pending_frc_.resize(spes);

  ex_mig_inject_ = std::make_unique<sim::Fifo<ring::MigrateToken>>(fifo_depth);
  mig_ex_ = std::make_unique<MigExStation>(this, ex_mig_inject_.get());
  std::vector<ring::Station<ring::MigrateToken>*> mu_stations;
  for (auto& c : cbbs_) mu_stations.push_back(&c->mu_station());
  mu_stations.push_back(mig_ex_.get());
  mu_ring_ = std::make_unique<ring::Ring<ring::MigrateToken>>(
      node_name(id) + "/mur", std::move(mu_stations));
}

FpgaNode::~FpgaNode() = default;

void FpgaNode::register_with(sim::Scheduler& scheduler) {
  const sim::ShardId shard_id = shard();
  scheduler.add(this, shard_id);
  // Elision pokes: a fabric delivery must wake this node's shard if the
  // scheduler put it to sleep (DESIGN.md §13). The scheduler outlives every
  // delivery — hooks only fire from its own commit fan-out.
  sim::Scheduler* sched = &scheduler;
  const auto poke = [sched, shard_id](sim::Cycle at) {
    sched->wake_shard(shard_id, at);
  };
  pos_ep_.set_wake_hook(poke);
  frc_ep_.set_wake_hook(poke);
  mig_ep_.set_wake_hook(poke);
  // With node faults injected, every datapath component goes through a
  // liveness gate so a crashed board's rings/PEs freeze with it.
  const FpgaNode* owner = config_.node_faults.empty() ? nullptr : this;
  auto add_datapath = [&](sim::Component* c) -> sim::Component* {
    if (config_.slowdown > 1 || owner) {
      gates_.push_back(std::make_unique<Gated>(c, config_.slowdown, owner));
      scheduler.add(gates_.back().get(), shard_id);
      return gates_.back().get();
    }
    scheduler.add(c, shard_id);
    return c;
  };
  cbb_sched_.clear();
  for (auto& c : cbbs_) {
    for (sim::Component* comp : c->components()) {
      sim::Component* registered = add_datapath(comp);
      if (comp == static_cast<sim::Component*>(c.get())) {
        cbb_sched_.push_back(registered);
      }
    }
    for (sim::Clocked* cl : c->clocked()) scheduler.add_clocked(cl, shard_id);
  }
  for (auto& r : pos_rings_) add_datapath(r.get());
  for (auto& r : frc_rings_) add_datapath(r.get());
  add_datapath(mu_ring_.get());
  for (auto& f : ex_pos_inject_) scheduler.add_clocked(f.get(), shard_id);
  for (auto& f : ex_frc_inject_) scheduler.add_clocked(f.get(), shard_id);
  scheduler.add_clocked(ex_mig_inject_.get(), shard_id);
}

cbb::Cbb& FpgaNode::cbb_at(const geom::IVec3& lcell) {
  const geom::IVec3& cpn = map_.cells_per_node();
  return *cbbs_[(lcell.x * cpn.y + lcell.y) * cpn.z + lcell.z];
}

const cbb::Cbb& FpgaNode::cbb_at(const geom::IVec3& lcell) const {
  const geom::IVec3& cpn = map_.cells_per_node();
  return *cbbs_[(lcell.x * cpn.y + lcell.y) * cpn.z + lcell.z];
}

void FpgaNode::start(int iterations, float dt_fs, double cell_size,
                     const md::ForceField& ff) {
  target_iterations_ = iterations;
  iterations_completed_ = 0;
  dt_fs_ = dt_fs;
  cell_size_ = cell_size;
  ff_ = &ff;
  state_ = iterations > 0 ? State::kIdle : State::kDone;
  armed_ = iterations > 0;
}

// ---------------------------------------------------------------- per cycle

bool FpgaNode::alive(sim::Cycle now) const {
  for (const net::NodeFault& f : config_.node_faults) {
    if (f.node != id_ || now < f.at) continue;
    if (f.kind == net::NodeFaultKind::kStall) {
      if (now < f.at + f.duration) return false;
    } else {
      return false;  // crash/hang: down from f.at until a supervisor rebuild
    }
  }
  return true;
}

const char* FpgaNode::phase_name_of(State state) {
  switch (state) {
    case State::kIdle: return "idle";
    case State::kForce: return "force";
    case State::kForceBarrier: return "force-barrier";
    case State::kMotionUpdate: return "motion-update";
    case State::kMuBarrier: return "mu-barrier";
    case State::kDone: return "done";
  }
  return "unknown";
}

const char* FpgaNode::phase_name() const { return phase_name_of(state_); }

void FpgaNode::set_state(State next, sim::Cycle now) {
  if (obs_ != nullptr && next != state_) {
    if (span_open_) {
      obs_->trace().end(static_cast<int>(id_), static_cast<int>(id_),
                        obs::Comp::kFsm, now);
      span_open_ = false;
      if (state_ == State::kForce) {
        obs_->metrics().observe(static_cast<int>(id_), h_force_hist_,
                                now - phase_start_);
      } else if (state_ == State::kMotionUpdate) {
        obs_->metrics().observe(static_cast<int>(id_), h_mu_hist_,
                                now - phase_start_);
      }
    }
    if (next != State::kIdle && next != State::kDone) {
      obs_->trace().begin(static_cast<int>(id_), static_cast<int>(id_),
                          obs::Comp::kFsm, phase_name_of(next), now);
      span_open_ = true;
      phase_start_ = now;
    }
  }
  state_ = next;
}

void FpgaNode::sync_event(const char* name, sim::Cycle now) {
  if (obs_ == nullptr) return;
  obs_->trace().instant(static_cast<int>(id_), static_cast<int>(id_),
                        obs::Comp::kSync, name, now);
}

void FpgaNode::tick(sim::Cycle now) {
  if (!alive(now)) return;
  last_heartbeat_ = now;
  tick_protocol(now);
  tick_ingress(now);
  tick_fsm(now);
  tick_egress(now);
}

sim::Cycle FpgaNode::next_wake(sim::Cycle now) const {
  sim::Cycle wake = sim::kNeverCycle;
  const auto fold = [&wake](sim::Cycle w) { wake = std::min(wake, w); };

  // Fault boundaries first: aliveness must be constant across any elision
  // window, so every instant alive() can flip is a wake of its own.
  for (const net::NodeFault& f : config_.node_faults) {
    if (f.node != id_) continue;
    if (f.at > now) fold(f.at);
    if (f.kind == net::NodeFaultKind::kStall && f.at + f.duration > now) {
      fold(f.at + f.duration);
    }
  }
  if (!alive(now)) return wake;  // down: nothing moves until revival

  // Protocol and egress run every alive cycle regardless of phase.
  if (config_.reliable) {
    fold(pos_ep_.protocol_wake(now));
    fold(frc_ep_.protocol_wake(now));
    fold(mig_ep_.protocol_wake(now));
  }
  fold(pos_ep_.egress_wake(now));
  fold(frc_ep_.egress_wake(now));
  fold(mig_ep_.egress_wake(now));

  switch (state_) {
    case State::kDone:
      break;
    case State::kIdle:
      if (armed_) return now;
      break;
    case State::kForce: {
      // Ingress is polled for the position/force channels only (migration
      // arrivals wait in their endpoint, exactly as a naive tick leaves
      // them).
      fold(pos_ep_.ingress_wake(now));
      fold(frc_ep_.ingress_wake(now));
      for (const auto& p : pending_pos_) {
        if (p) return now;
      }
      for (const auto& p : pending_frc_) {
        if (p) return now;
      }
      // tick_fsm's guard conjunctions, verbatim, over state committed in
      // earlier cycles. Any guard that holds means the next tick acts.
      if (!chain_.last_position_sent() && all_positions_injected()) return now;
      if (!chain_.last_force_sent() && chain_.last_position_sent() &&
          chain_.all_positions_received() && force_datapath_quiescent()) {
        return now;
      }
      if (chain_.may_enter_motion_update() && frc_side_drained() &&
          force_datapath_quiescent()) {
        return now;
      }
      break;
    }
    case State::kForceBarrier:
    case State::kMuBarrier:
      // While the barrier generation is still filling this node can do
      // nothing; the last arriver's tick is an executed cycle, so the next
      // sweep picks up the release instant.
      if (const auto r = barrier_->release_cycle(barrier_seq_)) {
        fold(std::max(*r, now));
      }
      break;
    case State::kMotionUpdate: {
      fold(mig_ep_.ingress_wake(now));
      if (pending_mig_) return now;
      bool local_mu_done = mu_ring_->occupancy() == 0 &&
                           ex_mig_inject_->total_occupancy() == 0;
      for (const auto& c : cbbs_) local_mu_done = local_mu_done && c->mu_done();
      if (!chain_.last_mu_sent() && local_mu_done) return now;
      if (chain_.may_finish_motion_update() && mu_side_drained()) return now;
      break;
    }
  }
  return wake;
}

void FpgaNode::skip_idle(sim::Cycle from, sim::Cycle to) {
  // The only bookkeeping an idle alive tick performs is the heartbeat
  // stamp; aliveness is constant across the window (next_wake folds every
  // fault boundary), so the replay collapses to stamping the last cycle.
  if (to > from && alive(from)) last_heartbeat_ = to - 1;
}

void FpgaNode::tick_protocol(sim::Cycle now) {
  // Runs every cycle regardless of the FSM phase: acks must flow even for
  // a channel whose data the current phase is not polling (e.g. migration
  // acks while evaluating forces), or the peer's retransmit timer would
  // declare a healthy link dead. Accepted data still waits in the endpoint
  // until the right phase polls it.
  if (!config_.reliable) return;
  pos_ep_.tick_protocol(now, [&](const net::Packet<net::PosRecord>& p) {
    pos_fabric_->send(p, now);
  });
  frc_ep_.tick_protocol(now, [&](const net::Packet<net::FrcRecord>& p) {
    frc_fabric_->send(p, now);
  });
  mig_ep_.tick_protocol(now, [&](const net::Packet<net::MigRecord>& p) {
    mig_fabric_->send(p, now);
  });
}

std::optional<std::pair<net::DegradedLink, const char*>>
FpgaNode::degraded_link() const {
  if (pos_ep_.degraded()) return {{pos_ep_.degraded_links().front(), "pos"}};
  if (frc_ep_.degraded()) return {{frc_ep_.degraded_links().front(), "frc"}};
  if (mig_ep_.degraded()) return {{mig_ep_.degraded_links().front(), "mig"}};
  return std::nullopt;
}

int FpgaNode::local_delivery_count(const geom::IVec3& src_lcid) const {
  const geom::IVec3& cpn = map_.cells_per_node();
  int count = 0;
  for (const geom::IVec3& d : geom::half_shell_offsets()) {
    const geom::IVec3 t = map_.grid().wrap(src_lcid + d);
    if (t.x < cpn.x && t.y < cpn.y && t.z < cpn.z) ++count;
  }
  return count;
}

void FpgaNode::tick_ingress(sim::Cycle now) {
  const int spes = config_.cbb.spes;
  // Position and force ingress only while evaluating forces: a fast
  // neighbour's next-iteration stream waits inside the endpoint.
  if (state_ == State::kForce) {
    // One record per EX node per cycle: the EX count scales with the SPEs
    // (§4.6), so a 2-SPE design unpacks two records per cycle per channel.
    for (int poll = 0; poll < spes; ++poll) {
      // Drain parked tokens first; stop polling while any slot is occupied
      // so unpack order is preserved.
      bool parked = false;
      for (int s = 0; s < spes; ++s) {
        if (!pending_pos_[s]) continue;
        auto& fifo = *ex_pos_inject_[s];
        if (fifo.can_push()) {
          fifo.push(*pending_pos_[s]);
          pending_pos_[s].reset();
        } else {
          parked = true;
        }
      }
      if (parked) break;
      auto r = pos_ep_.poll_record(now);
      if (!r) break;
      ring::PosToken t;
      t.src_lcid = map_.gcid_to_lcid(r->src_gcell, node_coords_);
      t.offset = r->offset;
      t.elem = r->elem;
      t.slot = r->slot;
      const int deliveries = local_delivery_count(t.src_lcid);
      assert(deliveries > 0);
      t.deliveries_remaining = static_cast<std::uint8_t>(deliveries);
      const int s = t.slot % spes;
      if (ex_pos_inject_[s]->can_push()) {
        ex_pos_inject_[s]->push(t);
      } else {
        pending_pos_[s] = t;
      }
    }
    for ([[maybe_unused]] const NodeId src : pos_ep_.take_last_events()) {
      chain_.on_last_position_received();
    }

    for (int poll = 0; poll < spes; ++poll) {
      bool parked = false;
      for (int s = 0; s < spes; ++s) {
        if (!pending_frc_[s]) continue;
        auto& fifo = *ex_frc_inject_[s];
        if (fifo.can_push()) {
          fifo.push(*pending_frc_[s]);
          pending_frc_[s].reset();
        } else {
          parked = true;
        }
      }
      if (parked) break;
      auto r = frc_ep_.poll_record(now);
      if (!r) break;
      ring::ForceToken t;
      t.dest_lcid = map_.gcid_to_lcid(r->dest_gcell, node_coords_);
      t.force = r->force;
      t.slot = r->slot;
      const int s = t.slot % spes;
      if (ex_frc_inject_[s]->can_push()) {
        ex_frc_inject_[s]->push(t);
      } else {
        pending_frc_[s] = t;
      }
    }
    for ([[maybe_unused]] const NodeId src : frc_ep_.take_last_events()) {
      chain_.on_last_force_received();
    }
  }

  if (state_ == State::kMotionUpdate) {
    if (!pending_mig_) {
      if (auto r = mig_ep_.poll_record(now)) {
        ring::MigrateToken t;
        t.dest_lcid = map_.gcid_to_lcid(r->dest_gcell, node_coords_);
        t.offset = r->offset;
        t.vel = r->vel;
        t.elem = r->elem;
        t.particle_id = r->particle_id;
        pending_mig_ = t;
      }
    }
    if (pending_mig_ && ex_mig_inject_->can_push()) {
      ex_mig_inject_->push(*pending_mig_);
      pending_mig_.reset();
    }
    for ([[maybe_unused]] const NodeId src : mig_ep_.take_last_events()) {
      chain_.on_last_mu_received();
    }
  }
}

void FpgaNode::tick_egress(sim::Cycle now) {
  pos_ep_.tick_egress(
      now, [&](const net::Packet<net::PosRecord>& p) { pos_fabric_->send(p, now); });
  frc_ep_.tick_egress(
      now, [&](const net::Packet<net::FrcRecord>& p) { frc_fabric_->send(p, now); });
  mig_ep_.tick_egress(
      now, [&](const net::Packet<net::MigRecord>& p) { mig_fabric_->send(p, now); });
}

bool FpgaNode::all_positions_injected() const {
  for (const auto& c : cbbs_) {
    if (!c->positions_injected()) return false;
  }
  return true;
}

bool FpgaNode::force_datapath_quiescent() const {
  for (const auto& c : cbbs_) {
    if (!c->force_quiescent()) return false;
  }
  for (const auto& r : pos_rings_) {
    if (r->occupancy() != 0) return false;
  }
  for (const auto& r : frc_rings_) {
    if (r->occupancy() != 0) return false;
  }
  for (const auto& f : ex_pos_inject_) {
    if (f->total_occupancy() != 0) return false;
  }
  for (const auto& f : ex_frc_inject_) {
    if (f->total_occupancy() != 0) return false;
  }
  for (const auto& p : pending_pos_) {
    if (p) return false;
  }
  for (const auto& p : pending_frc_) {
    if (p) return false;
  }
  return !pos_ep_.ingress_pending();
}

bool FpgaNode::frc_side_drained() const {
  for (const auto& p : pending_frc_) {
    if (p) return false;
  }
  return !frc_ep_.ingress_pending();
}

bool FpgaNode::mu_side_drained() const {
  for (const auto& c : cbbs_) {
    if (!c->mu_done() || !c->migration_intake_empty()) return false;
  }
  return mu_ring_->occupancy() == 0 && ex_mig_inject_->total_occupancy() == 0 &&
         !pending_mig_ && !mig_ep_.ingress_pending();
}

void FpgaNode::enter_force_phase(sim::Cycle now) {
  chain_.begin_iteration();
  for (auto& c : cbbs_) c->begin_force_phase();
  wake_cbbs(now);
  force_phase_starts_.push_back(now);
  set_state(State::kForce, now);
}

void FpgaNode::enter_motion_update(sim::Cycle now) {
  for (auto& c : cbbs_) c->begin_motion_update(dt_fs_, cell_size_, *ff_);
  wake_cbbs(now);
  set_state(State::kMotionUpdate, now);
}

void FpgaNode::wake_cbbs(sim::Cycle now) {
  // A phase transition mutates the CBBs mid-cycle, after the elision sweep
  // already cached their wakes — and their first tick of the new phase
  // happens THIS cycle under the naive schedule (the node ticks before its
  // datapath in registration order). Re-arm the cached wakes so the
  // selective fan-out ticks them. Safe without synchronization: same shard
  // means same worker, and the fan-out processes these components strictly
  // after this tick returns.
  for (sim::Component* c : cbb_sched_) c->set_sched_wake(now);
}

void FpgaNode::complete_iteration(sim::Cycle now) {
  ++iterations_completed_;
  if (obs_ != nullptr) obs_->metrics().add(static_cast<int>(id_), h_iterations_);
  if (iterations_completed_ >= static_cast<std::uint64_t>(target_iterations_)) {
    set_state(State::kDone, now);
  } else {
    enter_force_phase(now);
  }
}

void FpgaNode::tick_fsm(sim::Cycle now) {
  switch (state_) {
    case State::kDone:
      return;
    case State::kIdle:
      if (armed_) {
        armed_ = false;
        enter_force_phase(now);
      }
      return;
    case State::kForce: {
      if (!chain_.last_position_sent() && all_positions_injected()) {
        pos_ep_.flush_last(neighbors_);
        chain_.mark_last_position_sent();
        sync_event("last-pos", now);
      }
      if (!chain_.last_force_sent() && chain_.last_position_sent() &&
          chain_.all_positions_received() && force_datapath_quiescent()) {
        frc_ep_.flush_last(neighbors_);
        chain_.mark_last_force_sent();
        sync_event("last-frc", now);
      }
      if (chain_.may_enter_motion_update() && frc_side_drained() &&
          force_datapath_quiescent()) {
        if (config_.sync_mode == sync::SyncMode::kBulk) {
          barrier_->arrive(barrier_seq_, now);
          set_state(State::kForceBarrier, now);
        } else {
          enter_motion_update(now);
        }
      }
      return;
    }
    case State::kForceBarrier:
      if (barrier_->released(barrier_seq_, now)) {
        ++barrier_seq_;
        enter_motion_update(now);
      }
      return;
    case State::kMotionUpdate: {
      bool local_mu_done = mu_ring_->occupancy() == 0 &&
                           ex_mig_inject_->total_occupancy() == 0;
      for (const auto& c : cbbs_) local_mu_done = local_mu_done && c->mu_done();
      if (!chain_.last_mu_sent() && local_mu_done) {
        mig_ep_.flush_last(neighbors_);
        chain_.mark_last_mu_sent();
        sync_event("last-mu", now);
      }
      if (chain_.may_finish_motion_update() && mu_side_drained()) {
        if (config_.sync_mode == sync::SyncMode::kBulk) {
          barrier_->arrive(barrier_seq_, now);
          set_state(State::kMuBarrier, now);
        } else {
          complete_iteration(now);
        }
      }
      return;
    }
    case State::kMuBarrier:
      if (barrier_->released(barrier_seq_, now)) {
        ++barrier_seq_;
        complete_iteration(now);
      }
      return;
  }
}

// ---------------------------------------------------------------- stats

sim::UtilCounter FpgaNode::pos_ring_util() const {
  sim::UtilCounter out;
  for (const auto& r : pos_rings_) out.merge(r->util());
  return out;
}

sim::UtilCounter FpgaNode::frc_ring_util() const {
  sim::UtilCounter out;
  for (const auto& r : frc_rings_) out.merge(r->util());
  return out;
}

sim::UtilCounter FpgaNode::pe_util() const {
  sim::UtilCounter out;
  for (const auto& c : cbbs_) out.merge(c->pe_util());
  return out;
}

sim::UtilCounter FpgaNode::filter_util() const {
  sim::UtilCounter out;
  for (const auto& c : cbbs_) out.merge(c->filter_util());
  return out;
}

sim::UtilCounter FpgaNode::mu_util() const {
  sim::UtilCounter out;
  for (const auto& c : cbbs_) out.merge(c->mu_util());
  return out;
}

std::uint64_t FpgaNode::pairs_issued() const {
  std::uint64_t n = 0;
  for (const auto& c : cbbs_) n += c->pairs_issued();
  return n;
}

}  // namespace fasda::fpga
