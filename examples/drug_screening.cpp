// Lead-evaluation workflow sketched in the paper's introduction: drug
// discovery iterates MD over many small candidate systems (~thousands of
// atoms), so what matters is time-to-solution per candidate — the strong
// scaling regime where FASDA's 8-FPGA configuration beats GPUs.
//
// This example screens an ensemble of candidate systems (different seeds
// and temperatures standing in for different ligand poses): each candidate
// is equilibrated with velocity rescaling, run for a scoring window using
// the FASDA numerics (FunctionalEngine — bit-faithful to the hardware, fast
// on a CPU), and scored by its mean potential energy. The projected
// wall-clock per candidate on the 8-FPGA variant C cluster is measured once
// with the cycle-level simulator.
//
//   ./drug_screening [--candidates N] [--steps N]

#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "fasda/core/simulation.hpp"
#include "fasda/md/analysis.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/functional_engine.hpp"
#include "fasda/md/units.hpp"
#include "fasda/util/cli.hpp"

namespace {

struct Candidate {
  std::uint64_t seed;
  double temperature;
  double score = 0.0;  ///< mean potential energy over the scoring window
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int num_candidates = static_cast<int>(cli.get_or("candidates", 4L));
  const int steps = static_cast<int>(cli.get_or("steps", 100L));

  const md::ForceField ff = md::ForceField::sodium();
  std::vector<Candidate> candidates;
  for (int i = 0; i < num_candidates; ++i) {
    candidates.push_back(
        {0x1000 + static_cast<std::uint64_t>(i), 280.0 + 10.0 * (i % 4)});
  }

  std::printf("screening %d candidates, %d production steps each\n\n",
              num_candidates, steps);
  std::printf("%-10s %8s %16s %14s\n", "candidate", "T (K)", "score (kcal/mol)",
              "drift (rel)");

  for (auto& c : candidates) {
    md::DatasetParams params;
    params.particles_per_cell = 64;
    params.seed = c.seed;
    params.temperature = c.temperature;
    auto state = md::generate_dataset({3, 3, 3}, 8.5, ff, params);

    // Equilibrate: a short run with velocity rescaling every 25 steps.
    md::FunctionalConfig config;
    config.cutoff = 8.5;
    config.dt = 2.0;
    config.threads = 2;
    std::optional<md::FunctionalEngine> engine_slot;
    engine_slot.emplace(state, ff, config);
    for (int block = 0; block < 4; ++block) {
      engine_slot->step(25);
      auto snapshot = engine_slot->state();
      md::rescale_to_temperature(snapshot, ff, c.temperature);
      engine_slot.emplace(snapshot, ff, config);
    }
    md::FunctionalEngine& engine = *engine_slot;

    // Production: score = mean potential energy; drift sanity-checks Δt.
    const double e0 = engine.total_energy();
    double pe_sum = 0.0;
    int samples = 0;
    for (int done = 0; done < steps; done += 50) {
      engine.step(std::min(50, steps - done));
      pe_sum += engine.potential_energy();
      ++samples;
    }
    c.score = md::units::to_kcal_per_mol(pe_sum / samples) /
              static_cast<double>(engine.size());
    const double drift = std::abs(engine.total_energy() - e0) / std::abs(e0);
    std::printf("%-10llu %8.0f %16.4f %14.2e\n",
                static_cast<unsigned long long>(c.seed), c.temperature, c.score,
                drift);
  }

  const auto best = std::min_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.score < b.score; });
  std::printf("\nbest candidate by mean PE: seed %llu\n",
              static_cast<unsigned long long>(best->seed));

  // Projected turnaround on the hardware: variant C, 8 FPGAs (§5.2's
  // strongest configuration), measured by the cycle-level simulator.
  md::DatasetParams params;
  params.particles_per_cell = 64;
  params.seed = best->seed;
  const auto state = md::generate_dataset({4, 4, 4}, 8.5, ff, params);
  core::ClusterConfig cluster;
  cluster.node_dims = {2, 2, 2};
  cluster.cells_per_node = {2, 2, 2};
  cluster.pes_per_spe = 3;
  cluster.spes = 2;
  core::Simulation sim(state, ff, cluster);
  sim.run(2);
  const double rate = sim.microseconds_per_day();  // µs of MD per day
  const double us_per_candidate = 10.0;  // a long-timescale scoring run
  const double days = us_per_candidate / rate;
  std::printf(
      "\n8-FPGA variant C: %.1f us/day -> a %.0f us scoring run per candidate "
      "takes %.1f days\n",
      rate, us_per_candidate, days);
  std::printf("(the paper's best GPU manages ~2 us/day: %.1f days, %.1fx longer)\n",
              us_per_candidate / 2.0, rate / 2.0);
  return 0;
}
