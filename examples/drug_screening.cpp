// Lead-evaluation workflow sketched in the paper's introduction: drug
// discovery iterates MD over many small candidate systems (~thousands of
// atoms), so what matters is time-to-solution per candidate — the strong
// scaling regime where FASDA's 8-FPGA configuration beats GPUs.
//
// This example screens an ensemble of candidate systems (different seeds
// and temperatures standing in for different ligand poses) as a batched
// engine::BatchRunner workload: every candidate is an independent replica
// (equilibration with velocity rescaling, then a scoring window using the
// FASDA numerics), and replicas run concurrently on the shared thread
// pool. The screen executes twice — sequentially (1 worker) and batched
// (all cores) — and verifies the per-candidate results are bitwise
// identical, the BatchRunner determinism contract. The projected
// wall-clock per candidate on the 8-FPGA variant C cluster is measured
// once with the cycle-level engine.
//
//   ./drug_screening [--candidates N] [--steps N]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "fasda/engine/batch_runner.hpp"
#include "fasda/md/analysis.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/units.hpp"
#include "fasda/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int num_candidates = static_cast<int>(cli.get_or("candidates", 4L));
  const int steps = static_cast<int>(cli.get_or("steps", 100L));

  const md::ForceField ff = md::ForceField::sodium();

  // One BatchJob per candidate: the body equilibrates (velocity rescaling
  // every 25 steps, re-importing the rescaled state), then scores by mean
  // potential energy over the production window.
  std::vector<engine::BatchJob> jobs;
  for (int i = 0; i < num_candidates; ++i) {
    const double temperature = 280.0 + 10.0 * (i % 4);
    engine::BatchJob job;
    job.label = std::to_string(0x1000 + i);
    md::DatasetParams params;
    params.particles_per_cell = 64;
    params.seed = 0x1000 + static_cast<std::uint64_t>(i);
    params.temperature = temperature;
    job.state = md::generate_dataset({3, 3, 3}, 8.5, ff, params);
    job.ff = ff;
    job.spec.engine = "functional";
    job.body = [temperature, steps](engine::ReplicaContext& ctx) {
      for (int block = 0; block < 4; ++block) {
        ctx.engine().step(25);
        auto snapshot = ctx.engine().state();
        md::rescale_to_temperature(snapshot, ctx.job().ff, temperature);
        ctx.rebuild(snapshot);
      }
      double pe_sum = 0.0;
      int samples = 0;
      for (int done = 0; done < steps; done += 50) {
        ctx.engine().step(std::min(50, steps - done));
        pe_sum += ctx.engine().potential_energy();
        ++samples;
      }
      return md::units::to_kcal_per_mol(pe_sum / samples) /
             static_cast<double>(ctx.job().state.size());
    };
    jobs.push_back(std::move(job));
  }

  std::printf("screening %d candidates, %d production steps each\n\n",
              num_candidates, steps);

  // Sequential baseline, then the batched screen on all cores.
  engine::BatchRunner sequential(1);
  const auto seq = sequential.run(jobs);
  engine::BatchRunner batched(0);
  const auto par = batched.run(jobs);

  std::printf("%-10s %8s %16s %14s\n", "candidate", "T (K)", "score (kcal/mol)",
              "E total");
  for (int i = 0; i < num_candidates; ++i) {
    const auto& r = par.replicas[i];
    if (!r.ok) {
      std::printf("%-10s failed: %s\n", r.label.c_str(), r.error.c_str());
      return 1;
    }
    std::printf("%-10s %8.0f %16.4f %14.6g\n", r.label.c_str(),
                280.0 + 10.0 * (i % 4), r.score, r.final_energies.total);
  }

  // The determinism contract: per-candidate results must not depend on the
  // worker count.
  bool identical = true;
  for (int i = 0; i < num_candidates; ++i) {
    identical = identical && seq.replicas[i].ok && par.replicas[i].ok &&
                seq.replicas[i].score == par.replicas[i].score &&
                seq.replicas[i].final_energies.total ==
                    par.replicas[i].final_energies.total;
  }
  std::printf("\nsequential: %.2f s | batched (%zu workers): %.2f s | "
              "speedup %.2fx | %.0f replicas/hour\n",
              seq.wall_seconds, par.workers, par.wall_seconds,
              seq.wall_seconds / par.wall_seconds, par.replicas_per_hour);
  std::printf("per-candidate results bitwise-identical across worker counts: %s\n",
              identical ? "yes" : "NO");
  if (!identical) return 1;

  const auto best = std::min_element(
      par.replicas.begin(), par.replicas.end(),
      [](const auto& a, const auto& b) { return a.score < b.score; });
  std::printf("best candidate by mean PE: seed %s\n", best->label.c_str());

  // Projected turnaround on the hardware: variant C, 8 FPGAs (§5.2's
  // strongest configuration), measured by the cycle-level engine.
  md::DatasetParams params;
  params.particles_per_cell = 64;
  params.seed = static_cast<std::uint64_t>(std::stoll(best->label));
  const auto state = md::generate_dataset({4, 4, 4}, 8.5, ff, params);
  engine::EngineSpec cluster;
  cluster.engine = "cycle";
  cluster.cells_per_node = geom::IVec3{2, 2, 2};
  cluster.pes_per_spe = 3;
  cluster.spes = 2;
  auto sim = engine::Registry::instance().create(state, ff, cluster);
  sim->step(2);
  const double rate = sim->metrics().microseconds_per_day;
  const double us_per_candidate = 10.0;  // a long-timescale scoring run
  const double days = us_per_candidate / rate;
  std::printf(
      "\n8-FPGA variant C: %.1f us/day -> a %.0f us scoring run per candidate "
      "takes %.1f days\n",
      rate, us_per_candidate, days);
  std::printf("(the paper's best GPU manages ~2 us/day: %.1f days, %.1fx longer)\n",
              us_per_candidate / 2.0, rate / 2.0);
  return 0;
}
