// The paper's generality claim in action (§3.4: the table-lookup method
// "supports generality by enabling different force models to be implemented
// with trivial modification"): a molten NaCl system with BOTH range-limited
// components enabled — Lennard-Jones plus the Ewald real-space
// electrostatic term — running through the same pipelines with one extra
// table. The run is driven through the engine layer: the XYZ trajectory and
// the energy table come from step observers instead of a hand-rolled loop.
// Prints the Na-Cl radial distribution function, whose contact peak shows
// the expected unlike-ion ordering.
//
//   ./custom_force_model [--steps N] [--out /tmp/nacl.xyz]

#include <cstdio>

#include "fasda/engine/observers.hpp"
#include "fasda/engine/registry.hpp"
#include "fasda/md/analysis.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_or("steps", 400L));
  const std::string out_path = cli.get_or("out", "/tmp/nacl_trajectory.xyz");

  const md::ForceField ff = md::ForceField::sodium_chloride();
  md::DatasetParams params;
  // 8 ions per cell: a 2x2x2 rock-salt checkerboard, 4.25 Å Na-Cl contact —
  // comfortably integrable at Δt = 2 fs even at melt temperatures.
  params.particles_per_cell = 8;
  params.temperature = 1200.0;  // molten salt
  params.elements = md::ElementAssignment::kAlternating;
  const auto state = md::generate_dataset({4, 4, 4}, 8.5, ff, params);

  engine::EngineSpec spec;
  spec.engine = "functional";
  spec.threads = 2;
  spec.terms.lj = true;
  spec.terms.ewald_real = true;  // the PME short-range component (§2.1)
  spec.terms.ewald_beta = 0.3;

  auto engine = engine::Registry::instance().create(state, ff, spec);
  std::printf("molten NaCl: %zu ions, LJ + Ewald real-space (beta=%.2f)\n",
              state.size(), spec.terms.ewald_beta);

  engine::EnergyTablePrinter table;
  engine::XyzObserver xyz(out_path, ff);
  const auto result = engine::run(*engine, steps, 100, {&table, &xyz});

  std::printf("energy drift: %.2e (relative)\n",
              std::abs(result.final_energies.total - result.initial.total) /
                  std::abs(result.initial.total));
  std::printf("trajectory  : %s (%d frames)\n", out_path.c_str(),
              xyz.frames_written());

  // Unlike-ion structure: g(r) for Na-Cl peaks at contact, Na-Na is pushed
  // outward by the Coulomb repulsion.
  const auto final_state = engine->state();
  const auto na_cl = md::radial_distribution(final_state, 8.0, 32, 0, 1);
  const auto na_na = md::radial_distribution(final_state, 8.0, 32, 0, 0);
  std::printf("\n%6s %10s %10s\n", "r (A)", "g(Na-Cl)", "g(Na-Na)");
  for (std::size_t b = 6; b < 32; b += 2) {
    std::printf("%6.2f %10.2f %10.2f\n", na_cl.r(b), na_cl.g[b], na_na.g[b]);
  }
  return 0;
}
