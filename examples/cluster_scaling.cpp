// Mirror of the paper artifact's workflow: `./compile.sh 222 444` selects
// 2x2x2 cells per FPGA within a 4x4x4 global space. This example accepts
// the same configuration strings (plus the XxYxZ form for axes >= 10),
// builds the corresponding cluster through the engine registry, runs it,
// and prints the counters the artifact's run.py dumps over AXI-Lite
// (operation cycles, per-component activity, packet traffic).
//
//   ./cluster_scaling [--cells 222] [--space 444] [--pes N] [--spes N]
//                     [--iters N]

#include <cstdio>
#include <stdexcept>
#include <string>

#include "fasda/engine/registry.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const geom::IVec3 space = util::parse_dims(cli.get_or("space", "444"));
  const int iters = static_cast<int>(cli.get_or("iters", 2L));

  engine::EngineSpec spec;
  spec.engine = "cycle";
  spec.cells_per_node = util::parse_dims(cli.get_or("cells", "222"));
  spec.pes_per_spe = static_cast<int>(cli.get_or("pes", 1L));
  spec.spes = static_cast<int>(cli.get_or("spes", 1L));

  const md::ForceField ff = md::ForceField::sodium();
  md::DatasetParams params;
  params.particles_per_cell = 64;
  const auto state = md::generate_dataset(space, 8.5, ff, params);

  std::unique_ptr<engine::Engine> eng;
  try {
    eng = engine::Registry::instance().create(state, ff, spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const auto& cycle = dynamic_cast<const engine::CycleEngine&>(*eng);
  const auto cluster = engine::cluster_config_for(spec, state);

  std::printf("configuration: %dx%dx%d cells per FPGA, %dx%dx%d space, "
              "%d FPGAs, %d SPE x %d PE\n",
              cluster.cells_per_node.x, cluster.cells_per_node.y,
              cluster.cells_per_node.z, space.x, space.y, space.z,
              cluster.node_dims.product(), cluster.spes, cluster.pes_per_spe);

  eng->step(iters);

  // The counters the artifact reads back over AXI-Lite. StepMetrics carries
  // the headline numbers; the full per-component breakdown comes from the
  // underlying cycle-level simulation.
  const auto& sim = cycle.simulation();
  const auto u = sim.utilization();
  const auto t = sim.traffic();
  std::printf("\noperation_cycle_cnt      : %llu (%d iterations)\n",
              static_cast<unsigned long long>(sim.last_run_cycles()), iters);
  std::printf("PE_cycle_cnt (time util) : %.0f%%\n", 100 * u.pe_time);
  std::printf("filter activity          : %.0f%%\n", 100 * u.filter_time);
  std::printf("PR / FR occupancy        : %.0f%% / %.0f%%\n",
              100 * u.pr_hardware, 100 * u.fr_hardware);
  std::printf("out_traffic_packets_pos  : %llu\n",
              static_cast<unsigned long long>(t.positions.total_packets));
  std::printf("out_traffic_packets_frc  : %llu\n",
              static_cast<unsigned long long>(t.forces.total_packets));
  std::printf("bandwidth demand         : %.1f / %.1f Gbps (pos / frc)\n",
              t.position_gbps_per_node, t.force_gbps_per_node);
  std::printf("simulation rate          : %.2f us/day\n",
              eng->metrics().microseconds_per_day);
  return 0;
}
