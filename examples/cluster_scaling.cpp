// Mirror of the paper artifact's workflow: `./compile.sh 222 444` selects
// 2x2x2 cells per FPGA within a 4x4x4 global space. This example accepts
// the same two configuration strings, builds the corresponding cluster in
// the cycle-level simulator, runs it, and prints the counters the
// artifact's run.py dumps over AXI-Lite (operation cycles, per-component
// activity, packet traffic).
//
//   ./cluster_scaling [--cells 222] [--space 444] [--pes N] [--spes N]
//                     [--iters N]

#include <cstdio>
#include <stdexcept>
#include <string>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/util/cli.hpp"

namespace {

/// Parses the artifact's "222"-style triple into a vector.
fasda::geom::IVec3 parse_dims(const std::string& s) {
  if (s.size() != 3) {
    throw std::invalid_argument("config string must be 3 digits, e.g. 222");
  }
  auto digit = [&](int i) {
    const int v = s[i] - '0';
    if (v < 1 || v > 9) throw std::invalid_argument("bad digit in " + s);
    return v;
  };
  return {digit(0), digit(1), digit(2)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const geom::IVec3 cells_per_node = parse_dims(cli.get_or("cells", "222"));
  const geom::IVec3 space = parse_dims(cli.get_or("space", "444"));
  const int iters = static_cast<int>(cli.get_or("iters", 2L));

  if (space.x % cells_per_node.x || space.y % cells_per_node.y ||
      space.z % cells_per_node.z) {
    std::fprintf(stderr, "space must tile by cells-per-FPGA\n");
    return 1;
  }
  core::ClusterConfig config;
  config.cells_per_node = cells_per_node;
  config.node_dims = {space.x / cells_per_node.x, space.y / cells_per_node.y,
                      space.z / cells_per_node.z};
  config.pes_per_spe = static_cast<int>(cli.get_or("pes", 1L));
  config.spes = static_cast<int>(cli.get_or("spes", 1L));

  const md::ForceField ff = md::ForceField::sodium();
  md::DatasetParams params;
  params.particles_per_cell = 64;
  const auto state = md::generate_dataset(space, 8.5, ff, params);

  std::printf("configuration: %dx%dx%d cells per FPGA, %dx%dx%d space, "
              "%d FPGAs, %d SPE x %d PE\n",
              cells_per_node.x, cells_per_node.y, cells_per_node.z, space.x,
              space.y, space.z, config.node_dims.product(), config.spes,
              config.pes_per_spe);

  core::Simulation sim(state, ff, config);
  sim.run(iters);

  // The counters the artifact reads back over AXI-Lite.
  const auto u = sim.utilization();
  const auto t = sim.traffic();
  std::printf("\noperation_cycle_cnt      : %llu (%d iterations)\n",
              static_cast<unsigned long long>(sim.last_run_cycles()), iters);
  std::printf("PE_cycle_cnt (time util) : %.0f%%\n", 100 * u.pe_time);
  std::printf("filter activity          : %.0f%%\n", 100 * u.filter_time);
  std::printf("PR / FR occupancy        : %.0f%% / %.0f%%\n",
              100 * u.pr_hardware, 100 * u.fr_hardware);
  std::printf("out_traffic_packets_pos  : %llu\n",
              static_cast<unsigned long long>(t.positions.total_packets));
  std::printf("out_traffic_packets_frc  : %llu\n",
              static_cast<unsigned long long>(t.forces.total_packets));
  std::printf("bandwidth demand         : %.1f / %.1f Gbps (pos / frc)\n",
              t.position_gbps_per_node, t.force_gbps_per_node);
  std::printf("simulation rate          : %.2f us/day\n",
              sim.microseconds_per_day());
  return 0;
}
