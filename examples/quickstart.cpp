// Quickstart: simulate the paper's standard workload — 64 sodium atoms per
// (8.5 Å)³ cell, R_c = 8.5 Å, Δt = 2 fs — on a single simulated FPGA and
// report the Fig. 16 metric (µs of MD per day of wall clock at 200 MHz).
//
//   ./quickstart [--iters N]

#include <cstdio>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_or("iters", 5L));

  // 1. Build the force field and the dataset (3x3x3 cells = 1728 atoms).
  const md::ForceField ff = md::ForceField::sodium();
  md::DatasetParams params;
  params.particles_per_cell = 64;
  params.temperature = 300.0;
  const md::SystemState state = md::generate_dataset({3, 3, 3}, 8.5, ff, params);

  // 2. Configure one FPGA owning all 27 cells: one CBB per cell, one PE per
  //    CBB, 6 filters per force pipeline (the paper's baseline).
  core::ClusterConfig config;
  config.node_dims = {1, 1, 1};
  config.cells_per_node = {3, 3, 3};

  // 3. Run timesteps through the cycle-level machine.
  core::Simulation sim(state, ff, config);
  const double e0 = sim.total_energy();
  sim.run(iters);

  // 4. Report.
  std::printf("particles        : %zu\n", state.size());
  std::printf("iterations       : %d\n", iters);
  std::printf("cycles/timestep  : %llu\n",
              static_cast<unsigned long long>(sim.last_run_cycles() / iters));
  std::printf("simulation rate  : %.2f us/day (paper: ~2 us/day)\n",
              sim.microseconds_per_day());
  std::printf("energy drift     : %.3e (relative)\n",
              std::abs(sim.total_energy() - e0) / std::abs(e0));
  const auto util = sim.utilization();
  std::printf("PE utilization   : %.0f%% hardware, %.0f%% time\n",
              100 * util.pe_hardware, 100 * util.pe_time);
  return 0;
}
