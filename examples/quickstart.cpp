// Quickstart: simulate the paper's standard workload — 64 sodium atoms per
// (8.5 Å)³ cell, R_c = 8.5 Å, Δt = 2 fs — on a single simulated FPGA and
// report the Fig. 16 metric (µs of MD per day of wall clock at 200 MHz).
//
// Engines are built through the engine registry: swap spec.engine for
// "functional" or "reference" and the identical program drives those back
// ends instead.
//
//   ./quickstart [--iters N] [--engine cycle]

#include <cstdio>

#include "fasda/engine/registry.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_or("iters", 5L));

  // 1. Build the force field and the dataset (3x3x3 cells = 1728 atoms).
  const md::ForceField ff = md::ForceField::sodium();
  md::DatasetParams params;
  params.particles_per_cell = 64;
  params.temperature = 300.0;
  const md::SystemState state = md::generate_dataset({3, 3, 3}, 8.5, ff, params);

  // 2. One FPGA owning all 27 cells: one CBB per cell, one PE per CBB, 6
  //    filters per force pipeline (the paper's baseline). cells_per_node
  //    defaults to the whole space, i.e. a single node.
  engine::EngineSpec spec;
  spec.engine = cli.get_or("engine", "cycle");

  // 3. Run timesteps through the selected engine.
  auto engine = engine::Registry::instance().create(state, ff, spec);
  const double e0 = engine->total_energy();
  engine->step(iters);

  // 4. Report.
  const engine::StepMetrics& m = engine->metrics();
  std::printf("engine           : %s\n", engine->name().c_str());
  std::printf("particles        : %zu\n", state.size());
  std::printf("iterations       : %d\n", iters);
  std::printf("energy drift     : %.3e (relative)\n",
              std::abs(engine->total_energy() - e0) / std::abs(e0));
  if (m.has_cycle_counters) {
    std::printf("cycles/timestep  : %llu\n",
                static_cast<unsigned long long>(m.total_cycles / iters));
    std::printf("simulation rate  : %.2f us/day (paper: ~2 us/day)\n",
                m.microseconds_per_day);
    std::printf("PE utilization   : %.0f%% hardware, %.0f%% time\n",
                100 * m.pe_hardware_utilization, 100 * m.pe_time_utilization);
  } else {
    std::printf("wall time        : %.2f s (%.1f ms/step)\n", m.wall_seconds,
                1000.0 * m.wall_seconds / iters);
  }
  return 0;
}
