#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "fasda/net/fault.hpp"
#include "fasda/util/cli.hpp"
#include "fasda/util/rng.hpp"
#include "fasda/util/thread_pool.hpp"

namespace fasda::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += a() != b();
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 3.5);
  }
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Xoshiro256 rng(11);
  const int n = 200000;
  double mean = 0.0, var = 0.0;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal();
  for (double x : xs) mean += x;
  mean /= n;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit over 1000 draws
}

TEST(ThreadPool, CoversFullRangeOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i]++;
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, WorkerIndicesAreUniqueAndBounded) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> used(pool.size());
  pool.parallel_for(1000, [&](std::size_t worker, std::size_t, std::size_t) {
    ASSERT_LT(worker, pool.size());
    used[worker]++;
  });
  for (auto& u : used) EXPECT_LE(u.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  pool.parallel_for(1, [&](std::size_t, std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(100, [&](std::size_t, std::size_t b, std::size_t e) {
      long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
      sum += local;
    });
  }
  EXPECT_EQ(sum.load(), 200L * (99 * 100 / 2));
}

TEST(ThreadPool, ParallelPhasesBarrierOrdersPhases) {
  // Phase 2 of every chunk must observe phase-1 writes from EVERY chunk,
  // including chunks run by other workers — that's the barrier.
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const std::size_t n = 512;
    std::vector<int> stage(n, 0);
    std::vector<int> sums(n, 0);
    for (int round = 0; round < 20; ++round) {
      pool.parallel_phases(
          n,
          [&](std::size_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) stage[i] = static_cast<int>(i) + round;
          },
          [&](std::size_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              // Read across the whole array, not just the local chunk.
              sums[i] = stage[i] + stage[n - 1 - i] + stage[0];
            }
          });
      for (std::size_t i = 0; i < n; ++i) {
        // (i + r) + (n-1-i + r) + (0 + r) = n - 1 + 3r for every i.
        ASSERT_EQ(sums[i], static_cast<int>(n - 1) + 3 * round)
            << "threads=" << threads << " round=" << round << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, ParallelPhasesHandlesEmptyTinyAndFewerItemsThanWorkers) {
  ThreadPool pool(8);
  int p1 = 0, p2 = 0;
  pool.parallel_phases(
      0, [&](std::size_t, std::size_t, std::size_t) { ++p1; },
      [&](std::size_t, std::size_t, std::size_t) { ++p2; });
  EXPECT_EQ(p1, 0);
  EXPECT_EQ(p2, 0);

  std::atomic<int> t1{0}, t2{0};
  pool.parallel_phases(
      1,
      [&](std::size_t, std::size_t b, std::size_t e) { t1 += static_cast<int>(e - b); },
      [&](std::size_t, std::size_t b, std::size_t e) { t2 += static_cast<int>(e - b); });
  EXPECT_EQ(t1.load(), 1);
  EXPECT_EQ(t2.load(), 1);

  // 3 items over up to 8 participants: several workers get empty chunks but
  // must still join the barrier (this deadlocks if they don't).
  std::vector<std::atomic<int>> hits(3);
  std::atomic<int> commits{0};
  pool.parallel_phases(
      hits.size(),
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i]++;
      },
      [&](std::size_t, std::size_t b, std::size_t e) {
        commits += static_cast<int>(e - b);
      });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(commits.load(), 3);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--alpha", "3",    "--beta=x",
                        "pos1", "--gamma", "pos2"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_or("alpha", 0L), 3);
  EXPECT_EQ(cli.get_or("beta", "y"), "x");
  EXPECT_TRUE(cli.has("gamma"));
  EXPECT_FALSE(cli.has("delta"));
  EXPECT_EQ(cli.get_or("delta", 9L), 9);
  // "--gamma pos2": pos2 is consumed as gamma's value by the grammar.
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, ParsesDoubles) {
  const char* argv[] = {"prog", "--x", "2.5"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_or("x", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(cli.get_or("y", 1.25), 1.25);
}

TEST(ParseDims, ThreeDigitShorthand) {
  EXPECT_EQ(parse_dims("444"), (geom::IVec3{4, 4, 4}));
  EXPECT_EQ(parse_dims("123"), (geom::IVec3{1, 2, 3}));
  EXPECT_EQ(parse_dims("999"), (geom::IVec3{9, 9, 9}));
}

TEST(ParseDims, ExplicitTriple) {
  EXPECT_EQ(parse_dims("12x4x4"), (geom::IVec3{12, 4, 4}));
  EXPECT_EQ(parse_dims("2x10x3"), (geom::IVec3{2, 10, 3}));
  EXPECT_EQ(parse_dims("1x1x1"), (geom::IVec3{1, 1, 1}));
  EXPECT_EQ(parse_dims("128x64x32"), (geom::IVec3{128, 64, 32}));
}

TEST(ParseDims, RejectsMalformedInput) {
  EXPECT_THROW(parse_dims(""), std::invalid_argument);
  EXPECT_THROW(parse_dims("44"), std::invalid_argument);
  EXPECT_THROW(parse_dims("4444"), std::invalid_argument);
  EXPECT_THROW(parse_dims("abc"), std::invalid_argument);
  EXPECT_THROW(parse_dims("4x4"), std::invalid_argument);
  EXPECT_THROW(parse_dims("4x4x4x4"), std::invalid_argument);
  EXPECT_THROW(parse_dims("4x4x"), std::invalid_argument);
  EXPECT_THROW(parse_dims("x4x4"), std::invalid_argument);
  EXPECT_THROW(parse_dims("4x-1x4"), std::invalid_argument);
  EXPECT_THROW(parse_dims("4x4.5x4"), std::invalid_argument);
}

TEST(ParseDims, RejectsZeroAxes) {
  EXPECT_THROW(parse_dims("044"), std::invalid_argument);
  EXPECT_THROW(parse_dims("4x0x4"), std::invalid_argument);
}

// ------------------------------------------------- --faults diagnostics

/// Captures the one-line diagnostic a bad --faults spec produces.
std::string parse_fault_error(std::string_view spec) {
  try {
    net::FaultPlan::parse(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "spec '" << spec << "' was accepted";
  return {};
}

TEST(FaultSpecDiagnostics, NamesTheBadTokenAndTheKey) {
  EXPECT_NE(parse_fault_error("drop=0.1x").find("'0.1x'"), std::string::npos);
  EXPECT_NE(parse_fault_error("drop=0.1x").find("'drop'"), std::string::npos);
  EXPECT_NE(parse_fault_error("seed=12 34").find("'12 34'"),
            std::string::npos);
  EXPECT_NE(parse_fault_error("frobnicate=1").find("unknown key 'frobnicate'"),
            std::string::npos);
  EXPECT_NE(parse_fault_error("drop").find("expected key=value"),
            std::string::npos);
  // The whole spec rides along so a user sees the context, not just the
  // token.
  EXPECT_NE(parse_fault_error("drop=0.1,dup=zz").find("drop=0.1,dup=zz"),
            std::string::npos);
}

TEST(FaultSpecDiagnostics, RatesMustStayInUnitInterval) {
  EXPECT_NE(parse_fault_error("drop=1.5").find("must be in [0, 1]"),
            std::string::npos);
  EXPECT_NE(parse_fault_error("corrupt=-0.25").find("must be in [0, 1]"),
            std::string::npos);
}

TEST(FaultSpecDiagnostics, NodeFaultArityAndValues) {
  EXPECT_NE(parse_fault_error("crash=3").find("crash expects NODE-CYCLE"),
            std::string::npos);
  EXPECT_NE(parse_fault_error("stall=3-100").find("stall expects"),
            std::string::npos);
  EXPECT_NE(parse_fault_error("stall=3-100-0").find("duration must be > 0"),
            std::string::npos);
  EXPECT_NE(parse_fault_error("hang=-1-100").find("'-1-100'"),
            std::string::npos);
  EXPECT_NE(parse_fault_error("die=x-100").find("'x'"), std::string::npos);
}

TEST(FaultSpecDiagnostics, NodeFaultsRoundTrip) {
  const auto plan =
      net::FaultPlan::parse("crash=1-2500,die=0-100,hang=2-50,stall=3-10-20");
  ASSERT_EQ(plan.node_faults.size(), 4u);
  EXPECT_EQ(plan.node_faults[0].kind, net::NodeFaultKind::kCrash);
  EXPECT_EQ(plan.node_faults[0].node, 1);
  EXPECT_EQ(plan.node_faults[0].at, 2500u);
  EXPECT_FALSE(plan.node_faults[0].permanent);
  EXPECT_TRUE(plan.node_faults[1].permanent);
  EXPECT_EQ(plan.node_faults[2].kind, net::NodeFaultKind::kHang);
  EXPECT_EQ(plan.node_faults[3].kind, net::NodeFaultKind::kStall);
  EXPECT_EQ(plan.node_faults[3].duration, 20u);
  EXPECT_TRUE(plan.has_node_faults());
  ASSERT_EQ(plan.faults_for_node(3).size(), 1u);
  EXPECT_TRUE(plan.faults_for_node(7).empty());
}

TEST(FaultSpecDiagnostics, ValidateRejectsOutOfClusterIds) {
  const auto plan = net::FaultPlan::parse("crash=9-100");
  EXPECT_NO_THROW(plan.validate(16));
  try {
    plan.validate(8);
    FAIL() << "node 9 accepted in an 8-node cluster";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("node id 9"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("8-node"), std::string::npos);
  }
  EXPECT_THROW(net::FaultPlan::parse("dead=0-9").validate(4),
               std::invalid_argument);
  EXPECT_THROW(net::FaultPlan::parse("dropk=5-0-3").validate(4),
               std::invalid_argument);
}

}  // namespace
}  // namespace fasda::util
