// The Ewald real-space (PME short-range) electrostatic term across every
// layer: analytic force field, interpolation tables, functional engine, and
// the cycle-level machine — §2.1's "nearly identical" second RL pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "fasda/core/simulation.hpp"
#include "fasda/interp/ewald.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/functional_engine.hpp"
#include "fasda/md/reference_engine.hpp"

namespace fasda {
namespace {

md::ForceTerms full_terms() {
  md::ForceTerms t;
  t.lj = true;
  t.ewald_real = true;
  t.ewald_beta = 0.3;
  return t;
}

md::SystemState salt_state(geom::IVec3 dims = {3, 3, 3}, int per_cell = 16) {
  md::DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = 17;
  p.temperature = 150.0;
  p.elements = md::ElementAssignment::kAlternating;
  return md::generate_dataset(dims, 8.5, md::ForceField::sodium_chloride(), p);
}

TEST(Ewald, ChargesAreNeutralWithAlternatingAssignment) {
  const auto ff = md::ForceField::sodium_chloride();
  const auto s = salt_state();
  double q = 0.0;
  for (const auto e : s.elements) q += ff.element(e).charge;
  EXPECT_NEAR(q, 0.0, 1e-12);
}

TEST(Ewald, ForceIsMinusEnergyGradient) {
  const auto ff = md::ForceField::sodium_chloride();
  const double beta = 0.3;
  for (const double r : {2.5, 3.5, 5.0, 7.0}) {
    const double h = 1e-6;
    const double dvdr = (ff.ewald_real_energy((r + h) * (r + h), 0, 1, beta) -
                         ff.ewald_real_energy((r - h) * (r - h), 0, 1, beta)) /
                        (2.0 * h);
    const auto f = ff.ewald_real_force({r, 0, 0}, 0, 1, beta);
    EXPECT_NEAR(f.x, -dvdr, 1e-5 * std::abs(dvdr)) << "r=" << r;
  }
}

TEST(Ewald, OppositeChargesAttract) {
  const auto ff = md::ForceField::sodium_chloride();
  const auto f = ff.ewald_real_force({3.0, 0, 0}, 0, 1, 0.3);
  EXPECT_LT(f.x, 0.0) << "Na+ pulled toward Cl-";
  const auto same = ff.ewald_real_force({3.0, 0, 0}, 0, 0, 0.3);
  EXPECT_GT(same.x, 0.0) << "Na+ repels Na+";
}

TEST(Ewald, TablesMatchAnalytic) {
  const double beta_rc = 0.3 * 8.5;
  const auto force_table =
      interp::build_ewald_force_table(beta_rc, interp::InterpConfig{});
  const auto energy_table =
      interp::build_ewald_energy_table(beta_rc, interp::InterpConfig{});
  for (const double u : {0.25, 0.4, 0.6, 0.8, 0.95}) {
    const double u2 = u * u;
    const double bu = beta_rc * u;
    const double exact_f =
        (std::erfc(bu) + 1.1283791670955126 * bu * std::exp(-bu * bu)) /
        (u2 * u);
    const double exact_e = std::erfc(bu) / u;
    EXPECT_NEAR(force_table.eval(static_cast<float>(u2)), exact_f,
                2e-4 * exact_f);
    EXPECT_NEAR(energy_table.eval(static_cast<float>(u2)), exact_e,
                2e-4 * exact_e + 1e-9);
  }
}

TEST(Ewald, PairForceTableConventionMatchesAnalytic) {
  // (k_e q_a q_b / R_c²)·T_f(u²)·u_vec must equal the analytic force.
  const auto ff = md::ForceField::sodium_chloride();
  const double rc = 8.5;
  const auto table = interp::build_ewald_force_table(0.3 * rc,
                                                     interp::InterpConfig{});
  const auto coeffs = ff.ewald_force_coeff_table(rc);
  for (const double r : {2.5, 4.0, 6.5}) {
    const double u = r / rc;
    const double via =
        coeffs[0 * 2 + 1] * table.eval(static_cast<float>(u * u)) * u;
    const auto exact = ff.ewald_real_force({r, 0, 0}, 0, 1, 0.3);
    EXPECT_NEAR(via, exact.x, 2e-4 * std::abs(exact.x)) << "r=" << r;
  }
}

TEST(Ewald, FunctionalEngineMatchesAnalyticForces) {
  const auto ff = md::ForceField::sodium_chloride();
  const auto s = salt_state();
  md::FunctionalConfig config;
  config.cutoff = 8.5;
  config.dt = 2.0;
  config.terms = full_terms();
  md::FunctionalEngine engine(s, ff, config);
  engine.evaluate_forces();
  const auto got = engine.forces_by_particle();
  const auto want = md::compute_forces(engine.state(), ff, 8.5, full_terms());
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst, (got[i].cast<double>() - want[i]).norm());
    scale = std::max(scale, want[i].norm());
  }
  EXPECT_LT(worst / scale, 2e-3);
}

TEST(Ewald, ReferenceEngineConservesEnergyWithElectrostatics) {
  const auto ff = md::ForceField::sodium_chloride();
  const auto s = salt_state();
  md::ReferenceEngine engine(s, ff, 8.5, 2.0, 2, full_terms());
  const double e0 = engine.total_energy();
  const double scale = std::abs(e0) + engine.kinetic();
  engine.step(300);
  EXPECT_LT(std::abs(engine.total_energy() - e0) / scale, 1e-2);
}

TEST(Ewald, FunctionalTracksReferenceWithElectrostatics) {
  const auto ff = md::ForceField::sodium_chloride();
  const auto s = salt_state();
  md::FunctionalConfig config;
  config.cutoff = 8.5;
  config.dt = 2.0;
  config.terms = full_terms();
  config.threads = 2;
  md::FunctionalEngine fasda_engine(s, ff, config);
  md::ReferenceEngine reference(s, ff, 8.5, 2.0, 2, full_terms());
  fasda_engine.step(50);
  reference.step(50);
  const auto got = fasda_engine.state();
  const auto grid = s.grid();
  double worst = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    worst = std::max(
        worst,
        grid.min_image(got.positions[i], reference.state().positions[i]).norm());
  }
  EXPECT_LT(worst, 5e-3);
}

TEST(Ewald, CycleSimulationMatchesFunctionalEngine) {
  const auto ff = md::ForceField::sodium_chloride();
  const auto s = salt_state();
  core::ClusterConfig cluster;
  cluster.terms = full_terms();
  core::Simulation sim(s, ff, cluster);
  sim.run(1);
  md::FunctionalConfig config;
  config.cutoff = 8.5;
  config.dt = 2.0;
  config.terms = full_terms();
  md::FunctionalEngine golden(s, ff, config);
  golden.evaluate_forces();
  const auto got = sim.forces_by_particle();
  const auto want = golden.forces_by_particle();
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst,
                     (got[i].cast<double>() - want[i].cast<double>()).norm());
    scale = std::max(scale, want[i].cast<double>().norm());
  }
  EXPECT_LT(worst / scale, 1e-5);
}

TEST(Ewald, InterpEnergyMatchesAnalyticEnergy) {
  const auto ff = md::ForceField::sodium_chloride();
  const auto s = salt_state();
  md::FunctionalConfig config;
  config.cutoff = 8.5;
  config.dt = 2.0;
  config.terms = full_terms();
  md::FunctionalEngine engine(s, ff, config);
  const double via_tables = engine.interp_potential_energy();
  const double exact = engine.potential_energy();
  EXPECT_LT(std::abs(via_tables - exact) / std::abs(exact), 2e-3);
}

TEST(Ewald, DisabledTermContributesNothing) {
  // LJ-only on a charged force field ignores the charges entirely.
  const auto ff = md::ForceField::sodium_chloride();
  const auto s = salt_state();
  const auto lj_only = md::compute_forces(s, ff, 8.5, md::ForceTerms{});
  md::ForceTerms no_charge = full_terms();
  no_charge.ewald_real = false;
  const auto same = md::compute_forces(s, ff, 8.5, no_charge);
  for (std::size_t i = 0; i < lj_only.size(); ++i) {
    EXPECT_EQ(lj_only[i], same[i]);
  }
}

}  // namespace
}  // namespace fasda
