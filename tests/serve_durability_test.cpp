// Durability battery for fasda_serve (DESIGN.md §16).
//
// Four pillars:
//   1. JournalFuzz: the salvage scan survives every truncation point, every
//      single-bit flip, duplicated records, torn final appends, and random
//      garbage — always a typed RecoveryReport, never a crash, never a
//      silently dropped valid-prefix record (the WireFuzz discipline
//      applied to the on-disk format).
//   2. Recovery semantics in-process: completed results survive restarts,
//      lost queued jobs are re-admitted in original order and re-run
//      bitwise identically, supervised jobs resume from their banked
//      checkpoint, rejected jobs stay dead, the kRecovering window answers
//      typed, clean shutdown skips replay.
//   3. Exactly-once plumbing: idempotency keys dedup within and across
//      incarnations; queue readmit bypasses admission control but
//      reproduces the (priority, seq) schedule.
//   4. Crash soak: a forked daemon SIGKILLed at randomized points across
//      several incarnations — every acknowledged job completes exactly
//      once with results bitwise identical to direct execution.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fasda/serve/client.hpp"
#include "fasda/serve/job.hpp"
#include "fasda/serve/journal.hpp"
#include "fasda/serve/json.hpp"
#include "fasda/serve/queue.hpp"
#include "fasda/serve/server.hpp"

using namespace fasda;
using namespace fasda::serve;

namespace {

/// Self-cleaning unique state directory per test.
struct TempDir {
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "fasda_durability_XXXXXX")
                           .string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

JobRequest small_job(std::uint64_t seed = 0x5eed) {
  JobRequest req;
  req.engine = "functional";
  req.space = "333";
  req.per_cell = 4;
  req.steps = 4;
  req.sample = 2;
  req.replicas = 1;
  req.seed = seed;
  req.return_state = true;
  return req;
}

JobRequest supervised_job(int steps) {
  JobRequest req = small_job();
  req.steps = steps;
  req.supervise = true;
  req.checkpoint_every = 2;
  return req;
}

std::string canon(JobResult result) {
  result.job_id = 0;
  return result.to_json(/*deterministic_only=*/true);
}

ServerConfig durable_config(const std::string& state_dir) {
  ServerConfig config;
  config.recv_timeout_seconds = 60;
  config.state_dir = state_dir;
  return config;
}

void wait_not_recovering(const Server& server) {
  while (server.recovering()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Polls kQuery until the job reports "done", then parses its result.
JobResult poll_done(Client& client, std::uint64_t job_id) {
  for (int i = 0; i < 3000; ++i) {
    bool rejected = false;
    const std::string status = client.query(job_id, rejected);
    if (!rejected) {
      std::string error;
      const auto v = json::parse(status, &error);
      if (v && v->find("state") &&
          v->find("state")->str_or("") == "done") {
        const json::Value* res = v->find("result");
        EXPECT_NE(res, nullptr);
        auto result = JobResult::from_json(*res, error);
        EXPECT_TRUE(result.has_value()) << error;
        return result.value_or(JobResult{});
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "job " << job_id << " never reached done";
  return {};
}

std::string journal_file(const std::string& dir) {
  return dir + "/journal.fjl";
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void append_all(std::vector<std::uint8_t>& dst,
                const std::vector<std::uint8_t>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// The canonical fuzz corpus: one record of every type, realistic payloads.
std::vector<std::vector<std::uint8_t>> corpus_records() {
  const JobRequest req = small_job();
  return {
      encode_journal_record(JournalRecord::kAdmitted,
                            "{\"job\":1,\"request\":" + req.to_json() + "}"),
      encode_journal_record(JournalRecord::kStarted, "{\"job\":1}"),
      encode_journal_record(JournalRecord::kCheckpoint,
                            "{\"job\":1,\"replica\":0,\"step\":2}"),
      encode_journal_record(
          JournalRecord::kCompleted,
          "{\"job\":1,\"tenant\":\"t\",\"idempotency\":\"\",\"result\":"
          "{\"job\":1,\"outcome\":\"ok\",\"exit\":0,\"replicas\":[]}}"),
      encode_journal_record(JournalRecord::kRejected, "{\"job\":2}"),
      encode_journal_record(JournalRecord::kCleanShutdown, "{}"),
  };
}

}  // namespace

// ====================================================================
// 1. JournalFuzz — the on-disk format under every kind of damage
// ====================================================================

TEST(JournalFuzz, RoundTripCleanStream) {
  const auto records = corpus_records();
  std::vector<std::uint8_t> bytes;
  for (const auto& r : records) append_all(bytes, r);

  const RecoveryReport report =
      scan_journal_bytes(bytes.data(), bytes.size());
  ASSERT_EQ(report.entries.size(), records.size());
  EXPECT_EQ(report.tail, JournalTail::kClean);
  EXPECT_TRUE(report.clean_shutdown);
  EXPECT_EQ(report.salvaged_bytes, bytes.size());
  EXPECT_EQ(report.quarantined_bytes, 0u);
  EXPECT_EQ(report.entries[0].type, JournalRecord::kAdmitted);
  EXPECT_EQ(report.entries.back().type, JournalRecord::kCleanShutdown);
}

// Cutting the stream at EVERY byte offset salvages exactly the records
// that are fully present: clean on a record boundary, torn anywhere else,
// and never a crash or a lost prefix record.
TEST(JournalFuzz, EveryTruncationPoint) {
  const auto records = corpus_records();
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> boundaries{0};
  for (const auto& r : records) {
    append_all(bytes, r);
    boundaries.push_back(bytes.size());
  }

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const RecoveryReport report = scan_journal_bytes(bytes.data(), cut);
    std::size_t full = 0;
    while (full + 1 < boundaries.size() && boundaries[full + 1] <= cut) {
      ++full;
    }
    ASSERT_EQ(report.entries.size(), full) << "cut=" << cut;
    EXPECT_EQ(report.salvaged_bytes, boundaries[full]) << "cut=" << cut;
    EXPECT_EQ(report.quarantined_bytes, cut - boundaries[full]);
    const bool on_boundary = cut == boundaries[full];
    EXPECT_EQ(report.tail,
              on_boundary ? JournalTail::kClean : JournalTail::kTorn)
        << "cut=" << cut;
    if (!on_boundary) EXPECT_FALSE(report.issue.empty());
  }
}

// Flipping EVERY single bit of the stream: the records strictly before the
// damaged one are always salvaged byte-identically (zero silent loss), the
// scan never crashes, and damage is reported as a typed non-clean tail.
TEST(JournalFuzz, EverySingleBitFlip) {
  const auto records = corpus_records();
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> boundaries{0};
  for (const auto& r : records) {
    append_all(bytes, r);
    boundaries.push_back(bytes.size());
  }
  const RecoveryReport pristine =
      scan_journal_bytes(bytes.data(), bytes.size());

  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    // Which record holds this byte?
    std::size_t record = 0;
    while (boundaries[record + 1] <= byte) ++record;
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const RecoveryReport report =
          scan_journal_bytes(mutated.data(), mutated.size());
      ASSERT_GE(report.entries.size(), record)
          << "byte=" << byte << " bit=" << bit;
      for (std::size_t i = 0; i < record; ++i) {
        ASSERT_EQ(report.entries[i].type, pristine.entries[i].type);
        ASSERT_EQ(report.entries[i].payload, pristine.entries[i].payload);
      }
      if (report.entries.size() == record) {
        EXPECT_NE(report.tail, JournalTail::kClean)
            << "undetected damage at byte=" << byte << " bit=" << bit;
        EXPECT_FALSE(report.issue.empty());
      }
    }
  }
}

// Duplicated records are preserved by the scan (the recovery fold dedups
// them); a duplicated stream is valid, not damage.
TEST(JournalFuzz, DuplicatedRecordsSurviveScan) {
  const auto records = corpus_records();
  std::vector<std::uint8_t> bytes;
  append_all(bytes, records[0]);
  append_all(bytes, records[0]);
  append_all(bytes, records[1]);
  const RecoveryReport report =
      scan_journal_bytes(bytes.data(), bytes.size());
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.entries[0].payload, report.entries[1].payload);
  EXPECT_EQ(report.tail, JournalTail::kClean);
}

TEST(JournalFuzz, ZeroAndOversizedLengthsAreCorrupt) {
  // length == 0
  std::vector<std::uint8_t> zero{0, 0, 0, 0, 1, 2, 3, 4};
  RecoveryReport report = scan_journal_bytes(zero.data(), zero.size());
  EXPECT_EQ(report.tail, JournalTail::kCorrupt);
  EXPECT_TRUE(report.entries.empty());

  // length > kMaxJournalRecordBytes
  const std::uint32_t huge = kMaxJournalRecordBytes + 1;
  std::vector<std::uint8_t> big{
      static_cast<std::uint8_t>(huge), static_cast<std::uint8_t>(huge >> 8),
      static_cast<std::uint8_t>(huge >> 16),
      static_cast<std::uint8_t>(huge >> 24), 0, 0, 0, 0};
  report = scan_journal_bytes(big.data(), big.size());
  EXPECT_EQ(report.tail, JournalTail::kCorrupt);
  EXPECT_FALSE(report.issue.empty());
}

TEST(JournalFuzz, RandomGarbageNeverCrashes) {
  std::mt19937 rng(0xFA5DA);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 512);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    const RecoveryReport report =
        scan_journal_bytes(bytes.data(), bytes.size());
    // Whatever was salvaged must re-encode to exactly the salvaged prefix.
    std::size_t replayed = 0;
    for (const JournalEntry& e : report.entries) {
      replayed += encode_journal_record(e.type, e.payload).size();
    }
    EXPECT_EQ(replayed, report.salvaged_bytes);
    EXPECT_EQ(report.salvaged_bytes + report.quarantined_bytes, bytes.size());
  }
}

TEST(JournalFuzz, CleanShutdownOnlyWhenLastRecord) {
  const auto admitted = corpus_records()[0];
  const auto shutdown =
      encode_journal_record(JournalRecord::kCleanShutdown, "{}");
  std::vector<std::uint8_t> ends_clean;
  append_all(ends_clean, admitted);
  append_all(ends_clean, shutdown);
  EXPECT_TRUE(
      scan_journal_bytes(ends_clean.data(), ends_clean.size()).clean_shutdown);

  std::vector<std::uint8_t> shutdown_mid;
  append_all(shutdown_mid, shutdown);
  append_all(shutdown_mid, admitted);
  EXPECT_FALSE(
      scan_journal_bytes(shutdown_mid.data(), shutdown_mid.size())
          .clean_shutdown);
}

// A torn final append on disk: open_appending truncates the file back to
// the salvaged prefix, quarantines the tail in a sidecar, and appending
// resumes from the record boundary.
TEST(JournalFuzz, TornFinalRecordTruncatedAndQuarantined) {
  TempDir dir;
  const std::string path = journal_file(dir.path);
  const auto records = corpus_records();
  std::vector<std::uint8_t> bytes;
  append_all(bytes, records[0]);
  const std::size_t good = bytes.size();
  // Half of the next record: the classic crashed-append tail.
  bytes.insert(bytes.end(), records[1].begin(),
               records[1].begin() +
                   static_cast<std::ptrdiff_t>(records[1].size() / 2));
  write_bytes(path, bytes);

  RecoveryReport report = Journal::recover(path);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.tail, JournalTail::kTorn);
  EXPECT_EQ(report.salvaged_bytes, good);

  Journal journal;
  journal.open_appending(path, report, JournalFsync::kAlways);
  EXPECT_EQ(std::filesystem::file_size(path), good);
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantined"));
  EXPECT_EQ(std::filesystem::file_size(path + ".quarantined"),
            bytes.size() - good);

  journal.append(JournalRecord::kStarted, "{\"job\":1}");
  journal.close();
  report = Journal::recover(path);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.tail, JournalTail::kClean);
  EXPECT_EQ(report.entries[1].type, JournalRecord::kStarted);
}

// ====================================================================
// 2. Queue readmit — acknowledged work bypasses admission control
// ====================================================================

TEST(QueueReadmit, BypassesCapsAndReproducesSchedule) {
  QueueConfig qc;
  qc.capacity = 1;
  qc.tenant_quota = 1;
  JobQueue queue(qc);
  queue.begin_drain();  // fresh submits would be rejected...

  std::vector<int> ran;
  auto work = [&ran](int tag) { return [&ran, tag] { ran.push_back(tag); }; };
  // ...but readmitted (already-acknowledged) work is not subject to
  // capacity, quota, or draining — refusing would drop acknowledged jobs.
  EXPECT_EQ(queue.submit("t", 0, work(99)).status, Admit::kDraining);
  EXPECT_EQ(queue.readmit("t", 0, work(1)).status, Admit::kAdmitted);
  EXPECT_EQ(queue.readmit("t", 5, work(2)).status, Admit::kAdmitted);
  EXPECT_EQ(queue.readmit("t", 1, work(3)).status, Admit::kAdmitted);
  EXPECT_EQ(queue.readmit("t", 5, work(4)).status, Admit::kAdmitted);
  EXPECT_EQ(queue.tenant_load("t"), 4u);

  // Pop order is (priority desc, arrival seq asc): readmission in journal
  // order reproduces the pre-crash schedule exactly.
  while (queue.try_run_one()) {
  }
  EXPECT_EQ(ran, (std::vector<int>{2, 4, 3, 1}));
  queue.stop();
  EXPECT_EQ(queue.readmit("t", 0, work(5)).status, Admit::kStopped);
}

// ====================================================================
// 3. Recovery semantics through real servers
// ====================================================================

// A result acknowledged before the restart answers kQuery after it, from
// the same state directory, byte-identically — and its idempotency key
// replays the stored result instead of re-running.
TEST(ServeDurability, CompletedResultsSurviveRestart) {
  TempDir dir;
  JobRequest req = small_job();
  req.idempotency = "restart-1";
  std::string served;
  std::uint64_t job_id = 0;
  {
    Server server(durable_config(dir.path));
    server.start();
    wait_not_recovering(server);
    Client client("127.0.0.1", server.port());
    const auto outcome = client.run_job(req);
    ASSERT_TRUE(outcome.reply.accepted) << outcome.reply.reason;
    ASSERT_TRUE(outcome.result.has_value());
    served = canon(*outcome.result);
    job_id = outcome.reply.job_id;
    server.stop();  // hard stop: no clean-shutdown record, like a crash
  }
  {
    Server server(durable_config(dir.path));
    server.start();
    wait_not_recovering(server);
    EXPECT_EQ(server.results_restored(), 1u);
    EXPECT_EQ(server.jobs_recovered(), 0u);  // nothing was pending
    Client client("127.0.0.1", server.port());
    bool rejected = false;
    const std::string status = client.query(job_id, rejected);
    ASSERT_FALSE(rejected) << status;
    std::string error;
    const auto v = json::parse(status, &error);
    ASSERT_TRUE(v) << error;
    EXPECT_EQ(v->find("state")->str_or(""), "done");
    EXPECT_TRUE(v->find("recovered")->bool_or(false));
    const auto restored = JobResult::from_json(*v->find("result"), error);
    ASSERT_TRUE(restored.has_value()) << error;
    EXPECT_EQ(canon(*restored), served);

    // Exactly-once across the restart: resubmitting the key attaches to
    // the stored result (same id, same bytes), never re-runs.
    const auto dup = client.run_job(req);
    ASSERT_TRUE(dup.reply.accepted);
    EXPECT_EQ(dup.reply.job_id, job_id);
    ASSERT_TRUE(dup.result.has_value());
    EXPECT_EQ(canon(*dup.result), served);
    EXPECT_EQ(server.jobs_completed(), 0u);  // nothing ran this incarnation
    server.stop();
  }
}

// Jobs acknowledged but never run (admission-only incarnation, then a hard
// stop) are re-admitted by the next incarnation and complete with results
// bitwise identical to direct execution.
TEST(ServeDurability, LostQueuedJobsReadmittedAndRerun) {
  TempDir dir;
  std::vector<JobRequest> reqs;
  for (int i = 0; i < 3; ++i) {
    JobRequest req = small_job(0x5eed + static_cast<std::uint64_t>(i));
    req.priority = i % 2;
    reqs.push_back(req);
  }
  std::vector<std::uint64_t> ids;
  {
    ServerConfig config = durable_config(dir.path);
    config.queue_workers = 0;  // admit, journal, never run — then "crash"
    Server server(config);
    server.start();
    wait_not_recovering(server);
    Client client("127.0.0.1", server.port());
    for (const JobRequest& req : reqs) {
      const auto reply = client.submit(req);
      ASSERT_TRUE(reply.accepted) << reply.reason;
      ids.push_back(reply.job_id);
    }
    server.stop();
  }
  {
    ServerConfig config = durable_config(dir.path);
    config.queue_workers = 2;
    Server server(config);
    server.start();
    wait_not_recovering(server);
    EXPECT_EQ(server.jobs_recovered(), reqs.size());
    Client client("127.0.0.1", server.port());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const JobResult result = poll_done(client, ids[i]);
      EXPECT_EQ(result.job_id, ids[i]);
      EXPECT_EQ(canon(result), canon(execute_job(0, reqs[i])))
          << "job " << ids[i];
    }
    server.drain_and_stop();
  }
}

// The tentpole resume path: a supervised job that crashed after banking a
// checkpoint resumes from that checkpoint (not from step 0) and still
// produces the bitwise result of an uninterrupted run.
TEST(ServeDurability, SupervisedJobResumesFromCheckpointBitwise) {
  TempDir dir;
  const JobRequest full = supervised_job(6);

  // Fabricate the crashed incarnation's state directory exactly the way
  // the server would have left it: a kAdmitted record for the full job,
  // checkpoint files + kCheckpoint records banked through step 4, no
  // kCompleted — the daemon "died" mid-run.
  {
    Journal journal;
    const RecoveryReport fresh = Journal::recover(journal_file(dir.path));
    journal.open_appending(journal_file(dir.path), fresh,
                           JournalFsync::kAlways);
    journal.append(JournalRecord::kAdmitted,
                   "{\"job\":1,\"request\":" + full.to_json() + "}");
    JobRequest partial = full;
    partial.steps = 4;  // the prefix of the same trajectory
    long long prev = 0;
    ExecutionHooks hooks;
    hooks.checkpoint_path = [&dir](int replica, long long step) {
      return dir.path + "/job-1-r" + std::to_string(replica) + "-s" +
             std::to_string(step) + ".ckpt";
    };
    hooks.checkpointed = [&](int replica, long long step) {
      journal.append(JournalRecord::kCheckpoint,
                     "{\"job\":1,\"replica\":" + std::to_string(replica) +
                         ",\"step\":" + std::to_string(step) + "}");
      if (prev > 0 && prev != step) {
        ::unlink(hooks.checkpoint_path(replica, prev).c_str());
      }
      prev = step;
    };
    const JobResult prefix_result = execute_job(1, partial, nullptr, &hooks);
    ASSERT_EQ(prefix_result.outcome, JobOutcome::kOk);
    journal.close();
    ASSERT_TRUE(std::filesystem::exists(dir.path + "/job-1-r0-s4.ckpt"));
  }

  Server server(durable_config(dir.path));
  server.start();
  wait_not_recovering(server);
  EXPECT_EQ(server.jobs_recovered(), 1u);
  EXPECT_EQ(server.jobs_resumed(), 1u);  // proves the checkpoint was used
  Client client("127.0.0.1", server.port());
  const JobResult result = poll_done(client, 1);
  EXPECT_EQ(canon(result), canon(execute_job(0, full)));
  EXPECT_EQ(result.replicas.at(0).steps, 6);
  server.drain_and_stop();
  // Completion cleans up the job's checkpoint files.
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/job-1-r0-s4.ckpt"));
}

// During startup replay, kSubmit and kQuery answer a typed kRecovering
// frame (retryable), never a wrong answer; kPing reports the window.
TEST(ServeDurability, RecoveringWindowAnswersTyped) {
  TempDir dir;
  {
    Journal journal;
    const RecoveryReport fresh = Journal::recover(journal_file(dir.path));
    journal.open_appending(journal_file(dir.path), fresh,
                           JournalFsync::kAlways);
    journal.append(JournalRecord::kAdmitted,
                   "{\"job\":1,\"request\":" + small_job().to_json() + "}");
    journal.close();
  }
  ServerConfig config = durable_config(dir.path);
  config.recovery_delay_ms = 400;  // hold the window open for the probes
  Server server(config);
  server.start();
  ASSERT_TRUE(server.recovering());
  Client client("127.0.0.1", server.port());

  const auto reply = client.submit(small_job());
  EXPECT_FALSE(reply.accepted);
  EXPECT_EQ(reply.reason, "recovering");

  bool rejected = false;
  const std::string q = client.query(1, rejected);
  EXPECT_TRUE(rejected);
  EXPECT_NE(q.find("recovering"), std::string::npos);

  std::string error;
  const auto pong = json::parse(client.ping(), &error);
  ASSERT_TRUE(pong) << error;
  EXPECT_TRUE(pong->find("recovering")->bool_or(false));

  wait_not_recovering(server);
  EXPECT_FALSE(json::parse(client.ping(), &error)
                   ->find("recovering")
                   ->bool_or(true));
  const auto after = client.submit(small_job());
  EXPECT_TRUE(after.accepted) << after.reason;
  poll_done(client, after.job_id);
  server.drain_and_stop();
}

// A graceful drain journals kCleanShutdown, so the next incarnation knows
// there is nothing to re-admit (and says so in its recovery report).
TEST(ServeDurability, CleanShutdownSkipsReplay) {
  TempDir dir;
  {
    Server server(durable_config(dir.path));
    server.start();
    wait_not_recovering(server);
    Client client("127.0.0.1", server.port());
    const auto outcome = client.run_job(small_job());
    ASSERT_TRUE(outcome.reply.accepted);
    server.drain_and_stop();  // the SIGTERM/SIGINT path
  }
  const RecoveryReport on_disk = Journal::recover(journal_file(dir.path));
  EXPECT_TRUE(on_disk.clean_shutdown);
  EXPECT_EQ(on_disk.entries.back().type, JournalRecord::kCleanShutdown);

  Server server(durable_config(dir.path));
  server.start();
  wait_not_recovering(server);
  EXPECT_TRUE(server.recovery_report().clean_shutdown);
  EXPECT_EQ(server.jobs_recovered(), 0u);
  EXPECT_EQ(server.results_restored(), 1u);
  server.stop();
}

// kAdmitted followed by kRejected (the queue raced to capacity after the
// write-ahead record): the job is dead and recovery must not resurrect it.
TEST(ServeDurability, RejectedJobStaysDead) {
  TempDir dir;
  {
    Journal journal;
    const RecoveryReport fresh = Journal::recover(journal_file(dir.path));
    journal.open_appending(journal_file(dir.path), fresh,
                           JournalFsync::kAlways);
    journal.append(JournalRecord::kAdmitted,
                   "{\"job\":7,\"request\":" + small_job().to_json() + "}");
    journal.append(JournalRecord::kRejected, "{\"job\":7}");
    journal.close();
  }
  Server server(durable_config(dir.path));
  server.start();
  wait_not_recovering(server);
  EXPECT_EQ(server.jobs_recovered(), 0u);
  Client client("127.0.0.1", server.port());
  bool rejected = false;
  client.query(7, rejected);
  EXPECT_TRUE(rejected);
  // Job ids stay monotone past the dead record: nothing reuses id 7.
  const auto reply = client.submit(small_job());
  ASSERT_TRUE(reply.accepted);
  EXPECT_GT(reply.job_id, 7u);
  server.drain_and_stop();
}

// kQuery distinguishes a recovered job riding through a restart from a
// fresh submission: state "recovering" + recovered=true vs "queued" +
// recovered=false (satellite: kRecovering/kResumed vs fresh kRunning).
TEST(ServeDurability, RecoveredJobsReportDistinctStates) {
  TempDir dir;
  std::uint64_t lost_id = 0;
  {
    ServerConfig config = durable_config(dir.path);
    config.queue_workers = 0;
    Server server(config);
    server.start();
    wait_not_recovering(server);
    Client client("127.0.0.1", server.port());
    const auto reply = client.submit(small_job());
    ASSERT_TRUE(reply.accepted);
    lost_id = reply.job_id;
    server.stop();
  }
  ServerConfig config = durable_config(dir.path);
  config.queue_workers = 0;  // keep both jobs parked so states are stable
  Server server(config);
  server.start();
  wait_not_recovering(server);
  Client client("127.0.0.1", server.port());
  const auto fresh = client.submit(small_job());
  ASSERT_TRUE(fresh.accepted) << fresh.reason;

  std::string error;
  bool rejected = false;
  const auto recovered_status =
      json::parse(client.query(lost_id, rejected), &error);
  ASSERT_TRUE(recovered_status) << error;
  EXPECT_EQ(recovered_status->find("state")->str_or(""), "recovering");
  EXPECT_TRUE(recovered_status->find("recovered")->bool_or(false));

  const auto fresh_status =
      json::parse(client.query(fresh.job_id, rejected), &error);
  ASSERT_TRUE(fresh_status) << error;
  EXPECT_EQ(fresh_status->find("state")->str_or(""), "queued");
  EXPECT_FALSE(fresh_status->find("recovered")->bool_or(true));
  server.stop();
}

// Within one incarnation: a duplicate submit with the same idempotency key
// attaches to the original job instead of creating a second one.
TEST(ServeDurability, IdempotencyKeyDedupsWithinIncarnation) {
  TempDir dir;
  Server server(durable_config(dir.path));
  server.start();
  wait_not_recovering(server);
  Client client("127.0.0.1", server.port());
  JobRequest req = small_job();
  req.idempotency = "dedup-1";
  const auto first = client.submit(req);
  ASSERT_TRUE(first.accepted);
  const auto second = client.submit(req);
  ASSERT_TRUE(second.accepted);
  EXPECT_EQ(second.job_id, first.job_id);
  const JobResult result = client.wait_result(first.job_id);
  EXPECT_EQ(result.outcome, JobOutcome::kOk);
  EXPECT_EQ(server.jobs_submitted(), 1u);
  server.drain_and_stop();
}

// Aggressive rotation (compact after every completion) must preserve every
// durable fact a restart needs.
TEST(ServeDurability, CompactionPreservesResultsAcrossRestart) {
  TempDir dir;
  std::vector<std::uint64_t> ids;
  std::vector<std::string> canons;
  {
    ServerConfig config = durable_config(dir.path);
    config.journal_rotate_bytes = 1;  // every completion triggers a rotate
    Server server(config);
    server.start();
    wait_not_recovering(server);
    Client client("127.0.0.1", server.port());
    for (int i = 0; i < 3; ++i) {
      const auto outcome =
          client.run_job(small_job(0xc0 + static_cast<std::uint64_t>(i)));
      ASSERT_TRUE(outcome.reply.accepted);
      ASSERT_TRUE(outcome.result.has_value());
      ids.push_back(outcome.reply.job_id);
      canons.push_back(canon(*outcome.result));
    }
    server.stop();
  }
  Server server(durable_config(dir.path));
  server.start();
  wait_not_recovering(server);
  EXPECT_EQ(server.results_restored(), ids.size());
  Client client("127.0.0.1", server.port());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    bool rejected = false;
    std::string error;
    const auto v = json::parse(client.query(ids[i], rejected), &error);
    ASSERT_FALSE(rejected);
    ASSERT_TRUE(v) << error;
    const auto restored = JobResult::from_json(*v->find("result"), error);
    ASSERT_TRUE(restored.has_value()) << error;
    EXPECT_EQ(canon(*restored), canons[i]);
  }
  server.stop();
}

// --journal-fsync never still survives process death (the page cache keeps
// the bytes); only the power-loss guarantee is traded away.
TEST(ServeDurability, FsyncNeverSurvivesProcessDeath) {
  TempDir dir;
  std::uint64_t job_id = 0;
  {
    ServerConfig config = durable_config(dir.path);
    config.journal_fsync = JournalFsync::kNever;
    Server server(config);
    server.start();
    wait_not_recovering(server);
    Client client("127.0.0.1", server.port());
    const auto outcome = client.run_job(small_job());
    ASSERT_TRUE(outcome.reply.accepted);
    job_id = outcome.reply.job_id;
    server.stop();
  }
  Server server(durable_config(dir.path));
  server.start();
  wait_not_recovering(server);
  EXPECT_EQ(server.results_restored(), 1u);
  Client client("127.0.0.1", server.port());
  bool rejected = false;
  client.query(job_id, rejected);
  EXPECT_FALSE(rejected);
  server.stop();
}

// ====================================================================
// 4. Crash soak — SIGKILL a forked daemon at randomized points
// ====================================================================

namespace {

struct DaemonProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Forks a real daemon process on `state_dir`. The child reports its port
/// through a pipe and then sits until SIGKILLed — exactly the process
/// boundary the journal's guarantees are stated against.
DaemonProc spawn_daemon(const std::string& state_dir) {
  int pipefd[2] = {-1, -1};
  EXPECT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipefd[0]);
    ServerConfig config;
    config.state_dir = state_dir;
    config.queue_workers = 2;
    config.recv_timeout_seconds = 60;
    try {
      // Deliberately leaked: this process only ever exits via SIGKILL.
      auto* server = new Server(config);
      server->start();
      const std::uint16_t port = server->port();
      (void)!::write(pipefd[1], &port, sizeof port);
      ::close(pipefd[1]);
      for (;;) ::pause();
    } catch (...) {
      ::_exit(9);
    }
  }
  ::close(pipefd[1]);
  DaemonProc d;
  d.pid = pid;
  const ssize_t n = ::read(pipefd[0], &d.port, sizeof d.port);
  ::close(pipefd[0]);
  EXPECT_EQ(n, static_cast<ssize_t>(sizeof d.port));
  return d;
}

void kill_daemon(DaemonProc& d) {
  if (d.pid <= 0) return;
  ::kill(d.pid, SIGKILL);
  int status = 0;
  ::waitpid(d.pid, &status, 0);
  d.pid = -1;
}

bool daemon_recovering(Client& client) {
  std::string error;
  const auto pong = json::parse(client.ping(), &error);
  return !pong || pong->find("recovering")->bool_or(false);
}

}  // namespace

// The ISSUE's crash-soak invariant: across several SIGKILLed incarnations,
// every acknowledged job completes exactly once with bitwise-deterministic
// results, and no unacknowledged job is half-visible (a resubmit either
// attaches to the acknowledged original or runs fresh — never twice).
TEST(ServeCrashSoak, Kill9AtRandomPointsKeepsExactlyOnceBitwise) {
  TempDir dir;

  // The workload: a mix of plain and supervised (checkpointing) jobs, each
  // with a stable idempotency key and a precomputed direct result.
  std::vector<JobRequest> jobs;
  for (int i = 0; i < 8; ++i) {
    JobRequest req = i % 3 == 0
                         ? supervised_job(6)
                         : small_job(0xabc + static_cast<std::uint64_t>(i));
    req.tenant = "soak";
    req.idempotency = "soak-" + std::to_string(i);
    jobs.push_back(req);
  }
  std::vector<std::string> direct;
  direct.reserve(jobs.size());
  for (const JobRequest& req : jobs) {
    direct.push_back(canon(execute_job(0, req)));
  }

  RetryPolicy policy;
  policy.max_attempts = 40;
  policy.backoff_initial = std::chrono::milliseconds(20);
  policy.backoff_cap = std::chrono::milliseconds(200);

  std::mt19937 rng(0xFA5DA);
  DaemonProc daemon = spawn_daemon(dir.path);
  int kills = 0;

  // Chaos rounds: push the whole workload at the daemon, then SIGKILL it
  // at a random point — mid-admission, mid-run, mid-checkpoint, whatever
  // the dice land on. Acknowledgements may be lost in flight; that is the
  // ambiguity the idempotency keys exist to resolve.
  for (int round = 0; round < 5; ++round) {
    try {
      Client client("127.0.0.1", daemon.port, policy);
      for (int probe = 0; probe < 100 && daemon_recovering(client); ++probe) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      for (const JobRequest& req : jobs) {
        (void)client.submit(req);
      }
    } catch (const WireError&) {
      // The previous round's kill may still be settling; the settle phase
      // below is the only place completion is asserted.
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(30 + static_cast<int>(rng() % 150)));
    kill_daemon(daemon);
    ++kills;
    daemon = spawn_daemon(dir.path);
  }
  ASSERT_GE(kills, 5);

  // Settle: one final incarnation, no more kills. Resubmitting every key
  // must converge to exactly one job per key, each with the direct bytes.
  Client client("127.0.0.1", daemon.port, policy);
  for (int probe = 0; probe < 1000 && daemon_recovering(client); ++probe) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Client::SubmitReply reply;
    for (int attempt = 0; attempt < 2000; ++attempt) {
      reply = client.submit(jobs[i]);
      if (reply.accepted) break;
      ASSERT_TRUE(reply.reason == "recovering" ||
                  reply.reason == "queue-full")
          << reply.reason << " " << reply.detail;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(reply.accepted) << "job " << i << ": " << reply.reason;
    const JobResult result = poll_done(client, reply.job_id);
    EXPECT_EQ(canon(result), direct[i]) << "job " << i;
    // Exactly-once: the key keeps mapping to the same job, and its bytes
    // do not change on replay.
    const auto again = client.run_job(jobs[i]);
    ASSERT_TRUE(again.reply.accepted);
    EXPECT_EQ(again.reply.job_id, reply.job_id) << "job " << i;
    ASSERT_TRUE(again.result.has_value());
    EXPECT_EQ(canon(*again.result), direct[i]);
  }
  kill_daemon(daemon);
}
