// Node-level fault tolerance (DESIGN.md §11): crash injection, watchdog
// supervision, and checkpoint-based recovery.
//
// The headline property is the acceptance criterion of the layer: a run
// whose node crashes mid-flight under supervisor::Supervisor recovers from
// the last checkpoint and finishes BITWISE identical to the uninterrupted
// run, for 1, 2 and 4 scheduler workers. Around it: a hang without
// supervision fails fast with a typed sync::NodeFailureError (both via the
// silent-peer reclassification of a degraded link and via the pure cycle
// watchdog), a stall shorter than the detection horizon is absorbed by the
// retransmit protocol with no trace, and a permanently dead board either
// re-shards the cluster onto fewer nodes (--allow-degraded) or burns out
// the restart budget into an incomplete RunReport.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "fasda/core/simulation.hpp"
#include "fasda/engine/registry.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/obs/obs.hpp"
#include "fasda/supervisor/supervisor.hpp"
#include "fasda/sync/sync.hpp"

namespace fasda {
namespace {

// Same cluster as the fault-injection acceptance suite: 4x4x4 cells on
// 2x2x2 FPGA nodes, 8 particles per cell. One step is ~1.1k cycles, so a
// fault at cycle 2500 lands mid-run of a 5-step trajectory.
md::SystemState cluster_state() {
  md::DatasetParams p;
  p.particles_per_cell = 8;
  p.seed = 17;
  p.temperature = 300.0;
  return md::generate_dataset({4, 4, 4}, 8.5, md::ForceField::sodium(), p);
}

engine::EngineSpec cycle_spec(int workers) {
  engine::EngineSpec spec;
  spec.engine = "cycle";
  spec.cells_per_node = geom::IVec3{2, 2, 2};
  spec.num_worker_threads = workers;
  return spec;
}

/// Arms the plan and keeps detection quick: 3 retries on a ~470-cycle RTO
/// declares a link to a dead board degraded within ~3.3k cycles instead of
/// the default ~25k.
void arm_fast_detection(engine::EngineSpec& spec) {
  if (!spec.faults) spec.faults.emplace();
  spec.reliability.max_retries = 3;
}

void expect_bitwise_equal(const md::SystemState& got,
                          const md::SystemState& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.positions[i].x, want.positions[i].x) << "particle " << i;
    ASSERT_EQ(got.positions[i].y, want.positions[i].y) << "particle " << i;
    ASSERT_EQ(got.positions[i].z, want.positions[i].z) << "particle " << i;
    ASSERT_EQ(got.velocities[i].x, want.velocities[i].x) << "particle " << i;
    ASSERT_EQ(got.velocities[i].y, want.velocities[i].y) << "particle " << i;
    ASSERT_EQ(got.velocities[i].z, want.velocities[i].z) << "particle " << i;
  }
}

constexpr int kSteps = 5;

md::SystemState clean_run(int steps) {
  auto engine = engine::Registry::instance().create(
      cluster_state(), md::ForceField::sodium(), cycle_spec(1));
  engine->step(steps);
  return engine->state();
}

// ------------------------------------------------- checkpoint/replay basis

// The foundation under rollback-and-replay: exporting the state mid-run and
// rebuilding a fresh engine over it continues the trajectory bitwise — the
// Q2.28 cell-offset positions survive the export/import round trip exactly.
TEST(Supervisor, RebuildFromExportedStateIsBitwiseTransparent) {
  const auto want = clean_run(kSteps);

  auto first = engine::Registry::instance().create(
      cluster_state(), md::ForceField::sodium(), cycle_spec(1));
  first->step(2);
  auto second = engine::Registry::instance().create(
      first->state(), md::ForceField::sodium(), cycle_spec(1));
  second->step(kSteps - 2);
  expect_bitwise_equal(second->state(), want);
}

// ------------------------------------------------- crash-recovery parity

// The acceptance criterion: crash node 1 mid-run; the supervisor detects
// the dead board, rolls back to the last checkpoint, reboots (clearing the
// transient fault) and replays — final positions and velocities bitwise
// identical to the run that never crashed, at every worker count.
TEST(Supervisor, CrashRecoveryIsBitwiseIdenticalAcrossWorkerCounts) {
  const auto want = clean_run(kSteps);

  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    auto spec = cycle_spec(workers);
    arm_fast_detection(spec);
    net::NodeFault crash;
    crash.kind = net::NodeFaultKind::kCrash;
    crash.node = 1;
    crash.at = 2500;
    spec.faults->node_faults.push_back(crash);

    supervisor::SupervisorConfig cfg;
    cfg.checkpoint_every = 1;
    supervisor::Supervisor sup(cluster_state(), md::ForceField::sodium(),
                               spec, cfg);
    const auto report = sup.run(kSteps);

    ASSERT_TRUE(report.completed) << report.final_error;
    EXPECT_FALSE(report.degraded);
    EXPECT_EQ(report.restarts, 1);
    EXPECT_EQ(report.steps, kSteps);
    ASSERT_EQ(report.incidents.size(), 1u);
    const auto& inc = report.incidents[0];
    EXPECT_EQ(inc.kind, supervisor::IncidentKind::kNodeFailure);
    EXPECT_EQ(inc.node, 1);
    EXPECT_TRUE(inc.recovered);
    EXPECT_FALSE(inc.caused_reshard);
    // The reboot cleared the transient fault from the next build's spec.
    EXPECT_TRUE(sup.spec().faults->node_faults.empty());
    expect_bitwise_equal(report.final_state, want);
  }
}

// The same crash recovered via the `crash=NODE-CYCLE` --faults key, proving
// the CLI-facing spelling drives the identical machinery.
TEST(Supervisor, ParsedCrashKeyRecoversBitwise) {
  const auto want = clean_run(kSteps);

  auto spec = cycle_spec(2);
  spec.faults = net::FaultPlan::parse("crash=1-2500");
  spec.reliability.max_retries = 3;

  supervisor::Supervisor sup(cluster_state(), md::ForceField::sodium(), spec,
                             {});
  const auto report = sup.run(kSteps);
  ASSERT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.restarts, 1);
  expect_bitwise_equal(report.final_state, want);
}

// ------------------------------------------------- fail-fast without a net

// A hung board without supervision must terminate the run with the typed
// error, not spin: the neighbours' links to it go ack-silent, and the
// degraded link is reclassified as a node failure because the peer itself
// stopped heartbeating.
TEST(Supervisor, HangWithoutSupervisionFailsFastWithNodeFailure) {
  core::ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.num_worker_threads = 1;
  config.faults.emplace();
  net::NodeFault hang;
  hang.kind = net::NodeFaultKind::kHang;
  hang.node = 2;
  hang.at = 800;
  config.faults->node_faults.push_back(hang);
  config.reliability.max_retries = 3;

  core::Simulation sim(cluster_state(), md::ForceField::sodium(), config);
  try {
    sim.run(kSteps);
    FAIL() << "hang was not detected";
  } catch (const sync::NodeFailureError& e) {
    EXPECT_EQ(e.node(), 2);
    EXPECT_GT(e.cycles_stalled(), 0);
    EXPECT_GE(e.detected_at(), 800u);
    EXPECT_NE(std::string(e.what()).find("node 2"), std::string::npos);
  }
}

// The pure-watchdog path: retries are effectively infinite, so only the
// cycle-budget watchdog can convert the silent hang into the typed error.
TEST(Supervisor, WatchdogAloneDetectsHang) {
  core::ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.num_worker_threads = 1;
  config.faults.emplace();
  net::NodeFault hang;
  hang.kind = net::NodeFaultKind::kHang;
  hang.node = 5;
  hang.at = 700;
  config.faults->node_faults.push_back(hang);
  config.reliability.max_retries = 1'000'000;  // degradation never fires
  config.watchdog_budget = 2'000;

  core::Simulation sim(cluster_state(), md::ForceField::sodium(), config);
  try {
    sim.run(kSteps);
    FAIL() << "watchdog did not fire";
  } catch (const sync::NodeFailureError& e) {
    EXPECT_EQ(e.node(), 5);
    EXPECT_GT(e.cycles_stalled(), 2'000u);
    EXPECT_LT(e.detected_at(), 10'000u) << "watchdog fired far too late";
  }
}

// ------------------------------------------------- transient stall

// A stall shorter than the detection horizon is not an incident at all:
// the retransmit protocol absorbs the silence and the trajectory stays
// bitwise identical to the fault-free run.
TEST(Supervisor, ShortStallIsAbsorbedBitwise) {
  const auto want = clean_run(kSteps);

  core::ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.num_worker_threads = 1;
  config.faults.emplace();
  net::NodeFault stall;
  stall.kind = net::NodeFaultKind::kStall;
  stall.node = 3;
  stall.at = 1500;
  stall.duration = 300;
  config.faults->node_faults.push_back(stall);

  core::Simulation sim(cluster_state(), md::ForceField::sodium(), config);
  sim.run(kSteps);
  expect_bitwise_equal(sim.state(), want);
}

// ------------------------------------------------- permanent death

// `die=` keeps the fault armed across reboots: the same node is implicated
// twice in a row, which with allow_degraded triggers the re-shard onto
// fewer boards. The run completes degraded and the report says exactly
// which incident shrank the cluster.
TEST(Supervisor, PermanentDeathReshardsAndCompletesDegraded) {
  auto spec = cycle_spec(1);
  spec.faults = net::FaultPlan::parse("die=0-1500");
  spec.reliability.max_retries = 3;

  supervisor::SupervisorConfig cfg;
  cfg.checkpoint_every = 1;
  cfg.max_restarts = 3;
  cfg.allow_degraded = true;
  supervisor::Supervisor sup(cluster_state(), md::ForceField::sodium(), spec,
                             cfg);
  const auto report = sup.run(kSteps);

  ASSERT_TRUE(report.completed) << report.final_error;
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.steps, kSteps);
  ASSERT_GE(report.incidents.size(), 2u);
  for (const auto& inc : report.incidents) {
    EXPECT_EQ(inc.node, 0);
    EXPECT_TRUE(inc.recovered);
  }
  EXPECT_TRUE(report.incidents.back().caused_reshard);
  // The re-shard folded an axis: fewer nodes, larger cell blocks.
  const geom::IVec3 cells = sup.spec().cells_per_node.value();
  EXPECT_EQ(cells.x * cells.y * cells.z, 2 * 2 * 4);
  EXPECT_EQ(report.final_state.size(), cluster_state().size());
}

// Without allow_degraded the permanent fault survives every reboot and the
// restart budget burns out: run() returns (never throws) an incomplete
// report carrying every incident and the final error.
TEST(Supervisor, PermanentDeathWithoutDegradedGivesUpWithReport) {
  auto spec = cycle_spec(1);
  spec.faults = net::FaultPlan::parse("die=0-1500");
  spec.reliability.max_retries = 3;

  supervisor::SupervisorConfig cfg;
  cfg.checkpoint_every = 1;
  cfg.max_restarts = 1;
  supervisor::Supervisor sup(cluster_state(), md::ForceField::sodium(), spec,
                             cfg);
  const auto report = sup.run(kSteps);

  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.restarts, 1);
  ASSERT_EQ(report.incidents.size(), 2u);
  EXPECT_EQ(report.incidents[0].node, 0);
  EXPECT_EQ(report.incidents[1].node, 0);
  EXPECT_FALSE(report.incidents[1].recovered);
  EXPECT_FALSE(report.final_error.empty());
  EXPECT_LT(report.steps, kSteps);
  // The banked prefix is still handed back.
  EXPECT_EQ(report.final_state.size(), cluster_state().size());
}

// ------------------------------------------------- observer discipline

// Rolled-back blocks are never sampled: observers see step 0 once, then
// exactly one sample per banked checkpoint, in order, crash or no crash.
struct RecordingObserver final : engine::StepObserver {
  std::vector<int> steps;
  int finishes = 0;
  void on_sample(int step, const md::SystemState&,
                 const engine::Energies&) override {
    steps.push_back(step);
  }
  void on_finish(int, engine::Engine&) override { ++finishes; }
};

TEST(Supervisor, RecoveryNeverDuplicatesObserverSamples) {
  auto spec = cycle_spec(1);
  spec.faults = net::FaultPlan::parse("crash=1-2500");
  spec.reliability.max_retries = 3;

  supervisor::SupervisorConfig cfg;
  cfg.checkpoint_every = 1;
  supervisor::Supervisor sup(cluster_state(), md::ForceField::sodium(), spec,
                             cfg);
  RecordingObserver obs;
  const auto report = sup.run(kSteps, {&obs});

  ASSERT_TRUE(report.completed) << report.final_error;
  ASSERT_EQ(report.restarts, 1);
  EXPECT_EQ(obs.steps, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(obs.finishes, 1);
}

// ------------------------------------------------- telemetry (obs hub)

// Every supervisor::Incident appears exactly once on the trace bus, with
// the event's cycle stamp equal to the incident's detected_at — and the
// whole telemetry stream from a crash-recover run is bitwise identical
// across worker counts, like the trajectory itself.
TEST(Supervisor, IncidentsAppearExactlyOnceOnTraceBusWithMatchingStamps) {
  std::string want_trace, want_metrics;
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    auto spec = cycle_spec(workers);
    arm_fast_detection(spec);
    net::NodeFault crash;
    crash.kind = net::NodeFaultKind::kCrash;
    crash.node = 1;
    crash.at = 2500;
    spec.faults->node_faults.push_back(crash);
    obs::Hub hub;
    spec.obs = &hub;

    supervisor::SupervisorConfig cfg;
    cfg.checkpoint_every = 1;
    supervisor::Supervisor sup(cluster_state(), md::ForceField::sodium(),
                               spec, cfg);
    const auto report = sup.run(kSteps);
    ASSERT_TRUE(report.completed) << report.final_error;
    ASSERT_EQ(report.incidents.size(), 1u);

    // Exactly one "incident" event per report entry, stamps matching.
    std::vector<const obs::TraceEvent*> incidents;
    int restarts = 0, checkpoints = 0;
    const auto events = hub.trace().events();
    for (const obs::TraceEvent& e : events) {
      if (e.tid != obs::Comp::kSupervisor) continue;
      const std::string_view name = e.name;
      if (name == "incident") incidents.push_back(&e);
      if (name == "restart") ++restarts;
      if (name == "checkpoint") ++checkpoints;
    }
    ASSERT_EQ(incidents.size(), report.incidents.size());
    for (std::size_t i = 0; i < incidents.size(); ++i) {
      EXPECT_EQ(incidents[i]->cycle, report.incidents[i].detected_at);
      EXPECT_EQ(incidents[i]->pid, report.incidents[i].node);
    }
    EXPECT_GT(report.incidents[0].detected_at, 2500u)
        << "detection cannot precede the crash";
    EXPECT_EQ(restarts, report.restarts);
    EXPECT_GE(checkpoints, kSteps);  // banked blocks from both attempts

    const std::string trace = hub.trace().to_chrome_json();
    const std::string metrics = hub.metrics().snapshot().to_json();
    if (workers == 1) {
      want_trace = trace;
      want_metrics = metrics;
      continue;
    }
    EXPECT_EQ(trace, want_trace);
    EXPECT_EQ(metrics, want_metrics);
  }
}

// Burned-out restart budgets leave a "give-up" marker; each failed attempt
// still contributes its own incident event exactly once.
TEST(Supervisor, GiveUpEmitsOneEventPerIncident) {
  auto spec = cycle_spec(1);
  spec.faults = net::FaultPlan::parse("die=0-1500");
  spec.reliability.max_retries = 3;
  obs::Hub hub;
  spec.obs = &hub;

  supervisor::SupervisorConfig cfg;
  cfg.checkpoint_every = 1;
  cfg.max_restarts = 1;
  supervisor::Supervisor sup(cluster_state(), md::ForceField::sodium(), spec,
                             cfg);
  const auto report = sup.run(kSteps);
  EXPECT_FALSE(report.completed);

  int incidents = 0, give_ups = 0;
  for (const obs::TraceEvent& e : hub.trace().events()) {
    if (e.tid != obs::Comp::kSupervisor) continue;
    const std::string_view name = e.name;
    if (name == "incident") ++incidents;
    if (name == "give-up") ++give_ups;
  }
  EXPECT_EQ(incidents, static_cast<int>(report.incidents.size()));
  EXPECT_EQ(give_ups, 1);
}

}  // namespace
}  // namespace fasda
