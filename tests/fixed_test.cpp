#include <gtest/gtest.h>

#include <cmath>

#include "fasda/fixed/fixed_point.hpp"
#include "fasda/util/rng.hpp"

namespace fasda::fixed {
namespace {

TEST(FixedCoord, EncodesRcidAndFraction) {
  const auto c = FixedCoord::from_cell_offset(2, 0.25);
  EXPECT_EQ(c.rcid(), 2);
  EXPECT_DOUBLE_EQ(c.frac(), 0.25);
  EXPECT_DOUBLE_EQ(c.to_double(), 2.25);
}

TEST(FixedCoord, QuantizationErrorBounded) {
  util::Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double f = rng.uniform();
    const auto c = FixedCoord::from_cell_offset(1, f);
    EXPECT_EQ(c.rcid(), 1);
    EXPECT_NEAR(c.frac(), f, FixedCoord::kResolution);
  }
}

TEST(FixedCoord, TopEdgeRoundingStaysInCell) {
  const auto c = FixedCoord::from_cell_offset(3, 0.999999999999);
  EXPECT_EQ(c.rcid(), 3);
  EXPECT_LT(c.frac(), 1.0);
}

TEST(FixedCoord, SubtractionIsExact) {
  const auto a = FixedCoord::from_real(2.75);
  const auto b = FixedCoord::from_real(1.25);
  EXPECT_EQ(a.sub(b), static_cast<std::int64_t>(1.5 * FixedCoord::kOne));
  EXPECT_EQ(b.sub(a), -static_cast<std::int64_t>(1.5 * FixedCoord::kOne));
}

TEST(FixedCoord, RoundTripThroughDouble) {
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(1.0, 4.0 - 1e-9);
    const auto c = FixedCoord::from_real(v);
    EXPECT_NEAR(c.to_double(), v, FixedCoord::kResolution);
    EXPECT_EQ(FixedCoord::from_real(c.to_double()), c);
  }
}

TEST(R2Fixed, MatchesDoubleArithmetic) {
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 10000; ++i) {
    const FixedVec3 a{FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0))};
    const FixedVec3 b{FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0))};
    const double exact = (a.to_vec3d() - b.to_vec3d()).norm2();
    const double viaFixed =
        std::ldexp(static_cast<double>(r2_fixed(a, b)),
                   -2 * FixedCoord::kFracBits);
    EXPECT_NEAR(viaFixed, exact, 1e-12) << "fixed r² must be exact";
  }
}

TEST(R2Fixed, SymmetricUnderOperandSwap) {
  util::Xoshiro256 rng(88);
  for (int i = 0; i < 1000; ++i) {
    const FixedVec3 a{FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0))};
    const FixedVec3 b{FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0))};
    EXPECT_EQ(r2_fixed(a, b), r2_fixed(b, a));
  }
}

TEST(R2Fixed, NoOverflowAtMaximumSeparation) {
  // Worst case: components 0 vs just under 4 on all axes.
  const FixedVec3 a{FixedCoord::from_raw(0), FixedCoord::from_raw(0),
                    FixedCoord::from_raw(0)};
  const std::uint32_t top = 4u * FixedCoord::kOne - 1u;
  const FixedVec3 b{FixedCoord::from_raw(top), FixedCoord::from_raw(top),
                    FixedCoord::from_raw(top)};
  const double exact = 3.0 * 4.0 * 4.0;
  const double viaFixed = std::ldexp(static_cast<double>(r2_fixed(a, b)),
                                     -2 * FixedCoord::kFracBits);
  EXPECT_NEAR(viaFixed, exact, 1e-6);
}

TEST(R2Fixed, CutoffThresholdIsOneCellEdge) {
  const FixedVec3 origin{FixedCoord::from_real(2.0), FixedCoord::from_real(2.0),
                         FixedCoord::from_real(2.0)};
  const FixedVec3 inside{FixedCoord::from_real(2.9999), FixedCoord::from_real(2.0),
                         FixedCoord::from_real(2.0)};
  const FixedVec3 at{FixedCoord::from_real(3.0), FixedCoord::from_real(2.0),
                     FixedCoord::from_real(2.0)};
  EXPECT_LT(r2_fixed(origin, inside), kR2One);
  EXPECT_GE(r2_fixed(origin, at), kR2One);
}

TEST(DisplacementToFloat, MatchesDoubleWithinFloatPrecision) {
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const FixedVec3 a{FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0))};
    const FixedVec3 b{FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0)),
                      FixedCoord::from_real(rng.uniform(1.0, 4.0))};
    const auto u = displacement_to_float(a, b);
    const auto exact = a.to_vec3d() - b.to_vec3d();
    EXPECT_NEAR(u.x, exact.x, 1e-6);
    EXPECT_NEAR(u.y, exact.y, 1e-6);
    EXPECT_NEAR(u.z, exact.z, 1e-6);
  }
}

TEST(R2ToFloat, ConvertsExactPowers) {
  EXPECT_FLOAT_EQ(r2_to_float(kR2One), 1.0f);
  EXPECT_FLOAT_EQ(r2_to_float(kR2One >> 4), 1.0f / 16.0f);
}

}  // namespace
}  // namespace fasda::fixed
