#include <gtest/gtest.h>

#include <cmath>

#include "fasda/md/force_field.hpp"
#include "fasda/md/units.hpp"

namespace fasda::md {
namespace {

TEST(Units, EnergyConversionRoundTrips) {
  EXPECT_NEAR(units::to_kcal_per_mol(units::from_kcal_per_mol(12.5)), 12.5, 1e-12);
  // kT at 300 K is the well-known 0.596 kcal/mol.
  EXPECT_NEAR(units::to_kcal_per_mol(units::kBoltzmann * 300.0), 0.596, 0.002);
}

TEST(ForceField, SodiumDefaults) {
  const auto ff = ForceField::sodium();
  ASSERT_EQ(ff.num_elements(), 1u);
  EXPECT_EQ(ff.element(0).name, "Na");
  EXPECT_NEAR(units::to_kcal_per_mol(ff.element(0).epsilon), 0.0469, 1e-6);
  EXPECT_DOUBLE_EQ(ff.element(0).sigma, 2.43);
}

TEST(ForceField, LorentzBerthelotMixing) {
  ForceField ff;
  const auto a = ff.add_element("A", 0.1, 2.0, 10.0);
  const auto b = ff.add_element("B", 0.4, 3.0, 20.0);
  EXPECT_NEAR(ff.sigma(a, b), 2.5, 1e-12);
  EXPECT_NEAR(ff.epsilon(a, b),
              units::from_kcal_per_mol(std::sqrt(0.1 * 0.4)), 1e-15);
  EXPECT_DOUBLE_EQ(ff.sigma(a, b), ff.sigma(b, a));
}

TEST(ForceField, PotentialZeroAtSigmaMinimumAtR0) {
  const auto ff = ForceField::sodium();
  const double sigma = ff.element(0).sigma;
  EXPECT_NEAR(ff.lj_energy(sigma * sigma, 0, 0), 0.0, 1e-18);
  // Minimum at r = 2^(1/6) σ with depth -ε.
  const double rmin = std::pow(2.0, 1.0 / 6.0) * sigma;
  EXPECT_NEAR(ff.lj_energy(rmin * rmin, 0, 0), -ff.element(0).epsilon,
              1e-12 * ff.element(0).epsilon);
}

TEST(ForceField, ForceIsMinusPotentialGradient) {
  const auto ff = ForceField::sodium();
  for (const double r : {2.2, 2.43, 2.73, 3.5, 5.0, 8.0}) {
    const double h = 1e-6;
    const double dvdr =
        (ff.lj_energy((r + h) * (r + h), 0, 0) -
         ff.lj_energy((r - h) * (r - h), 0, 0)) /
        (2.0 * h);
    const geom::Vec3d f = ff.lj_force({r, 0.0, 0.0}, 0, 0);
    EXPECT_NEAR(f.x, -dvdr, 1e-6 * std::abs(dvdr) + 1e-15) << "r=" << r;
    EXPECT_DOUBLE_EQ(f.y, 0.0);
    EXPECT_DOUBLE_EQ(f.z, 0.0);
  }
}

TEST(ForceField, ForceIsAntisymmetric) {
  const auto ff = ForceField::sodium();
  const geom::Vec3d dr{1.1, -2.3, 0.7};
  const auto f1 = ff.lj_force(dr, 0, 0);
  const auto f2 = ff.lj_force(-dr, 0, 0);
  EXPECT_NEAR(f1.x, -f2.x, 1e-18);
  EXPECT_NEAR(f1.y, -f2.y, 1e-18);
  EXPECT_NEAR(f1.z, -f2.z, 1e-18);
}

TEST(ForceField, ForceCoeffTableMatchesAnalyticForce) {
  // (c14·u^-14 − c8·u^-8)·u_vec must equal the analytic Eq. 2 force when u
  // is the cutoff-normalized displacement.
  const auto ff = ForceField::sodium();
  const double rc = 8.5;
  const auto table = ff.force_coeff_table(rc);
  for (const double r : {2.5, 3.0, 4.0, 6.0, 8.0}) {
    const double u = r / rc;
    const double u2 = u * u;
    const double mag = table[0].c14 * std::pow(u2, -7.0) -
                       table[0].c8 * std::pow(u2, -4.0);
    const geom::Vec3d viaTable = geom::Vec3d{u, 0, 0} * mag;
    const geom::Vec3d exact = ff.lj_force({r, 0, 0}, 0, 0);
    EXPECT_NEAR(viaTable.x, exact.x, 2e-7 * std::abs(exact.x)) << "r=" << r;
  }
}

TEST(ForceField, EnergyCoeffTableMatchesAnalyticEnergy) {
  const auto ff = ForceField::sodium();
  const double rc = 8.5;
  const auto table = ff.energy_coeff_table(rc);
  for (const double r : {2.5, 3.0, 4.0, 6.0, 8.0}) {
    const double u2 = (r / rc) * (r / rc);
    const double t12 = table[0].e12 * std::pow(u2, -6.0);
    const double t6 = table[0].e6 * std::pow(u2, -3.0);
    const double exact = ff.lj_energy(r * r, 0, 0);
    // Near the V=0 crossing the two terms cancel, so the float32
    // coefficient rounding must be measured against the term magnitudes.
    EXPECT_NEAR(t12 - t6, exact, 2e-7 * (std::abs(t12) + std::abs(t6)) + 1e-15)
        << "r=" << r;
  }
}

TEST(ForceField, CoeffTablesIndexAllElementPairs) {
  ForceField ff;
  ff.add_element("A", 0.1, 2.0, 10.0);
  ff.add_element("B", 0.2, 3.0, 20.0);
  ff.add_element("C", 0.3, 4.0, 30.0);
  const auto table = ff.force_coeff_table(8.5);
  ASSERT_EQ(table.size(), 9u);
  // Symmetric pairs get identical coefficients.
  EXPECT_FLOAT_EQ(table[0 * 3 + 1].c14, table[1 * 3 + 0].c14);
  EXPECT_FLOAT_EQ(table[1 * 3 + 2].c8, table[2 * 3 + 1].c8);
}

}  // namespace
}  // namespace fasda::md
