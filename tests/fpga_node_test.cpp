#include <gtest/gtest.h>

#include <cmath>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/functional_engine.hpp"

namespace fasda::core {
namespace {

md::SystemState make_state(geom::IVec3 dims, int per_cell = 12,
                           std::uint64_t seed = 21, double temperature = 300.0) {
  md::DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = seed;
  p.temperature = temperature;
  return md::generate_dataset(dims, 8.5, md::ForceField::sodium(), p);
}

TEST(FpgaNode, BulkSyncProducesSamePhysicsAsChained) {
  const auto state = make_state({4, 4, 4});
  const auto ff = md::ForceField::sodium();
  ClusterConfig chained;
  chained.node_dims = {2, 2, 2};
  chained.cells_per_node = {2, 2, 2};
  chained.channel.link_latency = 30;
  ClusterConfig bulk = chained;
  bulk.sync_mode = sync::SyncMode::kBulk;
  bulk.bulk_barrier_latency = 500;

  Simulation a(state, ff, chained);
  Simulation b(state, ff, bulk);
  a.run(3);
  b.run(3);
  const auto sa = a.state();
  const auto sb = b.state();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.positions[i], sb.positions[i]) << "particle " << i;
  }
  // …but bulk pays the barrier twice per iteration (release-check alignment
  // shaves a couple of cycles per barrier).
  EXPECT_GT(b.last_run_cycles(), a.last_run_cycles() + 2 * 3 * 500 - 30);
}

TEST(FpgaNode, StragglerSlowsClusterButKeepsPhysics) {
  const auto state = make_state({4, 4, 4});
  const auto ff = md::ForceField::sodium();
  ClusterConfig base;
  base.node_dims = {2, 2, 2};
  base.cells_per_node = {2, 2, 2};
  base.channel.link_latency = 30;
  ClusterConfig slow = base;
  slow.stragglers.push_back({3, 2});

  Simulation fast(state, ff, base);
  Simulation lame(state, ff, slow);
  fast.run(2);
  lame.run(2);
  EXPECT_GT(lame.last_run_cycles(), fast.last_run_cycles() * 3 / 2);
  const auto sa = fast.state();
  const auto sb = lame.state();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.positions[i], sb.positions[i]);
  }
}

TEST(FpgaNode, ChainedSyncGivesHeadStartOverBulk) {
  // 4-node chain with node 0 slowed. Under chained sync the nodes start
  // their force phases at different times (each as soon as its own
  // neighbours allow); under bulk sync every start is pinned to the global
  // barrier, so the node distant from the straggler begins strictly later.
  const auto state = make_state({12, 3, 3});
  ClusterConfig chained;
  chained.node_dims = {4, 1, 1};
  chained.cells_per_node = {3, 3, 3};
  chained.channel.link_latency = 30;
  chained.stragglers.push_back({0, 3});
  ClusterConfig bulk = chained;
  bulk.sync_mode = sync::SyncMode::kBulk;
  bulk.bulk_barrier_latency = 400;

  Simulation a(state, md::ForceField::sodium(), chained);
  Simulation b(state, md::ForceField::sodium(), bulk);
  a.run(3);
  b.run(3);
  // Distant node (2) starts its final iteration earlier under chained sync.
  EXPECT_LT(a.force_phase_starts(2).back(), b.force_phase_starts(2).back());
  // And chained starts are spread out while bulk starts coincide.
  sim::Cycle a_min = ~0ull, a_max = 0, b_min = ~0ull, b_max = 0;
  for (int n = 0; n < 4; ++n) {
    a_min = std::min(a_min, a.force_phase_starts(n).back());
    a_max = std::max(a_max, a.force_phase_starts(n).back());
    b_min = std::min(b_min, b.force_phase_starts(n).back());
    b_max = std::max(b_max, b.force_phase_starts(n).back());
  }
  EXPECT_GT(a_max - a_min, 0u);
  EXPECT_EQ(b_max - b_min, 0u);
}

TEST(FpgaNode, CrossNodeMigrationPreservesParticles) {
  // Hot particles near block boundaries migrate between FPGAs during MU;
  // nothing may be lost or duplicated.
  const auto state = make_state({4, 4, 4}, 12, 5, 600.0);
  ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.channel.link_latency = 30;
  Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(40);
  const auto out = sim.state();
  ASSERT_EQ(out.size(), state.size());
  std::vector<bool> seen(state.size(), false);
  const auto box = out.grid().box();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out.positions[i].x, 0.0);
    EXPECT_LT(out.positions[i].x, box.x);
    seen[i] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(FpgaNode, MigratedTrajectoryMatchesFunctionalEngine) {
  const auto state = make_state({4, 4, 4}, 12, 5, 600.0);
  const auto ff = md::ForceField::sodium();
  ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.channel.link_latency = 30;
  Simulation sim(state, ff, config);
  md::FunctionalConfig fc;
  fc.cutoff = 8.5;
  fc.dt = 2.0;
  md::FunctionalEngine golden(state, ff, fc);
  sim.run(30);
  golden.step(30);
  const auto got = sim.state();
  const auto want = golden.state();
  const auto grid = state.grid();
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst,
                     grid.min_image(got.positions[i], want.positions[i]).norm());
  }
  EXPECT_LT(worst, 2e-3);  // Å after 30 hot steps including migrations
}

TEST(FpgaNode, RepeatedRunsContinueTrajectory) {
  const auto state = make_state({3, 3, 3});
  const auto ff = md::ForceField::sodium();
  ClusterConfig config;
  Simulation once(state, ff, config);
  Simulation twice(state, ff, config);
  once.run(6);
  twice.run(3);
  twice.run(3);
  const auto a = once.state();
  const auto b = twice.state();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]);
    EXPECT_EQ(a.velocities[i], b.velocities[i]);
  }
}

TEST(FpgaNode, TwoNodeClusterMatchesGolden) {
  // Non-cubic cluster: 2 nodes along x only.
  const auto state = make_state({6, 3, 3});
  const auto ff = md::ForceField::sodium();
  ClusterConfig config;
  config.node_dims = {2, 1, 1};
  config.cells_per_node = {3, 3, 3};
  config.channel.link_latency = 30;
  Simulation sim(state, ff, config);
  sim.run(1);
  md::FunctionalConfig fc;
  fc.cutoff = 8.5;
  fc.dt = 2.0;
  md::FunctionalEngine golden(state, ff, fc);
  golden.evaluate_forces();
  const auto got = sim.forces_by_particle();
  const auto want = golden.forces_by_particle();
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst,
                     (got[i].cast<double>() - want[i].cast<double>()).norm());
    scale = std::max(scale, want[i].cast<double>().norm());
  }
  EXPECT_LT(worst / scale, 1e-5);
}

class SpeVariants : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SpeVariants, AllVariantsMatchGoldenForces) {
  const auto [pes, spes] = GetParam();
  const auto state = make_state({4, 4, 4});
  const auto ff = md::ForceField::sodium();
  ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.pes_per_spe = pes;
  config.spes = spes;
  config.channel.link_latency = 30;
  Simulation sim(state, ff, config);
  sim.run(1);
  md::FunctionalConfig fc;
  fc.cutoff = 8.5;
  fc.dt = 2.0;
  md::FunctionalEngine golden(state, ff, fc);
  golden.evaluate_forces();
  const auto got = sim.forces_by_particle();
  const auto want = golden.forces_by_particle();
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst,
                     (got[i].cast<double>() - want[i].cast<double>()).norm());
    scale = std::max(scale, want[i].cast<double>().norm());
  }
  EXPECT_LT(worst / scale, 1e-5) << pes << " PEs, " << spes << " SPEs";
}

INSTANTIATE_TEST_SUITE_P(PaperVariants, SpeVariants,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{3, 1}, std::pair{1, 2},
                                           std::pair{3, 2}));

}  // namespace
}  // namespace fasda::core
