#include <gtest/gtest.h>

#include <cmath>

#include "fasda/interp/interp_table.hpp"
#include "fasda/util/rng.hpp"

namespace fasda::interp {
namespace {

TEST(InterpTable, IndexSectionMatchesEq9) {
  const InterpConfig cfg{.num_sections = 14, .num_bins = 256};
  const auto table = InterpTable::build_r_pow(8, cfg);
  // r² in [0.5, 1) is the top section ns-1; [0.25, 0.5) is ns-2; etc.
  EXPECT_EQ(table.index_of(0.75f).section, 13);
  EXPECT_EQ(table.index_of(0.5f).section, 13);
  EXPECT_EQ(table.index_of(0.49f).section, 12);
  EXPECT_EQ(table.index_of(0.26f).section, 12);
  EXPECT_EQ(table.index_of(std::ldexp(1.5f, -14)).section, 0);
}

TEST(InterpTable, IndexBinMatchesEq10) {
  const InterpConfig cfg{.num_sections = 4, .num_bins = 8};
  const auto table = InterpTable::build_r_pow(8, cfg);
  // Section covering [0.5, 1): bins of width 1/16.
  EXPECT_EQ(table.index_of(0.5f).bin, 0);
  EXPECT_EQ(table.index_of(0.5f + 0.062f).bin, 0);
  EXPECT_EQ(table.index_of(0.5f + 0.0626f).bin, 1);
  EXPECT_EQ(table.index_of(0.99f).bin, 7);
}

TEST(InterpTable, FlagsOutOfRangeInputs) {
  const InterpConfig cfg{.num_sections = 6, .num_bins = 16};
  const auto table = InterpTable::build_r_pow(14, cfg);
  EXPECT_TRUE(table.index_of(std::ldexp(0.9f, -6)).below_range);
  EXPECT_TRUE(table.index_of(0.0f).below_range);
  EXPECT_TRUE(table.index_of(1.0f).above_range);
  EXPECT_TRUE(table.index_of(2.0f).above_range);
  EXPECT_FALSE(table.index_of(0.5f).below_range);
  EXPECT_FALSE(table.index_of(0.5f).above_range);
}

TEST(InterpTable, ExactAtBinEndpoints) {
  const InterpConfig cfg{.num_sections = 8, .num_bins = 32};
  const auto table = InterpTable::build_r_pow(8, cfg);
  // At a bin's left edge the linear fit passes through f exactly (up to
  // float32 coefficient rounding).
  for (int s = 0; s < cfg.num_sections; ++s) {
    const double base = std::ldexp(1.0, s - cfg.num_sections);
    for (int b = 0; b < cfg.num_bins; b += 7) {
      const double x = base * (1.0 + static_cast<double>(b) / cfg.num_bins);
      const double exact = std::pow(x, -4.0);
      EXPECT_NEAR(table.eval(static_cast<float>(x)), exact, 2e-6 * exact);
    }
  }
}

// Property sweep over interpolation depth: error shrinks ~quadratically with
// bin count; the default (14, 256) is comfortably below float32 resolution
// demands of the force pipeline.
struct DepthCase {
  int bins;
  double max_rel_error;
};

class InterpDepth : public ::testing::TestWithParam<DepthCase> {};

TEST_P(InterpDepth, R14ErrorBelowBound) {
  const auto [bins, bound] = GetParam();
  const InterpConfig cfg{.num_sections = 14, .num_bins = bins};
  const auto table = InterpTable::build_r_pow(14, cfg);
  const double err = table.max_relative_error(
      [](double x) { return std::pow(x, -7.0); }, 8);
  EXPECT_LT(err, bound);
}

INSTANTIATE_TEST_SUITE_P(Sweep, InterpDepth,
                         ::testing::Values(DepthCase{16, 4e-2},
                                           DepthCase{64, 2.5e-3},
                                           DepthCase{256, 2e-4},
                                           DepthCase{1024, 2e-5}));

class InterpAlpha : public ::testing::TestWithParam<int> {};

TEST_P(InterpAlpha, DefaultDepthAccurate) {
  const int alpha = GetParam();
  const auto table = InterpTable::build_r_pow(alpha, InterpConfig{});
  const double err = table.max_relative_error(
      [alpha](double x) { return std::pow(x, -alpha / 2.0); }, 8);
  EXPECT_LT(err, 2e-4) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(LJExponents, InterpAlpha, ::testing::Values(6, 8, 12, 14));

TEST(InterpTable, SupportsArbitraryForceModels) {
  // The paper claims different force models need only a table swap; check a
  // non-LJ kernel (screened Coulomb-like) interpolates equally well.
  const auto f = [](double r2) {
    const double r = std::sqrt(r2);
    return std::exp(-3.0 * r) / r;
  };
  const auto table = InterpTable::build(f, InterpConfig{});
  EXPECT_LT(table.max_relative_error(f, 8), 1e-5);
}

TEST(InterpTable, EvalClampsOutOfRange) {
  const auto table = InterpTable::build_r_pow(8, InterpConfig{});
  EXPECT_GT(table.eval(std::ldexp(1.0f, -20)), 0.0f);  // clamps, stays finite
  EXPECT_NEAR(table.eval(1.0f), 1.0f, 2e-2);           // top bin extrapolation
}

TEST(InterpTable, StorageBitsCountsCoefficients) {
  const InterpConfig cfg{.num_sections = 4, .num_bins = 8};
  const auto table = InterpTable::build_r_pow(8, cfg);
  EXPECT_EQ(table.storage_bits(), 4u * 8u * 2u * 32u);
}

TEST(InterpTable, RejectsEmptyConfig) {
  EXPECT_THROW(InterpTable::build_r_pow(8, InterpConfig{.num_sections = 0,
                                                        .num_bins = 8}),
               std::invalid_argument);
  EXPECT_THROW(InterpTable::build_r_pow(8, InterpConfig{.num_sections = 4,
                                                        .num_bins = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fasda::interp
