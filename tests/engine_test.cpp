// The engine layer's contracts:
//   * Registry builds every back end from one EngineSpec; unknown names
//     fail loudly; new back ends plug in without call-site changes.
//   * Cross-engine parity through the uniform interface — the same
//     guarantees the per-engine suites assert, now exercised exactly the
//     way a driver sees the engines.
//   * BatchRunner determinism: per-replica results are bitwise identical
//     for any worker count.
//   * Checkpoints written through the observer hook restart any other
//     engine within each pair's documented import tolerance.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "fasda/engine/batch_runner.hpp"
#include "fasda/engine/observers.hpp"
#include "fasda/engine/registry.hpp"
#include "fasda/md/checkpoint.hpp"
#include "fasda/md/dataset.hpp"

namespace fasda::engine {
namespace {

md::SystemState make_state(geom::IVec3 dims = {3, 3, 3}, int per_cell = 16,
                           std::uint64_t seed = 7) {
  md::DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = seed;
  p.temperature = 150.0;
  return md::generate_dataset(dims, 8.5, md::ForceField::sodium(), p);
}

EngineSpec spec_for(const std::string& name) {
  EngineSpec s;
  s.engine = name;
  return s;
}

double worst_force_error(const std::vector<geom::Vec3d>& got,
                         const std::vector<geom::Vec3d>& want) {
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst, (got[i] - want[i]).norm());
    scale = std::max(scale, want[i].norm());
  }
  return scale > 0 ? worst / scale : worst;
}

TEST(Registry, ProvidesTheThreeBuiltins) {
  const auto names = Registry::instance().names();
  EXPECT_EQ(names, (std::vector<std::string>{"cycle", "functional",
                                             "reference"}));
  EXPECT_TRUE(Registry::instance().contains("functional"));
  EXPECT_FALSE(Registry::instance().contains("gpu"));
}

TEST(Registry, UnknownEngineFailsLoudly) {
  const auto state = make_state({3, 3, 3}, 4);
  try {
    Registry::instance().create(state, md::ForceField::sodium(),
                                spec_for("warp-drive"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("warp-drive"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("functional"), std::string::npos)
        << "the error must list the registered names";
  }
}

TEST(Registry, NewBackEndsPlugIn) {
  // The boundary future back ends use: register a factory, build through
  // the same create() call every driver uses.
  Registry registry;
  EXPECT_TRUE(registry.names().empty());
  registry.add("delegate", [](const md::SystemState& s,
                              const md::ForceField& ff,
                              const EngineSpec& spec) {
    EngineSpec inner = spec;
    inner.engine = "functional";
    return Registry::instance().create(s, ff, inner);
  });
  ASSERT_TRUE(registry.contains("delegate"));
  const auto state = make_state({3, 3, 3}, 4);
  auto engine = registry.create(state, md::ForceField::sodium(),
                                spec_for("delegate"));
  engine->step(2);
  EXPECT_EQ(engine->metrics().steps_completed, 2);
  EXPECT_GT(engine->metrics().last_pair_count, 0u);
}

TEST(Registry, CycleSpecDerivesClusterShape) {
  const auto state = make_state({4, 4, 4}, 4);
  EngineSpec spec = spec_for("cycle");
  spec.cells_per_node = geom::IVec3{2, 2, 2};
  const auto config = cluster_config_for(spec, state);
  EXPECT_EQ(config.node_dims, (geom::IVec3{2, 2, 2}));

  spec.cells_per_node = geom::IVec3{3, 3, 3};  // 4 % 3 != 0
  EXPECT_THROW(cluster_config_for(spec, state), std::invalid_argument);
  EXPECT_THROW(
      Registry::instance().create(state, md::ForceField::sodium(), spec),
      std::invalid_argument);
}

TEST(EngineParity, FunctionalVsCycleForces) {
  // The flagship cross-validation, driven the way a Registry client sees
  // it: after one step both engines report the forces evaluated on the
  // identical initial configuration. Same pairs, same tables — only the
  // float accumulation order differs.
  const auto state = make_state();
  const auto ff = md::ForceField::sodium();
  auto functional =
      Registry::instance().create(state, ff, spec_for("functional"));
  auto cycle = Registry::instance().create(state, ff, spec_for("cycle"));
  functional->step(1);
  cycle->step(1);
  EXPECT_LT(worst_force_error(cycle->forces_by_particle(),
                              functional->forces_by_particle()),
            1e-5);
  EXPECT_EQ(cycle->metrics().last_pair_count,
            functional->metrics().last_pair_count);
}

TEST(EngineParity, ReferenceWithinTolerance) {
  // Interpolated float32 forces against the analytic float64 ground truth:
  // relative error well under 1e-3 (the FunctionalEngine accuracy bound).
  const auto state = make_state();
  const auto ff = md::ForceField::sodium();
  auto functional =
      Registry::instance().create(state, ff, spec_for("functional"));
  auto reference =
      Registry::instance().create(state, ff, spec_for("reference"));
  functional->step(1);
  reference->step(1);
  EXPECT_LT(worst_force_error(functional->forces_by_particle(),
                              reference->forces_by_particle()),
            1e-3);
  EXPECT_EQ(functional->metrics().last_pair_count,
            reference->metrics().last_pair_count);
}

TEST(EngineParity, TrajectoriesAgreeAcrossAllThree) {
  const auto state = make_state();
  const auto ff = md::ForceField::sodium();
  auto functional =
      Registry::instance().create(state, ff, spec_for("functional"));
  auto cycle = Registry::instance().create(state, ff, spec_for("cycle"));
  auto reference =
      Registry::instance().create(state, ff, spec_for("reference"));
  for (auto* e : {functional.get(), cycle.get(), reference.get()}) e->step(5);

  const auto grid = state.grid();
  const auto f = functional->state();
  const auto c = cycle->state();
  const auto r = reference->state();
  double worst_fc = 0.0, worst_fr = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    worst_fc = std::max(worst_fc,
                        grid.min_image(c.positions[i], f.positions[i]).norm());
    worst_fr = std::max(worst_fr,
                        grid.min_image(r.positions[i], f.positions[i]).norm());
  }
  EXPECT_LT(worst_fc, 1e-4);  // Å after 5 steps, hardware numerics twice
  EXPECT_LT(worst_fr, 1e-2);  // float32 vs float64 divergence accumulates
}

TEST(Observers, RunSamplesAtBlockBoundaries) {
  struct Recorder final : StepObserver {
    std::vector<int> steps;
    void on_sample(int step, const md::SystemState&, const Energies&) override {
      steps.push_back(step);
    }
    int finished = 0;
    void on_finish(int, Engine&) override { ++finished; }
  } recorder;

  const auto state = make_state({3, 3, 3}, 4);
  auto engine = Registry::instance().create(state, md::ForceField::sodium(),
                                            spec_for("functional"));
  const auto result = engine::run(*engine, 10, 4, {&recorder});
  EXPECT_EQ(recorder.steps, (std::vector<int>{0, 4, 8, 10}));
  EXPECT_EQ(recorder.finished, 1);
  EXPECT_EQ(engine->metrics().steps_completed, 10);
  EXPECT_DOUBLE_EQ(result.final_energies.total, engine->total_energy());
}

TEST(BatchRunner, DeterministicAcrossWorkerCounts) {
  // The batch counterpart of the parallel-scheduler guarantee: worker
  // count changes wall-clock only, never a replica's numbers.
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 4; ++i) {
    BatchJob job;
    job.label = "replica-" + std::to_string(i);
    job.state = make_state({3, 3, 3}, 8, 100 + i);
    job.ff = md::ForceField::sodium();
    job.spec = spec_for(i % 2 ? "functional" : "reference");
    job.steps = 10;
    jobs.push_back(std::move(job));
  }

  BatchReport reports[3];
  const std::size_t worker_counts[] = {1, 2, 4};
  for (int w = 0; w < 3; ++w) {
    BatchRunner runner(worker_counts[w]);
    EXPECT_EQ(runner.workers(), worker_counts[w]);
    reports[w] = runner.run(jobs);
  }

  for (int w = 1; w < 3; ++w) {
    ASSERT_EQ(reports[w].replicas.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto& base = reports[0].replicas[i];
      const auto& got = reports[w].replicas[i];
      ASSERT_TRUE(base.ok && got.ok);
      EXPECT_EQ(got.label, base.label);
      EXPECT_EQ(got.score, base.score);  // bitwise
      EXPECT_EQ(got.final_energies.total, base.final_energies.total);
      EXPECT_EQ(got.final_energies.potential, base.final_energies.potential);
      ASSERT_EQ(got.final_state.size(), base.final_state.size());
      for (std::size_t p = 0; p < base.final_state.size(); ++p) {
        EXPECT_EQ(got.final_state.positions[p], base.final_state.positions[p]);
        EXPECT_EQ(got.final_state.velocities[p],
                  base.final_state.velocities[p]);
      }
    }
  }
}

TEST(BatchRunner, ReportsThroughputAndIsolatesFailures) {
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 3; ++i) {
    BatchJob job;
    job.label = "job-" + std::to_string(i);
    job.state = make_state({3, 3, 3}, 4, 50 + i);
    job.ff = md::ForceField::sodium();
    job.spec = spec_for(i == 1 ? "no-such-backend" : "functional");
    job.steps = 4;
    jobs.push_back(std::move(job));
  }
  BatchRunner runner(2);
  const auto report = runner.run(jobs);
  ASSERT_EQ(report.replicas.size(), 3u);
  EXPECT_TRUE(report.replicas[0].ok);
  EXPECT_FALSE(report.replicas[1].ok);
  EXPECT_NE(report.replicas[1].error.find("no-such-backend"),
            std::string::npos);
  EXPECT_TRUE(report.replicas[2].ok);
  EXPECT_GT(report.replicas_per_hour, 0.0);
  EXPECT_GT(report.simulated_us, 0.0);
  EXPECT_GT(report.us_per_day_per_replica, 0.0);
  EXPECT_EQ(report.replicas[0].steps, 4);
}

TEST(BatchRunner, NodeFaultInOneReplicaLeavesTheOthersStanding) {
  // Failure isolation with a typed cause: replica 0 carries a fault plan
  // that crashes one of its FPGA nodes mid-run; replica 1 is identical but
  // fault-free. The ensemble keeps replica 1's result and reports replica
  // 0 with the failure kind and the implicated node, not just an opaque
  // error string.
  std::vector<BatchJob> jobs(2);
  for (int i = 0; i < 2; ++i) {
    BatchJob& job = jobs[i];
    job.label = i == 0 ? "faulty" : "healthy";
    job.state = make_state({4, 4, 4}, 8, 17);
    job.ff = md::ForceField::sodium();
    job.spec = spec_for("cycle");
    job.spec.cells_per_node = geom::IVec3{2, 2, 2};
    job.steps = 5;
  }
  jobs[0].spec.faults = net::FaultPlan::parse("crash=1-2500");
  jobs[0].spec.reliability.max_retries = 3;  // quick detection

  BatchRunner runner(2);
  const auto report = runner.run(jobs);
  ASSERT_EQ(report.replicas.size(), 2u);

  const auto& faulty = report.replicas[0];
  EXPECT_FALSE(faulty.ok);
  EXPECT_EQ(faulty.failure, ReplicaFailure::kNodeFailure);
  EXPECT_EQ(faulty.failed_node, 1);
  EXPECT_NE(faulty.error.find("node 1"), std::string::npos);

  const auto& healthy = report.replicas[1];
  EXPECT_TRUE(healthy.ok) << healthy.error;
  EXPECT_EQ(healthy.failure, ReplicaFailure::kNone);
  EXPECT_EQ(healthy.failed_node, -1);
  EXPECT_EQ(healthy.steps, 5);
}

TEST(BatchRunner, CustomBodyCanRebuildTheEngine) {
  BatchJob job;
  job.label = "rebuild";
  job.state = make_state({3, 3, 3}, 4);
  job.ff = md::ForceField::sodium();
  job.spec = spec_for("functional");
  job.body = [](ReplicaContext& ctx) {
    ctx.engine().step(5);
    ctx.rebuild(ctx.engine().state());  // e.g. after velocity rescaling
    ctx.engine().step(5);
    return ctx.engine().total_energy();
  };
  BatchRunner runner(1);
  const auto report = runner.run({job});
  ASSERT_TRUE(report.replicas[0].ok) << report.replicas[0].error;
  EXPECT_EQ(report.replicas[0].steps, 10) << "steps survive rebuilds";
}

// Checkpoint round trip across engines: save from one engine through the
// observer hook, restart another engine from the file, and require state
// equivalence within the target's import tolerance. Reference imports
// doubles exactly; functional/cycle quantize positions to the Q2.28 grid
// (one quantum = cell_size·2⁻²⁸ < 1e-6 Å) and narrow velocities to float32.
class CheckpointRoundTrip : public ::testing::TestWithParam<
                                std::pair<const char*, const char*>> {};

TEST_P(CheckpointRoundTrip, RestartsWithinImportTolerance) {
  const auto [from, to] = GetParam();
  const auto state = make_state({3, 3, 3}, 8);
  const auto ff = md::ForceField::sodium();
  const std::string path = ::testing::TempDir() + "engine_ckpt_" +
                           std::string(from) + "_" + to + ".bin";

  auto source = Registry::instance().create(state, ff, spec_for(from));
  CheckpointObserver checkpoint(path);
  engine::run(*source, 4, 2, {&checkpoint});
  const auto saved = source->state();

  // The file itself round-trips the saved state exactly (doubles).
  const auto loaded = md::load_checkpoint(path);
  ASSERT_EQ(loaded.size(), saved.size());
  for (std::size_t i = 0; i < saved.size(); ++i) {
    EXPECT_EQ(loaded.positions[i], saved.positions[i]);
    EXPECT_EQ(loaded.velocities[i], saved.velocities[i]);
  }

  // Importing into the target engine quantizes at most one fixed-point
  // quantum per axis (zero for the reference engine).
  auto target = Registry::instance().create(loaded, ff, spec_for(to));
  const auto imported = target->state();
  const auto grid = state.grid();
  const bool exact = std::string(to) == "reference";
  const double pos_tol = exact ? 0.0 : 1e-6;  // Å
  const double vel_tol = exact ? 0.0 : 1e-7;  // Å/fs, float32 narrowing
  ASSERT_EQ(imported.size(), saved.size());
  for (std::size_t i = 0; i < saved.size(); ++i) {
    EXPECT_LE(grid.min_image(imported.positions[i], saved.positions[i]).norm(),
              pos_tol);
    EXPECT_LE((imported.velocities[i] - saved.velocities[i]).norm(), vel_tol);
  }

  target->step(2);  // the restarted engine must actually run
  EXPECT_EQ(target->metrics().steps_completed, 2);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CheckpointRoundTrip,
    ::testing::Values(std::pair{"functional", "cycle"},
                      std::pair{"cycle", "reference"},
                      std::pair{"reference", "functional"},
                      std::pair{"cycle", "functional"}),
    [](const auto& info) {
      return std::string(info.param.first) + "_to_" + info.param.second;
    });

}  // namespace
}  // namespace fasda::engine
