// The determinism guarantee behind sim::ParallelScheduler: node-sharded
// parallel execution must be *bitwise identical* to serial execution — same
// particle state, same forces, same cycle counts, same traffic matrices —
// for every cluster shape, sync mode, straggler pattern and thread count.
// This is the property the two-phase tick/commit contract buys us, and this
// suite is what keeps it true. Run under TSan in CI to also prove the
// absence of data races (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/sim/parallel_scheduler.hpp"

namespace fasda {
namespace {

// ------------------------------------------------- scheduler-level checks

class Squarer : public sim::Component {
 public:
  Squarer(sim::Fifo<int>* in, sim::Fifo<int>* out)
      : Component("squarer"), in_(in), out_(out) {}
  void tick(sim::Cycle) override {
    if (!in_->empty() && out_->can_push()) {
      const int v = in_->pop();
      out_->push(v * v);
    }
  }

 private:
  sim::Fifo<int>* in_;
  sim::Fifo<int>* out_;
};

class Feeder : public sim::Component {
 public:
  explicit Feeder(sim::Fifo<int>* out, int stride)
      : Component("feeder"), out_(out), stride_(stride) {}
  void tick(sim::Cycle now) override {
    out_->push(static_cast<int>(now) * stride_ + 1);
  }

 private:
  sim::Fifo<int>* out_;
  int stride_;
};

class Collector : public sim::Component {
 public:
  explicit Collector(sim::Fifo<int>* in) : Component("collector"), in_(in) {}
  void tick(sim::Cycle) override {
    if (!in_->empty()) values.push_back(in_->pop());
  }
  std::vector<int> values;

 private:
  sim::Fifo<int>* in_;
};

/// One shard = one feeder -> squarer -> collector pipeline. Shards share no
/// state, mirroring how FPGA-node shards interact only through the global
/// two-phase fabric.
std::vector<std::vector<int>> run_pipelines(sim::Scheduler& s, int shards,
                                            int cycles) {
  std::vector<std::unique_ptr<sim::Fifo<int>>> fifos;
  std::vector<std::unique_ptr<Feeder>> feeders;
  std::vector<std::unique_ptr<Squarer>> squarers;
  std::vector<std::unique_ptr<Collector>> collectors;
  for (int k = 0; k < shards; ++k) {
    fifos.push_back(std::make_unique<sim::Fifo<int>>(64));
    fifos.push_back(std::make_unique<sim::Fifo<int>>(64));
    auto* in = fifos[fifos.size() - 2].get();
    auto* out = fifos.back().get();
    feeders.push_back(std::make_unique<Feeder>(in, k + 1));
    squarers.push_back(std::make_unique<Squarer>(in, out));
    collectors.push_back(std::make_unique<Collector>(out));
    s.add(feeders.back().get(), k);
    s.add(squarers.back().get(), k);
    s.add(collectors.back().get(), k);
    s.add_clocked(in, k);
    s.add_clocked(out, k);
  }
  for (int i = 0; i < cycles; ++i) s.run_cycle();
  std::vector<std::vector<int>> out;
  for (auto& c : collectors) out.push_back(c->values);
  return out;
}

TEST(ParallelScheduler, MatchesSerialOnShardedPipelines) {
  sim::Scheduler serial;
  const auto want = run_pipelines(serial, 7, 50);
  for (std::size_t threads : {1u, 2u, 4u, 16u}) {
    sim::ParallelScheduler parallel(threads);
    EXPECT_EQ(run_pipelines(parallel, 7, 50), want) << "threads=" << threads;
    EXPECT_EQ(parallel.cycle(), serial.cycle());
    EXPECT_EQ(parallel.num_shards(), 7u);
  }
}

TEST(ParallelScheduler, GlobalShardElementsRunOnTheDriver) {
  sim::ParallelScheduler s(4);
  sim::Fifo<int> global_fifo(8);
  Feeder feeder(&global_fifo, 1);
  Collector collector(&global_fifo);
  s.add(&feeder, sim::kGlobalShard);
  s.add(&collector, sim::kGlobalShard);
  s.add_clocked(&global_fifo, sim::kGlobalShard);
  for (int i = 0; i < 5; ++i) s.run_cycle();
  EXPECT_EQ(collector.values, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ParallelScheduler, RejectsNegativeShardIds) {
  sim::ParallelScheduler s(2);
  sim::Fifo<int> fifo(8);
  Collector c(&fifo);
  EXPECT_THROW(s.add(&c, -2), std::invalid_argument);
}

// ---------------------------------------------- full-cluster bitwise runs

md::SystemState make_state(geom::IVec3 dims, int per_cell = 8,
                           std::uint64_t seed = 21) {
  md::DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = seed;
  p.temperature = 200.0;
  return md::generate_dataset(dims, 8.5, md::ForceField::sodium(), p);
}

struct RunResult {
  md::SystemState state;
  std::vector<geom::Vec3f> forces;
  sim::Cycle cycles = 0;
  std::uint64_t pairs = 0;
  net::TrafficMatrix positions, forces_traffic, migrations;
  int workers = 0;
};

RunResult run_cluster(core::ClusterConfig config, int workers, int iters = 2) {
  config.num_worker_threads = workers;
  const geom::IVec3 dims = {config.node_dims.x * config.cells_per_node.x,
                            config.node_dims.y * config.cells_per_node.y,
                            config.node_dims.z * config.cells_per_node.z};
  const auto state = make_state(dims);
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(iters);
  RunResult r;
  r.state = sim.state();
  r.forces = sim.forces_by_particle();
  r.cycles = sim.total_cycles();
  r.pairs = sim.pairs_issued();
  const auto traffic = sim.traffic();
  r.positions = traffic.positions;
  r.forces_traffic = traffic.forces;
  r.migrations = traffic.migrations;
  r.workers = sim.num_workers();
  return r;
}

template <class T>
bool bitwise_equal(const T& a, const T& b) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

void expect_identical(const RunResult& got, const RunResult& want,
                      const std::string& label) {
  EXPECT_EQ(got.cycles, want.cycles) << label;
  EXPECT_EQ(got.pairs, want.pairs) << label;

  ASSERT_EQ(got.state.positions.size(), want.state.positions.size()) << label;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < want.state.positions.size(); ++i) {
    if (!bitwise_equal(got.state.positions[i], want.state.positions[i])) ++bad;
    if (!bitwise_equal(got.state.velocities[i], want.state.velocities[i])) ++bad;
    if (got.state.elements[i] != want.state.elements[i]) ++bad;
  }
  EXPECT_EQ(bad, 0u) << label << ": particle state diverged";

  ASSERT_EQ(got.forces.size(), want.forces.size()) << label;
  bad = 0;
  for (std::size_t i = 0; i < want.forces.size(); ++i) {
    if (!bitwise_equal(got.forces[i], want.forces[i])) ++bad;
  }
  EXPECT_EQ(bad, 0u) << label << ": forces diverged";

  EXPECT_EQ(got.positions.total_packets, want.positions.total_packets) << label;
  EXPECT_EQ(got.positions.packets, want.positions.packets) << label;
  EXPECT_EQ(got.forces_traffic.total_packets, want.forces_traffic.total_packets)
      << label;
  EXPECT_EQ(got.forces_traffic.packets, want.forces_traffic.packets) << label;
  EXPECT_EQ(got.migrations.total_packets, want.migrations.total_packets) << label;
  EXPECT_EQ(got.migrations.packets, want.migrations.packets) << label;
}

std::vector<int> sweep_thread_counts() {
  std::vector<int> counts = {1, 2, 4};
  const int hc = static_cast<int>(std::thread::hardware_concurrency());
  if (hc > 1 && hc != 2 && hc != 4) counts.push_back(hc);
  return counts;
}

core::ClusterConfig multi_node_config() {
  core::ClusterConfig c;
  c.node_dims = {2, 2, 2};
  c.cells_per_node = {2, 2, 2};
  c.channel.link_latency = 50;  // faster tests; same mechanics
  return c;
}

TEST(ParallelSimulation, BitwiseIdenticalAcrossThreadCountSweep) {
  const auto config = multi_node_config();
  const RunResult want = run_cluster(config, /*workers=*/1);
  ASSERT_EQ(want.workers, 1);
  ASSERT_GT(want.positions.total_packets, 0u) << "multi-node traffic expected";
  for (const int threads : sweep_thread_counts()) {
    if (threads == 1) continue;
    const RunResult got = run_cluster(config, threads);
    EXPECT_EQ(got.workers, std::min(threads, 8));
    expect_identical(got, want, "threads=" + std::to_string(threads));
  }
}

TEST(ParallelSimulation, BitwiseIdenticalWithStragglers) {
  auto config = multi_node_config();
  config.stragglers = {{3, 2}, {5, 3}};
  const RunResult want = run_cluster(config, 1);
  const RunResult got = run_cluster(config, 4);
  ASSERT_EQ(got.workers, 4);
  EXPECT_GT(want.cycles, run_cluster(multi_node_config(), 1).cycles)
      << "stragglers must actually slow the cluster";
  expect_identical(got, want, "stragglers");
}

TEST(ParallelSimulation, BitwiseIdenticalUnderBulkSync) {
  auto config = multi_node_config();
  config.sync_mode = sync::SyncMode::kBulk;
  config.bulk_barrier_latency = 500;
  const RunResult want = run_cluster(config, 1);
  const RunResult got = run_cluster(config, 4);
  ASSERT_EQ(got.workers, 4);
  expect_identical(got, want, "bulk sync");
}

TEST(ParallelSimulation, SingleNodeClampsToSerial) {
  core::ClusterConfig config;  // 1 node x 3x3x3 cells
  const RunResult want = run_cluster(config, 1, 1);
  const RunResult got = run_cluster(config, 8, 1);
  EXPECT_EQ(got.workers, 1) << "one shard: parallelism can't help";
  expect_identical(got, want, "single node");
}

}  // namespace
}  // namespace fasda
