// Fault-injection suite (DESIGN.md §10): the lossy-fabric model plus the
// ack/retransmit recovery protocol, from single-link endpoint mechanics up
// to whole-cluster trajectory invariance.
//
// The headline property is the acceptance criterion of the layer: a seeded
// FaultPlan with drop/dup/reorder/corrupt on every traffic class yields
// positions and velocities BITWISE identical to the fault-free run, for 1,
// 2 and 4 scheduler workers, while the reliability counters prove faults
// actually happened. A dead link must terminate the run with a typed
// sync::DegradedLinkError instead of hanging.

#include <gtest/gtest.h>

#include <vector>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/net/network.hpp"
#include "fasda/sync/sync.hpp"

namespace fasda {
namespace {

// ---------------------------------------------------------- FaultPlan::parse

TEST(FaultPlanParse, FullSpecRoundTrips) {
  const auto plan = net::FaultPlan::parse(
      "drop=0.05,dup=0.02,reorder=0.03,corrupt=0.01,seed=7,dead=0-1,"
      "dropk=2-3-11");
  EXPECT_DOUBLE_EQ(plan.all.drop, 0.05);
  EXPECT_DOUBLE_EQ(plan.all.dup, 0.02);
  EXPECT_DOUBLE_EQ(plan.all.reorder, 0.03);
  EXPECT_DOUBLE_EQ(plan.all.corrupt, 0.01);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_TRUE(plan.faults_for(0, 1).dead);
  EXPECT_FALSE(plan.faults_for(1, 0).dead);
  ASSERT_EQ(plan.drop_exact.count({2, 3}), 1u);
  EXPECT_EQ(plan.drop_exact.at({2, 3}).count(11), 1u);

  // With no global rates, only the dropk link reports faults.
  const auto exact_only = net::FaultPlan::parse("dropk=2-3-11");
  EXPECT_TRUE(exact_only.link_has_faults(2, 3));
  EXPECT_FALSE(exact_only.link_has_faults(3, 2));
}

TEST(FaultPlanParse, EmptySpecIsAllZero) {
  const auto plan = net::FaultPlan::parse("");
  EXPECT_FALSE(plan.all.any());
  EXPECT_TRUE(plan.per_link.empty());
  EXPECT_TRUE(plan.drop_exact.empty());
}

TEST(FaultPlanParse, RejectsBadSpecs) {
  EXPECT_THROW(net::FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(net::FaultPlan::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(net::FaultPlan::parse("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW(net::FaultPlan::parse("drop"), std::invalid_argument);
  EXPECT_THROW(net::FaultPlan::parse("dead=7"), std::invalid_argument);
  EXPECT_THROW(net::FaultPlan::parse("dropk=0-1"), std::invalid_argument);
  EXPECT_THROW(net::FaultPlan::parse("drop=abc"), std::invalid_argument);
}

// ------------------------------------------- endpoint-level link recovery

net::ChannelConfig fast_config() {
  net::ChannelConfig c;
  c.link_latency = 10;
  c.cooldown = 2;
  return c;
}

/// Two armed endpoints over a lossy wire; pump() runs the full per-cycle
/// protocol the FPGA node runs (tick_protocol + tick_egress + commit).
struct LossyPair {
  explicit LossyPair(const net::FaultPlan& plan)
      : fabric(fast_config()), a(0, fast_config()), b(1, fast_config()) {
    fabric.attach(&a);
    fabric.attach(&b);
    fabric.set_fault_plan(plan, net::kPosChannelSalt);
    a.arm_reliability();
    b.arm_reliability();
  }

  void pump(sim::Cycle& now, int cycles,
            std::vector<net::PosRecord>* received = nullptr) {
    for (int i = 0; i < cycles; ++i, ++now) {
      const auto send = [&](const net::Packet<net::PosRecord>& p) {
        fabric.send(p, now);
      };
      a.tick_protocol(now, send);
      b.tick_protocol(now, send);
      a.tick_egress(now, send);
      b.tick_egress(now, send);
      if (received) {
        if (auto r = b.poll_record(now)) received->push_back(*r);
      }
      fabric.commit();
    }
  }

  net::Fabric<net::PosRecord> fabric;
  net::Endpoint<net::PosRecord> a, b;
};

net::PosRecord record(int slot) {
  net::PosRecord r;
  r.src_gcell = {1, 2, 3};
  r.slot = static_cast<std::uint16_t>(slot);
  return r;
}

void expect_in_order(const std::vector<net::PosRecord>& received, int count) {
  ASSERT_EQ(received.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) EXPECT_EQ(received[i].slot, i) << "at " << i;
}

TEST(LinkRecovery, ExactDropIsRetransmitted) {
  net::FaultPlan plan;
  plan.drop_exact[{0, 1}] = {0};  // kill the very first data packet
  LossyPair net(plan);
  sim::Cycle now = 0;
  for (int i = 0; i < 8; ++i) net.a.enqueue(1, record(i));
  net.a.flush_last({1});
  std::vector<net::PosRecord> received;
  net.pump(now, 800, &received);
  expect_in_order(received, 8);
  EXPECT_EQ(net.fabric.fault_stats().at({0, 1}).injected_drops, 1u);
  const auto& tx = net.a.link_stats().at({0, 1});
  EXPECT_GE(tx.retransmits, 1u);
  EXPECT_GT(tx.recovery_cycles, 0u);
  EXPECT_FALSE(net.a.degraded());
}

TEST(LinkRecovery, DuplicatesAreDiscardedOnce) {
  net::FaultPlan plan;
  plan.all.dup = 1.0;  // every packet delivered twice
  LossyPair net(plan);
  sim::Cycle now = 0;
  for (int i = 0; i < 12; ++i) net.a.enqueue(1, record(i));
  net.a.flush_last({1});
  std::vector<net::PosRecord> received;
  net.pump(now, 800, &received);
  expect_in_order(received, 12);
  EXPECT_GT(net.b.link_stats().at({0, 1}).duplicates_discarded, 0u);
}

TEST(LinkRecovery, CorruptionIsCaughtByCrcAndResent) {
  net::FaultPlan plan;
  plan.seed = 99;
  plan.all.corrupt = 0.4;  // < 1: a retransmitted copy eventually survives
  LossyPair net(plan);
  sim::Cycle now = 0;
  for (int i = 0; i < 12; ++i) net.a.enqueue(1, record(i));
  net.a.flush_last({1});
  std::vector<net::PosRecord> received;
  net.pump(now, 4000, &received);
  expect_in_order(received, 12);
  EXPECT_GT(net.b.link_stats().at({0, 1}).crc_failures, 0u);
  EXPECT_GT(net.a.link_stats().at({0, 1}).retransmits, 0u);
}

TEST(LinkRecovery, MixedFaultsDeliverEverythingInOrder) {
  net::FaultPlan plan;
  plan.seed = 5;
  plan.all = {.drop = 0.15, .dup = 0.1, .reorder = 0.15, .corrupt = 0.1};
  LossyPair net(plan);
  sim::Cycle now = 0;
  int sent = 0;
  std::vector<net::PosRecord> received;
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 8; ++i) net.a.enqueue(1, record(sent++));
    net.a.flush_last({1});
    net.pump(now, 300, &received);
  }
  net.pump(now, 5000, &received);
  expect_in_order(received, sent);
  EXPECT_FALSE(net.a.degraded());
}

TEST(LinkRecovery, DeadLinkDegradesInsteadOfRetryingForever) {
  net::FaultPlan plan;
  plan.per_link[{0, 1}].dead = true;
  LossyPair net(plan);
  sim::Cycle now = 0;
  net.a.enqueue(1, record(0));
  net.a.flush_last({1});
  net.pump(now, 50'000);  // far beyond max_retries rounds of max_backoff
  ASSERT_TRUE(net.a.degraded());
  const net::DegradedLink& d = net.a.degraded_links().front();
  EXPECT_EQ(d.src, 0);
  EXPECT_EQ(d.dst, 1);
  EXPECT_EQ(d.seq, 0u);
  EXPECT_GT(d.retries, 0);
}

// ------------------------------------------------ cluster-level invariance

md::SystemState cluster_state() {
  md::DatasetParams p;
  p.particles_per_cell = 8;
  p.seed = 17;
  p.temperature = 300.0;
  return md::generate_dataset({4, 4, 4}, 8.5, md::ForceField::sodium(), p);
}

core::ClusterConfig cluster_config(int workers) {
  core::ClusterConfig c;
  c.node_dims = {2, 2, 2};
  c.cells_per_node = {2, 2, 2};
  c.num_worker_threads = workers;
  return c;
}

/// All-channel fault plan at the acceptance-criterion rates (<= 10%, no
/// dead links).
net::FaultPlan acceptance_plan() {
  net::FaultPlan plan;
  plan.seed = 0xFA57;
  plan.all = {.drop = 0.1, .dup = 0.05, .reorder = 0.05, .corrupt = 0.05};
  return plan;
}

void expect_bitwise_equal(const md::SystemState& got,
                          const md::SystemState& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.positions[i].x, want.positions[i].x) << "particle " << i;
    ASSERT_EQ(got.positions[i].y, want.positions[i].y) << "particle " << i;
    ASSERT_EQ(got.positions[i].z, want.positions[i].z) << "particle " << i;
    ASSERT_EQ(got.velocities[i].x, want.velocities[i].x) << "particle " << i;
    ASSERT_EQ(got.velocities[i].y, want.velocities[i].y) << "particle " << i;
    ASSERT_EQ(got.velocities[i].z, want.velocities[i].z) << "particle " << i;
  }
}

// Kept to a few steps on a 2x2x2-node cluster: each faulty run replays the
// full recovery protocol at cycle level, so this is seconds, not a soak.
constexpr int kSteps = 3;

TEST(FaultInjection, TrajectoryBitwiseIdenticalUnderFaults) {
  const auto state = cluster_state();
  const auto ff = md::ForceField::sodium();

  core::Simulation clean(state, ff, cluster_config(1));
  clean.run(kSteps);
  const auto want = clean.state();

  for (int workers : {1, 2, 4}) {
    auto config = cluster_config(workers);
    config.faults = acceptance_plan();
    core::Simulation faulty(state, ff, config);
    faulty.run(kSteps);
    expect_bitwise_equal(faulty.state(), want);

    // The run must actually have exercised the recovery protocol.
    const auto t = faulty.traffic();
    EXPECT_GT(t.reliability_total.retransmits, 0u) << workers << " workers";
    EXPECT_GT(t.reliability_total.acks_sent, 0u) << workers << " workers";
    EXPECT_TRUE(t.reliability_total.faults_seen()) << workers << " workers";
  }
}

TEST(FaultInjection, FaultRunsAreSeedReproducible) {
  const auto state = cluster_state();
  const auto ff = md::ForceField::sodium();
  auto config = cluster_config(2);
  config.faults = acceptance_plan();

  core::Simulation first(state, ff, config);
  first.run(kSteps);
  core::Simulation second(state, ff, config);
  second.run(kSteps);

  // Same plan, same workload: the injected-fault sequence itself replays.
  EXPECT_EQ(first.traffic().reliability_total.retransmits,
            second.traffic().reliability_total.retransmits);
  EXPECT_EQ(first.traffic().reliability_total.crc_failures,
            second.traffic().reliability_total.crc_failures);
  EXPECT_EQ(first.total_cycles(), second.total_cycles());
}

TEST(FaultInjection, ArmedPerfectWireAddsNoRetransmits) {
  const auto state = cluster_state();
  const auto ff = md::ForceField::sodium();
  auto config = cluster_config(1);
  config.faults = net::FaultPlan{};  // protocol on, wire perfect

  core::Simulation armed(state, ff, config);
  armed.run(kSteps);
  const auto t = armed.traffic();
  EXPECT_EQ(t.reliability_total.retransmits, 0u);
  EXPECT_EQ(t.reliability_total.timeouts, 0u);
  EXPECT_EQ(t.reliability_total.crc_failures, 0u);
  EXPECT_FALSE(t.reliability_total.faults_seen());
  EXPECT_GT(t.reliability_total.acks_sent, 0u);

  core::Simulation clean(state, ff, cluster_config(1));
  clean.run(kSteps);
  expect_bitwise_equal(armed.state(), clean.state());
}

TEST(FaultInjection, DeadLinkRaisesDegradedLinkError) {
  const auto state = cluster_state();
  auto config = cluster_config(2);
  config.faults = net::FaultPlan{};
  config.faults->per_link[{0, 1}].dead = true;
  config.reliability.max_retries = 3;  // fail fast: ~7 RTO of backoff

  core::Simulation sim(state, md::ForceField::sodium(), config);
  try {
    sim.run(1);
    FAIL() << "a dead link must raise DegradedLinkError, not hang";
  } catch (const sync::DegradedLinkError& e) {
    EXPECT_EQ(e.link().src, 0);
    EXPECT_EQ(e.link().dst, 1);
    EXPECT_GT(e.link().retries, 0);
    EXPECT_FALSE(e.channel().empty());
  }
}

}  // namespace
}  // namespace fasda
