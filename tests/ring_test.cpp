#include <gtest/gtest.h>

#include <memory>

#include "fasda/ring/ring.hpp"

namespace fasda::ring {
namespace {

// A trivial token: value + destination station + optional multicast count.
struct Tok {
  int value = 0;
  int dest = -1;        // -1: nobody consumes
  int multicast = 1;    // deliveries before dropping
};

class TestStation : public Station<Tok> {
 public:
  TestStation(int id, std::size_t fifo_depth = 16)
      : id_(id), inject(fifo_depth), delivered() {}

  Action classify(const Tok& t) const override {
    if (t.dest != id_) return Action::kPass;
    return t.multicast <= 1 ? Action::kDeliverAndDrop : Action::kDeliver;
  }

  bool try_deliver(Tok& t) override {
    if (blocked) return false;
    delivered.push_back(t.value);
    t.multicast--;
    return true;
  }

  sim::Fifo<Tok>* inject_source() override { return &inject; }

  int id_;
  sim::Fifo<Tok> inject;
  std::vector<int> delivered;
  bool blocked = false;
};

struct RingHarness {
  explicit RingHarness(int n) {
    for (int i = 0; i < n; ++i) stations.push_back(std::make_unique<TestStation>(i));
    std::vector<Station<Tok>*> ptrs;
    for (auto& s : stations) ptrs.push_back(s.get());
    ring = std::make_unique<Ring<Tok>>("test", ptrs);
    scheduler.add(ring.get());
    for (auto& s : stations) scheduler.add_clocked(&s->inject);
  }
  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) scheduler.run_cycle();
  }
  std::vector<std::unique_ptr<TestStation>> stations;
  std::unique_ptr<Ring<Tok>> ring;
  sim::Scheduler scheduler;
};

TEST(Ring, DeliversUnicastToken) {
  RingHarness h(5);
  h.stations[0]->inject.push(Tok{42, 3, 1});
  h.run(10);
  ASSERT_EQ(h.stations[3]->delivered.size(), 1u);
  EXPECT_EQ(h.stations[3]->delivered[0], 42);
  EXPECT_EQ(h.ring->occupancy(), 0u) << "token dropped after delivery";
}

TEST(Ring, HopLatencyIsOneCyclePerStation) {
  RingHarness h(5);
  h.stations[0]->inject.push(Tok{1, 3, 1});
  // The push commits at the end of cycle 0, the token enters slot 0 in
  // cycle 1, hops once per cycle (2, 3, 4) and is delivered by station 3's
  // classify in cycle 5.
  h.run(5);
  EXPECT_TRUE(h.stations[3]->delivered.empty());
  h.run(1);
  EXPECT_EQ(h.stations[3]->delivered.size(), 1u);
}

TEST(Ring, WrapsAround) {
  RingHarness h(4);
  h.stations[2]->inject.push(Tok{7, 0, 1});  // 2 -> 3 -> 0
  h.run(10);
  ASSERT_EQ(h.stations[0]->delivered.size(), 1u);
}

TEST(Ring, MulticastVisitsAllDestinations) {
  // dest == id matching can't express multicast to distinct stations, so use
  // a token addressed to consecutive stations via repeated inject. Instead,
  // test the counter path: a token with multicast=2 destined to station 1 on
  // a 3-ring passes twice.
  RingHarness h(3);
  h.stations[0]->inject.push(Tok{9, 1, 2});
  h.run(10);
  EXPECT_EQ(h.stations[1]->delivered.size(), 2u)
      << "kDeliver keeps the token circulating until the counter empties";
  EXPECT_EQ(h.ring->occupancy(), 0u);
}

TEST(Ring, BlockedStationStallsToken) {
  RingHarness h(4);
  h.stations[2]->blocked = true;
  h.stations[0]->inject.push(Tok{5, 2, 1});
  h.run(10);
  EXPECT_TRUE(h.stations[2]->delivered.empty());
  EXPECT_EQ(h.ring->occupancy(), 1u) << "token waits at the blocked station";
  h.stations[2]->blocked = false;
  h.run(2);
  EXPECT_EQ(h.stations[2]->delivered.size(), 1u);
}

TEST(Ring, BackpressurePropagatesBehindStall) {
  RingHarness h(4);
  h.stations[2]->blocked = true;
  // Fill the ring behind the stalled token: three tokens jam slots 2, 1, 0;
  // the fourth cannot inject while slot 0 is occupied.
  for (int i = 0; i < 4; ++i) h.stations[0]->inject.push(Tok{i, 2, 1});
  h.run(20);
  EXPECT_EQ(h.ring->occupancy(), 3u);
  EXPECT_EQ(h.stations[0]->inject.size(), 1u);
  h.stations[2]->blocked = false;
  h.run(20);
  EXPECT_EQ(h.stations[2]->delivered.size(), 4u);
  EXPECT_EQ(h.ring->occupancy(), 0u);
}

TEST(Ring, FullRingRotates) {
  // All four slots occupied by tokens nobody consumes: they must keep
  // rotating (no artificial deadlock), occupancy stays 4.
  RingHarness h(4);
  for (int i = 0; i < 4; ++i) h.stations[i]->inject.push(Tok{i, -1, 1});
  h.run(50);
  EXPECT_EQ(h.ring->occupancy(), 4u);
}

TEST(Ring, ManyTokensAllDelivered) {
  RingHarness h(6);
  int expected = 0;
  for (int src = 0; src < 6; ++src) {
    for (int k = 0; k < 10; ++k) {
      h.stations[src]->inject.push(Tok{src * 100 + k, (src + 3) % 6, 1});
      ++expected;
    }
  }
  h.run(300);
  int delivered = 0;
  for (auto& s : h.stations) delivered += static_cast<int>(s->delivered.size());
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(h.ring->occupancy(), 0u);
}

TEST(Ring, UtilizationTracksOccupancy) {
  RingHarness h(4);
  h.run(10);
  EXPECT_DOUBLE_EQ(h.ring->util().hardware_utilization(), 0.0);
  for (int i = 0; i < 4; ++i) h.stations[i]->inject.push(Tok{i, -1, 1});
  h.run(10);
  EXPECT_GT(h.ring->util().hardware_utilization(), 0.0);
  EXPECT_GT(h.ring->util().time_utilization(h.scheduler.cycle()), 0.0);
}

}  // namespace
}  // namespace fasda::ring
