#include <gtest/gtest.h>

#include <cmath>

#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/functional_engine.hpp"
#include "fasda/md/reference_engine.hpp"

namespace fasda::md {
namespace {

SystemState small_system(geom::IVec3 dims = {3, 3, 3}, int per_cell = 16,
                         double temperature = 150.0) {
  DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = 7;
  p.temperature = temperature;
  return generate_dataset(dims, 8.5, ForceField::sodium(), p);
}

FunctionalConfig config(std::size_t threads = 1) {
  FunctionalConfig c;
  c.cutoff = 8.5;
  c.dt = 2.0;
  c.threads = threads;
  return c;
}

TEST(FunctionalEngine, RequiresCellSizeEqualCutoff) {
  auto s = small_system();
  s.cell_size = 9.0;
  EXPECT_THROW(FunctionalEngine(s, ForceField::sodium(), config()),
               std::invalid_argument);
}

TEST(FunctionalEngine, StateRoundTripsThroughImport) {
  const auto s = small_system();
  FunctionalEngine engine(s, ForceField::sodium(), config());
  const auto out = engine.state();
  ASSERT_EQ(out.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    // Positions were generated on the fixed grid, so the round trip is exact
    // up to one quantum.
    EXPECT_NEAR(out.positions[i].x, s.positions[i].x, 1e-6);
    EXPECT_NEAR(out.positions[i].y, s.positions[i].y, 1e-6);
    EXPECT_NEAR(out.positions[i].z, s.positions[i].z, 1e-6);
    // Velocities pass through float32.
    EXPECT_NEAR(out.velocities[i].x, s.velocities[i].x, 1e-7);
  }
}

TEST(FunctionalEngine, ForcesMatchAnalyticReference) {
  const auto s = small_system();
  const auto ff = ForceField::sodium();
  FunctionalEngine engine(s, ff, config());
  engine.evaluate_forces();
  const auto approx = engine.forces_by_particle();
  const auto exact = compute_forces(engine.state(), ff, 8.5);
  double worst = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    worst = std::max(worst, (approx[i].cast<double>() - exact[i]).norm());
    scale = std::max(scale, exact[i].norm());
  }
  // Interpolation + float32 accumulation: relative error well under 1e-3.
  EXPECT_LT(worst / scale, 1e-3);
  EXPECT_GT(scale, 0.0);
}

TEST(FunctionalEngine, PairCountMatchesReference) {
  const auto s = small_system();
  FunctionalEngine engine(s, ForceField::sodium(), config());
  engine.evaluate_forces();
  EXPECT_EQ(engine.last_pair_count(), count_pairs_within_cutoff(engine.state(), 8.5));
}

TEST(FunctionalEngine, ThreadingDoesNotChangeResults) {
  const auto s = small_system();
  FunctionalEngine e1(s, ForceField::sodium(), config(1));
  FunctionalEngine e4(s, ForceField::sodium(), config(4));
  e1.step(10);
  e4.step(10);
  const auto s1 = e1.state();
  const auto s4 = e4.state();
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.positions[i], s4.positions[i]);
    EXPECT_EQ(s1.velocities[i], s4.velocities[i]);
  }
}

TEST(FunctionalEngine, MomentumNearConserved) {
  // Float32 accumulation: momentum conserved to float precision because the
  // full-shell evaluation produces exactly antisymmetric pair forces.
  const auto s = small_system();
  const auto ff = ForceField::sodium();
  FunctionalEngine engine(s, ff, config());
  engine.step(50);
  const auto p = total_momentum(engine.state(), ff);
  const double scale = static_cast<double>(s.size());
  EXPECT_LT(p.norm() / scale, 1e-6);
}

TEST(FunctionalEngine, TracksReferenceTrajectoryShortTerm) {
  const auto s = small_system({3, 3, 3}, 32);
  const auto ff = ForceField::sodium();
  FunctionalEngine fasda(s, ff, config(2));
  ReferenceEngine reference(s, ff, 8.5, 2.0, 2);
  fasda.step(20);
  reference.step(20);
  const auto sf = fasda.state();
  const auto& sr = reference.state();
  const auto grid = s.grid();
  double worst = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    worst = std::max(worst,
                     grid.min_image(sf.positions[i], sr.positions[i]).norm());
  }
  EXPECT_LT(worst, 1e-3);  // Å after 20 steps
}

TEST(FunctionalEngine, EnergyTracksReferenceOverLongerRun) {
  // The Fig. 19 property in miniature: total energy of the FASDA trajectory
  // stays within ~1e-3 relative of the double-precision engine's.
  const auto s = small_system({3, 3, 3}, 64, 300.0);
  const auto ff = ForceField::sodium();
  FunctionalEngine fasda(s, ff, config(4));
  ReferenceEngine reference(s, ff, 8.5, 2.0, 4);
  const double scale =
      std::abs(reference.total_energy()) + reference.kinetic();
  for (int block = 0; block < 5; ++block) {
    fasda.step(100);
    reference.step(100);
    const double ef = fasda.total_energy();
    const double er = reference.total_energy();
    EXPECT_LT(std::abs(ef - er) / scale, 2e-3) << "block " << block;
  }
}

TEST(FunctionalEngine, MigrationPreservesParticleCount) {
  const auto s = small_system({3, 3, 3}, 32, 400.0);  // hot: many migrations
  FunctionalEngine engine(s, ForceField::sodium(), config(2));
  engine.step(200);
  const auto out = engine.state();
  EXPECT_EQ(out.size(), s.size());
  // Every particle position must still be inside the box.
  const auto box = out.grid().box();
  for (const auto& p : out.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, box.x);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, box.y);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, box.z);
  }
}

TEST(FunctionalEngine, InterpPotentialCloseToAnalytic) {
  const auto s = small_system();
  FunctionalEngine engine(s, ForceField::sodium(), config());
  const double via_tables = engine.interp_potential_energy();
  const double exact = engine.potential_energy();
  EXPECT_LT(std::abs(via_tables - exact) / std::abs(exact), 1e-3);
}

TEST(FunctionalEngine, CoarseTablesDegradeForceAccuracy) {
  // Ablation hook: 16 bins must be visibly worse than the default 256.
  const auto s = small_system();
  const auto ff = ForceField::sodium();
  auto coarse_cfg = config();
  coarse_cfg.table.num_bins = 16;
  FunctionalEngine coarse(s, ff, coarse_cfg);
  FunctionalEngine fine(s, ff, config());
  coarse.evaluate_forces();
  fine.evaluate_forces();
  const auto exact = compute_forces(fine.state(), ff, 8.5);
  auto worst_error = [&](const FunctionalEngine& e) {
    const auto f = e.forces_by_particle();
    double worst = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      worst = std::max(worst, (f[i].cast<double>() - exact[i]).norm());
    }
    return worst;
  };
  EXPECT_GT(worst_error(coarse), 5.0 * worst_error(fine));
}

}  // namespace
}  // namespace fasda::md
