#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "fasda/md/checkpoint.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/reference_engine.hpp"

namespace fasda::md {
namespace {

SystemState make_state() {
  DatasetParams p;
  p.particles_per_cell = 16;
  p.seed = 77;
  return generate_dataset({3, 3, 3}, 8.5, ForceField::sodium(), p);
}

TEST(Checkpoint, ExactRoundTrip) {
  const auto s = make_state();
  std::stringstream stream;
  save_checkpoint(stream, s);
  const auto back = load_checkpoint(stream);
  EXPECT_EQ(back.cell_dims, s.cell_dims);
  EXPECT_DOUBLE_EQ(back.cell_size, s.cell_size);
  ASSERT_EQ(back.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(back.positions[i], s.positions[i]) << "bit-exact positions";
    EXPECT_EQ(back.velocities[i], s.velocities[i]) << "bit-exact velocities";
    EXPECT_EQ(back.elements[i], s.elements[i]);
  }
}

TEST(Checkpoint, RestartContinuesTrajectoryExactly) {
  const auto ff = ForceField::sodium();
  const auto s = make_state();
  ReferenceEngine straight(s, ff, 8.5, 2.0, 1);
  straight.step(20);

  ReferenceEngine first_half(s, ff, 8.5, 2.0, 1);
  first_half.step(10);
  std::stringstream stream;
  save_checkpoint(stream, first_half.state());
  ReferenceEngine second_half(load_checkpoint(stream), ff, 8.5, 2.0, 1);
  second_half.step(10);

  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(straight.state().positions[i], second_half.state().positions[i]);
    EXPECT_EQ(straight.state().velocities[i], second_half.state().velocities[i]);
  }
}

TEST(Checkpoint, FileRoundTrip) {
  const auto s = make_state();
  const std::string path = "/tmp/fasda_checkpoint_test.bin";
  save_checkpoint(path, s);
  const auto back = load_checkpoint(path);
  EXPECT_EQ(back.size(), s.size());
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_THROW(load_checkpoint(garbage), std::runtime_error);
  EXPECT_THROW(load_checkpoint(std::string("/nonexistent/path")),
               std::runtime_error);
}

TEST(Checkpoint, RejectsTruncation) {
  const auto s = make_state();
  std::stringstream stream;
  save_checkpoint(stream, s);
  const std::string full = stream.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_checkpoint(cut), std::runtime_error);
}

TEST(Checkpoint, CrcCatchesTornPayload) {
  // A flipped byte anywhere in the payload must fail the CRC footer, with
  // a diagnostic that tells the operator to fall back to the previous
  // checkpoint rather than restart from silently corrupt coordinates.
  const auto s = make_state();
  std::stringstream stream;
  save_checkpoint(stream, s);
  std::string bytes = stream.str();
  for (const std::size_t at : {bytes.size() / 3, bytes.size() - 5}) {
    std::string torn = bytes;
    torn[at] ^= 0x40;
    std::stringstream in(torn);
    try {
      load_checkpoint(in);
      FAIL() << "corruption at byte " << at << " went undetected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Checkpoint, AtomicSaveLeavesNoTempFileBehind) {
  const auto s = make_state();
  const std::string path = "/tmp/fasda_checkpoint_atomic_test.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  save_checkpoint(path, s);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "rename must consume the staging file";

  // Overwriting an existing checkpoint goes through the same staged path.
  save_checkpoint(path, s);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto back = load_checkpoint(path);
  EXPECT_EQ(back.size(), s.size());
  std::remove(path.c_str());
}

TEST(Checkpoint, EmptySystem) {
  SystemState s;
  s.cell_dims = {3, 3, 3};
  s.cell_size = 8.5;
  std::stringstream stream;
  save_checkpoint(stream, s);
  const auto back = load_checkpoint(stream);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.cell_dims, s.cell_dims);
}

}  // namespace
}  // namespace fasda::md
