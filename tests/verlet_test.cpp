// Verlet-list neighbour policy for the CPU reference engine: physics must
// be identical to per-step cell-list recomputation while the list survives
// many steps between rebuilds (the software optimization §2.2 notes does
// not apply on the FPGA, where lists are recomputed every timestep).

#include <gtest/gtest.h>

#include <cmath>

#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/reference_engine.hpp"

namespace fasda::md {
namespace {

SystemState make_state(geom::IVec3 dims = {3, 3, 3}, int per_cell = 16,
                       double temperature = 300.0) {
  DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = 13;
  p.temperature = temperature;
  return generate_dataset(dims, 8.5, ForceField::sodium(), p);
}

NeighborPolicy verlet(double skin = 1.0) {
  NeighborPolicy n;
  n.use_verlet_list = true;
  n.skin = skin;
  return n;
}

TEST(VerletList, TrajectoryMatchesCellList) {
  const auto state = make_state();
  const auto ff = ForceField::sodium();
  ReferenceEngine cell_list(state, ff, 8.5, 2.0, 2);
  ReferenceEngine listed(state, ff, 8.5, 2.0, 2, {}, verlet());
  cell_list.step(60);
  listed.step(60);
  const auto grid = state.grid();
  for (std::size_t i = 0; i < state.size(); ++i) {
    // The pair sets are identical (the list radius covers the cutoff), so
    // only summation order can differ — double precision keeps that tiny.
    EXPECT_LT(grid.min_image(cell_list.state().positions[i],
                             listed.state().positions[i])
                  .norm(),
              1e-9);
  }
}

TEST(VerletList, PairCountMatchesCellList) {
  const auto state = make_state();
  const auto ff = ForceField::sodium();
  ReferenceEngine listed(state, ff, 8.5, 2.0, 1, {}, verlet());
  listed.step(1);
  EXPECT_EQ(listed.last_pair_count(), count_pairs_within_cutoff(state, 8.5));
}

TEST(VerletList, ListSurvivesManySteps) {
  const auto state = make_state({3, 3, 3}, 16, 150.0);
  const auto ff = ForceField::sodium();
  ReferenceEngine listed(state, ff, 8.5, 2.0, 1, {}, verlet(2.0));
  listed.step(100);
  // Cold 150 K sodium moves ~0.005 Å/step: far fewer rebuilds than steps.
  EXPECT_GE(listed.list_rebuilds(), 1u);
  EXPECT_LT(listed.list_rebuilds(), 10u);
}

TEST(VerletList, TinySkinRebuildsOften) {
  const auto state = make_state({3, 3, 3}, 16, 600.0);
  const auto ff = ForceField::sodium();
  ReferenceEngine tight(state, ff, 8.5, 2.0, 1, {}, verlet(0.05));
  ReferenceEngine loose(state, ff, 8.5, 2.0, 1, {}, verlet(2.0));
  tight.step(50);
  loose.step(50);
  EXPECT_GT(tight.list_rebuilds(), loose.list_rebuilds());
}

TEST(VerletList, EnergyConservedWithList) {
  const auto state = make_state({3, 3, 3}, 32);
  const auto ff = ForceField::sodium();
  ReferenceEngine engine(state, ff, 8.5, 2.0, 2, {}, verlet());
  const double e0 = engine.total_energy();
  const double scale = std::abs(e0) + engine.kinetic();
  engine.step(300);
  EXPECT_LT(std::abs(engine.total_energy() - e0) / scale, 5e-3);
}

TEST(VerletList, WorksOnLargerGridWithCellPath) {
  // 4x4x4 grid: radius 9.5 Å needs reach 2, 2*2+1 = 5 > 4 -> the all-pairs
  // fallback; with a 6x6x6 grid the cell-based enumeration runs. Both must
  // agree with the plain engine.
  for (const auto dims : {geom::IVec3{4, 4, 4}, geom::IVec3{6, 6, 6}}) {
    const auto state = make_state(dims, 8);
    const auto ff = ForceField::sodium();
    ReferenceEngine plain(state, ff, 8.5, 2.0, 1);
    ReferenceEngine listed(state, ff, 8.5, 2.0, 1, {}, verlet());
    plain.step(5);
    listed.step(5);
    EXPECT_EQ(plain.last_pair_count(), listed.last_pair_count())
        << dims.x << "^3";
  }
}

}  // namespace
}  // namespace fasda::md
