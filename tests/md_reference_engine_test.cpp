#include <gtest/gtest.h>

#include <cmath>

#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/reference_engine.hpp"

namespace fasda::md {
namespace {

SystemState small_system(geom::IVec3 dims = {3, 3, 3}, int per_cell = 16) {
  DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = 7;
  p.temperature = 150.0;
  return generate_dataset(dims, 8.5, ForceField::sodium(), p);
}

TEST(ReferenceEngine, ForcesMatchStandaloneComputation) {
  const auto state = small_system();
  const auto ff = ForceField::sodium();
  ReferenceEngine engine(state, ff, 8.5, 2.0, 2);
  engine.step(1);  // populates forces for the stepped state
  const auto expected = compute_forces(engine.state(), ff, 8.5);
  // Recompute through the engine by stepping zero-force comparison instead:
  // run one more step and compare the freshly used forces against the
  // standalone evaluation on the pre-step state.
  const auto before = engine.state();
  engine.step(1);
  const auto standalone = compute_forces(before, ff, 8.5);
  ASSERT_EQ(standalone.size(), engine.forces().size());
  for (std::size_t i = 0; i < standalone.size(); ++i) {
    EXPECT_NEAR(engine.forces()[i].x, standalone[i].x, 1e-12);
    EXPECT_NEAR(engine.forces()[i].y, standalone[i].y, 1e-12);
    EXPECT_NEAR(engine.forces()[i].z, standalone[i].z, 1e-12);
  }
  (void)expected;
}

TEST(ReferenceEngine, ThreadCountDoesNotChangePhysics) {
  const auto state = small_system();
  const auto ff = ForceField::sodium();
  ReferenceEngine e1(state, ff, 8.5, 2.0, 1);
  ReferenceEngine e4(state, ff, 8.5, 2.0, 4);
  e1.step(20);
  e4.step(20);
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_NEAR(e1.state().positions[i].x, e4.state().positions[i].x, 1e-9);
    EXPECT_NEAR(e1.state().positions[i].y, e4.state().positions[i].y, 1e-9);
    EXPECT_NEAR(e1.state().positions[i].z, e4.state().positions[i].z, 1e-9);
  }
}

TEST(ReferenceEngine, ConservesMomentum) {
  const auto state = small_system();
  const auto ff = ForceField::sodium();
  ReferenceEngine engine(state, ff, 8.5, 2.0, 2);
  engine.step(50);
  const auto p = total_momentum(engine.state(), ff);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
  EXPECT_NEAR(p.z, 0.0, 1e-9);
}

TEST(ReferenceEngine, ConservesEnergyOverShortRun) {
  const auto state = small_system({3, 3, 3}, 32);
  const auto ff = ForceField::sodium();
  ReferenceEngine engine(state, ff, 8.5, 2.0, 2);
  const double e0 = engine.total_energy();
  engine.step(500);
  const double e1 = engine.total_energy();
  // Truncated LJ drifts slightly as pairs cross the cutoff; the scale to
  // compare against is the kinetic energy, not |e0| (which can be near 0).
  const double scale = engine.kinetic() + std::abs(e0);
  EXPECT_LT(std::abs(e1 - e0) / scale, 5e-3);
}

TEST(ReferenceEngine, ParticlesStayInBox) {
  const auto state = small_system();
  const auto ff = ForceField::sodium();
  ReferenceEngine engine(state, ff, 8.5, 2.0, 2);
  engine.step(100);
  const auto box = engine.state().grid().box();
  for (const auto& p : engine.state().positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, box.x);
  }
}

TEST(ReferenceEngine, PairCountMatchesStandaloneCount) {
  const auto state = small_system();
  const auto ff = ForceField::sodium();
  ReferenceEngine engine(state, ff, 8.5, 2.0, 3);
  const std::size_t expected = count_pairs_within_cutoff(state, 8.5);
  engine.step(1);
  EXPECT_EQ(engine.last_pair_count(), expected);
}

TEST(ReferenceEngine, TwoBodyAnalyticTrajectory) {
  // Two particles at the LJ minimum distance with zero velocity must stay
  // put (zero force), at shorter distance must repel.
  auto ff = ForceField::sodium();
  const double sigma = ff.element(0).sigma;
  const double rmin = std::pow(2.0, 1.0 / 6.0) * sigma;

  SystemState s;
  s.cell_dims = {3, 3, 3};
  s.cell_size = 8.5;
  s.positions = {{10.0, 10.0, 10.0}, {10.0 + rmin, 10.0, 10.0}};
  s.velocities = {{0, 0, 0}, {0, 0, 0}};
  s.elements = {0, 0};

  ReferenceEngine at_min(s, ff, 8.5, 2.0, 1);
  at_min.step(10);
  EXPECT_NEAR(at_min.state().positions[0].x, 10.0, 1e-6);

  s.positions[1].x = 10.0 + 0.95 * sigma;  // inside the core: repulsion
  ReferenceEngine repel(s, ff, 8.5, 2.0, 1);
  repel.step(5);
  EXPECT_LT(repel.state().positions[0].x, 10.0);
  EXPECT_GT(repel.state().positions[1].x, 10.0 + 0.95 * sigma);
}

}  // namespace
}  // namespace fasda::md
