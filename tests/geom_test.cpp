#include <gtest/gtest.h>

#include <set>

#include "fasda/geom/cell_grid.hpp"

namespace fasda::geom {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3d a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3d{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3d{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3d{2, 4, 6}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ((Vec3d{3, 4, 0}).norm(), 5.0);
}

TEST(HalfShell, ThirteenForwardThirteenBackward) {
  const auto half = half_shell_offsets();
  const auto full = full_shell_offsets();
  EXPECT_EQ(half.size(), 13u);
  EXPECT_EQ(full.size(), 26u);
  for (const auto& d : half) EXPECT_TRUE(is_forward_offset(d));
  for (std::size_t i = 13; i < 26; ++i) EXPECT_FALSE(is_forward_offset(full[i]));
}

TEST(HalfShell, ForwardAndBackwardAreNegations) {
  // For every forward offset, its negation must be a backward offset: this
  // is exactly the Newton's-third-law pairing property.
  const auto full = full_shell_offsets();
  for (std::size_t i = 0; i < 13; ++i) {
    const IVec3 neg{-full[i].x, -full[i].y, -full[i].z};
    bool found = false;
    for (std::size_t j = 13; j < 26; ++j) found |= full[j] == neg;
    EXPECT_TRUE(found);
  }
}

TEST(CellGrid, Eq7IndexingRoundTrips) {
  const CellGrid grid({4, 5, 3}, 1.0);
  std::set<CellId> seen;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 5; ++y) {
      for (int z = 0; z < 3; ++z) {
        const CellId id = grid.cid({x, y, z});
        EXPECT_EQ(grid.coords(id), (IVec3{x, y, z}));
        seen.insert(id);
      }
    }
  }
  EXPECT_EQ(seen.size(), 60u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 59);
  // Spot-check the formula CID = Dy*Dz*x + Dz*y + z.
  EXPECT_EQ(grid.cid({2, 3, 1}), 5 * 3 * 2 + 3 * 3 + 1);
}

TEST(CellGrid, RejectsDegenerateConfigs) {
  EXPECT_THROW(CellGrid({2, 3, 3}, 1.0), std::invalid_argument);
  EXPECT_THROW(CellGrid({3, 3, 3}, 0.0), std::invalid_argument);
  EXPECT_THROW(CellGrid({3, 3, 3}, -1.0), std::invalid_argument);
}

TEST(CellGrid, WrapIsPeriodic) {
  const CellGrid grid({3, 4, 5}, 2.0);
  EXPECT_EQ(grid.wrap({-1, 4, 5}), (IVec3{2, 0, 0}));
  EXPECT_EQ(grid.wrap({3, -1, -5}), (IVec3{0, 3, 0}));
  EXPECT_EQ(grid.wrap({1, 2, 3}), (IVec3{1, 2, 3}));
}

TEST(CellGrid, WrapPositionStaysInBox) {
  const CellGrid grid({3, 3, 3}, 8.5);
  const Vec3d p = grid.wrap_position({-1.0, 26.0, 25.5 + 25.5});
  EXPECT_NEAR(p.x, 24.5, 1e-12);
  EXPECT_NEAR(p.y, 0.5, 1e-12);
  EXPECT_NEAR(p.z, 0.0, 1e-12);
}

TEST(CellGrid, CellOfMapsBoundariesSafely) {
  const CellGrid grid({3, 3, 3}, 1.0);
  EXPECT_EQ(grid.cell_of({0.0, 0.0, 0.0}), (IVec3{0, 0, 0}));
  EXPECT_EQ(grid.cell_of({2.999999, 0.5, 1.5}), (IVec3{2, 0, 1}));
  // Exactly at the box edge wraps to cell 0.
  EXPECT_EQ(grid.cell_of({3.0, 3.0, 3.0}), (IVec3{0, 0, 0}));
}

TEST(CellGrid, CellDisplacementMinImage) {
  const CellGrid grid({4, 4, 4}, 1.0);
  EXPECT_EQ(grid.cell_displacement({0, 0, 0}, {1, 0, 0}), (IVec3{1, 0, 0}));
  EXPECT_EQ(grid.cell_displacement({0, 0, 0}, {3, 0, 0}), (IVec3{-1, 0, 0}));
  // Distance 2 in a 4-wide grid: ties map to +2 (not a neighbour either way).
  EXPECT_EQ(grid.cell_displacement({0, 0, 0}, {2, 0, 0}).x, 2);
}

TEST(CellGrid, MinImageVector) {
  const CellGrid grid({3, 3, 3}, 10.0);
  const Vec3d d = grid.min_image({1.0, 1.0, 1.0}, {29.0, 1.0, 1.0});
  EXPECT_NEAR(d.x, -2.0, 1e-12);
  EXPECT_NEAR(d.y, 0.0, 1e-12);
}

TEST(CellGrid, ForwardNeighborCountsArePartitioned) {
  // Every cell must have exactly 13 forward and 13 backward neighbours, and
  // `b forward-of a` must imply `a not forward-of b`.
  const CellGrid grid({3, 4, 5}, 1.0);
  for (int id = 0; id < grid.num_cells(); ++id) {
    const IVec3 a = grid.coords(id);
    int forward = 0;
    for (const IVec3& d : full_shell_offsets()) {
      const IVec3 b = grid.wrap(a + d);
      const bool fwd = grid.is_forward_neighbor(a, b);
      const bool bwd = grid.is_forward_neighbor(b, a);
      EXPECT_NE(fwd, bwd) << "pair must be ordered exactly one way";
      forward += fwd;
    }
    EXPECT_EQ(forward, 13);
  }
}

TEST(CellGrid, SelfIsNeverNeighbor) {
  const CellGrid grid({3, 3, 3}, 1.0);
  for (int id = 0; id < grid.num_cells(); ++id) {
    const IVec3 c = grid.coords(id);
    EXPECT_FALSE(grid.is_forward_neighbor(c, c));
  }
}

}  // namespace
}  // namespace fasda::geom
